//! Umbrella package holding the workspace examples and integration tests.
//! See the member crates for the actual library.
pub use gem_core as core;
