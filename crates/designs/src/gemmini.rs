//! An N×N weight-stationary systolic array — the "Gemmini" stand-in.
//!
//! Each processing element holds a weight register, multiplies the
//! activation flowing in from the left, adds the partial sum flowing down
//! from above, and forwards both. Multipliers chained through the array
//! give this design the deepest combinational logic of the suite, which is
//! why the real Gemmini has the most logic levels (148) and boomerang
//! layers (19) in Table I.

use crate::workload::{Workload, WorkloadSpec};
use crate::Design;
use gem_netlist::{Bits, ModuleBuilder};

/// Builds an `n`×`n` systolic array (8-bit operands, 24-bit partial sums).
pub fn gemmini_like(n: u32) -> Design {
    let n = n.clamp(2, 16);
    let mut b = ModuleBuilder::new("gemmini_like");
    let rst = b.input("rst", 1);
    let load_w = b.input("load_w", 1);
    // One activation byte per row, one weight byte per column.
    let a_bus = b.input("a_bus", 8 * n);
    let w_bus = b.input("w_bus", 8 * n);

    let zero8 = b.lit(0, 8);
    let zero24 = b.lit(0, 24);

    // a[i][j]: activation register entering PE (i, j) from the left.
    // psum[i][j]: partial sum leaving PE (i, j) downward.
    let mut psum_below: Vec<gem_netlist::NetId> = (0..n).map(|_| zero24).collect();
    let mut col_weights: Vec<Vec<gem_netlist::NetId>> = Vec::new();
    // Weight shift chain per column (load_w shifts new weights in).
    for j in 0..n {
        let mut chain = Vec::new();
        let mut src = b.slice(w_bus, 8 * j, 8);
        for _i in 0..n {
            let w = b.dff(8);
            let wn = b.mux(load_w, src, w);
            let wn = b.mux(rst, zero8, wn);
            b.connect_dff(w, wn);
            src = w;
            chain.push(w);
        }
        col_weights.push(chain);
    }
    for i in 0..n {
        // Activation pipeline across the row.
        let mut a_cur = b.slice(a_bus, 8 * i, 8);
        for j in 0..n {
            let a_reg = b.dff(8);
            let an = b.mux(rst, zero8, a_cur);
            b.connect_dff(a_reg, an);
            a_cur = a_reg;
            // MAC: psum_out = psum_in + a * w (combinational through the
            // column — the deep path).
            let a16 = b.resize(a_reg, 16);
            let w16 = b.resize(col_weights[j as usize][i as usize], 16);
            let prod = b.mul(a16, w16);
            let prod24 = b.resize(prod, 24);
            psum_below[j as usize] = b.add(psum_below[j as usize], prod24);
        }
    }
    // Column accumulators.
    let mut folded = b.lit(0, 24);
    for (j, &ps) in psum_below.iter().enumerate() {
        let acc = b.dff(24);
        let nxt = b.add(acc, ps);
        let nxt = b.mux(rst, zero24, nxt);
        b.connect_dff(acc, nxt);
        folded = b.xor(folded, acc);
        if j == 0 {
            b.output("acc0", acc);
        }
    }
    b.output("checksum", folded);
    let module = b.finish().expect("gemmini_like is a valid module");

    let mk = |name: &str, activity: f64, load_w_v: u64, seed: u64| Workload {
        name: name.into(),
        spec: WorkloadSpec::RandomToggle {
            ports: vec!["a_bus".into(), "w_bus".into()],
            activity,
            held: vec![("rst".into(), 0), ("load_w".into(), load_w_v)],
            seed,
            warmup: 64,
        },
    };
    let workloads = vec![
        // Weights streaming every cycle: the whole array switches.
        mk("tiled_matmul_ws_full_C", 0.40, 1, 21),
        // Weight-stationary steady state: only the activation pipeline
        // moves (the low-activity case where event-driven engines gain).
        mk("tiled_matmul_ws_perf", 0.15, 0, 22),
    ];
    Design {
        name: "Gemmini".into(),
        module,
        workloads,
    }
}

/// Reference checksum after `cycles` of a fixed stimulus (pins the
/// design's behaviour for cross-engine tests).
pub fn gemmini_reference_checksum(n: u32, cycles: u64) -> Bits {
    let d = gemmini_like(n);
    let mut sim = gem_sim::NetlistSim::new(&d.module);
    let nn = n.clamp(2, 16);
    sim.set_input("rst", Bits::from_u64(0, 1));
    sim.set_input("load_w", Bits::from_u64(1, 1));
    for c in 0..cycles {
        let pattern = 0x0123_4567_89AB_CDEFu64.rotate_left(c as u32);
        sim.set_input(
            "a_bus",
            Bits::from_u64(pattern & ((1u64 << (8 * nn).min(63)) - 1), 8 * nn),
        );
        sim.set_input(
            "w_bus",
            Bits::from_u64((pattern >> 8) & ((1u64 << (8 * nn).min(63)) - 1), 8 * nn),
        );
        sim.eval();
        sim.step();
    }
    sim.eval();
    sim.output("checksum")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deepest_logic_of_the_suite() {
        let d = gemmini_like(4);
        let synth = gem_synth::synthesize(&d.module, &gem_synth::SynthOptions::default())
            .expect("synthesizable");
        // Chained MACs through 4 rows must be deep.
        assert!(
            synth.stats.levels > 30,
            "expected deep logic, got {} levels",
            synth.stats.levels
        );
    }

    #[test]
    fn checksum_changes_with_input() {
        let quiet = gemmini_reference_checksum(3, 4);
        let busy = gemmini_reference_checksum(3, 12);
        assert_ne!(quiet, busy);
    }

    #[test]
    fn scales_with_n() {
        let small = gemmini_like(2);
        let big = gemmini_like(4);
        assert!(big.module.cells().len() > small.module.cells().len() * 2);
    }
}
