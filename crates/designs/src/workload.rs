//! Workload (stimulus) descriptions.
//!
//! A workload is a reproducible input sequence. The same workload can be
//! instantiated as many independent [`Stimulus`] generators as needed, so
//! every simulation engine in a comparison receives identical inputs.

use gem_netlist::Bits;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How the inputs of a design evolve over time.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Each listed port bit toggles randomly with probability `activity`
    /// per cycle; ports not listed are held at fixed values.
    RandomToggle {
        /// Ports driven randomly.
        ports: Vec<String>,
        /// Per-bit toggle probability per cycle (the switching-activity
        /// knob that differentiates event-driven baseline speeds).
        activity: f64,
        /// Ports held constant: (name, value).
        held: Vec<(String, u64)>,
        /// RNG seed.
        seed: u64,
        /// Cycles to run before measurement starts (lets state such as
        /// buffer memories fill with representative data).
        warmup: u64,
    },
    /// CPU-style bootstrap: assert `rst`, stream `program` words through
    /// the host-write port, release reset, then idle the host bus.
    ProgramLoad {
        /// Program memory image (instruction words).
        program: Vec<u16>,
        /// Value driven on the tile-select port during load, if any.
        tile_select: Option<(String, u64)>,
        /// Extra ports held constant for the whole run.
        held: Vec<(String, u64)>,
    },
}

/// A named workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Name (mirrors the paper's test-name column).
    pub name: String,
    /// The stimulus description.
    pub spec: WorkloadSpec,
}

impl Workload {
    /// Instantiates a fresh stimulus generator (cycle counter at 0).
    pub fn stimulus(&self, widths: &dyn Fn(&str) -> u32) -> Stimulus {
        Stimulus {
            spec: self.spec.clone(),
            cycle: 0,
            rng: ChaCha8Rng::seed_from_u64(match &self.spec {
                WorkloadSpec::RandomToggle { seed, .. } => *seed,
                WorkloadSpec::ProgramLoad { .. } => 0,
            }),
            width_of: {
                let mut cache = std::collections::HashMap::new();
                let names: Vec<String> = match &self.spec {
                    WorkloadSpec::RandomToggle { ports, held, .. } => ports
                        .iter()
                        .cloned()
                        .chain(held.iter().map(|(n, _)| n.clone()))
                        .collect(),
                    WorkloadSpec::ProgramLoad {
                        tile_select, held, ..
                    } => ["rst", "host_we", "host_addr", "host_data"]
                        .iter()
                        .map(|s| s.to_string())
                        .chain(tile_select.iter().map(|(n, _)| n.clone()))
                        .chain(held.iter().map(|(n, _)| n.clone()))
                        .collect(),
                };
                for n in names {
                    cache.insert(n.clone(), widths(&n));
                }
                cache
            },
            current: std::collections::HashMap::new(),
        }
    }
}

/// A running stimulus: call [`next`](Self::next) once per cycle.
#[derive(Debug)]
pub struct Stimulus {
    spec: WorkloadSpec,
    cycle: u64,
    rng: ChaCha8Rng,
    width_of: std::collections::HashMap<String, u32>,
    current: std::collections::HashMap<String, Bits>,
}

impl Stimulus {
    /// Inputs to apply for the next cycle.
    pub fn next_inputs(&mut self) -> Vec<(String, Bits)> {
        let cycle = self.cycle;
        self.cycle += 1;
        let mut out = Vec::new();
        match &self.spec {
            WorkloadSpec::RandomToggle {
                ports,
                activity,
                held,
                ..
            } => {
                for (name, v) in held {
                    let w = self.width_of[name];
                    out.push((name.clone(), Bits::from_u64(*v, w)));
                }
                for name in ports {
                    let w = self.width_of[name];
                    let cur = self
                        .current
                        .entry(name.clone())
                        .or_insert_with(|| Bits::zeros(w));
                    let mut nv = cur.clone();
                    for i in 0..w {
                        if self.rng.gen_bool(*activity) {
                            nv.set_bit(i, !nv.bit(i));
                        }
                    }
                    *cur = nv.clone();
                    out.push((name.clone(), nv));
                }
            }
            WorkloadSpec::ProgramLoad {
                program,
                tile_select,
                held,
            } => {
                let loading = (cycle as usize) < program.len();
                let aw = self.width_of["host_addr"];
                let dw = self.width_of["host_data"];
                out.push(("rst".into(), Bits::from_u64(loading as u64, 1)));
                out.push(("host_we".into(), Bits::from_u64(loading as u64, 1)));
                let (addr, data) = if loading {
                    (cycle, program[cycle as usize] as u64)
                } else {
                    (0, 0)
                };
                out.push((
                    "host_addr".into(),
                    Bits::from_u64(addr & ((1 << aw) - 1), aw),
                ));
                out.push(("host_data".into(), Bits::from_u64(data, dw)));
                if let Some((name, v)) = tile_select {
                    let w = self.width_of[name];
                    out.push((name.clone(), Bits::from_u64(*v, w)));
                }
                for (name, v) in held {
                    let w = self.width_of[name];
                    out.push((name.clone(), Bits::from_u64(*v, w)));
                }
            }
        }
        out
    }

    /// Cycles consumed by the bootstrap phase (0 for random workloads);
    /// measurements should start after this point.
    pub fn warmup_cycles(&self) -> u64 {
        match &self.spec {
            WorkloadSpec::RandomToggle { warmup, .. } => *warmup,
            WorkloadSpec::ProgramLoad { program, .. } => program.len() as u64 + 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn widths(name: &str) -> u32 {
        match name {
            "rst" | "host_we" | "en" => 1,
            "host_addr" => 8,
            "host_data" | "bus" => 16,
            _ => 4,
        }
    }

    #[test]
    fn random_toggle_respects_activity_extremes() {
        let quiet = Workload {
            name: "q".into(),
            spec: WorkloadSpec::RandomToggle {
                ports: vec!["bus".into()],
                activity: 0.0,
                held: vec![("en".into(), 1)],
                seed: 1,
                warmup: 0,
            },
        };
        let mut s = quiet.stimulus(&widths);
        let first = s.next_inputs();
        let later = s.next_inputs();
        assert_eq!(first, later, "zero activity never toggles");
        assert!(first.iter().any(|(n, v)| n == "en" && v.to_u64() == 1));
    }

    #[test]
    fn random_toggle_is_reproducible() {
        let w = Workload {
            name: "r".into(),
            spec: WorkloadSpec::RandomToggle {
                ports: vec!["bus".into()],
                activity: 0.5,
                held: vec![],
                seed: 7,
                warmup: 0,
            },
        };
        let mut a = w.stimulus(&widths);
        let mut b = w.stimulus(&widths);
        for _ in 0..20 {
            assert_eq!(a.next_inputs(), b.next_inputs());
        }
    }

    #[test]
    fn program_load_sequences_boot_then_run() {
        let w = Workload {
            name: "p".into(),
            spec: WorkloadSpec::ProgramLoad {
                program: vec![0xAAAA, 0xBBBB],
                tile_select: None,
                held: vec![],
            },
        };
        let mut s = w.stimulus(&widths);
        let c0 = s.next_inputs();
        assert!(c0.iter().any(|(n, v)| n == "host_we" && v.to_u64() == 1));
        assert!(c0
            .iter()
            .any(|(n, v)| n == "host_data" && v.to_u64() == 0xAAAA));
        let c1 = s.next_inputs();
        assert!(c1
            .iter()
            .any(|(n, v)| n == "host_data" && v.to_u64() == 0xBBBB));
        let c2 = s.next_inputs();
        assert!(c2.iter().any(|(n, v)| n == "host_we" && v.to_u64() == 0));
        assert!(c2.iter().any(|(n, v)| n == "rst" && v.to_u64() == 0));
        assert_eq!(s.warmup_cycles(), 4);
    }
}
