//! A MAC-pipeline deep-learning accelerator — the "NVDLA" stand-in.
//!
//! Structure: a host-loadable activation buffer and weight buffer (both
//! *synchronous-read*, so they map onto native GEM RAM blocks — the
//! paper's best case), a scanning address generator, a bank of 8-bit
//! multiply–accumulate lanes, and a 32-bit accumulator tree. Workload
//! names mirror the paper's NVDLA tests; they differ in how busy the host
//! streams data (switching activity).

use crate::workload::{Workload, WorkloadSpec};
use crate::Design;
use gem_netlist::{ModuleBuilder, ReadKind};

/// Builds the accelerator with `lanes` 8-bit MAC lanes (gate count grows
/// roughly linearly in `lanes`).
pub fn nvdla_like(lanes: u32) -> Design {
    let lanes = lanes.clamp(1, 64);
    let mut b = ModuleBuilder::new("nvdla_like");
    let rst = b.input("rst", 1);
    let start = b.input("start", 1);
    let host_we = b.input("host_we", 1);
    let host_sel = b.input("host_sel", 1); // 0 = activations, 1 = weights
    let host_addr = b.input("host_addr", 10);
    let host_data = b.input("host_data", 32);

    let act = b.memory("act_buf", 1024, 32);
    let wgt = b.memory("wgt_buf", 1024, 32);
    let nsel = b.not(host_sel);
    let we_act = b.and(host_we, nsel);
    let we_wgt = b.and(host_we, host_sel);
    b.write_port(act, host_addr, host_data, we_act);
    b.write_port(wgt, host_addr, host_data, we_wgt);

    // Scanning address generator: runs while `start` is held.
    let scan = b.dff(10);
    let one10 = b.lit(1, 10);
    let scan_inc = b.add(scan, one10);
    let scan_run = b.mux(start, scan_inc, scan);
    let zero10 = b.lit(0, 10);
    let scan_n = b.mux(rst, zero10, scan_run);
    b.connect_dff(scan, scan_n);

    let act_word = b.read_port(act, scan, ReadKind::Sync);
    let wgt_word = b.read_port(wgt, scan, ReadKind::Sync);

    // MAC lanes: each lane multiplies a distinct rotated byte pair per
    // cycle (rotation is free wiring but defeats structural hashing, so
    // gate count grows linearly in `lanes`, as in a real lane array).
    let mut products = Vec::new();
    for l in 0..lanes {
        let r = l % 32;
        let a_rot = if r == 0 {
            act_word
        } else {
            let hi = b.slice(act_word, r, 32 - r);
            let lo = b.slice(act_word, 0, r);
            b.concat(&[hi, lo])
        };
        let wr = (l * 7 + 3) % 32;
        let w_rot = if wr == 0 {
            wgt_word
        } else {
            let hi = b.slice(wgt_word, wr, 32 - wr);
            let lo = b.slice(wgt_word, 0, wr);
            b.concat(&[hi, lo])
        };
        let a8 = b.slice(a_rot, 0, 8);
        let w8 = b.slice(w_rot, 0, 8);
        let a16 = b.resize(a8, 16);
        let w16 = b.resize(w8, 16);
        let p = b.mul(a16, w16);
        products.push(b.resize(p, 32));
    }
    // Per-lane accumulators (as in a real MAC cell array), folded into a
    // checksum output.
    let zero32 = b.lit(0, 32);
    let mut fold = zero32;
    for p in &products {
        let acc = b.dff(32);
        let acc_add = b.add(acc, *p);
        let acc_run = b.mux(start, acc_add, acc);
        let acc_n = b.mux(rst, zero32, acc_run);
        b.connect_dff(acc, acc_n);
        fold = b.xor(fold, acc);
    }
    b.output("acc", fold);
    b.output("scan", scan);
    let module = b.finish().expect("nvdla_like is a valid module");

    // Workloads: the paper's five NVDLA tests, modeled as host streams of
    // decreasing burstiness (activity).
    let mk = |name: &str, activity: f64, seed: u64| Workload {
        name: name.into(),
        spec: WorkloadSpec::RandomToggle {
            ports: vec!["host_addr".into(), "host_data".into(), "host_sel".into()],
            activity,
            held: vec![
                ("rst".into(), 0),
                ("start".into(), 1),
                ("host_we".into(), 1),
            ],
            seed,
            // Fill the 1024-word buffers with representative data before
            // measurement so the MAC array sees live operands.
            warmup: 1500,
        },
    };
    let workloads = vec![
        mk("dc6x3x76x270_int8_0", 0.45, 11),
        mk("dc6x3x76x16_int8_0", 0.35, 12),
        mk("img_51x96x4int8_0", 0.25, 13),
        mk("cdp_8x8x32_lrn3_int8_2", 0.12, 14),
        mk("pdpmax_int8_0", 0.06, 15),
    ];
    Design {
        name: "NVDLA".into(),
        module,
        workloads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_netlist::Bits;
    use gem_sim::NetlistSim;

    #[test]
    fn all_memories_are_sync_read() {
        let d = nvdla_like(8);
        for m in d.module.memories() {
            assert!(
                m.read_ports
                    .iter()
                    .all(|p| p.kind == gem_netlist::ReadKind::Sync),
                "memory {} has async read",
                m.name
            );
        }
    }

    #[test]
    fn accumulates_products() {
        let d = nvdla_like(4);
        let mut sim = NetlistSim::new(&d.module);
        // Preload act[0]=3 per byte, wgt[0]=2 per byte, then run.
        sim.set_mem_word(0, 0, Bits::from_u64(0x03030303, 32));
        sim.set_mem_word(1, 0, Bits::from_u64(0x02020202, 32));
        sim.set_input("rst", Bits::from_u64(0, 1));
        sim.set_input("start", Bits::from_u64(1, 1));
        sim.set_input("host_we", Bits::from_u64(0, 1));
        sim.set_input("host_sel", Bits::from_u64(0, 1));
        sim.set_input("host_addr", Bits::from_u64(0, 10));
        sim.set_input("host_data", Bits::from_u64(0, 32));
        let mut last = 0;
        for _ in 0..4 {
            sim.eval();
            last = sim.output("acc").to_u64();
            sim.step();
        }
        // After a few cycles the accumulator has picked up 4 lanes × 3×2
        // at least once (scan wraps through address 0 data).
        assert!(last >= 24, "acc {last}");
    }

    #[test]
    fn five_workloads_with_distinct_activity() {
        let d = nvdla_like(8);
        assert_eq!(d.workloads.len(), 5);
        let names: Vec<&str> = d.workloads.iter().map(|w| w.name.as_str()).collect();
        assert!(names.contains(&"dc6x3x76x270_int8_0"));
    }
}
