//! A multi-tile CPU design — the "OpenPiton" stand-in.
//!
//! `n` copies of the tiny CPU tile (see [`crate::cpu`]) share a host bus;
//! a tile-select field steers program loads, and a thin XOR ring couples
//! the tiles' result registers. At `n = 8` with a workload that only
//! loads tile 0, the other seven tiles spin on empty (all-zero = NOP)
//! instruction memories — exactly the low-activity regime the paper
//! observes: "the workload of OpenPiton8 does not keep all 8 cores busy",
//! where event-driven baselines catch up with GEM's constant full-cycle
//! speed.

use crate::cpu::{build_tile, program};
use crate::workload::{Workload, WorkloadSpec};
use crate::Design;
use gem_netlist::ModuleBuilder;

/// Builds an `n`-tile design (`n` in 1..=8; the paper evaluates 1 and 8).
pub fn openpiton_like(n: u32) -> Design {
    let n = n.clamp(1, 8);
    let mut b = ModuleBuilder::new("openpiton_like");
    let rst = b.input("rst", 1);
    let host_we = b.input("host_we", 1);
    let host_addr = b.input("host_addr", 8);
    let host_data = b.input("host_data", 16);
    let tile_sel = b.input("tile_sel", 3);

    let mut results = Vec::new();
    for t in 0..n {
        let tc = b.lit(u64::from(t), 3);
        let hit = b.eq(tile_sel, tc);
        let tile = build_tile(&mut b, rst, host_we, host_addr, host_data, hit);
        if t == 0 {
            b.output("pc0", tile.pc);
        }
        results.push(tile.result);
    }
    // Thin interconnect: XOR ring over the tile results.
    let mut noc = results[0];
    for r in &results[1..] {
        noc = b.xor(noc, *r);
    }
    b.output("noc", noc);
    b.output("result0", results[0]);
    let module = b.finish().expect("openpiton_like is a valid module");

    // Workloads mirror the paper's OpenPiton tests. Only tile 0 is
    // loaded; with n = 8 the remaining tiles idle on NOPs, which is why
    // the measured events/cycle grow far less than 8× (the paper reports
    // 3.3×).
    let mk = |name: &str, prog_name: &str| Workload {
        name: name.into(),
        spec: WorkloadSpec::ProgramLoad {
            program: program(prog_name),
            tile_select: Some(("tile_sel".into(), 0)),
            held: vec![],
        },
    };
    let workloads = vec![
        mk("ldst_quad2", "mt-memcpy"),
        mk("fp_mt_combo0", "dhrystone"),
        mk("asi_notused_priv", "pmp"),
    ];
    Design {
        name: if n == 1 {
            "OpenPiton1".into()
        } else {
            format!("OpenPiton{n}")
        },
        module,
        workloads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_netlist::Bits;
    use gem_sim::NetlistSim;

    #[test]
    fn tile_counts_scale() {
        let one = openpiton_like(1);
        let eight = openpiton_like(8);
        assert_eq!(one.module.memories().len(), 3);
        assert_eq!(eight.module.memories().len(), 24);
        assert!(eight.module.cells().len() > one.module.cells().len() * 6);
    }

    #[test]
    fn loaded_tile_computes_while_others_idle() {
        let d = openpiton_like(2);
        let mut sim = NetlistSim::new(&d.module);
        let prog = program("dhrystone");
        for (i, &w) in prog.iter().enumerate() {
            sim.set_input("rst", Bits::from_u64(1, 1));
            sim.set_input("host_we", Bits::from_u64(1, 1));
            sim.set_input("tile_sel", Bits::from_u64(0, 3));
            sim.set_input("host_addr", Bits::from_u64(i as u64, 8));
            sim.set_input("host_data", Bits::from_u64(u64::from(w), 16));
            sim.eval();
            sim.step();
        }
        sim.set_input("rst", Bits::from_u64(0, 1));
        sim.set_input("host_we", Bits::from_u64(0, 1));
        for _ in 0..100 {
            sim.eval();
            sim.step();
        }
        sim.eval();
        // Tile 0 ran the program: its r7 is live, so noc == result0 (tile
        // 1 idles with r7 = 0).
        let r0 = sim.output("result0");
        let noc = sim.output("noc");
        assert_ne!(r0.to_u64(), 0, "loaded tile should produce a result");
        assert_eq!(noc, r0, "idle tile must contribute zero");
    }

    #[test]
    fn workload_names_match_paper() {
        let d = openpiton_like(8);
        let names: Vec<&str> = d.workloads.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, ["ldst_quad2", "fp_mt_combo0", "asi_notused_priv"]);
    }
}
