//! A tiny multi-cycle CPU — the "RocketChip" stand-in.
//!
//! 16-bit datapath, 8 registers, 256-word instruction and data memories.
//! The register file uses *asynchronous* read ports, so synthesis must
//! polyfill it with flip-flops and decoders — the exact inefficiency the
//! paper reports for RocketChip-class designs ("RAMs with asynchronous
//! read ports ... can only be implemented inefficiently"). Instruction and
//! data memories are synchronous-read and map to native RAM blocks.
//!
//! Execution is a fixed 3-phase loop (fetch → execute → writeback), so
//! CPI is exactly 3 and synchronous-RAM latencies line up without hazard
//! logic. Programs are streamed in through a host write port while reset
//! is held (see [`crate::WorkloadSpec::ProgramLoad`]).

use crate::workload::{Workload, WorkloadSpec};
use crate::Design;
use gem_netlist::{Bits, ModuleBuilder, NetId, ReadKind};

/// One instruction of the tile ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Insn {
    Nop,
    Add(u8, u8, u8),
    Xor(u8, u8, u8),
    And(u8, u8, u8),
    Or(u8, u8, u8),
    Addi(u8, u8, u8),
    Sub(u8, u8, u8),
    Lw(u8, u8),
    Sw(u8, u8),
    Beq(u8, u8, u8),
    Bne(u8, u8, u8),
    Jmp(u8),
    Lui(u8, u8),
    Li(u8, u8),
    Sll(u8, u8, u8),
    Srl(u8, u8, u8),
}

/// Assembles instructions into 16-bit words.
pub fn assemble(insns: &[Insn]) -> Vec<u16> {
    insns
        .iter()
        .map(|i| {
            let r3 = |op: u16, rd: u8, rs1: u8, rs2: u8, imm: u8| {
                op << 12
                    | u16::from(rd & 7) << 9
                    | u16::from(rs1 & 7) << 6
                    | u16::from(rs2 & 7) << 3
                    | u16::from(imm & 7)
            };
            let i8f = |op: u16, rd: u8, imm: u8| {
                op << 12 | u16::from(rd & 7) << 9 | u16::from(imm) << 1 & 0x1FE
            };
            match *i {
                Insn::Nop => 0,
                Insn::Add(rd, a, b) => r3(1, rd, a, b, 0),
                Insn::Xor(rd, a, b) => r3(2, rd, a, b, 0),
                Insn::And(rd, a, b) => r3(3, rd, a, b, 0),
                Insn::Or(rd, a, b) => r3(4, rd, a, b, 0),
                Insn::Addi(rd, a, imm) => r3(5, rd, a, 0, imm),
                Insn::Sub(rd, a, b) => r3(6, rd, a, b, 0),
                Insn::Lw(rd, a) => r3(7, rd, a, 0, 0),
                Insn::Sw(a, v) => r3(8, 0, a, v, 0),
                Insn::Beq(a, b, off) => r3(9, 0, a, b, off),
                Insn::Bne(a, b, off) => r3(10, 0, a, b, off),
                Insn::Jmp(t) => i8f(11, 0, t),
                Insn::Lui(rd, imm) => i8f(12, rd, imm),
                Insn::Li(rd, imm) => i8f(13, rd, imm),
                Insn::Sll(rd, a, imm) => r3(14, rd, a, 0, imm),
                Insn::Srl(rd, a, imm) => r3(15, rd, a, 0, imm),
            }
        })
        .collect()
}

/// Signals a tile exposes to the surrounding design.
pub(crate) struct TileOutputs {
    /// The tile's result register (r7), for interconnect/observation.
    pub result: NetId,
    /// Current program counter.
    pub pc: NetId,
}

/// Builds one CPU tile inside `b`. The host bus writes the instruction
/// memory when `host_we & tile_hit` is asserted.
pub(crate) fn build_tile(
    b: &mut ModuleBuilder,
    rst: NetId,
    host_we: NetId,
    host_addr: NetId,
    host_data: NetId,
    tile_hit: NetId,
) -> TileOutputs {
    let imem = b.memory("imem", 256, 16);
    let dmem = b.memory("dmem", 256, 16);
    let regs = b.memory("regs", 8, 16);

    // Host loads the instruction memory.
    let host_tile_we = b.and(host_we, tile_hit);
    b.write_port(imem, host_addr, host_data, host_tile_we);

    // Architectural state.
    let pc = b.dff(8);
    let phase = b.dff(2); // 0 fetch, 1 execute, 2 writeback
    let instr_reg = b.dff(16);

    let phase_is = |b: &mut ModuleBuilder, v: u64| {
        let c = b.lit(v, 2);
        b.eq(phase, c)
    };
    let in_exec = phase_is(b, 1);
    let in_wb = phase_is(b, 2);

    // Fetch: present pc to imem; data arrives during execute.
    let instr = b.read_port(imem, pc, ReadKind::Sync);

    // Decode (execute phase uses `instr`, writeback uses `instr_reg`).
    let op = b.slice(instr, 12, 4);
    let rd = b.slice(instr, 9, 3);
    let rs1 = b.slice(instr, 6, 3);
    let rs2 = b.slice(instr, 3, 3);
    let imm3 = b.slice(instr, 0, 3);
    let imm8 = b.slice(instr, 1, 8);

    // Register file: two asynchronous read ports (the polyfill trigger).
    let rs1v = b.read_port(regs, rs1, ReadKind::Async);
    let rs2v = b.read_port(regs, rs2, ReadKind::Async);

    // ALU.
    let imm3x = b.resize(imm3, 16);
    let imm8x = b.resize(imm8, 16);
    let add = b.add(rs1v, rs2v);
    let xor = b.xor(rs1v, rs2v);
    let and = b.and(rs1v, rs2v);
    let or = b.or(rs1v, rs2v);
    let addi = b.add(rs1v, imm3x);
    let sub = b.sub(rs1v, rs2v);
    let eight = b.lit(8, 16);
    let lui = b.shl(imm8x, eight);
    let sll = b.shl(rs1v, imm3x);
    let srl = b.lshr(rs1v, imm3x);

    // ALU result mux by opcode.
    let mut alu = b.lit(0, 16);
    for (code, val) in [
        (1u64, add),
        (2, xor),
        (3, and),
        (4, or),
        (5, addi),
        (6, sub),
        (12, lui),
        (13, imm8x),
        (14, sll),
        (15, srl),
    ] {
        let c = b.lit(code, 4);
        let hit = b.eq(op, c);
        alu = b.mux(hit, val, alu);
    }
    let writes_alu = {
        // opcodes with a register result (not lw, handled in writeback).
        let mut any = b.lit(0, 1);
        for code in [1u64, 2, 3, 4, 5, 6, 12, 13, 14, 15] {
            let c = b.lit(code, 4);
            let hit = b.eq(op, c);
            any = b.or(any, hit);
        }
        any
    };

    // Data memory: read issued in execute (addr = rs1v), data consumed in
    // writeback; write performed in execute for sw.
    let daddr = b.slice(rs1v, 0, 8);
    let dval = b.read_port(dmem, daddr, ReadKind::Sync);
    let op_sw = {
        let c = b.lit(8, 4);
        b.eq(op, c)
    };
    let not_rst = b.not(rst);
    let do_store0 = b.and(in_exec, op_sw);
    let do_store = b.and(do_store0, not_rst);
    b.write_port(dmem, daddr, rs2v, do_store);

    // Register writes: ALU result in execute, load data in writeback.
    let we_alu0 = b.and(in_exec, writes_alu);
    let we_alu = b.and(we_alu0, not_rst);
    b.write_port(regs, rd, alu, we_alu);
    let wb_op = b.slice(instr_reg, 12, 4);
    let wb_rd = b.slice(instr_reg, 9, 3);
    let op_lw_wb = {
        let c = b.lit(7, 4);
        b.eq(wb_op, c)
    };
    let we_lw0 = b.and(in_wb, op_lw_wb);
    let we_lw = b.and(we_lw0, not_rst);
    b.write_port(regs, wb_rd, dval, we_lw);

    // Next PC (computed in execute).
    let one8 = b.lit(1, 8);
    let pc_plus1 = b.add(pc, one8);
    let imm3_8 = b.resize(imm3, 8);
    let taken_target0 = b.add(pc_plus1, imm3_8);
    let eq_regs = b.eq(rs1v, rs2v);
    let op_beq = {
        let c = b.lit(9, 4);
        b.eq(op, c)
    };
    let op_bne = {
        let c = b.lit(10, 4);
        b.eq(op, c)
    };
    let op_jmp = {
        let c = b.lit(11, 4);
        b.eq(op, c)
    };
    let neq = b.not(eq_regs);
    let beq_taken = b.and(op_beq, eq_regs);
    let bne_taken = b.and(op_bne, neq);
    let branch_taken = b.or(beq_taken, bne_taken);
    let mut pc_next = b.mux(branch_taken, taken_target0, pc_plus1);
    let imm8_8 = b.resize(imm8, 8);
    pc_next = b.mux(op_jmp, imm8_8, pc_next);

    // Sequential updates.
    let zero8 = b.lit(0, 8);
    let pc_exec = b.mux(in_exec, pc_next, pc);
    let pc_n = b.mux(rst, zero8, pc_exec);
    b.connect_dff(pc, pc_n);

    let zero2 = b.lit(0, 2);
    let two2 = b.lit(2, 2);
    let one2 = b.lit(1, 2);
    let phase_wrap = b.eq(phase, two2);
    let phase_inc = b.add(phase, one2);
    let phase_adv = b.mux(phase_wrap, zero2, phase_inc);
    let phase_n = b.mux(rst, zero2, phase_adv);
    b.connect_dff(phase, phase_n);

    let instr_latch = b.mux(in_exec, instr, instr_reg);
    b.connect_dff(instr_reg, instr_latch);

    // Vector MAC unit ("FPU"): 16 lanes multiply rotated slices of the
    // load data with r6 and accumulate — the per-tile floating-point-ish
    // datapath that gives OpenPiton-class tiles their gate count (the
    // paper's OpenPiton workloads include fp_mt_combo0).
    let six = b.lit(6, 3);
    let r6v = b.read_port(regs, six, ReadKind::Async);
    let vacc = b.dff(32);
    let mut vsum = b.lit(0, 32);
    for lane in 0..16u32 {
        let r = (lane * 3) % 16;
        let d_rot = if r == 0 {
            dval
        } else {
            let hi = b.slice(dval, r, 16 - r);
            let lo = b.slice(dval, 0, r);
            b.concat(&[hi, lo])
        };
        let a = b.slice(d_rot, 0, 8);
        let w = b.slice(r6v, (lane % 2) * 8, 8);
        let a16 = b.resize(a, 16);
        let w16 = b.resize(w, 16);
        let p = b.mul(a16, w16);
        let p32 = b.resize(p, 32);
        vsum = b.add(vsum, p32);
    }
    let vacc_add = b.add(vacc, vsum);
    let vacc_en = b.mux(in_wb, vacc_add, vacc);
    let zero32 = b.lit(0, 32);
    let vacc_n = b.mux(rst, zero32, vacc_en);
    b.connect_dff(vacc, vacc_n);

    // r7 as observable result, mixed with the vector accumulator so the
    // MAC unit is live logic.
    let seven = b.lit(7, 3);
    let r7v = b.read_port(regs, seven, ReadKind::Async);
    let vlow = b.slice(vacc, 0, 16);
    let result = b.xor(r7v, vlow);

    TileOutputs { result, pc }
}

/// Builds the standalone CPU design with its four workloads.
pub fn rocket_like() -> Design {
    let mut b = ModuleBuilder::new("rocket_like");
    let rst = b.input("rst", 1);
    let host_we = b.input("host_we", 1);
    let host_addr = b.input("host_addr", 8);
    let host_data = b.input("host_data", 16);
    let hit = b.lit(1, 1);
    let tile = build_tile(&mut b, rst, host_we, host_addr, host_data, hit);
    b.output("pc", tile.pc);
    b.output("result", tile.result);
    let module = b.finish().expect("rocket_like is a valid module");

    let workloads = ["dhrystone", "mt-memcpy", "pmp", "qsort", "spmv"]
        .iter()
        .map(|name| Workload {
            name: (*name).to_string(),
            spec: WorkloadSpec::ProgramLoad {
                program: program(name),
                tile_select: None,
                held: vec![],
            },
        })
        .collect();
    Design {
        name: "RocketChip".into(),
        module,
        workloads,
    }
}

/// Canned programs named after the paper's RocketChip tests. Each has a
/// distinct mix of arithmetic, memory and branch behaviour (and hence a
/// distinct switching activity).
pub fn program(name: &str) -> Vec<u16> {
    use Insn::*;
    let insns: Vec<Insn> = match name {
        // Arithmetic-heavy loop.
        "dhrystone" => vec![
            Li(1, 1),
            Li(2, 0),
            Li(3, 37),
            // loop at 3:
            Add(2, 2, 3),
            Xor(3, 3, 2),
            Sub(4, 2, 1),
            Or(7, 2, 3),
            Jmp(3),
        ],
        // Load/store copy loop.
        "mt-memcpy" => vec![
            Li(1, 0),  // src
            Li(2, 64), // dst
            Li(3, 1),
            // loop at 3:
            Lw(4, 1),
            Sw(2, 4),
            Add(1, 1, 3),
            Add(2, 2, 3),
            Add(7, 7, 3),
            Jmp(3),
        ],
        // Branch-heavy compare chains.
        "qsort" => vec![
            Li(1, 5),
            Li(2, 9),
            Li(3, 1),
            // loop at 3:
            Bne(1, 2, 1),
            Xor(7, 1, 2),
            Sub(2, 2, 3),
            Beq(2, 4, 1),
            Add(1, 1, 3),
            Jmp(3),
        ],
        // Mixed arithmetic + memory.
        "spmv" => vec![
            Li(1, 0),
            Li(3, 1),
            // loop at 2:
            Lw(4, 1),
            Add(5, 5, 4),
            Sll(6, 5, 1),
            Sw(1, 6),
            Add(1, 1, 3),
            Add(7, 5, 6),
            Jmp(2),
        ],
        // Low activity: spin on a nop loop ("pmp"-like idle).
        _ => vec![Nop, Nop, Jmp(0)],
    };
    assemble(&insns)
}

/// Runs a program to completion-ish on the netlist reference simulator and
/// returns the final r7 (used by tests to pin ISA semantics).
pub fn reference_run(program_words: &[u16], cycles: u64) -> Bits {
    let design = rocket_like();
    let mut sim = gem_sim::NetlistSim::new(&design.module);
    // Load.
    for (i, &w) in program_words.iter().enumerate() {
        sim.set_input("rst", Bits::from_u64(1, 1));
        sim.set_input("host_we", Bits::from_u64(1, 1));
        sim.set_input("host_addr", Bits::from_u64(i as u64, 8));
        sim.set_input("host_data", Bits::from_u64(w as u64, 16));
        sim.eval();
        sim.step();
    }
    sim.set_input("rst", Bits::from_u64(0, 1));
    sim.set_input("host_we", Bits::from_u64(0, 1));
    for _ in 0..cycles {
        sim.eval();
        sim.step();
    }
    sim.eval();
    sim.output("result")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembler_packs_fields() {
        let w = assemble(&[Insn::Add(7, 1, 2)])[0];
        assert_eq!(w >> 12, 1);
        assert_eq!((w >> 9) & 7, 7);
        assert_eq!((w >> 6) & 7, 1);
        assert_eq!((w >> 3) & 7, 2);
        let j = assemble(&[Insn::Jmp(0x42)])[0];
        assert_eq!(j >> 12, 11);
        assert_eq!((j >> 1) & 0xFF, 0x42);
    }

    #[test]
    fn cpu_executes_li_and_add() {
        use Insn::*;
        let prog = assemble(&[Li(1, 20), Li(2, 22), Add(7, 1, 2), Jmp(3)]);
        // 4 instructions × 3 phases plus slack.
        let r7 = reference_run(&prog, 30);
        assert_eq!(r7.to_u64(), 42);
    }

    #[test]
    fn cpu_load_store_round_trip() {
        use Insn::*;
        let prog = assemble(&[
            Li(1, 7),  // address
            Li(2, 99), // value
            Sw(1, 2),  // dmem[7] = 99
            Lw(7, 1),  // r7 = dmem[7]
            Jmp(4),
        ]);
        let r7 = reference_run(&prog, 40);
        assert_eq!(r7.to_u64(), 99);
    }

    #[test]
    fn cpu_branches() {
        use Insn::*;
        let prog = assemble(&[
            Li(1, 3),
            Li(2, 3),
            Beq(1, 2, 1), // taken: skip the Li(7, 1)
            Li(7, 1),
            Li(7, 5),
            Jmp(5),
        ]);
        let r7 = reference_run(&prog, 40);
        assert_eq!(r7.to_u64(), 5);
    }

    #[test]
    fn workload_programs_assemble() {
        for name in ["dhrystone", "mt-memcpy", "pmp", "qsort", "spmv"] {
            assert!(!program(name).is_empty());
        }
    }

    #[test]
    fn regfile_is_async_and_memories_sync() {
        let d = rocket_like();
        let regs = d
            .module
            .memories()
            .iter()
            .find(|m| m.name == "regs")
            .expect("regfile");
        assert!(regs
            .read_ports
            .iter()
            .all(|p| p.kind == gem_netlist::ReadKind::Async));
        let imem = d
            .module
            .memories()
            .iter()
            .find(|m| m.name == "imem")
            .expect("imem");
        assert!(imem
            .read_ports
            .iter()
            .all(|p| p.kind == gem_netlist::ReadKind::Sync));
    }
}
