//! Synthetic benchmark designs standing in for the paper's evaluation
//! suite (Table I/II: NVDLA, RocketChip, Gemmini, OpenPiton1/8).
//!
//! The original designs require Chisel/Chipyard toolchains and enormous
//! Verilog trees; these generators build parameterized circuits that
//! exercise the same structural features the paper attributes to each
//! (see DESIGN.md §3, substitution 3):
//!
//! * [`nvdla_like`] — a MAC-pipeline accelerator whose buffers are all
//!   *synchronous-read* RAMs, so every memory maps onto native GEM RAM
//!   blocks (the paper's best case: "all RAMs inside it are mapped to
//!   E-AIG RAM blocks").
//! * [`rocket_like`] — a multi-cycle 16-bit CPU with an
//!   *asynchronous-read* register file, exercising the FF + decoder
//!   polyfill path the paper calls out for the other four designs.
//! * [`gemmini_like`] — an N×N weight-stationary systolic array: the
//!   deepest logic (multiply–accumulate chains), driving the most
//!   boomerang layers.
//! * [`openpiton_like`] — N replicated CPU tiles plus a thin interconnect;
//!   at N=8 most tiles idle under single-tile workloads, reproducing the
//!   low-activity regime where event-driven baselines shine.
//!
//! Designs come with named [`Workload`]s of deliberately different
//! switching activity, so event-driven baselines show the paper's
//! per-test speed variation while GEM's full-cycle speed stays constant.

pub mod cpu;
pub mod gemmini;
pub mod nvdla;
pub mod openpiton;
pub mod workload;

pub use cpu::rocket_like;
pub use gemmini::gemmini_like;
pub use nvdla::nvdla_like;
pub use openpiton::openpiton_like;
pub use workload::{Stimulus, Workload, WorkloadSpec};

use gem_netlist::Module;

/// A benchmark design: a module plus its named workloads.
#[derive(Debug)]
pub struct Design {
    /// Short name (Table I/II row label).
    pub name: String,
    /// The RTL.
    pub module: Module,
    /// Named stimuli.
    pub workloads: Vec<Workload>,
}

impl Design {
    /// Looks up a workload by name.
    pub fn workload(&self, name: &str) -> Option<&Workload> {
        self.workloads.iter().find(|w| w.name == name)
    }
}

/// The five evaluation designs at a given scale factor. Scale 1 is the
/// default harness scale (design sizes ≈ 1/15 of the paper's, with the
/// same relative proportions); scale 0 is a tiny smoke-test suite.
pub fn all_designs(scale: u32) -> Vec<Design> {
    if scale == 0 {
        return vec![
            nvdla_like(4),
            rocket_like(),
            gemmini_like(3),
            openpiton_like(1),
            openpiton_like(2),
        ];
    }
    vec![
        nvdla_like(48 * scale),
        rocket_like(),
        gemmini_like(12 * scale),
        openpiton_like(1),
        openpiton_like(8),
    ]
}
