//! Property tests for the wire framing codec: randomized round-trips
//! and the exact 16 MiB cap edge.
//!
//! Fixed-seed loops per the workspace convention (no external RNG): a
//! SplitMix64 stream drives a random JSON document generator, and every
//! document must survive `write_frame` → `read_frame` bit-exactly —
//! including through a reader that trickles one byte at a time, and
//! under every possible truncation point.

use gem_telemetry::{read_frame, write_frame, FrameError, Json, DEFAULT_MAX_FRAME};
use std::io::Read;

struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Random JSON document. Depth-bounded; exercises every variant except
/// `F64` (float formatting is not round-trip exact by design, so float
/// equality is out of scope for the *framing* property).
fn random_json(g: &mut Gen, depth: u32) -> Json {
    let scalar_only = depth == 0;
    match g.below(if scalar_only { 5 } else { 7 }) {
        0 => Json::Null,
        1 => Json::Bool(g.next() & 1 == 1),
        2 => Json::U64(g.next()),
        3 => Json::I64(-((g.next() >> 1) as i64)),
        4 => Json::Str(random_string(g)),
        5 => Json::Array((0..g.below(5)).map(|_| random_json(g, depth - 1)).collect()),
        _ => Json::Object(
            (0..g.below(5))
                .map(|i| (format!("k{i}_{}", g.below(100)), random_json(g, depth - 1)))
                .collect(),
        ),
    }
}

/// Strings with the characters that stress the escaper: quotes,
/// backslashes, control characters, multi-byte UTF-8.
fn random_string(g: &mut Gen) -> String {
    const ALPHABET: &[&str] = &[
        "a", "Z", "9", "\"", "\\", "\n", "\t", "\u{1}", "é", "😀", "∀",
    ];
    (0..g.below(24))
        .map(|_| ALPHABET[g.below(ALPHABET.len() as u64) as usize])
        .collect()
}

/// A reader that returns at most `chunk` bytes per `read` call —
/// simulates a dribbling TCP stream.
struct Trickle<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for Trickle<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.chunk).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn random_documents_round_trip() {
    let mut g = Gen(0xF4A3);
    for case in 0..300 {
        let doc = random_json(&mut g, 3);
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc, DEFAULT_MAX_FRAME).expect("writes");
        let back = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME)
            .unwrap_or_else(|e| panic!("case {case}: read failed: {e}\ndoc: {doc:?}"));
        assert_eq!(back, doc, "case {case} did not round-trip");
    }
}

#[test]
fn round_trip_survives_trickling_reads() {
    let mut g = Gen(0xBEEF);
    for case in 0..60 {
        let doc = random_json(&mut g, 2);
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc, DEFAULT_MAX_FRAME).expect("writes");
        for chunk in [1, 2, 3, 7] {
            let mut r = Trickle {
                data: &buf,
                pos: 0,
                chunk,
            };
            let back = read_frame(&mut r, DEFAULT_MAX_FRAME)
                .unwrap_or_else(|e| panic!("case {case} chunk {chunk}: {e}"));
            assert_eq!(back, doc, "case {case} chunk {chunk}");
        }
    }
}

#[test]
fn every_truncation_point_reports_cleanly() {
    // Cutting a valid frame at any byte must yield Closed (cut at 0) or
    // Truncated (anywhere else) — never a panic, hang, or parse success.
    let doc = Json::Str("truncate me — ✂".to_string());
    let mut buf = Vec::new();
    write_frame(&mut buf, &doc, DEFAULT_MAX_FRAME).expect("writes");
    for cut in 0..buf.len() {
        match read_frame(&mut &buf[..cut], DEFAULT_MAX_FRAME) {
            Err(FrameError::Closed) => assert_eq!(cut, 0, "Closed only at a frame boundary"),
            Err(FrameError::Truncated { expected, got }) => {
                assert!(
                    got < expected,
                    "cut {cut}: got {got} >= expected {expected}"
                );
            }
            other => panic!("cut {cut}: unexpected result {other:?}"),
        }
    }
}

/// A string of `n` ASCII bytes serializes to a payload of exactly
/// `n + 2` bytes (the quotes) — the knob for hitting the cap edge.
fn doc_with_payload_len(payload_len: usize) -> Json {
    Json::Str("a".repeat(payload_len - 2))
}

#[test]
fn exact_cap_boundary_accepted_cap_plus_one_rejected() {
    // Write side, exactly at the 16 MiB default cap: accepted.
    let exact = doc_with_payload_len(DEFAULT_MAX_FRAME);
    let mut buf = Vec::new();
    write_frame(&mut buf, &exact, DEFAULT_MAX_FRAME).expect("exact-boundary frame must write");
    assert_eq!(buf.len(), 4 + DEFAULT_MAX_FRAME);
    // Read side, exactly at the cap: accepted and intact.
    let back =
        read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME).expect("exact-boundary frame must read");
    assert_eq!(back, exact);

    // Write side, one byte over: typed rejection, nothing written.
    let over = doc_with_payload_len(DEFAULT_MAX_FRAME + 1);
    let mut out = Vec::new();
    match write_frame(&mut out, &over, DEFAULT_MAX_FRAME) {
        Err(FrameError::TooLarge { len, max }) => {
            assert_eq!(len, DEFAULT_MAX_FRAME + 1);
            assert_eq!(max, DEFAULT_MAX_FRAME);
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
    assert!(out.is_empty(), "rejected frame must not leak bytes");

    // Read side, header declaring cap+1: typed rejection before any
    // payload allocation (no payload bytes follow, yet the error is
    // TooLarge, not Truncated — the limit check comes first).
    let mut hdr = Vec::new();
    hdr.extend_from_slice(&((DEFAULT_MAX_FRAME + 1) as u32).to_le_bytes());
    match read_frame(&mut hdr.as_slice(), DEFAULT_MAX_FRAME) {
        Err(FrameError::TooLarge { len, max }) => {
            assert_eq!(len, DEFAULT_MAX_FRAME + 1);
            assert_eq!(max, DEFAULT_MAX_FRAME);
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }

    // A reader with a *smaller* limit than the writer's rejects the
    // same bytes the larger limit accepted (asymmetric peers).
    match read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME - 1) {
        Err(FrameError::TooLarge { len, max }) => {
            assert_eq!(len, DEFAULT_MAX_FRAME);
            assert_eq!(max, DEFAULT_MAX_FRAME - 1);
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
}
