//! Telemetry for the GEM-RS workspace: structured tracing, compile-flow
//! reports, and runtime metrics.
//!
//! The build environment is sealed (no crates.io), so this crate provides
//! a self-contained facade in the spirit of `tracing` +
//! `tracing-subscriber` plus the serialization the workspace needs:
//!
//! * [`trace`] — leveled events ([`error!`](crate::error) …
//!   [`trace!`](crate::trace)) and timed [`Span`]s dispatched to a global
//!   [`Subscriber`]. The default subscriber prints to **stderr**, filtered
//!   by the `GEM_LOG` environment variable (`error|warn|info|debug|trace`,
//!   default `warn`), keeping stdout clean for CLI output.
//! * [`span`] — structured span timelines: begin/end/complete/instant
//!   events with thread ids, parent spans, and request correlation ids,
//!   collected per thread and exported as Chrome-trace/Perfetto JSON
//!   (`gem … --trace-out trace.json`).
//! * [`flow`] — [`FlowRecorder`] builds a [`FlowReport`]: one record per
//!   compiler stage with wall time and size metrics (the machine-readable
//!   form of Table I's per-design statistics).
//! * [`metrics`] — [`MetricsSnapshot`] is a label-oriented counter/gauge
//!   snapshot (per-partition, per-layer virtual-GPU counters) with JSON
//!   and Prometheus-text exporters behind the [`MetricsSink`] trait.
//! * [`json`] — the minimal JSON value, parser, and [`json!`](crate::json)
//!   macro everything above serializes through.
//! * [`wire`] — length-prefixed JSON framing with typed errors (frame
//!   size limits, truncation detection) for socket transports such as
//!   `gem-server`.
//!
//! See `docs/OBSERVABILITY.md` for the span hierarchy and metric names.

pub mod flow;
pub mod json;
pub mod metrics;
pub mod span;
pub mod trace;
pub mod wire;

pub use flow::{FlowRecorder, FlowReport, StageGuard, StageRecord};
pub use json::{parse as parse_json, Json, JsonError};
pub use metrics::{
    CollectSink, Histogram, JsonLinesSink, MetricFamily, MetricKind, MetricsSink, MetricsSnapshot,
    PrometheusTextSink, Sample,
};
pub use span::{validate_chrome_trace, SpanGuard, TraceCollector, TraceEvent, TraceSummary};
pub use trace::{
    dispatch_event, set_subscriber, CaptureSubscriber, EventRecord, Level, Span, SpanRecord,
    StderrSubscriber, Subscriber,
};
pub use wire::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
