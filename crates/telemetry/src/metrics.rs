//! Label-oriented runtime metrics: snapshots, sinks, and exporters.
//!
//! A [`MetricsSnapshot`] is a point-in-time set of metric families, each a
//! list of labeled samples — the shape both the JSON exporter and the
//! Prometheus text exposition understand natively. The virtual GPU
//! converts its per-partition/per-layer counters into this form;
//! [`MetricsSink`] implementations decide where snapshots go (a JSON-lines
//! file, a Prometheus scrape file, memory for tests).

use crate::json::Json;
use std::io::Write;

/// Metric family semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing total.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Log-bucketed distribution (see [`Histogram`]). Samples use the
    /// reserved labels `le` (cumulative bucket), `agg=sum`/`agg=count`
    /// (aggregates), and `quantile` (precomputed percentiles).
    Histogram,
}

impl MetricKind {
    fn prometheus_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Number of finite power-of-two bucket bounds (`2^0 … 2^40`); one more
/// overflow bucket catches everything larger. With microsecond
/// observations the last finite bound is ≈12.7 days.
pub const HISTOGRAM_BUCKETS: usize = 41;

/// A log-bucketed histogram: bucket *i* counts observations in
/// `(2^(i-1), 2^i]` (bucket 0 is `[0, 1]`), plus an overflow bucket.
///
/// Power-of-two bounds make [`merge`](Histogram::merge) a plain
/// element-wise add — associative and commutative, so per-thread or
/// per-session histograms can be combined in any order — while keeping
/// relative quantile error bounded by the bucket ratio (2×).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS + 1],
    sum: f64,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// The upper bound of finite bucket `i` (`2^i`).
    pub fn bucket_bound(i: usize) -> f64 {
        (1u64 << i) as f64
    }

    fn bucket_index(v: f64) -> usize {
        for i in 0..HISTOGRAM_BUCKETS {
            if v <= Self::bucket_bound(i) {
                return i;
            }
        }
        HISTOGRAM_BUCKETS
    }

    /// Records one observation. Negative and non-finite values clamp
    /// into the first/overflow bucket respectively.
    pub fn observe(&mut self, v: f64) {
        let v = if v.is_nan() { 0.0 } else { v.max(0.0) };
        self.counts[Self::bucket_index(v)] += 1;
        self.sum += if v.is_finite() { v } else { 0.0 };
        self.count += 1;
    }

    /// Folds `other` into `self` (element-wise bucket add).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated value at quantile `q` (0..=1), linearly interpolated
    /// inside the containing bucket. Returns 0 for an empty histogram;
    /// observations in the overflow bucket report the last finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            let n = self.counts[i];
            if n == 0 {
                continue;
            }
            if (cum + n) as f64 >= target {
                let lower = if i == 0 {
                    0.0
                } else {
                    Self::bucket_bound(i - 1)
                };
                let upper = Self::bucket_bound(i);
                let frac = (target - cum as f64) / n as f64;
                return lower + frac * (upper - lower);
            }
            cum += n;
        }
        Self::bucket_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Cumulative `(upper_bound, count ≤ bound)` pairs over the finite
    /// buckets, skipping leading empty ones, always ending with the
    /// overall count (the `+Inf` bucket).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            cum += self.counts[i];
            if self.counts[i] > 0 {
                out.push((Self::bucket_bound(i), cum));
            }
        }
        out.push((f64::INFINITY, self.count));
        out
    }
}

/// One labeled sample within a family.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Label set, e.g. `[("stage", "0"), ("core", "3")]`.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// A named metric with its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    /// Metric name (`gem_` prefix by convention).
    pub name: String,
    /// Human-readable description.
    pub help: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Labeled samples.
    pub samples: Vec<Sample>,
}

impl MetricFamily {
    /// Sum of all sample values.
    pub fn total(&self) -> f64 {
        self.samples.iter().map(|s| s.value).sum()
    }
}

/// A point-in-time collection of metric families.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All families in the snapshot.
    pub families: Vec<MetricFamily>,
}

impl MetricsSnapshot {
    /// Adds a family.
    pub fn push(&mut self, family: MetricFamily) {
        self.families.push(family);
    }

    /// Looks up a family by name.
    pub fn family(&self, name: &str) -> Option<&MetricFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Convenience: adds a single-sample unlabeled family.
    pub fn push_scalar(&mut self, name: &str, help: &str, kind: MetricKind, value: f64) {
        self.families.push(MetricFamily {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: vec![Sample {
                labels: Vec::new(),
                value,
            }],
        });
    }

    /// Adds a histogram family: cumulative `le` buckets, `sum`/`count`
    /// aggregates, and precomputed p50/p95/p99 quantile samples.
    pub fn push_histogram(&mut self, name: &str, help: &str, hist: &Histogram) {
        let mut samples = Vec::new();
        for (bound, cum) in hist.cumulative_buckets() {
            let le = if bound.is_infinite() {
                "+Inf".to_string()
            } else {
                format!("{bound}")
            };
            samples.push(Sample {
                labels: vec![("le".to_string(), le)],
                value: cum as f64,
            });
        }
        samples.push(Sample {
            labels: vec![("agg".to_string(), "sum".to_string())],
            value: hist.sum(),
        });
        samples.push(Sample {
            labels: vec![("agg".to_string(), "count".to_string())],
            value: hist.count() as f64,
        });
        for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            samples.push(Sample {
                labels: vec![("quantile".to_string(), label.to_string())],
                value: hist.quantile(q),
            });
        }
        self.families.push(MetricFamily {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Histogram,
            samples,
        });
    }

    /// Serializes the snapshot as JSON.
    pub fn to_json(&self) -> Json {
        let families: Vec<Json> = self
            .families
            .iter()
            .map(|f| {
                let samples: Vec<Json> = f
                    .samples
                    .iter()
                    .map(|s| {
                        let mut labels = Json::object();
                        for (k, v) in &s.labels {
                            labels.set(k, v.as_str());
                        }
                        let mut o = Json::object();
                        o.set("labels", labels);
                        o.set("value", s.value);
                        o
                    })
                    .collect();
                let mut o = Json::object();
                o.set("name", f.name.as_str());
                o.set("help", f.help.as_str());
                o.set("kind", f.kind.prometheus_name());
                o.set("samples", Json::Array(samples));
                o
            })
            .collect();
        let mut o = Json::object();
        o.set("families", Json::Array(families));
        o
    }

    /// Serializes the snapshot in the Prometheus text exposition format.
    ///
    /// Histogram families render as `name_bucket{le="…"}` / `name_sum` /
    /// `name_count`; their precomputed quantile samples render in summary
    /// syntax (`name{quantile="…"}`) so scrapers get percentiles without
    /// re-deriving them from buckets.
    pub fn to_prometheus_text(&self) -> String {
        fn label_text(labels: &[(String, String)]) -> String {
            let parts: Vec<String> = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
                .collect();
            parts.join(",")
        }
        let mut out = String::new();
        for f in &self.families {
            out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind.prometheus_name()));
            for s in &f.samples {
                if f.kind == MetricKind::Histogram {
                    let agg = s
                        .labels
                        .iter()
                        .find(|(k, _)| k == "agg")
                        .map(|(_, v)| v.as_str());
                    let rest: Vec<(String, String)> = s
                        .labels
                        .iter()
                        .filter(|(k, _)| k != "agg")
                        .cloned()
                        .collect();
                    let has = |key: &str| s.labels.iter().any(|(k, _)| k == key);
                    let (name, labels) = match agg {
                        Some("sum") => (format!("{}_sum", f.name), rest),
                        Some("count") => (format!("{}_count", f.name), rest),
                        _ if has("le") => (format!("{}_bucket", f.name), rest),
                        _ => (f.name.clone(), rest),
                    };
                    if labels.is_empty() {
                        out.push_str(&format!("{} {}\n", name, s.value));
                    } else {
                        out.push_str(&format!(
                            "{}{{{}}} {}\n",
                            name,
                            label_text(&labels),
                            s.value
                        ));
                    }
                } else if s.labels.is_empty() {
                    out.push_str(&format!("{} {}\n", f.name, s.value));
                } else {
                    out.push_str(&format!(
                        "{}{{{}}} {}\n",
                        f.name,
                        label_text(&s.labels),
                        s.value
                    ));
                }
            }
        }
        out
    }
}

/// Consumes periodic snapshots.
pub trait MetricsSink {
    /// Receives one snapshot.
    fn record(&mut self, snapshot: &MetricsSnapshot);
}

/// Writes each snapshot as one compact JSON line.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    w: W,
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        JsonLinesSink { w }
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> MetricsSink for JsonLinesSink<W> {
    fn record(&mut self, snapshot: &MetricsSnapshot) {
        if let Err(e) = writeln!(self.w, "{}", snapshot.to_json()) {
            crate::warn!("metrics sink write failed: {e}");
        }
    }
}

/// Writes each snapshot as a full Prometheus text exposition (snapshots
/// are appended; point a fresh writer at a scrape file per run).
#[derive(Debug)]
pub struct PrometheusTextSink<W: Write> {
    w: W,
}

impl<W: Write> PrometheusTextSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        PrometheusTextSink { w }
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> MetricsSink for PrometheusTextSink<W> {
    fn record(&mut self, snapshot: &MetricsSnapshot) {
        if let Err(e) = self.w.write_all(snapshot.to_prometheus_text().as_bytes()) {
            crate::warn!("metrics sink write failed: {e}");
        }
    }
}

/// Keeps snapshots in memory (tests, report builders).
#[derive(Debug, Default)]
pub struct CollectSink {
    /// All recorded snapshots, oldest first.
    pub snapshots: Vec<MetricsSnapshot>,
}

impl MetricsSink for CollectSink {
    fn record(&mut self, snapshot: &MetricsSnapshot) {
        self.snapshots.push(snapshot.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.push_scalar(
            "gem_cycles_total",
            "Simulated cycles",
            MetricKind::Counter,
            7.0,
        );
        s.push(MetricFamily {
            name: "gem_alu_ops_total".into(),
            help: "Fold ALU operations".into(),
            kind: MetricKind::Counter,
            samples: vec![
                Sample {
                    labels: vec![("stage".into(), "0".into()), ("core".into(), "0".into())],
                    value: 10.0,
                },
                Sample {
                    labels: vec![("stage".into(), "0".into()), ("core".into(), "1".into())],
                    value: 5.0,
                },
            ],
        });
        s
    }

    #[test]
    fn family_total_sums_samples() {
        let s = snapshot();
        assert_eq!(s.family("gem_alu_ops_total").unwrap().total(), 15.0);
    }

    #[test]
    fn prometheus_text_shape() {
        let text = snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE gem_cycles_total counter"));
        assert!(text.contains("gem_cycles_total 7\n"));
        assert!(text.contains("gem_alu_ops_total{stage=\"0\",core=\"1\"} 5\n"));
    }

    #[test]
    fn json_round_trip_parses() {
        let j = snapshot().to_json();
        let parsed = crate::json::parse(&j.to_string()).expect("parses");
        let fams = parsed.get("families").unwrap().as_array().unwrap();
        assert_eq!(fams.len(), 2);
    }

    /// Deterministic xorshift64 for property-style loops (no rand crate).
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    #[test]
    fn histogram_bucket_boundaries_bracket_every_observation() {
        // Property: each observed value lands in the first bucket whose
        // bound is >= it, and the previous bound (if any) is < it.
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..2000 {
            let v = (xorshift(&mut state) % (1u64 << 44)) as f64;
            let mut h = Histogram::new();
            h.observe(v);
            let cum = h.cumulative_buckets();
            let (bound, count) = cum[0];
            assert_eq!(count, 1);
            assert!(bound >= v || cum.len() == 1, "v={v} bound={bound}");
            if bound.is_finite() && bound > 1.0 {
                assert!(bound / 2.0 < v, "v={v} fell past its bucket ({bound})");
            }
        }
        // Exact powers of two are inclusive upper bounds.
        for i in 0..8 {
            let mut h = Histogram::new();
            h.observe(Histogram::bucket_bound(i));
            assert_eq!(h.cumulative_buckets()[0].0, Histogram::bucket_bound(i));
        }
        // Degenerate inputs clamp instead of panicking.
        let mut h = Histogram::new();
        h.observe(-5.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.cumulative_buckets().last().unwrap().1, 3);
    }

    #[test]
    fn histogram_cumulative_counts_are_monotone() {
        let mut state = 42u64;
        let mut h = Histogram::new();
        for _ in 0..500 {
            h.observe((xorshift(&mut state) % 1_000_000) as f64);
        }
        let cum = h.cumulative_buckets();
        for w in cum.windows(2) {
            assert!(w[0].1 <= w[1].1, "cumulative counts must not decrease");
            assert!(w[0].0 < w[1].0, "bounds must strictly increase");
        }
        assert_eq!(cum.last().unwrap().1, h.count());
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let mk = |seed: u64, n: u64| {
            let mut state = seed;
            let mut h = Histogram::new();
            for _ in 0..n {
                h.observe((xorshift(&mut state) % (1u64 << 30)) as f64);
            }
            h
        };
        let (a, b, c) = (mk(1, 100), mk(2, 57), mk(3, 211));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // b ⊕ a == a ⊕ b
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(left.count(), 368);
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v as f64);
        }
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // 2x relative error bound from the bucket ratio.
        assert!((250.0..=1024.0).contains(&p50), "p50={p50}");
        assert!((512.0..=2048.0).contains(&p99), "p99={p99}");
        assert_eq!(Histogram::new().quantile(0.5), 0.0);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_prometheus_exposition_round_trips() {
        let mut h = Histogram::new();
        for v in [1.0, 3.0, 3.0, 100.0, 5000.0] {
            h.observe(v);
        }
        let mut s = MetricsSnapshot::default();
        s.push_histogram("gem_req_latency_micros", "Request latency", &h);
        let text = s.to_prometheus_text();
        assert!(text.contains("# TYPE gem_req_latency_micros histogram"));
        assert!(text.contains("gem_req_latency_micros_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("gem_req_latency_micros_bucket{le=\"4\"} 3\n"));
        assert!(text.contains("gem_req_latency_micros_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("gem_req_latency_micros_sum 5107\n"));
        assert!(text.contains("gem_req_latency_micros_count 5\n"));
        assert!(text.contains("gem_req_latency_micros{quantile=\"0.99\"}"));
        // Parse the exposition back and verify the cumulative counts
        // survive the text round trip exactly.
        let mut buckets: Vec<(String, f64)> = Vec::new();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            if let Some(rest) = line.strip_prefix("gem_req_latency_micros_bucket{le=\"") {
                let (le, tail) = rest.split_once('"').expect("closing quote");
                let value: f64 = tail
                    .trim_start_matches('}')
                    .trim()
                    .parse()
                    .expect("numeric value");
                buckets.push((le.to_string(), value));
            }
        }
        let expect: Vec<(String, f64)> = h
            .cumulative_buckets()
            .iter()
            .map(|(b, c)| {
                let le = if b.is_infinite() {
                    "+Inf".to_string()
                } else {
                    format!("{b}")
                };
                (le, *c as f64)
            })
            .collect();
        assert_eq!(buckets, expect);
        // And the JSON exporter keeps the reserved labels intact.
        let parsed = crate::json::parse(&s.to_json().to_string()).expect("parses");
        let fam = &parsed.get("families").unwrap().as_array().unwrap()[0];
        assert_eq!(fam.get("kind").unwrap().as_str().unwrap(), "histogram");
    }

    #[test]
    fn sinks_receive_snapshots() {
        let s = snapshot();
        let mut collect = CollectSink::default();
        collect.record(&s);
        assert_eq!(collect.snapshots.len(), 1);

        let mut jsonl = JsonLinesSink::new(Vec::new());
        jsonl.record(&s);
        let buf = jsonl.into_inner();
        assert!(std::str::from_utf8(&buf).unwrap().ends_with("}\n"));

        let mut prom = PrometheusTextSink::new(Vec::new());
        prom.record(&s);
        assert!(!prom.into_inner().is_empty());
    }
}
