//! Label-oriented runtime metrics: snapshots, sinks, and exporters.
//!
//! A [`MetricsSnapshot`] is a point-in-time set of metric families, each a
//! list of labeled samples — the shape both the JSON exporter and the
//! Prometheus text exposition understand natively. The virtual GPU
//! converts its per-partition/per-layer counters into this form;
//! [`MetricsSink`] implementations decide where snapshots go (a JSON-lines
//! file, a Prometheus scrape file, memory for tests).

use crate::json::Json;
use std::io::Write;

/// Metric family semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing total.
    Counter,
    /// Point-in-time value.
    Gauge,
}

impl MetricKind {
    fn prometheus_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One labeled sample within a family.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Label set, e.g. `[("stage", "0"), ("core", "3")]`.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// A named metric with its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    /// Metric name (`gem_` prefix by convention).
    pub name: String,
    /// Human-readable description.
    pub help: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Labeled samples.
    pub samples: Vec<Sample>,
}

impl MetricFamily {
    /// Sum of all sample values.
    pub fn total(&self) -> f64 {
        self.samples.iter().map(|s| s.value).sum()
    }
}

/// A point-in-time collection of metric families.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All families in the snapshot.
    pub families: Vec<MetricFamily>,
}

impl MetricsSnapshot {
    /// Adds a family.
    pub fn push(&mut self, family: MetricFamily) {
        self.families.push(family);
    }

    /// Looks up a family by name.
    pub fn family(&self, name: &str) -> Option<&MetricFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Convenience: adds a single-sample unlabeled family.
    pub fn push_scalar(&mut self, name: &str, help: &str, kind: MetricKind, value: f64) {
        self.families.push(MetricFamily {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: vec![Sample {
                labels: Vec::new(),
                value,
            }],
        });
    }

    /// Serializes the snapshot as JSON.
    pub fn to_json(&self) -> Json {
        let families: Vec<Json> = self
            .families
            .iter()
            .map(|f| {
                let samples: Vec<Json> = f
                    .samples
                    .iter()
                    .map(|s| {
                        let mut labels = Json::object();
                        for (k, v) in &s.labels {
                            labels.set(k, v.as_str());
                        }
                        let mut o = Json::object();
                        o.set("labels", labels);
                        o.set("value", s.value);
                        o
                    })
                    .collect();
                let mut o = Json::object();
                o.set("name", f.name.as_str());
                o.set("help", f.help.as_str());
                o.set("kind", f.kind.prometheus_name());
                o.set("samples", Json::Array(samples));
                o
            })
            .collect();
        let mut o = Json::object();
        o.set("families", Json::Array(families));
        o
    }

    /// Serializes the snapshot in the Prometheus text exposition format.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind.prometheus_name()));
            for s in &f.samples {
                if s.labels.is_empty() {
                    out.push_str(&format!("{} {}\n", f.name, s.value));
                } else {
                    let labels: Vec<String> = s
                        .labels
                        .iter()
                        .map(|(k, v)| {
                            format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""))
                        })
                        .collect();
                    out.push_str(&format!("{}{{{}}} {}\n", f.name, labels.join(","), s.value));
                }
            }
        }
        out
    }
}

/// Consumes periodic snapshots.
pub trait MetricsSink {
    /// Receives one snapshot.
    fn record(&mut self, snapshot: &MetricsSnapshot);
}

/// Writes each snapshot as one compact JSON line.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    w: W,
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        JsonLinesSink { w }
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> MetricsSink for JsonLinesSink<W> {
    fn record(&mut self, snapshot: &MetricsSnapshot) {
        if let Err(e) = writeln!(self.w, "{}", snapshot.to_json()) {
            crate::warn!("metrics sink write failed: {e}");
        }
    }
}

/// Writes each snapshot as a full Prometheus text exposition (snapshots
/// are appended; point a fresh writer at a scrape file per run).
#[derive(Debug)]
pub struct PrometheusTextSink<W: Write> {
    w: W,
}

impl<W: Write> PrometheusTextSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        PrometheusTextSink { w }
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> MetricsSink for PrometheusTextSink<W> {
    fn record(&mut self, snapshot: &MetricsSnapshot) {
        if let Err(e) = self.w.write_all(snapshot.to_prometheus_text().as_bytes()) {
            crate::warn!("metrics sink write failed: {e}");
        }
    }
}

/// Keeps snapshots in memory (tests, report builders).
#[derive(Debug, Default)]
pub struct CollectSink {
    /// All recorded snapshots, oldest first.
    pub snapshots: Vec<MetricsSnapshot>,
}

impl MetricsSink for CollectSink {
    fn record(&mut self, snapshot: &MetricsSnapshot) {
        self.snapshots.push(snapshot.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.push_scalar(
            "gem_cycles_total",
            "Simulated cycles",
            MetricKind::Counter,
            7.0,
        );
        s.push(MetricFamily {
            name: "gem_alu_ops_total".into(),
            help: "Fold ALU operations".into(),
            kind: MetricKind::Counter,
            samples: vec![
                Sample {
                    labels: vec![("stage".into(), "0".into()), ("core".into(), "0".into())],
                    value: 10.0,
                },
                Sample {
                    labels: vec![("stage".into(), "0".into()), ("core".into(), "1".into())],
                    value: 5.0,
                },
            ],
        });
        s
    }

    #[test]
    fn family_total_sums_samples() {
        let s = snapshot();
        assert_eq!(s.family("gem_alu_ops_total").unwrap().total(), 15.0);
    }

    #[test]
    fn prometheus_text_shape() {
        let text = snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE gem_cycles_total counter"));
        assert!(text.contains("gem_cycles_total 7\n"));
        assert!(text.contains("gem_alu_ops_total{stage=\"0\",core=\"1\"} 5\n"));
    }

    #[test]
    fn json_round_trip_parses() {
        let j = snapshot().to_json();
        let parsed = crate::json::parse(&j.to_string()).expect("parses");
        let fams = parsed.get("families").unwrap().as_array().unwrap();
        assert_eq!(fams.len(), 2);
    }

    #[test]
    fn sinks_receive_snapshots() {
        let s = snapshot();
        let mut collect = CollectSink::default();
        collect.record(&s);
        assert_eq!(collect.snapshots.len(), 1);

        let mut jsonl = JsonLinesSink::new(Vec::new());
        jsonl.record(&s);
        let buf = jsonl.into_inner();
        assert!(std::str::from_utf8(&buf).unwrap().ends_with("}\n"));

        let mut prom = PrometheusTextSink::new(Vec::new());
        prom.record(&s);
        assert!(!prom.into_inner().is_empty());
    }
}
