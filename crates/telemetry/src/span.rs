//! Structured span tracing: per-thread timeline buffers exported as
//! Chrome-trace/Perfetto JSON.
//!
//! Where [`crate::trace`] answers *"what happened"* (leveled log events,
//! closed-span durations), this module answers *"when, on which thread,
//! and inside what"*: every begin/end/complete/instant event carries a
//! collector-relative timestamp, a stable thread id, the id of the
//! enclosing span, and numeric/string args. The resulting timeline loads
//! directly in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! Design constraints (see `docs/OBSERVABILITY.md` §6):
//!
//! * **Off by default, near-free when off.** Instrumentation sites call
//!   [`enabled`] — one relaxed atomic load — before building anything.
//!   No collector installed means no allocation, no lock, no clock read.
//! * **Per-thread buffers.** Each thread appends to its own buffer (an
//!   uncontended mutex shared with the collector registry), so tracing a
//!   parallel stage does not serialize the workers it is measuring.
//! * **Request correlation.** A thread-scoped request id
//!   ([`request_scope`]) is stamped onto every event recorded while the
//!   scope is active — the server sets it per wire request, and every
//!   compile/step span recorded on behalf of that request links back to
//!   it (args key `"rid"`).
//!
//! The write side is [`span`] (RAII begin/end pair), [`complete`]
//! (one `X` event for an already-measured region) and [`instant`]; the
//! read side is [`TraceCollector::drain`] /
//! [`TraceCollector::export_chrome_trace`]; [`validate_chrome_trace`]
//! is the checker CI runs over emitted files.

use crate::json::Json;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Chrome-trace event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Duration begin (`"B"`).
    Begin,
    /// Duration end (`"E"`).
    End,
    /// Complete event with an explicit duration (`"X"`).
    Complete,
    /// Instantaneous marker (`"i"`).
    Instant,
}

impl Phase {
    /// The single-character Chrome-trace phase code.
    pub fn code(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Complete => "X",
            Phase::Instant => "i",
        }
    }
}

/// One argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Numeric arg (counters, sizes, durations).
    F64(f64),
    /// String arg (names, keys).
    Str(String),
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::F64(v as f64)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (span or marker name).
    pub name: String,
    /// Category (`"compile"`, `"vgpu"`, `"server"`, …) — Perfetto's
    /// track-filtering key.
    pub cat: &'static str,
    /// Phase (begin/end/complete/instant).
    pub ph: Phase,
    /// Microseconds since the collector was installed.
    pub ts_micros: f64,
    /// Duration in microseconds (complete events only).
    pub dur_micros: f64,
    /// Stable id of the recording thread.
    pub tid: u64,
    /// Id of this span (begin/complete) — unique per collector install.
    pub span_id: u64,
    /// Id of the enclosing span on the same thread (0 = root).
    pub parent_id: u64,
    /// Request correlation id, when a [`request_scope`] was active.
    pub rid: Option<u64>,
    /// Key/value args.
    pub args: Vec<(String, ArgValue)>,
}

/// Collects events from every thread; install with [`install`].
#[derive(Debug)]
pub struct TraceCollector {
    epoch: Instant,
    buffers: Mutex<Vec<SharedBuffer>>,
    next_span: AtomicU64,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    /// A fresh collector; timestamps are relative to this call.
    pub fn new() -> TraceCollector {
        TraceCollector {
            epoch: Instant::now(),
            buffers: Mutex::new(Vec::new()),
            next_span: AtomicU64::new(1),
        }
    }

    /// A fresh collector behind an `Arc`, ready for [`install`].
    pub fn arc() -> Arc<TraceCollector> {
        Arc::new(TraceCollector::new())
    }

    fn now_micros(&self) -> f64 {
        self.epoch.elapsed().as_nanos() as f64 / 1e3
    }

    fn alloc_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    fn register(&self, buf: SharedBuffer) {
        self.buffers.lock().expect("trace buffers").push(buf);
    }

    /// Takes every buffered event, merged across threads and sorted by
    /// timestamp. Buffers stay registered; a later drain returns only
    /// events recorded since.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let buffers = self.buffers.lock().expect("trace buffers");
        let mut all = Vec::new();
        for b in buffers.iter() {
            all.append(&mut b.lock().expect("trace buffer"));
        }
        all.sort_by(|a, b| a.ts_micros.total_cmp(&b.ts_micros));
        all
    }

    /// Drains and serializes everything as a Chrome-trace JSON document
    /// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
    pub fn export_chrome_trace(&self) -> Json {
        events_to_chrome_trace(&self.drain())
    }
}

/// Serializes already-drained events as a Chrome-trace JSON document.
pub fn events_to_chrome_trace(events: &[TraceEvent]) -> Json {
    let rows: Vec<Json> = events
        .iter()
        .map(|e| {
            let mut o = Json::object();
            o.set("name", e.name.as_str());
            o.set("cat", e.cat);
            o.set("ph", e.ph.code());
            o.set("ts", e.ts_micros);
            if e.ph == Phase::Complete {
                o.set("dur", e.dur_micros);
            }
            if e.ph == Phase::Instant {
                // Thread-scoped instant (Perfetto requires the scope key).
                o.set("s", "t");
            }
            o.set("pid", 1u64);
            o.set("tid", e.tid);
            let mut args = Json::object();
            if e.span_id != 0 {
                args.set("span_id", e.span_id);
            }
            if e.parent_id != 0 {
                args.set("parent_id", e.parent_id);
            }
            if let Some(rid) = e.rid {
                args.set("rid", rid);
            }
            for (k, v) in &e.args {
                match v {
                    ArgValue::F64(f) => args.set(k, *f),
                    ArgValue::Str(s) => args.set(k, s.as_str()),
                }
            }
            o.set("args", args);
            o
        })
        .collect();
    let mut doc = Json::object();
    doc.set("traceEvents", Json::Array(rows));
    doc.set("displayTimeUnit", "ms");
    doc
}

// ---------------------------------------------------------------- global --

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: RwLock<Option<Arc<TraceCollector>>> = RwLock::new(None);

/// Installs the global collector (replacing any previous one). Events
/// recorded from any thread land in this collector from now on.
pub fn install(c: Arc<TraceCollector>) -> Option<Arc<TraceCollector>> {
    let prev = COLLECTOR.write().expect("trace collector").replace(c);
    ENABLED.store(true, Ordering::SeqCst);
    prev
}

/// Removes the global collector; tracing turns off.
pub fn uninstall() -> Option<Arc<TraceCollector>> {
    ENABLED.store(false, Ordering::SeqCst);
    COLLECTOR.write().expect("trace collector").take()
}

/// Whether a collector is installed. Instrumentation calls this before
/// doing any work — one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn current_collector() -> Option<Arc<TraceCollector>> {
    if !enabled() {
        return None;
    }
    COLLECTOR.read().expect("trace collector").clone()
}

fn stable_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: OnceLock<u64> = const { OnceLock::new() };
    }
    TID.with(|t| *t.get_or_init(|| NEXT_TID.fetch_add(1, Ordering::Relaxed)))
}

/// A thread's event buffer, shared with the collector it registered in.
type SharedBuffer = Arc<Mutex<Vec<TraceEvent>>>;

thread_local! {
    /// This thread's buffer per collector "generation". The pointer
    /// identifies the collector the buffer was registered with, so a
    /// re-install gets a fresh buffer.
    static BUFFER: RefCell<Option<(usize, SharedBuffer)>> = const { RefCell::new(None) };
    /// Stack of open span ids on this thread (parent attribution).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Active request correlation id (0 = none).
    static REQUEST_ID: Cell<u64> = const { Cell::new(0) };
}

fn with_buffer(collector: &Arc<TraceCollector>, f: impl FnOnce(&mut Vec<TraceEvent>)) {
    let key = Arc::as_ptr(collector) as usize;
    BUFFER.with(|slot| {
        let mut slot = slot.borrow_mut();
        let stale = match &*slot {
            Some((k, _)) => *k != key,
            None => true,
        };
        if stale {
            let buf = Arc::new(Mutex::new(Vec::new()));
            collector.register(Arc::clone(&buf));
            *slot = Some((key, buf));
        }
        let (_, buf) = slot.as_ref().expect("buffer just installed");
        f(&mut buf.lock().expect("trace buffer"));
    });
}

/// The request id active on this thread, if any.
pub fn current_request_id() -> Option<u64> {
    let rid = REQUEST_ID.with(Cell::get);
    (rid != 0).then_some(rid)
}

/// RAII guard restoring the previous request id on drop.
#[derive(Debug)]
pub struct RequestScope {
    prev: u64,
}

/// Marks this thread as working on request `rid` until the guard drops:
/// every event recorded in between carries `rid`. Scopes nest; the
/// innermost wins.
pub fn request_scope(rid: u64) -> RequestScope {
    let prev = REQUEST_ID.with(|c| c.replace(rid));
    RequestScope { prev }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        REQUEST_ID.with(|c| c.set(self.prev));
    }
}

// ----------------------------------------------------------- write side --

/// An open span: records a begin event on creation and an end event on
/// drop. Obtain via [`span`]; a disabled tracer returns an inert guard.
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<SpanLive>,
}

#[derive(Debug)]
struct SpanLive {
    collector: Arc<TraceCollector>,
    name: String,
    cat: &'static str,
    span_id: u64,
    args: Vec<(String, ArgValue)>,
}

impl SpanGuard {
    /// Attaches an arg, reported with the span's end event.
    pub fn arg(&mut self, key: &str, value: impl Into<ArgValue>) -> &mut Self {
        if let Some(live) = &mut self.live {
            live.args.push((key.to_string(), value.into()));
        }
        self
    }

    /// This span's id (0 when tracing is off).
    pub fn id(&self) -> u64 {
        self.live.as_ref().map_or(0, |l| l.span_id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop our own id (spans are strictly nested per thread).
            if s.last() == Some(&live.span_id) {
                s.pop();
            }
        });
        let ev = TraceEvent {
            name: live.name,
            cat: live.cat,
            ph: Phase::End,
            ts_micros: live.collector.now_micros(),
            dur_micros: 0.0,
            tid: stable_tid(),
            span_id: live.span_id,
            parent_id: 0,
            rid: current_request_id(),
            args: live.args,
        };
        with_buffer(&live.collector, |buf| buf.push(ev));
    }
}

/// Opens a span (begin now, end when the guard drops). Near-free when no
/// collector is installed.
pub fn span(name: impl Into<String>, cat: &'static str) -> SpanGuard {
    let Some(collector) = current_collector() else {
        return SpanGuard { live: None };
    };
    let name = name.into();
    let span_id = collector.alloc_span_id();
    let parent_id = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied().unwrap_or(0);
        s.push(span_id);
        parent
    });
    let ev = TraceEvent {
        name: name.clone(),
        cat,
        ph: Phase::Begin,
        ts_micros: collector.now_micros(),
        dur_micros: 0.0,
        tid: stable_tid(),
        span_id,
        parent_id,
        rid: current_request_id(),
        args: Vec::new(),
    };
    with_buffer(&collector, |buf| buf.push(ev));
    SpanGuard {
        live: Some(SpanLive {
            collector,
            name,
            cat,
            span_id,
            args: Vec::new(),
        }),
    }
}

/// Records a complete (`X`) event for a region measured by the caller:
/// `started` is when it began, `dur` how long it ran. Used where a
/// begin/end pair would be wrong (e.g. reporting a worker's execution
/// from the coordinating thread).
pub fn complete(
    name: impl Into<String>,
    cat: &'static str,
    started: Instant,
    dur: Duration,
    args: Vec<(String, ArgValue)>,
) {
    let Some(collector) = current_collector() else {
        return;
    };
    let span_id = collector.alloc_span_id();
    let parent_id = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    let end_micros = collector.now_micros();
    // Place the event at its measured start, clamped into the collector's
    // lifetime (a region begun before install shows from time zero).
    let since_start = started.elapsed().as_nanos() as f64 / 1e3;
    let ts = (end_micros - since_start).max(0.0);
    let ev = TraceEvent {
        name: name.into(),
        cat,
        ph: Phase::Complete,
        ts_micros: ts,
        dur_micros: dur.as_nanos() as f64 / 1e3,
        tid: stable_tid(),
        span_id,
        parent_id,
        rid: current_request_id(),
        args,
    };
    with_buffer(&collector, |buf| buf.push(ev));
}

/// Records an instantaneous marker.
pub fn instant(name: impl Into<String>, cat: &'static str, args: Vec<(String, ArgValue)>) {
    let Some(collector) = current_collector() else {
        return;
    };
    let parent_id = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    let ev = TraceEvent {
        name: name.into(),
        cat,
        ph: Phase::Instant,
        ts_micros: collector.now_micros(),
        dur_micros: 0.0,
        tid: stable_tid(),
        span_id: 0,
        parent_id,
        rid: current_request_id(),
        args,
    };
    with_buffer(&collector, |buf| buf.push(ev));
}

// ------------------------------------------------------------ validator --

/// Summary statistics of a validated trace document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total events in the document.
    pub events: usize,
    /// Matched begin/end pairs.
    pub spans: usize,
    /// Complete (`X`) events.
    pub complete: usize,
    /// Instant markers.
    pub instants: usize,
    /// Distinct thread ids.
    pub threads: usize,
    /// Highest timestamp seen, microseconds.
    pub max_ts_micros: f64,
}

/// Validates a Chrome-trace JSON document: `traceEvents` must exist,
/// every event must carry `name`/`ph`/`ts`/`pid`/`tid`, timestamps must
/// be non-negative and non-decreasing **per thread**, `X` events need a
/// non-negative `dur`, and `B`/`E` pairs must balance per thread with
/// matching names (stack discipline). This is the check CI runs over
/// `gem run --trace-out` output.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_chrome_trace(doc: &Json) -> Result<TraceSummary, String> {
    let events = doc
        .get("traceEvents")
        .ok_or("missing top-level \"traceEvents\"")?
        .as_array()
        .ok_or("\"traceEvents\" is not an array")?;
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    // Per-tid open-span stack and last timestamp.
    let mut stacks: Vec<(u64, Vec<String>, f64)> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing \"name\""))?;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing \"ph\""))?;
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i} ({name}): missing numeric \"ts\""))?;
        if ts < 0.0 {
            return Err(format!("event {i} ({name}): negative ts {ts}"));
        }
        e.get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i} ({name}): missing \"pid\""))?;
        let tid = e
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i} ({name}): missing \"tid\""))?;
        let entry = match stacks.iter_mut().find(|(t, _, _)| *t == tid) {
            Some(s) => s,
            None => {
                summary.threads += 1;
                stacks.push((tid, Vec::new(), f64::NEG_INFINITY));
                stacks.last_mut().expect("just pushed")
            }
        };
        if ts < entry.2 {
            return Err(format!(
                "event {i} ({name}): ts {ts} goes backwards on tid {tid} (prev {})",
                entry.2
            ));
        }
        entry.2 = ts;
        match ph {
            "B" => entry.1.push(name.to_string()),
            "E" => {
                let open = entry.1.pop().ok_or_else(|| {
                    format!("event {i} ({name}): \"E\" with no open span on tid {tid}")
                })?;
                if open != name {
                    return Err(format!(
                        "event {i}: \"E\" for {name:?} but innermost open span on \
                         tid {tid} is {open:?}"
                    ));
                }
                summary.spans += 1;
            }
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i} ({name}): \"X\" without \"dur\""))?;
                if dur < 0.0 {
                    return Err(format!("event {i} ({name}): negative dur {dur}"));
                }
                summary.complete += 1;
                summary.max_ts_micros = summary.max_ts_micros.max(ts + dur);
            }
            "i" => summary.instants += 1,
            other => return Err(format!("event {i} ({name}): unknown phase {other:?}")),
        }
        summary.max_ts_micros = summary.max_ts_micros.max(ts);
    }
    for (tid, stack, _) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("tid {tid}: span {open:?} never closed"));
        }
    }
    Ok(summary)
}

/// Serializes tests (across this crate) that install the process-global
/// collector, so they don't race each other's timelines.
#[cfg(test)]
pub(crate) fn test_collector_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        test_collector_lock()
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let _g = global_lock();
        uninstall();
        assert!(!enabled());
        {
            let mut sp = span("nothing", "test");
            sp.arg("n", 1.0);
            assert_eq!(sp.id(), 0);
        }
        instant("marker", "test", Vec::new());
        // No collector: nothing panics, nothing is recorded anywhere.
    }

    #[test]
    fn spans_nest_and_record_parentage() {
        let _g = global_lock();
        let c = TraceCollector::arc();
        install(Arc::clone(&c));
        let outer_id;
        {
            let outer = span("outer", "test");
            outer_id = outer.id();
            {
                let mut inner = span("inner", "test");
                inner.arg("k", 2.0);
            }
            instant("mark", "test", vec![("v".into(), 7u64.into())]);
        }
        uninstall();
        let events = c.drain();
        assert_eq!(events.len(), 5, "B B E i E");
        let inner_begin = events
            .iter()
            .find(|e| e.name == "inner" && e.ph == Phase::Begin)
            .expect("inner begin");
        assert_eq!(inner_begin.parent_id, outer_id);
        let inner_end = events
            .iter()
            .find(|e| e.name == "inner" && e.ph == Phase::End)
            .expect("inner end");
        assert_eq!(inner_end.args, vec![("k".to_string(), ArgValue::F64(2.0))]);
        let mark = events.iter().find(|e| e.ph == Phase::Instant).expect("i");
        assert_eq!(mark.parent_id, outer_id);
        // Export validates cleanly.
        let doc = events_to_chrome_trace(&events);
        let summary = validate_chrome_trace(&doc).expect("valid trace");
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.instants, 1);
    }

    #[test]
    fn request_scope_stamps_events() {
        let _g = global_lock();
        let c = TraceCollector::arc();
        install(Arc::clone(&c));
        {
            let _rid = request_scope(42);
            assert_eq!(current_request_id(), Some(42));
            {
                let _inner = request_scope(43); // nests; innermost wins
                let _sp = span("inner", "test");
            }
            let _sp = span("outer", "test");
        }
        assert_eq!(current_request_id(), None);
        uninstall();
        let events = c.drain();
        assert!(events
            .iter()
            .filter(|e| e.name == "inner")
            .all(|e| e.rid == Some(43)));
        assert!(events
            .iter()
            .filter(|e| e.name == "outer")
            .all(|e| e.rid == Some(42)));
    }

    #[test]
    fn complete_events_cross_threads() {
        let _g = global_lock();
        let c = TraceCollector::arc();
        install(Arc::clone(&c));
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    let t0 = Instant::now();
                    std::thread::sleep(Duration::from_millis(1));
                    complete(
                        format!("work-{i}"),
                        "test",
                        t0,
                        t0.elapsed(),
                        vec![("i".into(), (i as u64).into())],
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        uninstall();
        let events = c.drain();
        assert_eq!(events.len(), 3);
        let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 3, "one tid per worker thread");
        let doc = events_to_chrome_trace(&events);
        let summary = validate_chrome_trace(&doc).expect("valid");
        assert_eq!(summary.complete, 3);
        assert_eq!(summary.threads, 3);
    }

    #[test]
    fn reinstall_starts_a_fresh_timeline() {
        let _g = global_lock();
        let c1 = TraceCollector::arc();
        install(Arc::clone(&c1));
        drop(span("first", "test"));
        let c2 = TraceCollector::arc();
        install(Arc::clone(&c2));
        drop(span("second", "test"));
        uninstall();
        assert_eq!(c1.drain().len(), 2, "first B/E only");
        let second = c2.drain();
        assert_eq!(second.len(), 2, "second B/E only");
        assert!(second.iter().all(|e| e.name == "second"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        let no_events = crate::json::parse(r#"{"foo": 1}"#).unwrap();
        assert!(validate_chrome_trace(&no_events).is_err());

        let unbalanced = crate::json::parse(
            r#"{"traceEvents": [
                {"name":"a","ph":"B","ts":1,"pid":1,"tid":1,"args":{}}
            ]}"#,
        )
        .unwrap();
        let err = validate_chrome_trace(&unbalanced).unwrap_err();
        assert!(err.contains("never closed"), "{err}");

        let crossed = crate::json::parse(
            r#"{"traceEvents": [
                {"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
                {"name":"b","ph":"B","ts":2,"pid":1,"tid":1},
                {"name":"a","ph":"E","ts":3,"pid":1,"tid":1},
                {"name":"b","ph":"E","ts":4,"pid":1,"tid":1}
            ]}"#,
        )
        .unwrap();
        let err = validate_chrome_trace(&crossed).unwrap_err();
        assert!(err.contains("innermost open span"), "{err}");

        let backwards = crate::json::parse(
            r#"{"traceEvents": [
                {"name":"a","ph":"i","ts":5,"pid":1,"tid":1},
                {"name":"b","ph":"i","ts":3,"pid":1,"tid":1}
            ]}"#,
        )
        .unwrap();
        let err = validate_chrome_trace(&backwards).unwrap_err();
        assert!(err.contains("backwards"), "{err}");

        // Interleaved threads are fine: monotonicity is per tid.
        let interleaved = crate::json::parse(
            r#"{"traceEvents": [
                {"name":"a","ph":"i","ts":5,"pid":1,"tid":1},
                {"name":"b","ph":"i","ts":3,"pid":1,"tid":2},
                {"name":"c","ph":"X","ts":4,"dur":2,"pid":1,"tid":2}
            ]}"#,
        )
        .unwrap();
        let summary = validate_chrome_trace(&interleaved).expect("valid");
        assert_eq!(summary.threads, 2);
        assert_eq!(summary.max_ts_micros, 6.0);
    }
}
