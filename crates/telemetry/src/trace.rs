//! Leveled events and timed spans, dispatched to a global [`Subscriber`].
//!
//! This is a self-contained facade in the spirit of the `tracing` crate:
//! library code emits [`error!`](crate::error) … [`trace!`](crate::trace)
//! events and opens [`Span`]s; whoever owns `main` decides where they go
//! by installing a subscriber. When none is installed, a default
//! [`StderrSubscriber`] filters by the `GEM_LOG` environment variable
//! (default `warn`) and writes to stderr — never stdout, which belongs to
//! the CLI's actual output.

use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Event/span severity, ordered `Trace < Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Very fine-grained detail.
    Trace,
    /// Diagnostic detail.
    Debug,
    /// High-level progress.
    Info,
    /// Something unexpected but recoverable.
    Warn,
    /// An operation failed.
    Error,
}

impl Level {
    /// Uppercase name, `"WARN"`-style.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "TRACE",
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        }
    }

    /// Parses a case-insensitive level name (`GEM_LOG` values).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// One emitted event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Severity.
    pub level: Level,
    /// Module path of the emitting code.
    pub target: String,
    /// Formatted message.
    pub message: String,
}

/// One closed span: a named, timed region with numeric fields.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Severity the span was opened at.
    pub level: Level,
    /// Module path of the emitting code.
    pub target: String,
    /// Span name (e.g. a compiler stage).
    pub name: String,
    /// Wall time between open and close.
    pub wall: Duration,
    /// Numeric fields recorded while the span was open.
    pub fields: Vec<(String, f64)>,
}

/// Receives events and closed spans.
pub trait Subscriber: Send + Sync {
    /// Level/target filter; events below this are not even formatted.
    fn enabled(&self, level: Level, target: &str) -> bool;

    /// Called for each enabled event.
    fn event(&self, event: &EventRecord);

    /// Called when an enabled span closes.
    fn span_close(&self, span: &SpanRecord);
}

static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

/// Installs the global subscriber, returning the previous one.
pub fn set_subscriber(s: Arc<dyn Subscriber>) -> Option<Arc<dyn Subscriber>> {
    SUBSCRIBER.write().expect("subscriber lock").replace(s)
}

/// Removes the global subscriber (falling back to the `GEM_LOG` default).
pub fn clear_subscriber() -> Option<Arc<dyn Subscriber>> {
    SUBSCRIBER.write().expect("subscriber lock").take()
}

fn default_subscriber() -> &'static StderrSubscriber {
    static DEFAULT: OnceLock<StderrSubscriber> = OnceLock::new();
    DEFAULT.get_or_init(|| {
        let min = std::env::var("GEM_LOG")
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(Level::Warn);
        StderrSubscriber { min }
    })
}

fn with_subscriber(f: impl FnOnce(&dyn Subscriber)) {
    let guard = SUBSCRIBER.read().expect("subscriber lock");
    match &*guard {
        Some(s) => f(s.as_ref()),
        None => f(default_subscriber()),
    }
}

/// Dispatches one event to the current subscriber (macro back end).
pub fn dispatch_event(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    with_subscriber(|s| {
        if s.enabled(level, target) {
            s.event(&EventRecord {
                level,
                target: target.to_string(),
                message: args.to_string(),
            });
        }
    });
}

/// Dispatches a pre-built closed-span record (used by [`crate::flow`]).
pub fn dispatch_span_record(record: SpanRecord) {
    with_subscriber(|s| {
        if s.enabled(record.level, &record.target) {
            s.span_close(&record);
        }
    });
}

/// A timed region. Created via [`span!`](crate::span) (or
/// [`Span::new`]); records wall time from creation until drop, then
/// reports to the subscriber.
#[derive(Debug)]
pub struct Span {
    level: Level,
    target: &'static str,
    name: String,
    start: Instant,
    fields: Vec<(String, f64)>,
}

impl Span {
    /// Opens a span.
    pub fn new(level: Level, target: &'static str, name: impl Into<String>) -> Span {
        Span {
            level,
            target,
            name: name.into(),
            start: Instant::now(),
            fields: Vec::new(),
        }
    }

    /// Attaches a numeric field.
    pub fn record(&mut self, key: &str, value: f64) -> &mut Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Elapsed wall time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        dispatch_span_record(SpanRecord {
            level: self.level,
            target: self.target.to_string(),
            name: std::mem::take(&mut self.name),
            wall: self.start.elapsed(),
            fields: std::mem::take(&mut self.fields),
        });
    }
}

/// Stderr writer with a minimum-level filter (the default subscriber).
#[derive(Debug, Clone)]
pub struct StderrSubscriber {
    min: Level,
}

impl StderrSubscriber {
    /// A subscriber printing everything at `min` and above.
    pub fn new(min: Level) -> Self {
        StderrSubscriber { min }
    }
}

impl Subscriber for StderrSubscriber {
    fn enabled(&self, level: Level, _target: &str) -> bool {
        level >= self.min
    }

    fn event(&self, e: &EventRecord) {
        eprintln!("[{:<5} {}] {}", e.level.as_str(), e.target, e.message);
    }

    fn span_close(&self, s: &SpanRecord) {
        let fields: String = s.fields.iter().map(|(k, v)| format!(" {k}={v}")).collect();
        eprintln!(
            "[{:<5} {}] {} done in {:.3?}{}",
            s.level.as_str(),
            s.target,
            s.name,
            s.wall,
            fields
        );
    }
}

/// In-memory subscriber for tests and report builders.
#[derive(Debug, Default)]
pub struct CaptureSubscriber {
    /// Captured events.
    pub events: Mutex<Vec<EventRecord>>,
    /// Captured closed spans.
    pub spans: Mutex<Vec<SpanRecord>>,
}

impl CaptureSubscriber {
    /// A fresh capture behind an `Arc` (ready for [`set_subscriber`]).
    pub fn arc() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Clones out the captured events.
    pub fn events(&self) -> Vec<EventRecord> {
        self.events.lock().expect("capture lock").clone()
    }

    /// Clones out the captured spans.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("capture lock").clone()
    }
}

impl Subscriber for CaptureSubscriber {
    fn enabled(&self, _level: Level, _target: &str) -> bool {
        true
    }

    fn event(&self, e: &EventRecord) {
        self.events.lock().expect("capture lock").push(e.clone());
    }

    fn span_close(&self, s: &SpanRecord) {
        self.spans.lock().expect("capture lock").push(s.clone());
    }
}

/// Emits an event at an explicit level: `event!(Level::Info, "x = {x}")`.
#[macro_export]
macro_rules! event {
    ($lvl:expr, $($arg:tt)+) => {
        $crate::dispatch_event($lvl, module_path!(), format_args!($($arg)+))
    };
}

/// Emits an [`Level::Error`] event.
#[macro_export]
macro_rules! error {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Error, $($arg)+) };
}

/// Emits a [`Level::Warn`] event.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Warn, $($arg)+) };
}

/// Emits a [`Level::Info`] event.
#[macro_export]
macro_rules! info {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Info, $($arg)+) };
}

/// Emits a [`Level::Debug`] event.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Debug, $($arg)+) };
}

/// Emits a [`Level::Trace`] event.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Trace, $($arg)+) };
}

/// Opens a timed [`Span`]: `let _s = span!(Level::Info, "partition");`.
#[macro_export]
macro_rules! span {
    ($lvl:expr, $name:expr) => {
        $crate::Span::new($lvl, module_path!(), $name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error > Level::Warn);
        assert!(Level::Warn > Level::Info);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn capture_receives_events_and_spans() {
        let cap = CaptureSubscriber::arc();
        let prev = set_subscriber(cap.clone());
        crate::info!("hello {}", 42);
        {
            let mut sp = crate::span!(Level::Info, "unit_test_span");
            sp.record("n", 3.0);
        }
        match prev {
            Some(p) => {
                set_subscriber(p);
            }
            None => {
                clear_subscriber();
            }
        }
        let evs = cap.events();
        assert!(evs
            .iter()
            .any(|e| e.message == "hello 42" && e.level == Level::Info));
        let spans = cap.spans();
        let sp = spans
            .iter()
            .find(|s| s.name == "unit_test_span")
            .expect("span captured");
        assert_eq!(sp.fields, vec![("n".to_string(), 3.0)]);
    }

    #[test]
    fn stderr_subscriber_filters_by_level() {
        let s = StderrSubscriber::new(Level::Warn);
        assert!(s.enabled(Level::Error, "t"));
        assert!(!s.enabled(Level::Info, "t"));
    }
}
