//! Structured per-stage reports for multi-stage flows (the compiler).
//!
//! [`FlowRecorder`] is the write side: open one per flow run, call
//! [`stage`](FlowRecorder::stage) around each phase, attach size metrics,
//! and [`finish`](FlowRecorder::finish) into an immutable [`FlowReport`].
//! Every stage also closes a [`crate::Span`]-equivalent record through
//! the global subscriber, so a run is observable live (stderr, capture)
//! and post-hoc (the report JSON) from the same instrumentation.

use crate::json::Json;
use crate::span;
use crate::trace::{self, Level, SpanRecord};
use std::time::Instant;

/// One completed stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Stage name (stable; see `docs/OBSERVABILITY.md`).
    pub name: String,
    /// Wall time in nanoseconds.
    pub wall_ns: u64,
    /// Size/quality metrics, in recording order.
    pub metrics: Vec<(String, f64)>,
}

impl StageRecord {
    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }
}

/// A finished flow: ordered stages plus total wall time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowReport {
    /// Flow name (e.g. `"compile"`).
    pub flow: String,
    /// Total wall time in nanoseconds (creation to finish).
    pub total_wall_ns: u64,
    /// Stages in execution order.
    pub stages: Vec<StageRecord>,
}

impl FlowReport {
    /// Stage names in execution order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.stages.iter().map(|s| s.name.as_str()).collect()
    }

    /// Looks up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageRecord> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Serializes the report.
    pub fn to_json(&self) -> Json {
        let stages: Vec<Json> = self
            .stages
            .iter()
            .map(|s| {
                let mut o = Json::object();
                o.set("name", s.name.as_str());
                o.set("wall_ns", s.wall_ns);
                let mut metrics = Json::object();
                for (k, v) in &s.metrics {
                    metrics.set(k, *v);
                }
                o.set("metrics", metrics);
                o
            })
            .collect();
        let mut o = Json::object();
        o.set("flow", self.flow.as_str());
        o.set("total_wall_ns", self.total_wall_ns);
        o.set("stages", Json::Array(stages));
        o
    }
}

/// The write side of a [`FlowReport`].
///
/// When a [`crate::span`] collector is installed, the recorder opens a
/// root span named after the flow; every [`stage`](FlowRecorder::stage)
/// opens a child span, so a compile run appears in trace exports as one
/// nested timeline (`compile` → `synth` → … → `verify`).
#[derive(Debug)]
pub struct FlowRecorder {
    flow: String,
    start: Instant,
    stages: Vec<StageRecord>,
    // Held for its Drop: ends the root span when the recorder finishes.
    _root_span: span::SpanGuard,
}

impl FlowRecorder {
    /// Starts recording a named flow.
    pub fn new(flow: impl Into<String>) -> Self {
        let flow = flow.into();
        let root = span::span(flow.clone(), "flow");
        FlowRecorder {
            flow,
            start: Instant::now(),
            stages: Vec::new(),
            _root_span: root,
        }
    }

    /// Opens a stage; it is recorded when the guard drops.
    pub fn stage(&mut self, name: &'static str) -> StageGuard<'_> {
        let stage_span = span::span(name, "flow");
        StageGuard {
            rec: self,
            name,
            start: Instant::now(),
            metrics: Vec::new(),
            span: stage_span,
        }
    }

    /// Closes the flow into its report.
    pub fn finish(self) -> FlowReport {
        FlowReport {
            flow: self.flow,
            total_wall_ns: self.start.elapsed().as_nanos() as u64,
            stages: self.stages,
        }
    }
}

/// Open stage handle; drop (or let fall out of scope) to record it.
#[derive(Debug)]
pub struct StageGuard<'a> {
    rec: &'a mut FlowRecorder,
    name: &'static str,
    start: Instant,
    metrics: Vec<(String, f64)>,
    span: span::SpanGuard,
}

impl StageGuard<'_> {
    /// Attaches a numeric metric to the stage.
    pub fn metric(&mut self, key: &str, value: f64) -> &mut Self {
        self.metrics.push((key.to_string(), value));
        self
    }
}

impl Drop for StageGuard<'_> {
    fn drop(&mut self) {
        let wall = self.start.elapsed();
        let metrics = std::mem::take(&mut self.metrics);
        for (k, v) in &metrics {
            self.span.arg(k, *v);
        }
        self.rec.stages.push(StageRecord {
            name: self.name.to_string(),
            wall_ns: wall.as_nanos() as u64,
            metrics: metrics.clone(),
        });
        trace::dispatch_span_record(SpanRecord {
            level: Level::Info,
            target: module_path!().to_string(),
            name: format!("{}::{}", self.rec.flow, self.name),
            wall,
            fields: metrics,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_stages_in_order_with_metrics() {
        let mut rec = FlowRecorder::new("testflow");
        {
            let mut s = rec.stage("alpha");
            s.metric("n", 4.0);
        }
        {
            rec.stage("beta");
        }
        let report = rec.finish();
        assert_eq!(report.stage_names(), vec!["alpha", "beta"]);
        assert_eq!(report.stage("alpha").unwrap().metric("n"), Some(4.0));
        assert_eq!(report.stage("beta").unwrap().metrics.len(), 0);
    }

    #[test]
    fn stages_nest_under_flow_root_in_trace_export() {
        let _g = span::test_collector_lock();
        let c = span::TraceCollector::arc();
        span::install(std::sync::Arc::clone(&c));
        let mut rec = FlowRecorder::new("nested");
        rec.stage("one").metric("gates", 12.0);
        let _ = rec.finish();
        span::uninstall();
        let events = c.drain();
        let root_begin = events
            .iter()
            .find(|e| e.name == "nested" && e.ph == span::Phase::Begin)
            .expect("root begin");
        let stage_begin = events
            .iter()
            .find(|e| e.name == "one" && e.ph == span::Phase::Begin)
            .expect("stage begin");
        assert_eq!(stage_begin.parent_id, root_begin.span_id);
        let stage_end = events
            .iter()
            .find(|e| e.name == "one" && e.ph == span::Phase::End)
            .expect("stage end");
        assert!(stage_end
            .args
            .contains(&("gates".to_string(), span::ArgValue::F64(12.0))));
        let doc = span::events_to_chrome_trace(&events);
        span::validate_chrome_trace(&doc).expect("balanced nested trace");
    }

    #[test]
    fn report_serializes_to_json() {
        let mut rec = FlowRecorder::new("f");
        rec.stage("only").metric("x", 1.5);
        let j = rec.finish().to_json();
        assert_eq!(j.get("flow").unwrap().as_str(), Some("f"));
        let stages = j.get("stages").unwrap().as_array().unwrap();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].get("name").unwrap().as_str(), Some("only"));
        assert_eq!(
            stages[0].get("metrics").unwrap().get("x").unwrap().as_f64(),
            Some(1.5)
        );
    }
}
