//! Length-prefixed JSON framing for socket transports.
//!
//! One frame is a little-endian `u32` payload length followed by that
//! many bytes of UTF-8 JSON text:
//!
//! ```text
//! | u32 len (LE) | len bytes of JSON |
//! ```
//!
//! The codec is defensive by construction — it is the boundary where
//! untrusted bytes enter the process:
//!
//! * frames larger than the caller's limit are rejected **before** any
//!   payload allocation ([`FrameError::TooLarge`]),
//! * short reads surface as [`FrameError::Truncated`] rather than a
//!   panic or a hang on garbage lengths,
//! * payloads must be valid UTF-8 and valid JSON ([`FrameError::BadJson`]),
//! * a clean EOF **between** frames is [`FrameError::Closed`], so peers
//!   can distinguish orderly hangup from corruption.
//!
//! `gem-server` builds its wire protocol on this module (see
//! `docs/SERVER.md`).

use crate::json::{parse, Json, JsonError};
use std::fmt;
use std::io::{Read, Write};

/// Default per-frame payload limit (16 MiB) — comfortably above any
/// compile request for the designs in this repository, far below
/// anything that could exhaust memory.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// Errors from [`read_frame`] / [`write_frame`].
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection at a frame boundary (orderly EOF).
    Closed,
    /// The stream ended mid-frame.
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// The frame length exceeds the configured limit. The stream is no
    /// longer synchronized; the connection must be dropped.
    TooLarge {
        /// Declared (or serialized) payload length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The payload was not valid UTF-8 JSON.
    BadJson(JsonError),
    /// Transport failure.
    Io(std::io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::BadJson(e) => write!(f, "bad frame payload: {e}"),
            FrameError::Io(e) => write!(f, "frame I/O failed: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<JsonError> for FrameError {
    fn from(e: JsonError) -> Self {
        FrameError::BadJson(e)
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Serializes `v` compactly and writes it as one frame.
///
/// # Errors
///
/// [`FrameError::TooLarge`] if the serialized payload exceeds `max`
/// (nothing is written), or [`FrameError::Io`] on transport failure.
pub fn write_frame(w: &mut impl Write, v: &Json, max: usize) -> Result<(), FrameError> {
    let payload = v.to_string().into_bytes();
    if payload.len() > max {
        return Err(FrameError::TooLarge {
            len: payload.len(),
            max,
        });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame and parses its payload.
///
/// # Errors
///
/// See [`FrameError`]; after [`FrameError::TooLarge`], [`Truncated`]
/// (mid-frame EOF), or [`BadJson`] the stream position is undefined and
/// the connection should be dropped.
///
/// [`Truncated`]: FrameError::Truncated
/// [`BadJson`]: FrameError::BadJson
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Json, FrameError> {
    let mut len_bytes = [0u8; 4];
    // Read the header byte-wise so a clean EOF before any byte maps to
    // Closed while EOF inside the header maps to Truncated.
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Err(FrameError::Closed),
            0 => {
                return Err(FrameError::Truncated {
                    expected: 4,
                    got: filled,
                })
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut payload[got..])? {
            0 => return Err(FrameError::Truncated { expected: len, got }),
            n => got += n,
        }
    }
    let text = std::str::from_utf8(&payload).map_err(|e| {
        FrameError::BadJson(JsonError {
            at: e.valid_up_to(),
            message: "payload is not UTF-8".to_string(),
        })
    })?;
    Ok(parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn round_trip(v: &Json) -> Json {
        let mut buf = Vec::new();
        write_frame(&mut buf, v, DEFAULT_MAX_FRAME).expect("writes");
        read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME).expect("reads")
    }

    #[test]
    fn frames_round_trip() {
        let v = json!({"cmd": "step", "cycles": 64u64, "s": "😀\n\u{1}"});
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn multiple_frames_in_one_stream() {
        let mut buf = Vec::new();
        let a = json!({"id": 1u64});
        let b = json!({"id": 2u64});
        write_frame(&mut buf, &a, 1024).unwrap();
        write_frame(&mut buf, &b, 1024).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r, 1024).unwrap(), a);
        assert_eq!(read_frame(&mut r, 1024).unwrap(), b);
        assert!(matches!(read_frame(&mut r, 1024), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_frames_rejected_without_allocation() {
        // Declared length of ~4 GiB with no payload: must fail fast on
        // the limit check, not try to allocate or read 4 GiB.
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut buf.as_slice(), 1024).unwrap_err();
        assert!(matches!(
            err,
            FrameError::TooLarge {
                len: 4294967295,
                max: 1024
            }
        ));
        // Write side enforces the same bound.
        let big = Json::Str("x".repeat(2048));
        let mut out = Vec::new();
        assert!(matches!(
            write_frame(&mut out, &big, 1024),
            Err(FrameError::TooLarge { .. })
        ));
        assert!(out.is_empty(), "nothing written after a rejected frame");
    }

    #[test]
    fn truncated_frames_reported() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &json!({"k": "value"}), 1024).unwrap();
        // Cut inside the payload.
        let cut = &buf[..buf.len() - 3];
        assert!(matches!(
            read_frame(&mut &cut[..], 1024),
            Err(FrameError::Truncated { .. })
        ));
        // Cut inside the header.
        assert!(matches!(
            read_frame(&mut &buf[..2], 1024),
            Err(FrameError::Truncated {
                expected: 4,
                got: 2
            })
        ));
    }

    #[test]
    fn non_utf8_and_non_json_payloads_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE, 0x00, 0x01]);
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 1024),
            Err(FrameError::BadJson(_))
        ));
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(b"{x}");
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 1024),
            Err(FrameError::BadJson(_))
        ));
    }
}
