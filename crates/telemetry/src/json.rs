//! Minimal JSON value, serializer, and parser.
//!
//! Object key order is preserved (objects are association lists), numbers
//! keep their integer/float identity so `u64` counters round-trip
//! exactly, and the [`json!`](crate::json) macro builds literals with the
//! familiar `{"key": value}` shape.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with preserved key order.
    Object(Vec<(String, Json)>),
}

/// Parse failure: byte offset plus description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object. Panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Object(fields) => {
                let value = value.into();
                if let Some(f) = fields.iter_mut().find(|(k, _)| k == key) {
                    f.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a u64 (integral floats accepted).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) if v >= 0 => Some(v as u64),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an i64.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::U64(v) => i64::try_from(v).ok(),
            Json::I64(v) => Some(v),
            Json::F64(v) if v.fract() == 0.0 => Some(v as i64),
            _ => None,
        }
    }

    /// The value as an f64 (any number).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value's object fields.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty serialization (two-space indent). Compact form via
    /// `to_string()` (the [`fmt::Display`] impl).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let pad = |out: &mut String, depth: usize| {
            if let Some(n) = indent {
                out.push('\n');
                out.extend(std::iter::repeat_n(' ', n * depth));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // Keep a float's identity visible so it re-parses as F64.
                    let s = v.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    pad(out, depth);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !fields.is_empty() {
                    pad(out, depth);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c if (c as u32) > 0xFFFF => {
                // Non-BMP scalars are written as UTF-16 surrogate pairs so
                // the wire format stays within \uXXXX escapes (robust
                // against consumers that mishandle 4-byte UTF-8).
                let v = c as u32 - 0x1_0000;
                let hi = 0xD800 + (v >> 10);
                let lo = 0xDC00 + (v & 0x3FF);
                out.push_str(&format!("\\u{hi:04x}\\u{lo:04x}"));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Json { Json::U64(v as u64) }
        }
    )*};
}
impl_from_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Json {
                if v >= 0 { Json::U64(v as u64) } else { Json::I64(v as i64) }
            }
        }
    )*};
}
impl_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<f32> for Json {
    fn from(v: f32) -> Json {
        Json::F64(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<&String> for Json {
    fn from(v: &String) -> Json {
        Json::Str(v.clone())
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(v: &[T]) -> Json {
        Json::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Json>, const N: usize> From<[T; N]> for Json {
    fn from(v: [T; N]) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Builds a [`Json`] literal: `json!({"k": v, "list": [1, 2]})`.
///
/// Values are any `Into<Json>` expression; nest objects with further
/// `json!({…})` calls. Arrays of expressions are supported inline.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Json::Null };
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Json::Array(vec![ $( $crate::Json::from($v) ),* ])
    };
    ({ $($k:literal : $v:expr),* $(,)? }) => {
        $crate::Json::Object(vec![ $( ($k.to_string(), $crate::Json::from($v)) ),* ])
    };
    ($v:expr) => { $crate::Json::from($v) };
}

/// Parses JSON text.
///
/// # Errors
///
/// Returns [`JsonError`] with the byte offset of the first violation.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Maximum container nesting accepted by [`parse`]. Adversarial inputs
/// like `[[[[…` otherwise recurse once per byte and overflow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = match code {
                                // High surrogate: a low surrogate must
                                // follow (JSON's only non-BMP encoding).
                                0xD800..=0xDBFF => {
                                    if self.peek() != Some(b'\\') {
                                        return Err(self.err("unpaired high surrogate"));
                                    }
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(self.err("unpaired high surrogate"));
                                    }
                                    self.pos += 1;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let v = 0x1_0000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(v).ok_or_else(|| self.err("bad \\u escape"))?
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(self.err("unpaired low surrogate"));
                                }
                                _ => char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u escape"))?,
                            };
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        if !float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if v <= i64::MAX as u64 {
                        return Ok(Json::I64(-(v as i64)));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = json!({
            "name": "gem",
            "gates": 12345u64,
            "cost": 0.25,
            "neg": -3,
            "ok": true,
            "none": json!(null),
            "list": [1u64, 2u64, 3u64],
        });
        let text = v.to_string();
        let back = parse(&text).expect("parses");
        assert_eq!(back, v);
        let pretty = v.to_string_pretty();
        assert_eq!(parse(&pretty).expect("parses"), v);
    }

    #[test]
    fn large_u64_round_trips_exactly() {
        let v = Json::U64(u64::MAX - 1);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::Str("line\n\"quote\"\\tab\t\u{1}".to_string());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
    }

    #[test]
    fn accessors_coerce_numbers() {
        let v = parse("{\"a\": 7, \"b\": -2, \"c\": 1.5}").unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("a").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("b").unwrap().as_i64(), Some(-2));
        assert_eq!(v.get("b").unwrap().as_u64(), None);
        assert_eq!(v.get("c").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn control_characters_round_trip() {
        // Every C0 control character must survive a serialize→parse trip.
        let s: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let v = Json::Str(s);
        let text = v.to_string();
        assert!(text.is_ascii(), "control chars must be escaped: {text}");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn non_bmp_scalars_round_trip_as_surrogate_pairs() {
        let v = Json::Str("emoji \u{1F600} and math \u{1D54A}".to_string());
        let text = v.to_string();
        assert!(
            text.contains("\\ud83d\\ude00"),
            "non-BMP must be escaped as a surrogate pair: {text}"
        );
        assert_eq!(parse(&text).unwrap(), v);
        // Raw (unescaped) UTF-8 non-BMP input also parses.
        assert_eq!(parse("\"\u{1F600}\"").unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn lone_surrogates_rejected() {
        assert!(parse("\"\\ud800\"").is_err()); // unpaired high
        assert!(parse("\"\\udc00\"").is_err()); // unpaired low
        assert!(parse("\"\\ud800x\"").is_err()); // high followed by junk
        assert!(parse("\"\\ud800\\u0041\"").is_err()); // high + non-low
        assert!(parse("\"\\ud83d\\ude0").is_err()); // truncated pair
    }

    #[test]
    fn deep_nesting_rejected_not_crashed() {
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
        let mixed = "{\"a\":".repeat(50_000) + "1" + &"}".repeat(50_000);
        assert!(parse(&mixed).is_err());
        // Nesting below the limit still parses.
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn adversarial_strings_round_trip() {
        for s in [
            "\\u0000 literal backslash-u",
            "\"quoted\" and \\escaped\\",
            "\u{7f}\u{80}\u{7FF}\u{FFFD}",
            "mixed 😀\n\t\u{1}end",
            "",
        ] {
            let v = Json::Str(s.to_string());
            assert_eq!(parse(&v.to_string()).unwrap(), v, "round-trip of {s:?}");
        }
    }

    #[test]
    fn float_identity_survives_round_trip() {
        // A whole-valued float must re-parse as a float, not an integer.
        let v = Json::F64(2.0);
        assert_eq!(v.to_string(), "2.0");
        assert_eq!(parse("2.0").unwrap(), v);
    }
}
