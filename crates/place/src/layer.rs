//! Boomerang layer and core program data structures, plus a reference
//! executor used for placement verification and by the virtual GPU.

use gem_aig::NodeId;

/// Where one input-row bit of a layer comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PermSource {
    /// Core state bit at this address.
    State(u32),
    /// Constant zero (unused slots and constant operands).
    ConstFalse,
}

/// Per-slot fold constants for one fold level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldConsts {
    /// XOR mask applied to operand A.
    pub xa: Vec<bool>,
    /// XOR mask applied to operand B.
    pub xb: Vec<bool>,
    /// OR mask applied to operand B after the XOR; `true` bypasses B.
    pub ob: Vec<bool>,
}

impl FoldConsts {
    /// All-pass-through constants for `slots` slots (`out = A & B`).
    pub fn neutral(slots: usize) -> Self {
        FoldConsts {
            xa: vec![false; slots],
            xb: vec![false; slots],
            ob: vec![false; slots],
        }
    }
}

/// One boomerang layer: a permutation followed by `log2(width)` folds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoomerangLayer {
    /// Row width (power of two).
    pub width: u32,
    /// Input-row gather: one source per row bit.
    pub perm: Vec<PermSource>,
    /// Fold constants, level 1 (width/2 slots) through level log2(width)
    /// (1 slot).
    pub folds: Vec<FoldConsts>,
    /// Write-back plan: `writeback[k][j]` is the state address receiving
    /// the output of slot `j` at fold level `k+1` (or `None`).
    pub writeback: Vec<Vec<Option<u32>>>,
}

impl BoomerangLayer {
    /// An empty layer of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two ≥ 2.
    pub fn new(width: u32) -> Self {
        assert!(width.is_power_of_two() && width >= 2, "bad layer width");
        let folds_n = width.trailing_zeros() as usize;
        let folds = (1..=folds_n)
            .map(|k| FoldConsts::neutral((width >> k) as usize))
            .collect();
        let writeback = (1..=folds_n)
            .map(|k| vec![None; (width >> k) as usize])
            .collect();
        BoomerangLayer {
            width,
            perm: vec![PermSource::ConstFalse; width as usize],
            folds,
            writeback,
        }
    }

    /// Number of fold levels.
    pub fn fold_levels(&self) -> usize {
        self.folds.len()
    }

    /// Executes the layer against `state`, writing fold outputs back.
    pub fn execute(&self, state: &mut [bool]) {
        let mut row: Vec<bool> = self
            .perm
            .iter()
            .map(|s| match s {
                PermSource::State(a) => state[*a as usize],
                PermSource::ConstFalse => false,
            })
            .collect();
        for (k, fc) in self.folds.iter().enumerate() {
            let slots = row.len() / 2;
            let mut next = Vec::with_capacity(slots);
            for j in 0..slots {
                let a = row[2 * j] ^ fc.xa[j];
                let b = (row[2 * j + 1] ^ fc.xb[j]) | fc.ob[j];
                let v = a && b;
                if let Some(addr) = self.writeback[k][j] {
                    state[addr as usize] = v;
                }
                next.push(v);
            }
            row = next;
        }
    }
}

/// The machine lane word: every bit carries one independent simulation.
///
/// This alias is the *single* place the lane width is chosen. The whole
/// execution stack (`gem-vgpu` machine state, the compiled backend's
/// masks and scratch, `GemSimulator`'s lane APIs, `gem_sim::lanes`
/// pack/unpack) is written against `Word` + the [`LaneWord`] bit-ops,
/// so a future widening (e.g. a SIMD `u64x4`) is a one-file change.
pub type Word = u64;

/// Bit-ops surface a lane word must provide.
///
/// Implemented for `u32` (the historical 32-lane word, kept so the
/// word-fold property suite can prove the `u64` fold equals two glued
/// `u32`-half folds) and `u64` (the current [`Word`]).
pub trait LaneWord:
    Copy
    + Eq
    + std::fmt::Debug
    + std::ops::BitAnd<Output = Self>
    + std::ops::BitOr<Output = Self>
    + std::ops::BitXor<Output = Self>
    + std::ops::Not<Output = Self>
{
    /// Independent bit-lanes one word carries.
    const LANES: u32;
    /// All-lanes-zero word.
    const ZERO: Self;
    /// All-lanes-one word.
    const ONES: Self;

    /// Broadcasts a Boolean constant across all bit-lanes.
    ///
    /// The lane-batched executor (`gem-vgpu`) keeps one simulation per
    /// bit of a word; layer constants apply identically to every lane,
    /// so they splat to all-ones/all-zeros masks.
    #[inline]
    fn broadcast(v: bool) -> Self {
        if v {
            Self::ONES
        } else {
            Self::ZERO
        }
    }
}

impl LaneWord for u32 {
    const LANES: u32 = 32;
    const ZERO: Self = 0;
    const ONES: Self = u32::MAX;
}

impl LaneWord for u64 {
    const LANES: u32 = 64;
    const ZERO: Self = 0;
    const ONES: Self = u64::MAX;
}

/// Broadcasts a Boolean constant across all bit-lanes of the machine
/// [`Word`] (see [`LaneWord::broadcast`]).
#[inline]
pub fn splat(v: bool) -> Word {
    Word::broadcast(v)
}

impl BoomerangLayer {
    /// Word-parallel twin of [`execute`](Self::execute): every word in
    /// `state` carries `W::LANES` independent bit-lanes and the fold
    /// semantics `out = (a ^ xa) & ((b ^ xb) | ob)` are applied
    /// lane-wise. Lane `k` of the output equals what
    /// [`execute`](Self::execute) would produce from lane `k` of the
    /// input — the fold network is pure bitwise logic, so the scalar
    /// executor stays the single source of truth and this is a
    /// mechanical widening. Generic over [`LaneWord`] so the property
    /// suite can compare the `u64` fold against two `u32`-half folds.
    pub fn execute_words<W: LaneWord>(&self, state: &mut [W]) {
        let mut row: Vec<W> = self
            .perm
            .iter()
            .map(|s| match s {
                PermSource::State(a) => state[*a as usize],
                PermSource::ConstFalse => W::ZERO,
            })
            .collect();
        for (k, fc) in self.folds.iter().enumerate() {
            let slots = row.len() / 2;
            let mut next = Vec::with_capacity(slots);
            for j in 0..slots {
                let a = row[2 * j] ^ W::broadcast(fc.xa[j]);
                let b = (row[2 * j + 1] ^ W::broadcast(fc.xb[j])) | W::broadcast(fc.ob[j]);
                let v = a & b;
                if let Some(addr) = self.writeback[k][j] {
                    state[addr as usize] = v;
                }
                next.push(v);
            }
            row = next;
        }
    }
}

/// Where a published output bit comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputSource {
    /// Core state bit, XOR-ed with the invert flag.
    State {
        /// State address.
        addr: u32,
        /// Invert on read.
        invert: bool,
    },
    /// Constant value.
    Const(bool),
}

/// The complete per-partition program produced by placement: load inputs,
/// run layers, publish outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreProgram {
    /// Core row width.
    pub width: u32,
    /// State bits used (≤ width for a mappable partition).
    pub state_size: u32,
    /// Global source signals and the state address each is loaded into
    /// once per cycle (inputs, FF outputs, RAM read bits, or cut signals
    /// from earlier stages).
    pub inputs: Vec<(NodeId, u32)>,
    /// Layers in execution order.
    pub layers: Vec<BoomerangLayer>,
    /// The partition's sinks in order: each is published from state or is
    /// a constant.
    pub outputs: Vec<OutputSource>,
}

impl CoreProgram {
    /// Executes the program given the values of its global sources.
    ///
    /// `source_value` is queried once per entry of [`CoreProgram::inputs`].
    /// Returns the output bits in sink order.
    pub fn evaluate(&self, mut source_value: impl FnMut(NodeId) -> bool) -> Vec<bool> {
        let mut state = vec![false; self.state_size.max(1) as usize];
        for &(node, addr) in &self.inputs {
            state[addr as usize] = source_value(node);
        }
        for layer in &self.layers {
            layer.execute(&mut state);
        }
        self.outputs
            .iter()
            .map(|o| match *o {
                OutputSource::State { addr, invert } => state[addr as usize] ^ invert,
                OutputSource::Const(v) => v,
            })
            .collect()
    }

    /// Permutations (= layers) per simulated cycle; the quantity Fig 3 is
    /// about.
    pub fn permutations(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-builds a 4-wide layer computing (a&b) at level 1 slot 0 and
    /// (!a & b) at slot 1, then level 2 combines them.
    #[test]
    fn layer_executes_fold_semantics() {
        let mut layer = BoomerangLayer::new(4);
        layer.perm = vec![
            PermSource::State(0), // a
            PermSource::State(1), // b
            PermSource::State(0), // a again
            PermSource::State(1), // b
        ];
        // Level 1: slot0 = a & b; slot1 = (!a) & b.
        layer.folds[0].xa[1] = true;
        // Level 2: slot0 = slot0 | slot1 = !(!x & !y).
        layer.folds[1].xa[0] = true;
        layer.folds[1].xb[0] = true;
        layer.writeback[0][0] = Some(2);
        layer.writeback[0][1] = Some(3);
        layer.writeback[1][0] = Some(4); // = !(a&b) & !(!a&b) = !b
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut state = vec![false; 5];
            state[0] = a;
            state[1] = b;
            layer.execute(&mut state);
            assert_eq!(state[2], a && b);
            assert_eq!(state[3], !a && b);
            // out = !(a&b) & !(!a&b) = !((a&b) | (!a&b)) = !b.
            assert_eq!(state[4], !b, "a={a} b={b}");
        }
    }

    #[test]
    fn bypass_ob_passes_a_through() {
        let mut layer = BoomerangLayer::new(2);
        layer.perm = vec![PermSource::State(0), PermSource::ConstFalse];
        layer.folds[0].ob[0] = true; // B side forced 1 → out = A
        layer.writeback[0][0] = Some(1);
        for a in [false, true] {
            let mut state = vec![false; 2];
            state[0] = a;
            layer.execute(&mut state);
            assert_eq!(state[1], a);
        }
    }

    #[test]
    fn program_evaluation_with_const_outputs() {
        let prog = CoreProgram {
            width: 2,
            state_size: 1,
            inputs: vec![(NodeId(5), 0)],
            layers: vec![],
            outputs: vec![
                OutputSource::State {
                    addr: 0,
                    invert: true,
                },
                OutputSource::Const(true),
            ],
        };
        let outs = prog.evaluate(|n| {
            assert_eq!(n, NodeId(5));
            true
        });
        assert_eq!(outs, vec![false, true]);
    }

    #[test]
    #[should_panic(expected = "bad layer width")]
    fn non_power_of_two_width_rejected() {
        let _ = BoomerangLayer::new(6);
    }

    fn xorshift(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn random_layer(x: &mut u64, width: u32, state_size: usize) -> BoomerangLayer {
        let mut layer = BoomerangLayer::new(width);
        for p in layer.perm.iter_mut() {
            *p = if xorshift(x).is_multiple_of(4) {
                PermSource::ConstFalse
            } else {
                PermSource::State((xorshift(x) % state_size as u64) as u32)
            };
        }
        for fc in layer.folds.iter_mut() {
            for j in 0..fc.xa.len() {
                fc.xa[j] = xorshift(x) & 1 == 1;
                fc.xb[j] = xorshift(x) & 1 == 1;
                fc.ob[j] = xorshift(x) & 1 == 1;
            }
        }
        for wb in layer.writeback.iter_mut() {
            for slot in wb.iter_mut() {
                if xorshift(x).is_multiple_of(2) {
                    *slot = Some((xorshift(x) % state_size as u64) as u32);
                }
            }
        }
        layer
    }

    /// `execute_words::<W>` lane `k` must match `execute` run on lane
    /// `k` alone, for every lane, on randomized layers — at both lane
    /// widths the trait implements.
    fn word_executor_matches_scalar<W: LaneWord + Into<u64>>(seed: u64, to_word: fn(u64) -> W) {
        let mut x = seed;
        let width = 16u32;
        let state_size = 24usize;
        for _trial in 0..32 {
            let layer = random_layer(&mut x, width, state_size);
            let words: Vec<W> = (0..state_size).map(|_| to_word(xorshift(&mut x))).collect();
            let mut got = words.clone();
            layer.execute_words(&mut got);
            for lane in 0..W::LANES {
                let mut scalar: Vec<bool> =
                    words.iter().map(|&w| (w.into() >> lane) & 1 == 1).collect();
                layer.execute(&mut scalar);
                for (i, &b) in scalar.iter().enumerate() {
                    assert_eq!(
                        (got[i].into() >> lane) & 1 == 1,
                        b,
                        "lane {lane} state {i} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn word_executor_matches_scalar_per_lane() {
        word_executor_matches_scalar::<u64>(0x9E3779B97F4A7C15, |r| r);
    }

    #[test]
    fn word_executor_matches_scalar_per_lane_u32() {
        word_executor_matches_scalar::<u32>(0x0DDB_1A5E_5BAD_5EED, |r| r as u32);
    }
}
