//! Iterative timing-driven bit placement (Algorithm 2).
//!
//! The placer maps a partition's AND nodes onto a sequence of boomerang
//! layers. Per layer it walks fold levels bottom-to-top; at level *i* it
//! repeatedly picks the most timing-critical unmapped node whose remaining
//! logic level is *i* and maps it with the recursive bit-mapping primitive
//! of Fig 6: the node's fan-ins are placed in the two child slots, either
//! computed in place (recursively), bypassed down to an already-available
//! state bit, or pad-bypassed when their level is lower. Values with
//! consumers in later layers are written back to core state.
//!
//! Timing criticality is the node's reverse logic depth in the remaining
//! AIG, recomputed as mapping progresses; prioritizing critical nodes
//! minimizes the number of layers (the ablation knob
//! [`PlaceOptions::timing_driven`] switches to FIFO order instead).

use crate::layer::{BoomerangLayer, CoreProgram, OutputSource, PermSource};
use gem_aig::{Eaig, Node, NodeId};
use gem_partition::Partition;
use std::collections::HashMap;
use std::fmt;

/// Placement options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaceOptions {
    /// Core row width (power of two). The paper's machine uses 8192.
    pub core_width: u32,
    /// Prioritize timing-critical nodes (Algorithm 2 lines 7–8). Disable
    /// for the FIFO ablation.
    pub timing_driven: bool,
    /// Give up on a candidate after this many failed slot attempts in one
    /// layer (it is retried in later layers).
    pub max_slot_attempts: u32,
}

impl Default for PlaceOptions {
    fn default() -> Self {
        PlaceOptions {
            core_width: crate::CORE_WIDTH,
            timing_driven: true,
            max_slot_attempts: 64,
        }
    }
}

/// Errors from [`place_partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The partition does not fit the core (state overflow or no layer
    /// progress); the string explains which resource ran out.
    Unmappable(String),
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::Unmappable(s) => write!(f, "partition unmappable: {s}"),
        }
    }
}

impl std::error::Error for PlaceError {}

/// Placement statistics (feeds Table I and Fig 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlaceStats {
    /// Boomerang layers emitted (= permutations per cycle per core).
    pub layers: u32,
    /// Logic depth of the partition (levelized executors pay one
    /// permutation + synchronization per level).
    pub depth: u32,
    /// Peak state bits allocated.
    pub state_peak: u32,
    /// Slots computing a gate (including duplicates).
    pub compute_slots: u64,
    /// Slots spent on bypass routing.
    pub bypass_slots: u64,
    /// Gates recomputed because a value was needed at two places within
    /// one layer.
    pub duplicated_gates: u64,
}

/// Places one partition onto boomerang layers; see the module docs.
///
/// # Errors
///
/// Returns [`PlaceError::Unmappable`] when the partition's live state
/// exceeds the core width or a layer cannot make progress.
pub fn place_partition(
    g: &Eaig,
    p: &Partition,
    opts: &PlaceOptions,
) -> Result<(CoreProgram, PlaceStats), PlaceError> {
    Placer::new(g, p, opts).run()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotOp {
    /// Computes gate `local` with operand inversion masks.
    Compute { local: u32, xa: bool, xb: bool },
    /// Bypasses the A child upward.
    Bypass { local: u32 },
    /// Level-0 read of a state bit holding `local`.
    Read { local: u32 },
}

struct Placer<'a> {
    g: &'a Eaig,
    p: &'a Partition,
    opts: &'a PlaceOptions,
    folds: usize,
    /// local index: sources first, then gates (topological order).
    locals: Vec<NodeId>,
    local_of: HashMap<u32, u32>,
    n_sources: usize,
    /// Gate fanins as (local, inverted) pairs; empty for sources.
    fanins: Vec<[(u32, bool); 2]>,
    consumers: Vec<Vec<u32>>,
    realized: Vec<bool>,
    addr: Vec<Option<u32>>,
    is_sink: Vec<bool>,
    // state allocator
    free_list: Vec<u32>,
    next_addr: u32,
    peak: u32,
    stats: PlaceStats,
}

impl<'a> Placer<'a> {
    fn new(g: &'a Eaig, p: &'a Partition, opts: &'a PlaceOptions) -> Self {
        let mut locals = Vec::with_capacity(p.sources.len() + p.nodes.len());
        let mut local_of = HashMap::new();
        for &s in &p.sources {
            local_of.insert(s.0, locals.len() as u32);
            locals.push(s);
        }
        let n_sources = locals.len();
        for &n in &p.nodes {
            local_of.insert(n.0, locals.len() as u32);
            locals.push(n);
        }
        let n = locals.len();
        let mut fanins = vec![[(0u32, false); 2]; n];
        let mut consumers = vec![Vec::new(); n];
        for (li, &node) in locals.iter().enumerate().skip(n_sources) {
            if let Node::And(a, b) = g.node(node) {
                let fa = (local_of[&a.node().0], a.is_inverted());
                let fb = (local_of[&b.node().0], b.is_inverted());
                fanins[li] = [fa, fb];
                consumers[fa.0 as usize].push(li as u32);
                consumers[fb.0 as usize].push(li as u32);
            }
        }
        let mut realized = vec![false; n];
        for r in realized.iter_mut().take(n_sources) {
            *r = true;
        }
        let mut is_sink = vec![false; n];
        for s in &p.sinks {
            if let Some(&li) = local_of.get(&s.node().0) {
                is_sink[li as usize] = true;
            }
        }
        Placer {
            g,
            p,
            opts,
            folds: opts.core_width.trailing_zeros() as usize,
            locals,
            local_of,
            n_sources,
            fanins,
            consumers,
            realized,
            addr: vec![None; n],
            is_sink,
            free_list: Vec::new(),
            next_addr: 0,
            peak: 0,
            stats: PlaceStats::default(),
        }
    }

    fn alloc(&mut self) -> Result<u32, PlaceError> {
        if let Some(a) = self.free_list.pop() {
            return Ok(a);
        }
        if self.next_addr >= self.opts.core_width {
            return Err(PlaceError::Unmappable(format!(
                "state overflow: more than {} live bits",
                self.opts.core_width
            )));
        }
        let a = self.next_addr;
        self.next_addr += 1;
        self.peak = self.peak.max(self.next_addr);
        Ok(a)
    }

    fn run(mut self) -> Result<(CoreProgram, PlaceStats), PlaceError> {
        // Load sources into state (constants excluded: the permutation has
        // a native const-false source).
        let mut inputs = Vec::new();
        for li in 0..self.n_sources {
            let node = self.locals[li];
            if matches!(self.g.node(node), Node::Const0) {
                continue;
            }
            let a = self.alloc()?;
            self.addr[li] = Some(a);
            inputs.push((node, a));
        }
        // Partition logic depth (for stats): remaining level at start.
        let init_levels = self.remaining_levels();
        self.stats.depth = init_levels.iter().copied().max().unwrap_or(0);

        let mut layers: Vec<BoomerangLayer> = Vec::new();
        let mut remaining: usize = (self.n_sources..self.locals.len())
            .filter(|&li| !self.realized[li])
            .count();
        while remaining > 0 {
            let placed = self.place_one_layer(&mut layers)?;
            if placed == 0 {
                return Err(PlaceError::Unmappable(
                    "layer made no progress (width exhausted)".into(),
                ));
            }
            remaining -= placed;
        }
        self.stats.layers = layers.len() as u32;
        self.stats.state_peak = self.peak;

        // Publish sinks.
        let mut outputs = Vec::new();
        for s in &self.p.sinks {
            let node = s.node();
            if matches!(self.g.node(node), Node::Const0) {
                outputs.push(OutputSource::Const(s.is_inverted()));
                continue;
            }
            let li = self.local_of[&node.0] as usize;
            let addr = self.addr[li].ok_or_else(|| {
                PlaceError::Unmappable(format!("sink n{} has no state address", node.0))
            })?;
            outputs.push(OutputSource::State {
                addr,
                invert: s.is_inverted(),
            });
        }
        let prog = CoreProgram {
            width: self.opts.core_width,
            state_size: self.peak.max(1),
            inputs,
            layers,
            outputs,
        };
        Ok((prog, self.stats))
    }

    /// Remaining forward logic level per local (0 = available).
    fn remaining_levels(&self) -> Vec<u32> {
        let mut lvl = vec![0u32; self.locals.len()];
        for li in self.n_sources..self.locals.len() {
            if self.realized[li] {
                continue;
            }
            let [a, b] = self.fanins[li];
            lvl[li] = lvl[a.0 as usize].max(lvl[b.0 as usize]) + 1;
        }
        lvl
    }

    /// Reverse depth (timing criticality) per local over the remaining AIG.
    fn criticalities(&self) -> Vec<u32> {
        let mut crit = vec![0u32; self.locals.len()];
        for li in (self.n_sources..self.locals.len()).rev() {
            if self.realized[li] {
                continue;
            }
            for &c in &self.consumers[li] {
                if !self.realized[c as usize] {
                    crit[li] = crit[li].max(crit[c as usize] + 1);
                }
            }
        }
        crit
    }

    /// Fills one layer; returns the number of distinct gates realized.
    fn place_one_layer(&mut self, layers: &mut Vec<BoomerangLayer>) -> Result<usize, PlaceError> {
        let width = self.opts.core_width as usize;
        let folds = self.folds;
        let rem_level = self.remaining_levels();
        let crit = self.criticalities();
        // occupancy per level: level 0 has `width` slots, level k has
        // width >> k.
        let mut occ: Vec<Vec<Option<SlotOp>>> =
            (0..=folds).map(|k| vec![None; width >> k]).collect();
        // used-slot counts per subtree root for pruning.
        let mut used: Vec<Vec<u32>> = (0..=folds).map(|k| vec![0u32; width >> k]).collect();
        let subtree_cap = |k: usize| -> u32 { ((2usize << k) - 1) as u32 };
        // first placement slot of each gate placed this layer: local ->
        // (level, slot) of its Compute op.
        let mut placed_at: HashMap<u32, (usize, usize)> = HashMap::new();

        for level in 1..=folds {
            // Candidates at this remaining level, most critical first.
            let mut cands: Vec<u32> = (self.n_sources..self.locals.len())
                .filter(|&li| {
                    !self.realized[li]
                        && rem_level[li] as usize == level
                        && !placed_at.contains_key(&(li as u32))
                })
                .map(|li| li as u32)
                .collect();
            if self.opts.timing_driven {
                cands.sort_by_key(|&li| std::cmp::Reverse(crit[li as usize]));
            }
            let slots = width >> level;
            for v in cands {
                let mut attempts = 0u32;
                let mut j = 0usize;
                while j < slots && attempts < self.opts.max_slot_attempts {
                    if occ[level][j].is_some() || used[level][j] >= subtree_cap(level) {
                        j += 1;
                        continue;
                    }
                    attempts += 1;
                    let mut journal: Vec<(usize, usize)> = Vec::new();
                    if self.try_place(
                        v,
                        level,
                        j,
                        &rem_level,
                        &mut occ,
                        &mut used,
                        &mut placed_at,
                        &mut journal,
                    ) {
                        break;
                    }
                    // Roll back the failed attempt.
                    for &(k, s) in journal.iter().rev() {
                        if let Some(op) = occ[k][s].take() {
                            if let SlotOp::Compute { local, .. } = op {
                                if placed_at.get(&local) == Some(&(k, s)) {
                                    placed_at.remove(&local);
                                }
                            }
                            let mut kk = k;
                            let mut jj = s;
                            loop {
                                used[kk][jj] -= 1;
                                if kk == folds {
                                    break;
                                }
                                kk += 1;
                                jj >>= 1;
                            }
                        }
                    }
                    j += 1;
                }
            }
        }

        // Commit: build the layer.
        let mut layer = BoomerangLayer::new(self.opts.core_width);
        for (j, slot) in occ[0].iter().enumerate() {
            if let Some(SlotOp::Read { local }) = slot {
                let a = self.addr[*local as usize].expect("read of unaddressed value");
                layer.perm[j] = PermSource::State(a);
            }
        }
        for (k, row) in occ.iter().enumerate().take(folds + 1).skip(1) {
            for (j, slot) in row.iter().enumerate() {
                match slot {
                    Some(SlotOp::Compute { xa, xb, .. }) => {
                        layer.folds[k - 1].xa[j] = *xa;
                        layer.folds[k - 1].xb[j] = *xb;
                        self.stats.compute_slots += 1;
                    }
                    Some(SlotOp::Bypass { .. }) => {
                        layer.folds[k - 1].ob[j] = true;
                        self.stats.bypass_slots += 1;
                    }
                    _ => {}
                }
            }
        }
        // Writebacks for newly realized gates that are sinks or still have
        // unrealized consumers after this layer commits. Sorted so state
        // addresses are assigned deterministically.
        let mut newly: Vec<u32> = placed_at.keys().copied().collect();
        newly.sort_unstable();
        for &v in &newly {
            self.realized[v as usize] = true;
        }
        for &v in &newly {
            let needs = self.is_sink[v as usize]
                || self.consumers[v as usize]
                    .iter()
                    .any(|&c| !self.realized[c as usize]);
            if needs {
                let a = self.alloc()?;
                self.addr[v as usize] = Some(a);
                let (k, j) = placed_at[&v];
                layer.writeback[k - 1][j] = Some(a);
            }
        }
        // Free addresses whose value can never be read again.
        for li in 0..self.locals.len() {
            if let Some(a) = self.addr[li] {
                let dead = !self.is_sink[li]
                    && self.consumers[li]
                        .iter()
                        .all(|&c| self.realized[c as usize]);
                if dead {
                    self.addr[li] = None;
                    self.free_list.push(a);
                }
            }
        }
        layers.push(layer);
        Ok(newly.len())
    }

    /// The bit-mapping primitive of Fig 6. Attempts to make the value of
    /// local `v` appear at slot (`level`, `slot`); occupies slots via
    /// `occ`/`used` and records them in `journal` for rollback.
    #[allow(clippy::too_many_arguments)]
    fn try_place(
        &mut self,
        v: u32,
        level: usize,
        slot: usize,
        rem_level: &[u32],
        occ: &mut [Vec<Option<SlotOp>>],
        used: &mut [Vec<u32>],
        placed_at: &mut HashMap<u32, (usize, usize)>,
        journal: &mut Vec<(usize, usize)>,
    ) -> bool {
        if occ[level][slot].is_some() {
            return false;
        }
        let vi = v as usize;
        let available = self.realized[vi] && self.addr[vi].is_some();
        let occupy = |occ: &mut [Vec<Option<SlotOp>>],
                      used: &mut [Vec<u32>],
                      journal: &mut Vec<(usize, usize)>,
                      folds: usize,
                      k: usize,
                      j: usize,
                      op: SlotOp| {
            occ[k][j] = Some(op);
            journal.push((k, j));
            let (mut kk, mut jj) = (k, j);
            loop {
                used[kk][jj] += 1;
                if kk == folds {
                    break;
                }
                kk += 1;
                jj >>= 1;
            }
        };
        if available {
            if level == 0 {
                occupy(
                    occ,
                    used,
                    journal,
                    self.folds,
                    0,
                    slot,
                    SlotOp::Read { local: v },
                );
                return true;
            }
            // Ride the value up a bypass chain rooted at the A child.
            if !self.try_place(
                v,
                level - 1,
                2 * slot,
                rem_level,
                occ,
                used,
                placed_at,
                journal,
            ) {
                return false;
            }
            occupy(
                occ,
                used,
                journal,
                self.folds,
                level,
                slot,
                SlotOp::Bypass { local: v },
            );
            return true;
        }
        // Unrealized gate (or an intra-layer duplicate recomputation).
        let rl = rem_level[vi] as usize;
        if rl > level || level == 0 {
            return false;
        }
        if rl < level {
            // Pad down with bypasses until the natural level.
            if !self.try_place(
                v,
                level - 1,
                2 * slot,
                rem_level,
                occ,
                used,
                placed_at,
                journal,
            ) {
                return false;
            }
            occupy(
                occ,
                used,
                journal,
                self.folds,
                level,
                slot,
                SlotOp::Bypass { local: v },
            );
            return true;
        }
        // Compute here: children are the two fanins.
        let [(fa, ia), (fb, ib)] = self.fanins[vi];
        if !self.try_place(
            fa,
            level - 1,
            2 * slot,
            rem_level,
            occ,
            used,
            placed_at,
            journal,
        ) {
            return false;
        }
        if !self.try_place(
            fb,
            level - 1,
            2 * slot + 1,
            rem_level,
            occ,
            used,
            placed_at,
            journal,
        ) {
            return false;
        }
        occupy(
            occ,
            used,
            journal,
            self.folds,
            level,
            slot,
            SlotOp::Compute {
                local: v,
                xa: ia,
                xb: ib,
            },
        );
        if let std::collections::hash_map::Entry::Vacant(e) = placed_at.entry(v) {
            e.insert((level, slot));
        } else {
            self.stats.duplicated_gates += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_partition::{partition, PartitionOptions};

    fn single_partition(g: &Eaig) -> gem_partition::Partition {
        let parts = partition(
            g,
            &PartitionOptions {
                target_parts: 1,
                ..Default::default()
            },
        );
        parts.stages[0].partitions[0].clone()
    }

    #[test]
    fn stats_account_for_slots() {
        let mut g = Eaig::new();
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let x = g.and(a, b);
        let y = g.and(x, c);
        g.output("o", y);
        let p = single_partition(&g);
        let (prog, stats) = place_partition(&g, &p, &PlaceOptions::default()).unwrap();
        assert_eq!(stats.depth, 2);
        assert_eq!(prog.layers.len(), 1, "2 levels fit one layer");
        assert!(stats.compute_slots >= 2);
        assert_eq!(stats.state_peak as usize, prog.state_size as usize);
    }

    #[test]
    fn multi_fanout_within_layer_duplicates() {
        // x = a&b feeds two consumers at the same level: within one layer
        // the fold tree cannot share a slot, so x is either recomputed or
        // the consumers land in a later layer.
        let mut g = Eaig::new();
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let d = g.input("d");
        let x = g.and(a, b);
        let y = g.and(x, c);
        let z = g.and(x, d);
        g.output("y", y);
        g.output("z", z);
        let p = single_partition(&g);
        let (prog, stats) = place_partition(&g, &p, &PlaceOptions::default()).unwrap();
        assert!(stats.duplicated_gates >= 1 || prog.layers.len() >= 2);
        // And it is still correct.
        for bits in 0..16u32 {
            let v = |i: u32| (bits >> i) & 1 == 1;
            let outs = prog.evaluate(|n| {
                // inputs are nodes 1..=4 in creation order
                v(n.0 - 1)
            });
            assert_eq!(outs[0], (v(0) && v(1)) && v(2));
            assert_eq!(outs[1], (v(0) && v(1)) && v(3));
        }
    }

    #[test]
    fn deep_chain_spans_multiple_layers() {
        let mut g = Eaig::new();
        let mut cur = g.input("i0");
        for k in 1..40 {
            let x = g.input(format!("i{k}"));
            cur = g.and(cur, x);
        }
        g.output("o", cur);
        let p = single_partition(&g);
        let opts = PlaceOptions {
            core_width: 256, // 8 fold levels per layer
            ..Default::default()
        };
        let (prog, stats) = place_partition(&g, &p, &opts).unwrap();
        assert_eq!(stats.depth, 39);
        assert!(prog.layers.len() >= 39 / 8);
        assert!(prog.layers.len() < 39, "layers must compress levels");
    }

    #[test]
    fn inverted_sink_polarity_respected() {
        let mut g = Eaig::new();
        let a = g.input("a");
        let b = g.input("b");
        let x = g.and(a, b);
        g.output("o", x.flip());
        let p = single_partition(&g);
        let (prog, _) = place_partition(&g, &p, &PlaceOptions::default()).unwrap();
        let outs = prog.evaluate(|_| true);
        assert!(!outs[0], "!(1&1) must be false");
        let outs = prog.evaluate(|_| false);
        assert!(outs[0], "!(0&0) must be true");
    }

    #[test]
    fn constant_sink_emitted_as_const() {
        let mut g = Eaig::new();
        let a = g.input("a");
        g.output("t", gem_aig::Lit::TRUE);
        g.output("f", gem_aig::Lit::FALSE);
        g.output("a", a);
        let p = single_partition(&g);
        let (prog, _) = place_partition(&g, &p, &PlaceOptions::default()).unwrap();
        let outs = prog.evaluate(|_| false);
        assert_eq!(outs, vec![true, false, false]);
    }
}
