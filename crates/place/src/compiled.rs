//! Threaded-code lowering of boomerang layers (the compiled execution
//! backend's program form; see `docs/COMPILED.md`).
//!
//! [`BoomerangLayer`] is the *authoritative* program representation: an
//! enum-tagged permutation, per-slot `bool` fold constants, and a dense
//! `Option` writeback plan. The reference executors
//! ([`BoomerangLayer::execute`] / [`execute_words`]) re-interpret those
//! tags every cycle — an enum match per gathered bit, a `bool → Word`
//! splat per fold operand, and an `Option` test per fold slot, millions
//! of times per simulated second. That per-instruction dispatch is
//! exactly what BENCH_parallel.json shows dominating wall clock.
//!
//! [`CompiledLayer::lower`] resolves all of it **once**:
//!
//! * the permutation becomes a flat `u32` index array
//!   ([`PERM_CONST`] marks constant-zero slots),
//! * fold constants become pre-splatted lane mask words (one machine
//!   [`Word`] per slot), so the inner loop is three bitwise ops on
//!   `Word`s with no branches,
//! * the writeback plan becomes a sparse `(slot, addr)` list — only
//!   slots that actually write are visited,
//! * the fold pyramid runs over two caller-provided ping-pong row
//!   buffers (each level reads adjacent pairs from one, writes disjoint
//!   slots of the other, so the inner loop is a bounds-check-free,
//!   vectorizable zip) — zero allocations per layer per cycle.
//!
//! The lowering is a pure data transformation: no semantic choice is
//! made here, so equivalence with the interpreter reduces to the
//! mechanical claims above, which `gem-sim`'s backend-equivalence fuzz
//! matrix and the golden VCD corpus check end to end.
//!
//! [`execute_words`]: BoomerangLayer::execute_words

use crate::layer::{splat, BoomerangLayer, PermSource, Word};

/// Sentinel in [`CompiledLayer::perm`] for a constant-zero row slot
/// (lowered from [`PermSource::ConstFalse`]).
pub const PERM_CONST: u32 = u32::MAX;

/// One fold level, fully resolved: pre-splatted constant masks and the
/// sparse write-back list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldOp {
    /// XOR mask on operand A, one lane word per slot.
    pub xa: Box<[Word]>,
    /// XOR mask on operand B.
    pub xb: Box<[Word]>,
    /// OR mask on operand B after the XOR (`Word::MAX` bypasses B).
    pub ob: Box<[Word]>,
    /// `(slot, state address)` pairs that write back, in slot order
    /// (matching the interpreter's within-level write order).
    pub writeback: Box<[(u32, u32)]>,
}

/// A [`BoomerangLayer`] lowered to threaded-code form; see the module
/// docs. Produced once at bitstream load, executed every cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledLayer {
    /// Row width (power of two).
    pub width: u32,
    /// Gather indices into core state; [`PERM_CONST`] loads zero.
    pub perm: Box<[u32]>,
    /// Fold levels, widest first.
    pub folds: Box<[FoldOp]>,
}

impl CompiledLayer {
    /// Lowers a layer. Pure and total: every well-formed layer lowers
    /// without panicking (the decoder has already bounds-checked state
    /// addresses against the core width).
    pub fn lower(layer: &BoomerangLayer) -> CompiledLayer {
        let perm = layer
            .perm
            .iter()
            .map(|s| match s {
                PermSource::State(a) => *a,
                PermSource::ConstFalse => PERM_CONST,
            })
            .collect();
        let folds = layer
            .folds
            .iter()
            .zip(&layer.writeback)
            .map(|(fc, wb)| FoldOp {
                xa: fc.xa.iter().map(|&b| splat(b)).collect(),
                xb: fc.xb.iter().map(|&b| splat(b)).collect(),
                ob: fc.ob.iter().map(|&b| splat(b)).collect(),
                writeback: wb
                    .iter()
                    .enumerate()
                    .filter_map(|(j, s)| s.map(|addr| (j as u32, addr)))
                    .collect(),
            })
            .collect();
        CompiledLayer {
            width: layer.width,
            perm,
            folds,
        }
    }

    /// Rewrites constant-zero gather slots ([`PERM_CONST`]) to load from
    /// `zero_slot` instead — a real state address the caller guarantees
    /// holds zero (the virtual GPU's compiled backend appends one slot
    /// past the core width). The sentinel compare in the gather then
    /// never fires, and every padding slot loads the same hot cache
    /// line instead of taking the branch.
    pub fn redirect_consts(&mut self, zero_slot: u32) {
        for p in self.perm.iter_mut() {
            if *p == PERM_CONST {
                *p = zero_slot;
            }
        }
    }

    /// Number of fold levels.
    pub fn fold_levels(&self) -> usize {
        self.folds.len()
    }

    /// Shared-memory accesses one execution performs — must reconcile
    /// with the cost model `gem-vgpu` charges per layer
    /// (gather + fold reads = `2 × width`).
    pub fn shared_accesses(&self) -> u64 {
        2 * u64::from(self.width)
    }

    /// Fold ALU operations one execution performs (`width − 1` slots in
    /// the full pyramid).
    pub fn alu_ops(&self) -> u64 {
        self.folds.iter().map(|f| f.xa.len() as u64).sum()
    }

    /// Block-level synchronizations one execution implies (one per fold
    /// level plus the gather barrier).
    pub fn block_syncs(&self) -> u64 {
        1 + self.folds.len() as u64
    }

    /// Executes the lowered layer lane-wise against `state`, using
    /// `row` and `next` as reusable ping-pong fold buffers (cleared and
    /// refilled; their capacity is retained across calls so steady-state
    /// execution allocates nothing). Bit-identical to
    /// [`BoomerangLayer::execute_words`] on the layer it was lowered
    /// from.
    ///
    /// The two-buffer shape is deliberate: each level reads adjacent
    /// pairs from `row` and writes disjoint slots of `next`, so the
    /// inner loop is expressible as a zip over `chunks_exact(2)` —
    /// bounds-check-free and auto-vectorizable — instead of five
    /// index-checked accesses per slot.
    pub fn execute_words_into(
        &self,
        state: &mut [Word],
        row: &mut Vec<Word>,
        next: &mut Vec<Word>,
    ) {
        row.clear();
        row.extend(self.perm.iter().map(|&p| {
            if p == PERM_CONST {
                0
            } else {
                state[p as usize]
            }
        }));
        for f in self.folds.iter() {
            let slots = f.xa.len();
            // Grow-only: every slot is overwritten below, so stale
            // contents are harmless and the per-level memset of a
            // `resize` would be pure waste.
            if next.len() < slots {
                next.resize(slots, 0);
            }
            let dst = &mut next[..slots];
            let src = &row[..2 * slots];
            for ((d, pair), ((xa, xb), ob)) in dst
                .iter_mut()
                .zip(src.chunks_exact(2))
                .zip(f.xa.iter().zip(f.xb.iter()).zip(f.ob.iter()))
            {
                *d = (pair[0] ^ xa) & ((pair[1] ^ xb) | ob);
            }
            for &(slot, addr) in f.writeback.iter() {
                state[addr as usize] = dst[slot as usize];
            }
            std::mem::swap(row, next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_layer(seed: u64, width: u32, state_size: usize) -> BoomerangLayer {
        let mut x = seed;
        let mut layer = BoomerangLayer::new(width);
        for p in layer.perm.iter_mut() {
            *p = if xorshift(&mut x).is_multiple_of(4) {
                PermSource::ConstFalse
            } else {
                PermSource::State((xorshift(&mut x) % state_size as u64) as u32)
            };
        }
        for fc in layer.folds.iter_mut() {
            for j in 0..fc.xa.len() {
                fc.xa[j] = xorshift(&mut x) & 1 == 1;
                fc.xb[j] = xorshift(&mut x) & 1 == 1;
                fc.ob[j] = xorshift(&mut x) & 1 == 1;
            }
        }
        for wb in layer.writeback.iter_mut() {
            for slot in wb.iter_mut() {
                if xorshift(&mut x).is_multiple_of(2) {
                    *slot = Some((xorshift(&mut x) % state_size as u64) as u32);
                }
            }
        }
        layer
    }

    /// The compiled executor must be bit-identical to `execute_words`
    /// on randomized layers, including the state left behind by
    /// aliasing writebacks, and the ping-pong buffers must be reusable
    /// across layers without cross-talk.
    #[test]
    fn compiled_layer_matches_interpreter_bit_exactly() {
        let state_size = 40usize;
        let mut row = Vec::new();
        let mut next = Vec::new();
        for trial in 0..64u64 {
            let width = [2u32, 4, 16, 64][trial as usize % 4];
            let layer = random_layer(0xC0DE ^ trial, width, state_size);
            let comp = CompiledLayer::lower(&layer);
            let mut x = trial.wrapping_mul(0x5851_F42D_4C95_7F2D) + 1;
            let words: Vec<Word> = (0..state_size).map(|_| xorshift(&mut x)).collect();
            let mut want = words.clone();
            layer.execute_words(&mut want);
            let mut got = words;
            comp.execute_words_into(&mut got, &mut row, &mut next);
            assert_eq!(got, want, "trial {trial} width {width} diverged");
        }
    }

    #[test]
    fn lowering_resolves_tags_and_masks() {
        let mut layer = BoomerangLayer::new(4);
        layer.perm = vec![
            PermSource::State(3),
            PermSource::ConstFalse,
            PermSource::State(0),
            PermSource::State(1),
        ];
        layer.folds[0].xa[1] = true;
        layer.folds[0].ob[0] = true;
        layer.writeback[0][1] = Some(2);
        layer.writeback[1][0] = Some(3);
        let comp = CompiledLayer::lower(&layer);
        assert_eq!(&*comp.perm, &[3, PERM_CONST, 0, 1]);
        assert_eq!(&*comp.folds[0].xa, &[0, Word::MAX]);
        assert_eq!(&*comp.folds[0].ob, &[Word::MAX, 0]);
        assert_eq!(&*comp.folds[0].writeback, &[(1, 2)]);
        assert_eq!(&*comp.folds[1].writeback, &[(0, 3)]);
    }

    /// The lowered op counts are the cost model's layer charges.
    #[test]
    fn op_counts_match_cost_model() {
        for width in [2u32, 8, 64, 256] {
            let comp = CompiledLayer::lower(&random_layer(width as u64, width, 16));
            assert_eq!(comp.shared_accesses(), 2 * u64::from(width));
            assert_eq!(comp.alu_ops(), u64::from(width) - 1);
            assert_eq!(comp.block_syncs(), 1 + u64::from(width.trailing_zeros()));
            assert_eq!(comp.fold_levels(), width.trailing_zeros() as usize);
        }
    }

    /// A neutral layer (all-const perm) still executes: the row is all
    /// zeros and nothing writes back.
    #[test]
    fn constant_layer_is_inert() {
        let layer = BoomerangLayer::new(8);
        let comp = CompiledLayer::lower(&layer);
        let mut state = vec![0xDEAD_BEEF_DEAD_BEEF; 4];
        let (mut row, mut next) = (Vec::new(), Vec::new());
        comp.execute_words_into(&mut state, &mut row, &mut next);
        assert_eq!(state, vec![0xDEAD_BEEF_DEAD_BEEF; 4]);
    }
}
