//! Logic placement onto boomerang-shaped executor layers (paper §III-A
//! Fig 3, §III-D Fig 6, Algorithm 2).
//!
//! Each virtual Boolean processor core holds up to 8192 bits of state and
//! executes a sequence of **boomerang layers**. A layer starts with a bit
//! permutation that gathers 8192 state bits into a working row, then folds
//! the row 13 times: fold level *k* halves the row, each output slot
//! computing
//!
//! ```text
//! out = (A ^ xa) & ((B ^ xb) | ob)
//! ```
//!
//! from its two child slots, with per-slot constant bits `xa`, `xb`, `ob`.
//! Inverters are free (absorbed into the XOR masks) and `ob = 1` bypasses
//! the B operand so a value can ride up the pyramid unchanged (the dashed
//! lines of Fig 6). Every slot's output may be written back to core state,
//! making it available to later layers.
//!
//! A single layer therefore absorbs up to 13 logic levels with **one**
//! permutation/synchronization, where a levelized executor would pay one
//! per level — the >5× reduction the paper measures for deep long-tailed
//! logic.
//!
//! [`place_partition`] implements the iterative timing-driven bit
//! placement of Algorithm 2 and returns a [`CoreProgram`] that can be
//! executed directly ([`CoreProgram::evaluate`]) or assembled into the GEM
//! bitstream by `gem-isa`.

#![deny(unsafe_code)]

pub mod compiled;
pub mod layer;
pub mod placer;

pub use compiled::{CompiledLayer, FoldOp, PERM_CONST};
pub use layer::{
    splat, BoomerangLayer, CoreProgram, FoldConsts, LaneWord, OutputSource, PermSource, Word,
};
pub use placer::{place_partition, PlaceError, PlaceOptions, PlaceStats};

/// Default core width in bits (256 GPU threads × 32-bit words).
pub const CORE_WIDTH: u32 = 8192;
