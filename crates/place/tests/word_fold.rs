//! Word-fold property suite: the safety argument for the u32 → u64
//! lane-word lift.
//!
//! The boomerang fold network is pure bitwise logic, so widening the
//! machine word cannot change any lane's value — *if* the executor
//! really is lane-oblivious. These tests pin that claim directly:
//! `execute_words::<u64>` over lanes 0..64 must be bit-identical to two
//! independent `u32`-half executions (low 32 lanes / high 32 lanes)
//! glued back together, `splat` must equal a per-lane poke, and the
//! compiled lowering must agree with the generic interpreter at the
//! full 64-lane width.

use gem_place::{
    splat, BoomerangLayer, CompiledLayer, FoldConsts, LaneWord, PermSource, Word, CORE_WIDTH,
};

fn xorshift(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_layer(x: &mut u64, width: u32, state_size: usize) -> BoomerangLayer {
    let mut layer = BoomerangLayer::new(width);
    for p in layer.perm.iter_mut() {
        *p = if xorshift(x).is_multiple_of(4) {
            PermSource::ConstFalse
        } else {
            PermSource::State((xorshift(x) % state_size as u64) as u32)
        };
    }
    for fc in layer.folds.iter_mut() {
        for j in 0..fc.xa.len() {
            fc.xa[j] = xorshift(x) & 1 == 1;
            fc.xb[j] = xorshift(x) & 1 == 1;
            fc.ob[j] = xorshift(x) & 1 == 1;
        }
    }
    for wb in layer.writeback.iter_mut() {
        for slot in wb.iter_mut() {
            if xorshift(x).is_multiple_of(2) {
                *slot = Some((xorshift(x) % state_size as u64) as u32);
            }
        }
    }
    layer
}

/// Random multi-layer programs (layers share state, so writebacks from
/// one layer feed the next — the aliasing the machine actually runs).
fn random_program(x: &mut u64, state_size: usize) -> Vec<BoomerangLayer> {
    let n = 2 + (xorshift(x) % 3) as usize;
    (0..n)
        .map(|_| {
            let width = [4u32, 16, 64, 128][(xorshift(x) % 4) as usize];
            random_layer(x, width, state_size)
        })
        .collect()
}

/// The tentpole property: executing the 64-lane word equals executing
/// the low and high 32-lane halves independently and gluing the halves
/// back together. This is what makes the representation swap safe — no
/// information flows between lanes, so a 64-wide machine is exactly two
/// 32-wide machines sharing the instruction stream.
#[test]
fn u64_fold_equals_two_glued_u32_half_folds() {
    let mut x = 0x5EED_0F64_u64;
    for trial in 0..48u64 {
        let state_size = 24 + (xorshift(&mut x) % 40) as usize;
        let layers = random_program(&mut x, state_size);
        let wide: Vec<u64> = (0..state_size).map(|_| xorshift(&mut x)).collect();
        let mut lo: Vec<u32> = wide.iter().map(|&w| w as u32).collect();
        let mut hi: Vec<u32> = wide.iter().map(|&w| (w >> 32) as u32).collect();
        let mut got = wide.clone();
        for layer in &layers {
            layer.execute_words::<u64>(&mut got);
            layer.execute_words::<u32>(&mut lo);
            layer.execute_words::<u32>(&mut hi);
        }
        let glued: Vec<u64> = lo
            .iter()
            .zip(hi.iter())
            .map(|(&l, &h)| u64::from(l) | (u64::from(h) << 32))
            .collect();
        assert_eq!(got, glued, "trial {trial}: u64 fold != glued u32 halves");
    }
}

/// Same glue property for the compiled (threaded-code) form: the
/// lowered layer at `Word = u64` must match the generic `u32`
/// interpreter run twice, half per half.
#[test]
fn compiled_u64_fold_equals_glued_u32_half_interpreters() {
    let mut x = 0x00C0_DE64_u64;
    let (mut row, mut next) = (Vec::new(), Vec::new());
    for trial in 0..48u64 {
        let state_size = 24 + (xorshift(&mut x) % 40) as usize;
        let layers = random_program(&mut x, state_size);
        let compiled: Vec<CompiledLayer> = layers.iter().map(CompiledLayer::lower).collect();
        let wide: Vec<Word> = (0..state_size).map(|_| xorshift(&mut x)).collect();
        let mut lo: Vec<u32> = wide.iter().map(|&w| w as u32).collect();
        let mut hi: Vec<u32> = wide.iter().map(|&w| (w >> 32) as u32).collect();
        let mut got = wide.clone();
        for (layer, comp) in layers.iter().zip(&compiled) {
            comp.execute_words_into(&mut got, &mut row, &mut next);
            layer.execute_words::<u32>(&mut lo);
            layer.execute_words::<u32>(&mut hi);
        }
        let glued: Vec<Word> = lo
            .iter()
            .zip(hi.iter())
            .map(|(&l, &h)| Word::from(l) | (Word::from(h) << 32))
            .collect();
        assert_eq!(
            got, glued,
            "trial {trial}: compiled u64 != glued u32 halves"
        );
    }
}

/// `splat` broadcast must equal poking the constant into each of the 64
/// lanes individually, and the trait constants must be consistent.
#[test]
fn splat_broadcast_equals_per_lane_poke() {
    for v in [false, true] {
        let mut poked: Word = 0;
        for lane in 0..Word::BITS {
            if v {
                poked |= 1 << lane;
            }
        }
        assert_eq!(splat(v), poked);
        assert_eq!(
            <u32 as LaneWord>::broadcast(v),
            if v { u32::MAX } else { 0 }
        );
        // Every lane of the splatted word reads back the constant.
        for lane in 0..Word::BITS {
            assert_eq!((splat(v) >> lane) & 1 == 1, v, "lane {lane}");
        }
    }
    assert_eq!(<Word as LaneWord>::LANES, 64);
    assert_eq!(<u32 as LaneWord>::LANES, 32);
    assert_eq!(<Word as LaneWord>::ONES, Word::MAX);
    assert_eq!(<Word as LaneWord>::ZERO, 0);
}

/// A lane above 31 must actually influence the fold result — guards
/// against a silent truncation back to 32 lanes anywhere in the path.
#[test]
fn high_lanes_are_live() {
    // A lane-63-only input difference must stay confined to lane 63
    // through random layers (no cross-lane leakage)...
    let mut x = 0xA11_1A9E5u64;
    let state_size = 16usize;
    for _ in 0..16 {
        let layer = random_layer(&mut x, 16, state_size);
        let addr = (xorshift(&mut x) % state_size as u64) as usize;
        let base: Vec<Word> = (0..state_size).map(|_| xorshift(&mut x)).collect();
        let mut a = base.clone();
        let mut b = base;
        b[addr] ^= 1 << 63;
        layer.execute_words::<Word>(&mut a);
        layer.execute_words::<Word>(&mut b);
        let low_mask: Word = (1 << 63) - 1;
        for (i, (&wa, &wb)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(
                wa & low_mask,
                wb & low_mask,
                "low lanes leaked at state {i}"
            );
        }
    }
    // ...and a pass-through layer (ob bypass) must carry lane 63: a
    // flip at the source shows up at the writeback target.
    let mut layer = BoomerangLayer::new(2);
    layer.perm = vec![PermSource::State(0), PermSource::ConstFalse];
    layer.folds[0].ob[0] = true; // B forced 1 → out = A
    layer.writeback[0][0] = Some(1);
    let mut state: Vec<Word> = vec![1 << 63, 0];
    layer.execute_words::<Word>(&mut state);
    assert_eq!(state[1], 1 << 63, "lane 63 dropped by pass-through fold");
}

/// The default core width still divides evenly into lane words — the
/// ISA row shapes don't change with the word width.
#[test]
fn core_width_is_word_aligned() {
    assert_eq!(CORE_WIDTH % <Word as LaneWord>::LANES, 0);
    let _ = FoldConsts::neutral(4); // module link sanity
}
