//! End-to-end placement correctness: synthesize RTL → partition → place,
//! then co-simulate each CoreProgram against the golden E-AIG simulator.

use gem_aig::{Eaig, Lit};
use gem_netlist::ModuleBuilder;
use gem_partition::{partition, PartitionOptions, Partitioning};
use gem_place::{place_partition, PlaceOptions};
use gem_sim::EaigSim;
use gem_synth::{synthesize, SynthOptions};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Places every partition and checks its outputs against the golden model
/// over `cycles` random cycles.
fn check_placement(g: &Eaig, parts: &Partitioning, opts: &PlaceOptions, cycles: usize, seed: u64) {
    let programs: Vec<Vec<_>> = parts
        .stages
        .iter()
        .map(|s| {
            s.partitions
                .iter()
                .map(|p| place_partition(g, p, opts).expect("mappable").0)
                .collect()
        })
        .collect();
    let mut gold = EaigSim::new(g);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n_inputs = g.inputs().len();
    for cycle in 0..cycles {
        for i in 0..n_inputs {
            gold.set_input(i, rng.gen_bool(0.5));
        }
        gold.eval();
        for (si, stage_programs) in programs.iter().enumerate() {
            for (pi, prog) in stage_programs.iter().enumerate() {
                let outs = prog.evaluate(|node| gold.lit(Lit::from_node(node)));
                let sinks = &parts.stages[si].partitions[pi].sinks;
                for (k, &sink) in sinks.iter().enumerate() {
                    assert_eq!(
                        outs[k],
                        gold.lit(sink),
                        "cycle {cycle}, stage {si}, partition {pi}, sink {sink}"
                    );
                }
            }
        }
        gold.step();
    }
}

fn small_opts(width: u32) -> PlaceOptions {
    PlaceOptions {
        core_width: width,
        ..Default::default()
    }
}

/// A random sequential mixer circuit.
fn random_circuit(n_inputs: usize, gates: usize, seed: u64) -> Eaig {
    let mut g = Eaig::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut lits: Vec<Lit> = (0..n_inputs).map(|i| g.input(format!("i{i}"))).collect();
    let ffs: Vec<Lit> = (0..4).map(|_| g.ff(false)).collect();
    lits.extend(ffs.iter().copied());
    for _ in 0..gates {
        let a = lits[rng.gen_range(0..lits.len())];
        let b = lits[rng.gen_range(0..lits.len())];
        let l = match rng.gen_range(0..3) {
            0 => g.and(a, b),
            1 => g.or(a, b),
            _ => g.xor(a, b),
        };
        lits.push(l);
    }
    for (k, &q) in ffs.iter().enumerate() {
        let src = lits[lits.len() - 1 - k];
        g.set_ff_next(q, src);
    }
    let last = *lits.last().expect("nonempty");
    g.output("o", last);
    g
}

#[test]
fn combinational_placement_matches_golden() {
    let g = random_circuit(8, 60, 11);
    let parts = partition(&g, &PartitionOptions::default());
    check_placement(&g, &parts, &small_opts(256), 40, 1);
}

#[test]
fn multi_partition_placement_matches_golden() {
    let g = random_circuit(12, 150, 22);
    let parts = partition(
        &g,
        &PartitionOptions {
            target_parts: 4,
            ..Default::default()
        },
    );
    check_placement(&g, &parts, &small_opts(256), 30, 2);
}

#[test]
fn two_stage_placement_matches_golden() {
    let g = random_circuit(12, 200, 33);
    let parts = partition(
        &g,
        &PartitionOptions {
            target_parts: 4,
            stages: 2,
            ..Default::default()
        },
    );
    assert_eq!(parts.stages.len(), 2);
    check_placement(&g, &parts, &small_opts(512), 30, 3);
}

#[test]
fn synthesized_alu_places_correctly() {
    let mut b = ModuleBuilder::new("alu");
    let x = b.input("x", 8);
    let y = b.input("y", 8);
    let op = b.input("op", 1);
    let s = b.add(x, y);
    let d = b.sub(x, y);
    let r = b.mux(op, d, s);
    let acc = b.dff(8);
    let nxt = b.xor(acc, r);
    b.connect_dff(acc, nxt);
    b.output("r", r);
    b.output("acc", acc);
    let m = b.finish().unwrap();
    let synth = synthesize(&m, &SynthOptions::default()).unwrap();
    let parts = partition(
        &synth.eaig,
        &PartitionOptions {
            target_parts: 3,
            ..Default::default()
        },
    );
    check_placement(&synth.eaig, &parts, &small_opts(512), 50, 4);
}

#[test]
fn boomerang_layers_fewer_than_levels() {
    // Deep narrow logic: a 64-input XOR tree plus a long chain. With 13
    // levels absorbed per layer the layer count must be far below depth.
    let mut g = Eaig::new();
    let ins: Vec<Lit> = (0..32).map(|i| g.input(format!("i{i}"))).collect();
    let mut cur = g.xor_many(&ins);
    for k in 0..40 {
        cur = g.xor(cur, ins[k % ins.len()]);
    }
    g.output("o", cur);
    let parts = partition(
        &g,
        &PartitionOptions {
            target_parts: 1,
            ..Default::default()
        },
    );
    let p = &parts.stages[0].partitions[0];
    let (prog, stats) = place_partition(&g, p, &PlaceOptions::default()).unwrap();
    assert!(stats.depth >= 40, "depth {}", stats.depth);
    assert!(
        (prog.layers.len() as u32) * 4 < stats.depth,
        "{} layers for depth {}",
        prog.layers.len(),
        stats.depth
    );
    check_placement(&g, &parts, &PlaceOptions::default(), 20, 5);
}

#[test]
fn timing_driven_uses_no_more_layers_than_fifo() {
    let g = random_circuit(16, 400, 44);
    let parts = partition(
        &g,
        &PartitionOptions {
            target_parts: 1,
            ..Default::default()
        },
    );
    let p = &parts.stages[0].partitions[0];
    let (td, _) = place_partition(
        &g,
        p,
        &PlaceOptions {
            core_width: 1024,
            ..Default::default()
        },
    )
    .unwrap();
    let (fifo, _) = place_partition(
        &g,
        p,
        &PlaceOptions {
            core_width: 1024,
            timing_driven: false,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        td.layers.len() <= fifo.layers.len(),
        "timing-driven {} vs fifo {}",
        td.layers.len(),
        fifo.layers.len()
    );
}

#[test]
fn unmappable_partition_reports_error() {
    // 64 independent outputs cannot fit in a 16-bit-wide core.
    let mut g = Eaig::new();
    for i in 0..64 {
        let a = g.input(format!("a{i}"));
        let b = g.input(format!("b{i}"));
        let x = g.xor(a, b);
        g.output(format!("o{i}"), x);
    }
    let parts = partition(
        &g,
        &PartitionOptions {
            target_parts: 1,
            ..Default::default()
        },
    );
    let p = &parts.stages[0].partitions[0];
    let r = place_partition(&g, p, &small_opts(16));
    assert!(r.is_err());
}

#[test]
fn pass_through_sinks_work() {
    // FF next = input (no gates at all).
    let mut g = Eaig::new();
    let a = g.input("a");
    let q = g.ff(false);
    g.set_ff_next(q, a.flip());
    g.output("o", q);
    let parts = partition(&g, &PartitionOptions::default());
    check_placement(&g, &parts, &small_opts(64), 10, 6);
}
