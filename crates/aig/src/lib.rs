//! Extended and-inverter graphs (E-AIG) for the GEM flow.
//!
//! GEM "regards every RTL design as a set of partitions \[where\] each
//! partition is an extended and-inverter graph" (paper §III-A, Fig 2): an
//! AIG of two-input AND gates with free inverters on edges, *extended* with
//! D flip-flops and native RAM blocks of fixed geometry (13-bit address ×
//! 32-bit data). This crate provides
//!
//! * the [`Eaig`] graph with structural hashing and constant folding,
//! * free inverters as complemented [`Lit`] edges,
//! * two-phase flip-flop and RAM construction for feedback,
//! * depth-aware balanced n-ary builders (the "depth-optimized extended
//!   AIG synthesis" of §III-B),
//! * levelization and the long-tail level statistics of Observation 4.
//!
//! # Example
//!
//! ```
//! use gem_aig::Eaig;
//!
//! let mut g = Eaig::new();
//! let a = g.input("a");
//! let b = g.input("b");
//! let x = g.and(a, b);
//! let y = g.or(a, b);
//! let xor = g.and(x.flip(), y); // a ^ b via (!(a&b)) & (a|b)
//! g.output("xor", xor);
//! assert_eq!(g.levels().depth, 2);
//! ```

pub mod eaig;
pub mod levels;

pub use eaig::{Eaig, Ff, FfId, Lit, Node, NodeId, Ram, RamId, RAM_ADDR_BITS, RAM_DATA_BITS};
pub use levels::{LevelStats, Levels};
