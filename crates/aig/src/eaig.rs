//! The extended and-inverter graph.

use std::collections::HashMap;
use std::fmt;

/// Address width of the fixed GEM RAM block (8192 words).
pub const RAM_ADDR_BITS: usize = 13;
/// Data width of the fixed GEM RAM block.
pub const RAM_DATA_BITS: usize = 32;

/// Identifies a node in an [`Eaig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifies a flip-flop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FfId(pub u32);

/// Identifies a RAM block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RamId(pub u32);

/// An edge literal: a node reference plus an optional free inverter.
///
/// Inverters cost nothing in the E-AIG (the paper's fake library gives INV
/// gates 0ps delay); they are a single bit on the edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Constant false.
    pub const FALSE: Lit = Lit(0);
    /// Constant true.
    pub const TRUE: Lit = Lit(1);

    /// A positive (non-inverted) literal of `node`.
    pub fn from_node(node: NodeId) -> Lit {
        Lit(node.0 << 1)
    }

    /// The referenced node.
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// True if the edge carries an inverter.
    pub fn is_inverted(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal.
    #[must_use]
    pub fn flip(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Complements when `inv` is true.
    #[must_use]
    pub fn flip_if(self, inv: bool) -> Lit {
        Lit(self.0 ^ inv as u32)
    }

    /// Raw encoding (`node << 1 | inverted`), useful as a dense map key.
    pub fn code(self) -> u32 {
        self.0
    }

    /// Rebuilds a literal from [`code`](Self::code).
    pub fn from_code(code: u32) -> Lit {
        Lit(code)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}n{}",
            if self.is_inverted() { "!" } else { "" },
            self.node().0
        )
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A node in the graph. Node 0 is always the constant-false node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// Constant false (complemented edges yield true).
    Const0,
    /// Primary input; payload is the input index.
    Input(u32),
    /// Two-input AND gate.
    And(Lit, Lit),
    /// Current-state output of a flip-flop.
    FfOut(FfId),
    /// One bit of a RAM block's registered read data.
    RamOut {
        /// The RAM block.
        ram: RamId,
        /// Data bit index, `0..RAM_DATA_BITS`.
        bit: u8,
    },
}

/// A D flip-flop; clock is implicit and global.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ff {
    /// Next-state function.
    pub next: Lit,
    /// Power-on value.
    pub init: bool,
    /// The node exposing the current state.
    pub out: NodeId,
}

/// A fixed-geometry RAM block: 8192 × 32, one synchronous read port and
/// one write port. Reads are *read-first* (a simultaneous write to the
/// same address returns the old word).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ram {
    /// Write address bits, LSB first.
    pub write_addr: [Lit; RAM_ADDR_BITS],
    /// Write data bits, LSB first.
    pub write_data: [Lit; RAM_DATA_BITS],
    /// Active-high write enable.
    pub write_en: Lit,
    /// Read address bits, LSB first.
    pub read_addr: [Lit; RAM_ADDR_BITS],
    /// Nodes exposing the registered read data, LSB first.
    pub out: [NodeId; RAM_DATA_BITS],
}

/// An extended and-inverter graph.
///
/// Nodes are append-only and AND operands always precede the gate, so node
/// order is a topological order of the combinational logic. Structural
/// hashing and local rewrites (constant folding, `a∧a`, `a∧¬a`) are applied
/// automatically by [`and`](Self::and).
#[derive(Debug, Clone, Default)]
pub struct Eaig {
    nodes: Vec<Node>,
    /// Logic level per node, maintained incrementally on push.
    levels: Vec<u32>,
    ffs: Vec<Ff>,
    rams: Vec<Ram>,
    inputs: Vec<(String, NodeId)>,
    outputs: Vec<(String, Lit)>,
    strash: HashMap<(Lit, Lit), NodeId>,
}

impl Eaig {
    /// An empty graph containing only the constant node.
    pub fn new() -> Self {
        Eaig {
            nodes: vec![Node::Const0],
            levels: vec![0],
            ffs: Vec::new(),
            rams: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let level = match node {
            Node::And(a, b) => {
                self.levels[a.node().0 as usize].max(self.levels[b.node().0 as usize]) + 1
            }
            _ => 0,
        };
        self.nodes.push(node);
        self.levels.push(level);
        id
    }

    /// Adds a primary input and returns its (positive) literal.
    pub fn input(&mut self, name: impl Into<String>) -> Lit {
        let idx = self.inputs.len() as u32;
        let id = self.push(Node::Input(idx));
        self.inputs.push((name.into(), id));
        Lit::from_node(id)
    }

    /// Registers `lit` as a named primary output.
    pub fn output(&mut self, name: impl Into<String>, lit: Lit) {
        self.outputs.push((name.into(), lit));
    }

    /// AND of two literals, with constant folding, trivial-case rewrites,
    /// and structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Normalize operand order for hashing.
        let (a, b) = if a.code() <= b.code() { (a, b) } else { (b, a) };
        if a == Lit::FALSE {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if a == b {
            return a;
        }
        if a == b.flip() {
            return Lit::FALSE;
        }
        if let Some(&id) = self.strash.get(&(a, b)) {
            return Lit::from_node(id);
        }
        let id = self.push(Node::And(a, b));
        self.strash.insert((a, b), id);
        Lit::from_node(id)
    }

    /// OR via De Morgan (free inverters).
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a.flip(), b.flip()).flip()
    }

    /// XOR as two levels of ANDs.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let nand = self.and(a, b).flip();
        let or = self.or(a, b);
        self.and(nand, or)
    }

    /// 2:1 multiplexer `if s { t } else { f }`.
    pub fn mux(&mut self, s: Lit, t: Lit, f: Lit) -> Lit {
        if t == f {
            return t;
        }
        let st = self.and(s, t);
        let sf = self.and(s.flip(), f);
        self.or(st, sf)
    }

    /// Depth-balanced AND over any number of literals.
    ///
    /// Operands are combined lowest-level-first (a Huffman-style reduction
    /// tree), which is the workhorse of GEM's depth-optimized synthesis:
    /// the paper's fake 1ps-AND/0ps-INV library makes timing-driven
    /// synthesis equivalent to this depth minimization.
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::TRUE, Self::and)
    }

    /// Depth-balanced OR.
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Self::or)
    }

    /// Depth-balanced XOR.
    pub fn xor_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Self::xor)
    }

    fn reduce_balanced(
        &mut self,
        lits: &[Lit],
        empty: Lit,
        mut op: impl FnMut(&mut Self, Lit, Lit) -> Lit,
    ) -> Lit {
        match lits.len() {
            0 => return empty,
            1 => return lits[0],
            _ => {}
        }
        // Min-heap on (level, insertion order) — combine the two shallowest
        // operands first to minimize the final depth.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<(Reverse<u32>, Reverse<u32>, Lit)> = lits
            .iter()
            .enumerate()
            .map(|(i, &l)| (Reverse(self.level_of(l)), Reverse(i as u32), l))
            .collect();
        let mut order = lits.len() as u32;
        while heap.len() > 1 {
            let (_, _, a) = heap.pop().expect("heap len > 1");
            let (_, _, b) = heap.pop().expect("heap len > 1");
            let r = op(self, a, b);
            heap.push((Reverse(self.level_of(r)), Reverse(order), r));
            order += 1;
        }
        heap.pop().expect("non-empty heap").2
    }

    /// Logic level of the node behind a literal (inverters are free).
    pub fn level_of(&self, l: Lit) -> u32 {
        self.levels[l.node().0 as usize]
    }

    /// Creates a flip-flop with the given power-on value; returns its
    /// state literal. Wire its input later with
    /// [`set_ff_next`](Self::set_ff_next).
    pub fn ff(&mut self, init: bool) -> Lit {
        let id = FfId(self.ffs.len() as u32);
        let out = self.push(Node::FfOut(id));
        self.ffs.push(Ff {
            next: Lit::FALSE,
            init,
            out,
        });
        Lit::from_node(out)
    }

    /// Sets the next-state function of a flip-flop created by
    /// [`ff`](Self::ff).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a flip-flop output literal.
    pub fn set_ff_next(&mut self, q: Lit, next: Lit) {
        let Node::FfOut(id) = self.nodes[q.node().0 as usize] else {
            panic!("set_ff_next target {q} is not a flip-flop output");
        };
        self.ffs[id.0 as usize].next = next.flip_if(q.is_inverted());
    }

    /// Creates a RAM block with all ports tied low; returns its id. Wire
    /// the ports later with [`set_ram_ports`](Self::set_ram_ports).
    pub fn ram(&mut self) -> RamId {
        let id = RamId(self.rams.len() as u32);
        let mut out = [NodeId(0); RAM_DATA_BITS];
        for (bit, slot) in out.iter_mut().enumerate() {
            *slot = self.push(Node::RamOut {
                ram: id,
                bit: bit as u8,
            });
        }
        self.rams.push(Ram {
            write_addr: [Lit::FALSE; RAM_ADDR_BITS],
            write_data: [Lit::FALSE; RAM_DATA_BITS],
            write_en: Lit::FALSE,
            read_addr: [Lit::FALSE; RAM_ADDR_BITS],
            out,
        });
        id
    }

    /// Wires the ports of a RAM block.
    pub fn set_ram_ports(
        &mut self,
        ram: RamId,
        read_addr: [Lit; RAM_ADDR_BITS],
        write_addr: [Lit; RAM_ADDR_BITS],
        write_data: [Lit; RAM_DATA_BITS],
        write_en: Lit,
    ) {
        let r = &mut self.rams[ram.0 as usize];
        r.read_addr = read_addr;
        r.write_addr = write_addr;
        r.write_data = write_data;
        r.write_en = write_en;
    }

    /// Read-data literal `bit` of a RAM block.
    pub fn ram_out(&self, ram: RamId, bit: usize) -> Lit {
        Lit::from_node(self.rams[ram.0 as usize].out[bit])
    }

    /// All nodes; index with [`NodeId`]. Order is topological for the
    /// combinational logic.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> Node {
        self.nodes[id.0 as usize]
    }

    /// Number of nodes including constants and state outputs.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no gates, inputs or state.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.ffs.is_empty() && self.rams.is_empty()
    }

    /// Named primary inputs in creation order.
    pub fn inputs(&self) -> &[(String, NodeId)] {
        &self.inputs
    }

    /// Named primary outputs in creation order.
    pub fn outputs(&self) -> &[(String, Lit)] {
        &self.outputs
    }

    /// Flip-flops; index with [`FfId`].
    pub fn ffs(&self) -> &[Ff] {
        &self.ffs
    }

    /// RAM blocks; index with [`RamId`].
    pub fn rams(&self) -> &[Ram] {
        &self.rams
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::And(..)))
            .count()
    }

    /// Fan-in literals of a node (empty for sources).
    pub fn fanins(&self, id: NodeId) -> Vec<Lit> {
        match self.nodes[id.0 as usize] {
            Node::And(a, b) => vec![a, b],
            _ => vec![],
        }
    }

    /// All sink literals that must be computed each cycle: primary
    /// outputs, flip-flop next-states, and every RAM port bit.
    pub fn sinks(&self) -> Vec<Lit> {
        let mut s: Vec<Lit> = self.outputs.iter().map(|(_, l)| *l).collect();
        s.extend(self.ffs.iter().map(|f| f.next));
        for r in &self.rams {
            s.extend(r.read_addr);
            s.extend(r.write_addr);
            s.extend(r.write_data);
            s.push(r.write_en);
        }
        s
    }

    /// Marks the nodes reachable (through AND fan-ins) from the sinks;
    /// returns a bitmap indexed by node id. Source nodes (inputs, FF and
    /// RAM outputs) referenced by a live path are marked live too.
    pub fn live_nodes(&self) -> Vec<bool> {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.sinks().iter().map(|l| l.node()).collect();
        while let Some(n) = stack.pop() {
            if live[n.0 as usize] {
                continue;
            }
            live[n.0 as usize] = true;
            if let Node::And(a, b) = self.nodes[n.0 as usize] {
                stack.push(a.node());
                stack.push(b.node());
            }
        }
        live
    }

    /// Number of live AND gates (the paper's "#E-AIG Gates" metric counts
    /// logic actually needed by the sinks).
    pub fn num_live_ands(&self) -> usize {
        let live = self.live_nodes();
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| live[*i] && matches!(n, Node::And(..)))
            .count()
    }

    /// Per-node logic level: sources are level 0, an AND is one more than
    /// its deepest fan-in. Indexed by node id.
    pub fn node_levels(&self) -> &[u32] {
        &self.levels
    }

    /// Levelization of the live logic; see [`crate::Levels`].
    pub fn levels(&self) -> crate::Levels {
        crate::Levels::of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut g = Eaig::new();
        let a = g.input("a");
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(a, Lit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, a.flip()), Lit::FALSE);
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_dedupes() {
        let mut g = Eaig::new();
        let a = g.input("a");
        let b = g.input("b");
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y);
        assert_eq!(g.num_ands(), 1);
    }

    #[test]
    fn or_and_xor_shapes() {
        let mut g = Eaig::new();
        let a = g.input("a");
        let b = g.input("b");
        let o = g.or(a, b);
        assert!(o.is_inverted()); // De Morgan form
        let x = g.xor(a, b);
        g.output("x", x);
        // xor = 3 ands
        assert_eq!(g.num_ands(), 3);
    }

    #[test]
    fn mux_identity() {
        let mut g = Eaig::new();
        let s = g.input("s");
        let t = g.input("t");
        assert_eq!(g.mux(s, t, t), t);
    }

    #[test]
    fn ff_two_phase() {
        let mut g = Eaig::new();
        let q = g.ff(true);
        let nq = q.flip();
        g.set_ff_next(q, nq);
        assert_eq!(g.ffs().len(), 1);
        assert!(g.ffs()[0].init);
        assert_eq!(g.ffs()[0].next, nq);
    }

    #[test]
    fn set_ff_next_through_inverted_literal() {
        let mut g = Eaig::new();
        let q = g.ff(false);
        let d = g.input("d");
        // Setting next of !q to d means next of q is !d.
        g.set_ff_next(q.flip(), d);
        assert_eq!(g.ffs()[0].next, d.flip());
    }

    #[test]
    fn ram_creation() {
        let mut g = Eaig::new();
        let r = g.ram();
        let a = g.input("a");
        let mut addr = [Lit::FALSE; RAM_ADDR_BITS];
        addr[0] = a;
        g.set_ram_ports(r, addr, addr, [Lit::FALSE; RAM_DATA_BITS], a);
        assert_eq!(g.rams().len(), 1);
        let out0 = g.ram_out(r, 0);
        assert!(matches!(g.node(out0.node()), Node::RamOut { bit: 0, .. }));
    }

    #[test]
    fn balanced_and_reduces_depth() {
        let mut g = Eaig::new();
        let inputs: Vec<Lit> = (0..16).map(|i| g.input(format!("i{i}"))).collect();
        let out = g.and_many(&inputs);
        g.output("o", out);
        // Balanced tree of 16 leaves has depth 4, linear chain would be 15.
        assert_eq!(g.levels().depth, 4);
    }

    #[test]
    fn balanced_and_prefers_shallow_operands() {
        let mut g = Eaig::new();
        // One deep operand (depth 3) and three shallow ones: balanced
        // reduction keeps total depth at 4 (deep operand combined last
        // would give 4; naive pairing could give 5).
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let d = g.input("d");
        let deep1 = g.and(a, b);
        let deep2 = g.and(deep1, c);
        let deep3 = g.and(deep2, d);
        let s1 = g.input("s1");
        let s2 = g.input("s2");
        let s3 = g.input("s3");
        let out = g.and_many(&[deep3, s1, s2, s3]);
        g.output("o", out);
        assert!(g.levels().depth <= 5);
    }

    #[test]
    fn live_nodes_ignores_dangling() {
        let mut g = Eaig::new();
        let a = g.input("a");
        let b = g.input("b");
        let _dead = g.and(a, b);
        let live_gate = g.or(a, b);
        g.output("o", live_gate);
        assert_eq!(g.num_ands(), 2);
        assert_eq!(g.num_live_ands(), 1);
    }

    #[test]
    fn sinks_include_state() {
        let mut g = Eaig::new();
        let a = g.input("a");
        let q = g.ff(false);
        g.set_ff_next(q, a);
        g.output("o", q);
        let sinks = g.sinks();
        assert!(sinks.contains(&a)); // ff next
        assert!(sinks.contains(&q)); // output
    }

    #[test]
    fn lit_code_round_trip() {
        let l = Lit::from_node(NodeId(42)).flip();
        assert_eq!(Lit::from_code(l.code()), l);
        assert!(l.is_inverted());
        assert_eq!(l.node(), NodeId(42));
    }
}
