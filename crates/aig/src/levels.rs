//! Levelization and the long-tail statistics of Observation 4.
//!
//! The paper observes that "the logic depth of an AIG can be 50–100 for
//! common circuits. However, the gate distribution among the logic levels
//! is extremely imbalanced. A large portion of the gates reside in a few
//! frontier levels whereas only a few gates are accountable for the rest"
//! — the *long-tailed* nature that motivates the boomerang executor.

use crate::eaig::{Eaig, Node};

/// Levelization of the live combinational logic of an [`Eaig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levels {
    /// Logic depth (deepest live AND gate); 0 for purely sequential logic.
    pub depth: u32,
    /// Live AND-gate count per level; index 0 (sources) is always 0.
    pub histogram: Vec<u64>,
    /// Total number of live AND gates.
    pub gates: u64,
}

impl Levels {
    /// Computes levelization over the live nodes of `g`.
    pub fn of(g: &Eaig) -> Self {
        let live = g.live_nodes();
        let levels = g.node_levels();
        let mut histogram: Vec<u64> = Vec::new();
        let mut gates = 0u64;
        for (i, n) in g.nodes().iter().enumerate() {
            if live[i] && matches!(n, Node::And(..)) {
                let l = levels[i] as usize;
                if histogram.len() <= l {
                    histogram.resize(l + 1, 0);
                }
                histogram[l] += 1;
                gates += 1;
            }
        }
        let depth = histogram.len().saturating_sub(1) as u32;
        Levels {
            depth,
            histogram,
            gates,
        }
    }

    /// Long-tail summary for reporting.
    pub fn stats(&self) -> LevelStats {
        let half = self.gates / 2;
        let mut acc = 0u64;
        let mut levels_for_half = 0u32;
        for (l, &c) in self.histogram.iter().enumerate() {
            acc += c;
            if acc >= half && half > 0 {
                levels_for_half = l as u32;
                break;
            }
        }
        // Fraction of gates in the shallowest quarter of the levels.
        let frontier_cutoff = (self.depth / 4).max(1);
        let frontier_gates: u64 = self
            .histogram
            .iter()
            .take(frontier_cutoff as usize + 1)
            .sum();
        LevelStats {
            depth: self.depth,
            gates: self.gates,
            levels_for_half_gates: levels_for_half,
            frontier_fraction: if self.gates == 0 {
                0.0
            } else {
                frontier_gates as f64 / self.gates as f64
            },
        }
    }
}

/// Summary numbers quantifying the long tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelStats {
    /// Logic depth.
    pub depth: u32,
    /// Total live AND gates.
    pub gates: u64,
    /// The smallest level index by which half of all gates have appeared.
    /// For a long-tailed circuit this is much smaller than `depth`.
    pub levels_for_half_gates: u32,
    /// Fraction of gates within the shallowest quarter of levels.
    pub frontier_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eaig::Lit;

    /// Builds a deliberately long-tailed circuit: a wide frontier of XORs
    /// feeding a long AND chain.
    fn long_tailed() -> Eaig {
        let mut g = Eaig::new();
        let inputs: Vec<Lit> = (0..64).map(|i| g.input(format!("i{i}"))).collect();
        // Frontier: 32 XORs (3 gates each) at shallow levels.
        let mut pairs: Vec<Lit> = inputs.chunks(2).map(|c| g.xor(c[0], c[1])).collect();
        // Tail: a long chain.
        let mut acc = pairs.pop().expect("nonempty");
        for p in pairs {
            acc = g.and(acc, p); // linear chain: deep tail
        }
        g.output("o", acc);
        g
    }

    #[test]
    fn histogram_counts_live_gates_only() {
        let mut g = Eaig::new();
        let a = g.input("a");
        let b = g.input("b");
        let x = g.and(a, b);
        let _dead = g.or(a, b);
        g.output("o", x);
        let l = g.levels();
        assert_eq!(l.gates, 1);
        assert_eq!(l.depth, 1);
        assert_eq!(l.histogram, vec![0, 1]);
    }

    #[test]
    fn long_tail_detected() {
        let g = long_tailed();
        let stats = g.levels().stats();
        // Half of the gates appear in far fewer levels than the depth.
        assert!(stats.depth > 20);
        assert!(stats.levels_for_half_gates < stats.depth / 2);
        assert!(stats.frontier_fraction > 0.3);
    }

    #[test]
    fn empty_graph() {
        let g = Eaig::new();
        let l = g.levels();
        assert_eq!(l.depth, 0);
        assert_eq!(l.gates, 0);
    }

    #[test]
    fn depth_matches_level_of() {
        let mut g = Eaig::new();
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let x = g.and(a, b);
        let y = g.and(x, c);
        g.output("o", y);
        assert_eq!(g.level_of(y), 2);
        assert_eq!(g.levels().depth, 2);
    }
}
