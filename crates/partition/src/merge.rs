//! Width-constrained partition merging — Algorithm 1 of the paper.
//!
//! The boomerang executor bounds a partition's *width* (8192 live bits),
//! not its total size, and "it is difficult to modify a hypergraph
//! partitioner's objective to logic widths as this metric does not have
//! nice additive property". GEM therefore partitions excessively and then
//! greedily merges partitions back together, trying candidates in
//! large-overlap-first order and committing a merge whenever the result is
//! still mappable. The paper guarantees ≥ 50 % effective bit utilization
//! this way.

use crate::repcut::{extract_cone, Region};
use crate::{Partition, Stage};
use gem_aig::{Eaig, Node};

/// Upper bound on live bits in one virtual Boolean processor core.
pub const CORE_WIDTH: usize = 8192;

/// Estimates the peak number of simultaneously-live bits when evaluating a
/// partition level by level: partition sources and computed values are
/// live from their defining level until their last use (sinks stay live to
/// the end). This conservatively over-approximates the boomerang state
/// requirement, so a partition passing this check is mappable.
pub fn estimate_width(g: &Eaig, p: &Partition) -> usize {
    let node_levels = g.node_levels();
    let depth = p
        .nodes
        .iter()
        .map(|n| node_levels[n.0 as usize])
        .max()
        .unwrap_or(0) as usize;
    // def level and last-use level per signal (sources def at 0).
    let mut in_part = std::collections::HashMap::new();
    for &s in &p.sources {
        in_part.insert(s.0, (0usize, 0usize));
    }
    for &n in &p.nodes {
        in_part.insert(n.0, (node_levels[n.0 as usize] as usize, 0usize));
    }
    // Uses.
    for &n in &p.nodes {
        if let Node::And(a, b) = g.node(n) {
            let ul = node_levels[n.0 as usize] as usize;
            for x in [a.node(), b.node()] {
                if let Some(e) = in_part.get_mut(&x.0) {
                    e.1 = e.1.max(ul);
                }
            }
        }
    }
    // Sinks live to the end.
    for s in &p.sinks {
        if let Some(e) = in_part.get_mut(&s.node().0) {
            e.1 = depth + 1;
        }
    }
    // Sweep: +1 at (def+1), -1 after last use. Live span is (def, last].
    let mut delta = vec![0i64; depth + 3];
    for (_, &(d, u)) in in_part.iter() {
        if u > d {
            delta[d + 1] += 1;
            delta[u + 1] -= 1;
        }
    }
    let mut live = 0i64;
    let mut peak = 0i64;
    for d in delta {
        live += d;
        peak = peak.max(live);
    }
    peak as usize
}

/// True if the partition fits a core of `width` bits by the conservative
/// [`estimate_width`] metric.
pub fn width_mappable(g: &Eaig, p: &Partition, width: usize) -> bool {
    estimate_width(g, p) <= width
}

/// Statistics of a merging run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeStats {
    /// Partitions before merging.
    pub before: usize,
    /// Partitions after merging.
    pub after: usize,
    /// Merges committed.
    pub merges: usize,
}

/// Algorithm 1: greedily merges a stage's partitions, trying candidates in
/// descending node-overlap order and committing whenever `mappable`
/// accepts the merged partition.
///
/// `region` must be the region the stage was partitioned from (so merged
/// cones can be re-extracted with the right stop boundary).
pub fn merge_partitions(
    g: &Eaig,
    region: &Region,
    stage: &Stage,
    mappable: &dyn Fn(&Partition) -> bool,
) -> (Stage, MergeStats) {
    let mut parts: Vec<Option<Partition>> = stage.partitions.iter().cloned().map(Some).collect();
    let before = parts.len();
    let mut merges = 0usize;
    // Line 2: for each partition p.
    for pi in 0..parts.len() {
        if parts[pi].is_none() {
            continue;
        }
        loop {
            let p = parts[pi].as_ref().expect("present");
            // Line 3: sort other unvisited partitions by overlap with p.
            let mut member = vec![false; g.len()];
            for n in &p.nodes {
                member[n.0 as usize] = true;
            }
            for s in &p.sources {
                member[s.0 as usize] = true;
            }
            let mut candidates: Vec<(usize, usize)> = Vec::new(); // (overlap, qi)
            for (qi, q) in parts.iter().enumerate() {
                if qi == pi {
                    continue;
                }
                let Some(q) = q else { continue };
                let overlap = q
                    .nodes
                    .iter()
                    .chain(q.sources.iter())
                    .filter(|n| member[n.0 as usize])
                    .count();
                candidates.push((overlap, qi));
            }
            candidates.sort_unstable_by(|a, b| b.cmp(a));
            // Lines 4-5: try merging large-to-small overlap; commit the
            // first mappable merge, then rescan (overlaps changed).
            let mut committed = false;
            for (_, qi) in candidates {
                let q = parts[qi].as_ref().expect("candidate present");
                let p = parts[pi].as_ref().expect("present");
                let mut sinks = p.sinks.clone();
                sinks.extend(q.sinks.iter().copied());
                sinks.sort_unstable();
                sinks.dedup();
                let merged = extract_cone(g, region, &sinks);
                if mappable(&merged) {
                    parts[pi] = Some(merged);
                    parts[qi] = None;
                    merges += 1;
                    committed = true;
                    break;
                }
            }
            if !committed {
                break;
            }
        }
    }
    let partitions: Vec<Partition> = parts.into_iter().flatten().collect();
    let after = partitions.len();
    (
        Stage {
            partitions,
            cut_lits: stage.cut_lits.clone(),
        },
        MergeStats {
            before,
            after,
            merges,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repcut::partition_region;
    use crate::PartitionOptions;
    use gem_aig::{Eaig, Lit};

    fn chains(n: usize, depth: usize) -> Eaig {
        let mut g = Eaig::new();
        for c in 0..n {
            let mut cur = g.input(format!("i{c}"));
            for k in 0..depth {
                let e = g.input(format!("x{c}_{k}"));
                cur = g.xor(cur, e);
            }
            g.output(format!("o{c}"), cur);
        }
        g
    }

    #[test]
    fn width_estimate_counts_sources_and_live_values() {
        let mut g = Eaig::new();
        let a = g.input("a");
        let b = g.input("b");
        let x = g.and(a, b);
        g.output("o", x);
        let region = Region::whole(&g);
        let p = extract_cone(&g, &region, &[x]);
        let w = estimate_width(&g, &p);
        assert!((2..=3).contains(&w), "width {w}");
    }

    #[test]
    fn merging_reduces_partition_count() {
        let g = chains(16, 4);
        let region = Region::whole(&g);
        let parts = partition_region(&g, &region, 16, &PartitionOptions::default());
        let stage = Stage {
            partitions: parts,
            cut_lits: vec![],
        };
        let (merged, stats) = merge_partitions(&g, &region, &stage, &|p| width_mappable(&g, p, 64));
        assert!(stats.after < stats.before);
        assert_eq!(stats.before - stats.merges, stats.after);
        // All sinks still covered.
        let covered: usize = merged.partitions.iter().map(|p| p.sinks.len()).sum();
        assert_eq!(covered, g.sinks().len());
    }

    #[test]
    fn merging_respects_mappability() {
        let g = chains(8, 4);
        let region = Region::whole(&g);
        let parts = partition_region(&g, &region, 8, &PartitionOptions::default());
        let stage = Stage {
            partitions: parts,
            cut_lits: vec![],
        };
        let limit = 16;
        let (merged, _) = merge_partitions(&g, &region, &stage, &|p| width_mappable(&g, p, limit));
        for p in &merged.partitions {
            assert!(estimate_width(&g, p) <= limit);
        }
    }

    #[test]
    fn nothing_merges_when_everything_is_at_capacity() {
        let g = chains(4, 8);
        let region = Region::whole(&g);
        let parts = partition_region(&g, &region, 4, &PartitionOptions::default());
        let stage = Stage {
            partitions: parts.clone(),
            cut_lits: vec![],
        };
        let (merged, stats) = merge_partitions(&g, &region, &stage, &|_| false);
        assert_eq!(stats.merges, 0);
        assert_eq!(merged.partitions.len(), parts.len());
    }

    #[test]
    fn utilization_after_merge_is_reasonable() {
        // Many tiny partitions, capacity 128: after merging, most
        // partitions should use >50% of the width budget (paper's claim).
        let g = chains(32, 2);
        let region = Region::whole(&g);
        let parts = partition_region(&g, &region, 32, &PartitionOptions::default());
        let stage = Stage {
            partitions: parts,
            cut_lits: vec![],
        };
        let cap = 128;
        let (merged, _) = merge_partitions(&g, &region, &stage, &|p| width_mappable(&g, p, cap));
        let utilized = merged
            .partitions
            .iter()
            .filter(|p| estimate_width(&g, p) * 2 >= cap)
            .count();
        assert!(
            utilized * 2 >= merged.partitions.len(),
            "{utilized}/{} partitions above 50% utilization",
            merged.partitions.len()
        );
        let _ = Lit::FALSE;
    }
}
