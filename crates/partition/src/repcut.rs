//! RepCut-style replication-aided partitioning of one stage.
//!
//! Each sink (flip-flop next-state, RAM port bit, primary output, or
//! stage-boundary signal) becomes a hypergraph vertex. Every AND node
//! contributes a hyperedge connecting the sinks whose fan-in cones contain
//! it; cutting that hyperedge k ways costs k−1 duplicates of the node.
//! Nodes with identical sink sets collapse into one weighted hyperedge.
//! Partitioning the sink hypergraph with a min-cut objective therefore
//! minimizes replicated logic directly.

use crate::hypergraph::Hypergraph;
use crate::{Partition, PartitionOptions};
use gem_aig::{Eaig, Lit, Node, NodeId};
use std::collections::HashMap;

/// A sub-circuit to partition: its sinks and the boundary at which cones
/// stop (nodes marked in `stop` are treated as sources).
#[derive(Debug, Clone)]
pub struct Region {
    /// Sink literals (the stage's outputs).
    pub sinks: Vec<Lit>,
    /// Per-node boundary flag: `true` = do not traverse into this node's
    /// fan-in (it is computed by an earlier stage or is a global source).
    pub stop: Vec<bool>,
}

impl Region {
    /// A region covering the whole graph (single-stage partitioning).
    pub fn whole(g: &Eaig) -> Self {
        Region {
            sinks: g.sinks(),
            stop: vec![false; g.len()],
        }
    }
}

/// Partitions a region into (at most) `parts` partitions.
pub fn partition_region(
    g: &Eaig,
    region: &Region,
    parts: usize,
    opts: &PartitionOptions,
) -> Vec<Partition> {
    // Unique sink vertices by node (several sink literals on one node share
    // a cone and must not be separated).
    let mut vertex_of_node: HashMap<NodeId, u32> = HashMap::new();
    let mut vertex_lits: Vec<Vec<Lit>> = Vec::new();
    let mut vertex_nodes: Vec<NodeId> = Vec::new();
    for &s in &region.sinks {
        let n = s.node();
        let vid = *vertex_of_node.entry(n).or_insert_with(|| {
            vertex_lits.push(Vec::new());
            vertex_nodes.push(n);
            (vertex_lits.len() - 1) as u32
        });
        vertex_lits[vid as usize].push(s);
    }
    let nv = vertex_nodes.len();
    if nv == 0 {
        return Vec::new();
    }
    let parts = parts.min(nv).max(1);

    // Which AND nodes belong to this region (reachable from sinks without
    // crossing the stop boundary)?
    let in_region = region_nodes(g, region);

    // Sink sets per node, reverse-topological, with hash-consing.
    // `set_of[node]`: index into `sets`, or SET_UNIVERSAL / SET_NONE.
    const SET_NONE: u32 = u32::MAX;
    const SET_UNIVERSAL: u32 = u32::MAX - 1;
    let mut sets: Vec<Vec<u32>> = Vec::new();
    let mut interner: HashMap<Vec<u32>, u32> = HashMap::new();
    let mut set_of: Vec<u32> = vec![SET_NONE; g.len()];

    // Consumers (fanout AND nodes inside the region).
    let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); g.len()];
    for (i, n) in g.nodes().iter().enumerate() {
        if !in_region[i] {
            continue;
        }
        if let Node::And(a, b) = n {
            fanout[a.node().0 as usize].push(i as u32);
            if a.node() != b.node() {
                fanout[b.node().0 as usize].push(i as u32);
            }
        }
    }
    // Base: sink vertices sit at their node.
    let mut sink_vertex_at: HashMap<u32, u32> = HashMap::new();
    for (vid, n) in vertex_nodes.iter().enumerate() {
        sink_vertex_at.insert(n.0, vid as u32);
    }
    let intern =
        |sets: &mut Vec<Vec<u32>>, interner: &mut HashMap<Vec<u32>, u32>, v: Vec<u32>| -> u32 {
            if let Some(&id) = interner.get(&v) {
                return id;
            }
            let id = sets.len() as u32;
            interner.insert(v.clone(), id);
            sets.push(v);
            id
        };
    // Reverse topological = descending node id (construction order).
    for i in (0..g.len()).rev() {
        if !in_region[i] && !sink_vertex_at.contains_key(&(i as u32)) {
            continue;
        }
        let mut acc: Vec<u32> = Vec::new();
        let mut universal = false;
        if let Some(&vid) = sink_vertex_at.get(&(i as u32)) {
            acc.push(vid);
        }
        for &f in &fanout[i] {
            match set_of[f as usize] {
                SET_NONE => {}
                SET_UNIVERSAL => {
                    universal = true;
                    break;
                }
                sid => {
                    // Merge-union into acc.
                    let other = &sets[sid as usize];
                    let mut merged = Vec::with_capacity(acc.len() + other.len());
                    let (mut x, mut y) = (0, 0);
                    while x < acc.len() && y < other.len() {
                        match acc[x].cmp(&other[y]) {
                            std::cmp::Ordering::Less => {
                                merged.push(acc[x]);
                                x += 1;
                            }
                            std::cmp::Ordering::Greater => {
                                merged.push(other[y]);
                                y += 1;
                            }
                            std::cmp::Ordering::Equal => {
                                merged.push(acc[x]);
                                x += 1;
                                y += 1;
                            }
                        }
                    }
                    merged.extend_from_slice(&acc[x..]);
                    merged.extend_from_slice(&other[y..]);
                    acc = merged;
                    if acc.len() > opts.sink_set_cap {
                        universal = true;
                        break;
                    }
                }
            }
        }
        set_of[i] = if universal {
            SET_UNIVERSAL
        } else if acc.is_empty() {
            SET_NONE
        } else {
            intern(&mut sets, &mut interner, acc)
        };
    }

    // Vertex weights: 1 + number of AND nodes exclusive to the sink.
    let mut weights = vec![1u64; nv];
    // Hyperedge weights: count of AND nodes per distinct (multi-sink) set.
    let mut edge_count: HashMap<u32, u64> = HashMap::new();
    for (i, n) in g.nodes().iter().enumerate() {
        if !in_region[i] || !matches!(n, Node::And(..)) {
            continue;
        }
        match set_of[i] {
            SET_NONE | SET_UNIVERSAL => {}
            sid => {
                let s = &sets[sid as usize];
                if s.len() == 1 {
                    weights[s[0] as usize] += 1;
                } else {
                    *edge_count.entry(sid).or_insert(0) += 1;
                }
            }
        }
    }
    let mut h = Hypergraph::new(weights);
    let mut edges: Vec<(u32, u64)> = edge_count.into_iter().collect();
    edges.sort_unstable(); // deterministic hyperedge order
    for (sid, w) in edges {
        h.add_edge(w, sets[sid as usize].clone());
    }
    let assignment = h.partition_kway(parts, opts.balance, opts.seed);

    // Materialize partitions: per part, collect sinks and the cone.
    let mut part_sinks: Vec<Vec<Lit>> = vec![Vec::new(); parts];
    for (vid, lits) in vertex_lits.iter().enumerate() {
        part_sinks[assignment[vid] as usize].extend(lits.iter().copied());
    }
    part_sinks
        .into_iter()
        .filter(|s| !s.is_empty())
        .map(|sinks| extract_cone(g, region, &sinks))
        .collect()
}

/// Marks the AND nodes belonging to a region (reachable backward from the
/// sinks, not crossing the stop boundary).
pub fn region_nodes(g: &Eaig, region: &Region) -> Vec<bool> {
    let mut mark = vec![false; g.len()];
    let mut stack: Vec<NodeId> = region
        .sinks
        .iter()
        .map(|l| l.node())
        .filter(|n| !region.stop[n.0 as usize])
        .collect();
    while let Some(n) = stack.pop() {
        let i = n.0 as usize;
        if mark[i] {
            continue;
        }
        if !matches!(g.node(n), Node::And(..)) {
            continue;
        }
        mark[i] = true;
        if let Node::And(a, b) = g.node(n) {
            for x in [a.node(), b.node()] {
                if !region.stop[x.0 as usize] && !mark[x.0 as usize] {
                    stack.push(x);
                }
            }
        }
    }
    mark
}

/// Builds a [`Partition`] as the full fan-in cone of `sinks`, stopping at
/// the region boundary.
pub fn extract_cone(g: &Eaig, region: &Region, sinks: &[Lit]) -> Partition {
    let mut in_cone = vec![false; g.len()];
    let mut sources = Vec::new();
    let mut src_seen = vec![false; g.len()];
    let mut stack: Vec<NodeId> = sinks.iter().map(|l| l.node()).collect();
    let mut nodes = Vec::new();
    while let Some(n) = stack.pop() {
        let i = n.0 as usize;
        if in_cone[i] || src_seen[i] {
            continue;
        }
        let is_and = matches!(g.node(n), Node::And(..));
        if region.stop[i] || !is_and {
            // Boundary or global source.
            if !src_seen[i] {
                src_seen[i] = true;
                sources.push(n);
            }
            continue;
        }
        in_cone[i] = true;
        nodes.push(n);
        if let Node::And(a, b) = g.node(n) {
            stack.push(a.node());
            stack.push(b.node());
        }
    }
    nodes.sort_unstable();
    sources.sort_unstable();
    Partition {
        sinks: sinks.to_vec(),
        nodes,
        sources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionOptions;

    /// `n` independent XOR-accumulator chains — perfectly partitionable.
    fn independent_chains(n: usize, depth: usize) -> Eaig {
        let mut g = Eaig::new();
        for c in 0..n {
            let mut cur = g.input(format!("i{c}"));
            let extra: Vec<Lit> = (0..depth).map(|k| g.input(format!("x{c}_{k}"))).collect();
            for e in extra {
                cur = g.xor(cur, e);
            }
            let q = g.ff(false);
            let nx = g.xor(q, cur);
            g.set_ff_next(q, nx);
            g.output(format!("o{c}"), q);
        }
        g
    }

    #[test]
    fn independent_logic_partitions_without_replication() {
        let g = independent_chains(8, 6);
        let region = Region::whole(&g);
        let parts = partition_region(&g, &region, 4, &PartitionOptions::default());
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(|p| p.size()).sum();
        assert_eq!(total, g.num_live_ands(), "no node should be duplicated");
    }

    #[test]
    fn shared_logic_gets_replicated() {
        let mut g = Eaig::new();
        // One shared cone feeding two sinks.
        let a = g.input("a");
        let b = g.input("b");
        let shared = g.xor(a, b); // 3 gates
        for i in 0..2 {
            let extra = g.input(format!("e{i}"));
            let s = g.and(shared, extra);
            g.output(format!("o{i}"), s);
        }
        let region = Region::whole(&g);
        let parts = partition_region(&g, &region, 2, &PartitionOptions::default());
        assert_eq!(parts.len(), 2);
        let total: usize = parts.iter().map(|p| p.size()).sum();
        // 3 shared gates duplicated + 2 private = 3*2 + 2.
        assert_eq!(total, 8);
    }

    #[test]
    fn cone_extraction_stops_at_sources() {
        let mut g = Eaig::new();
        let a = g.input("a");
        let q = g.ff(false);
        let x = g.and(a, q);
        g.set_ff_next(q, x);
        g.output("o", x);
        let region = Region::whole(&g);
        let p = extract_cone(&g, &region, &[x]);
        assert_eq!(p.nodes.len(), 1);
        assert_eq!(p.sources.len(), 2); // input a + ff out
    }

    #[test]
    fn stop_boundary_respected() {
        let mut g = Eaig::new();
        let a = g.input("a");
        let b = g.input("b");
        let mid = g.and(a, b);
        let c = g.input("c");
        let top = g.and(mid, c);
        g.output("o", top);
        let mut region = Region::whole(&g);
        region.stop[mid.node().0 as usize] = true;
        let p = extract_cone(&g, &region, &[top]);
        assert_eq!(p.nodes, vec![top.node()]);
        assert!(p.sources.contains(&mid.node()));
    }

    #[test]
    fn more_parts_than_sinks_collapses() {
        let g = independent_chains(2, 1);
        let region = Region::whole(&g);
        let parts = partition_region(&g, &region, 16, &PartitionOptions::default());
        assert!(parts.len() <= 4, "got {} parts", parts.len());
        // All sinks still covered exactly once.
        let covered: usize = parts.iter().map(|p| p.sinks.len()).sum();
        assert_eq!(covered, g.sinks().len());
    }

    #[test]
    fn sink_set_cap_does_not_break_partitioning() {
        let g = independent_chains(6, 4);
        let region = Region::whole(&g);
        let opts = PartitionOptions {
            sink_set_cap: 1, // force universal classification aggressively
            ..Default::default()
        };
        let parts = partition_region(&g, &region, 3, &opts);
        let covered: usize = parts.iter().map(|p| p.sinks.len()).sum();
        assert_eq!(covered, g.sinks().len());
    }
}
