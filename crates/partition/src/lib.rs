//! Replication-aided circuit partitioning for GEM (paper §III-C).
//!
//! GPUs have no efficient inter-block communication, so GEM requires
//! partitions that are *independent within a stage*: every partition owns a
//! set of sinks (flip-flop next-states, RAM ports, primary outputs, or
//! stage-boundary cut signals) and contains the complete fan-in cone of
//! those sinks, duplicating any logic shared with other partitions. This
//! is the RepCut idea; GEM extends it two ways, both implemented here:
//!
//! * **Multi-stage partitioning** ([`multistage`]): replication cost
//!   explodes when a design is cut into the 200+ partitions needed to fill
//!   a GPU (the paper measures >200%). Cutting the circuit at a middle
//!   logic level and partitioning each stage separately — at the price of
//!   one extra device synchronization — drops the cost to a few percent
//!   (Fig 5).
//! * **Width-constrained merging** ([`merge`], Algorithm 1): partitions
//!   must be *mappable* to the 8192-bit boomerang executor, a width
//!   constraint rather than a size constraint. The design is partitioned
//!   excessively, then partitions are greedily merged largest-overlap
//!   first while the result stays mappable.
//!
//! The hypergraph partitioner itself ([`hypergraph`]) is a from-scratch
//! Fiduccia–Mattheyses recursive bisection (no external hMETIS).
//!
//! # Example
//!
//! ```
//! use gem_aig::Eaig;
//! use gem_partition::{partition, PartitionOptions};
//!
//! let mut g = Eaig::new();
//! // Two independent accumulator bits: ideal 2-way split, zero replication.
//! for i in 0..2 {
//!     let inp = g.input(format!("i{i}"));
//!     let q = g.ff(false);
//!     let nx = g.xor(q, inp);
//!     g.set_ff_next(q, nx);
//!     g.output(format!("o{i}"), q);
//! }
//! let result = partition(&g, &PartitionOptions { target_parts: 2, ..Default::default() });
//! assert_eq!(result.stages.len(), 1);
//! assert_eq!(result.stages[0].partitions.len(), 2);
//! assert_eq!(result.replication_cost(), 0.0);
//! ```

pub mod hypergraph;
pub mod merge;
pub mod multistage;
pub mod repcut;

use gem_aig::{Eaig, Lit, NodeId};

/// Tuning knobs for [`partition`].
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionOptions {
    /// Desired number of partitions per stage (the GPU wants ≥ number of
    /// thread blocks that fill the device; the paper uses 216 as the
    /// minimum for an A100).
    pub target_parts: usize,
    /// Number of pipeline stages (1 = plain RepCut; 2+ = GEM multi-stage).
    pub stages: usize,
    /// Allowed imbalance fraction for bisection (0.1 = ±10 %).
    pub balance: f64,
    /// RNG seed for deterministic results.
    pub seed: u64,
    /// Cap on tracked sink-set size during hypergraph construction; nodes
    /// reaching more sinks are treated as universally shared.
    pub sink_set_cap: usize,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            target_parts: 8,
            stages: 1,
            balance: 0.1,
            seed: 0xC1C0,
            sink_set_cap: 64,
        }
    }
}

/// One partition: a set of sinks plus the full fan-in cone that computes
/// them (including logic duplicated with other partitions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// The literals this partition is responsible for computing.
    pub sinks: Vec<Lit>,
    /// AND nodes of the cone, in ascending (topological) order.
    pub nodes: Vec<NodeId>,
    /// Source nodes feeding the cone: primary inputs, FF outputs, RAM read
    /// data, and (for stage ≥ 1) cut signals computed by earlier stages.
    pub sources: Vec<NodeId>,
}

impl Partition {
    /// Total gate count (replicated logic counts once per partition).
    pub fn size(&self) -> usize {
        self.nodes.len()
    }
}

/// The partitions of one pipeline stage; partitions within a stage are
/// mutually independent and synchronize only at the stage boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Partitions of this stage.
    pub partitions: Vec<Partition>,
    /// Cut literals this stage must publish for the next stage (empty for
    /// the final stage).
    pub cut_lits: Vec<Lit>,
}

/// Result of [`partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// Stages in execution order.
    pub stages: Vec<Stage>,
    /// Number of live AND gates in the original graph (denominator of the
    /// replication-cost metric).
    pub original_gates: usize,
}

impl Partitioning {
    /// Total gates across all partitions (duplicates counted).
    pub fn total_gates(&self) -> usize {
        self.stages
            .iter()
            .flat_map(|s| &s.partitions)
            .map(|p| p.size())
            .sum()
    }

    /// RepCut's replication-cost metric: duplicated gates relative to the
    /// original circuit size (0.0 = no duplication; the paper reports
    /// 1.30 % for 8 parts, >200 % for 216 parts single-stage, <3 % with
    /// two stages).
    pub fn replication_cost(&self) -> f64 {
        if self.original_gates == 0 {
            return 0.0;
        }
        (self.total_gates() as f64 - self.original_gates as f64) / self.original_gates as f64
    }

    /// Number of partitions in the largest stage.
    pub fn max_parts(&self) -> usize {
        self.stages
            .iter()
            .map(|s| s.partitions.len())
            .max()
            .unwrap_or(0)
    }
}

/// Partitions an E-AIG for GEM execution.
///
/// Dispatches to single-stage RepCut or GEM's multi-stage extension based
/// on [`PartitionOptions::stages`]. Use [`merge::merge_partitions`]
/// afterwards to enforce the boomerang width constraint.
pub fn partition(g: &Eaig, opts: &PartitionOptions) -> Partitioning {
    multistage::partition_staged(g, opts)
}
