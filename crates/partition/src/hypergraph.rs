//! A from-scratch hypergraph partitioner (Fiduccia–Mattheyses bisection
//! with recursive k-way splitting).
//!
//! The paper reuses RepCut's formulation, which in turn drives a standard
//! hypergraph partitioner; since no external partitioner is available
//! here, this module implements one. Quality does not need to be
//! state-of-the-art — replication cost trends (Fig 5) dominate the story —
//! but cut sizes should be sane, so FM runs with gain buckets, balance
//! constraints and multiple random restarts.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A hypergraph with weighted vertices and weighted hyperedges.
#[derive(Debug, Clone, Default)]
pub struct Hypergraph {
    /// Vertex weights.
    pub vertex_weights: Vec<u64>,
    /// Hyperedges: (weight, pin list). Pins are vertex indexes.
    pub edges: Vec<(u64, Vec<u32>)>,
    /// For each vertex, the edges it pins.
    incidence: Vec<Vec<u32>>,
}

impl Hypergraph {
    /// Creates a hypergraph with `n` vertices of the given weights.
    pub fn new(vertex_weights: Vec<u64>) -> Self {
        let n = vertex_weights.len();
        Hypergraph {
            vertex_weights,
            edges: Vec::new(),
            incidence: vec![Vec::new(); n],
        }
    }

    /// Adds a hyperedge over `pins` with the given weight. Single-pin and
    /// empty edges are ignored (they can never be cut).
    pub fn add_edge(&mut self, weight: u64, pins: Vec<u32>) {
        if pins.len() < 2 {
            return;
        }
        let id = self.edges.len() as u32;
        for &p in &pins {
            self.incidence[p as usize].push(id);
        }
        self.edges.push((weight, pins));
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertex_weights.len()
    }

    /// True if there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertex_weights.is_empty()
    }

    /// Total vertex weight.
    pub fn total_weight(&self) -> u64 {
        self.vertex_weights.iter().sum()
    }

    /// Weighted cut of a bisection (`side[v]` ∈ {false, true}).
    pub fn cut(&self, side: &[bool]) -> u64 {
        self.edges
            .iter()
            .filter(|(_, pins)| {
                let first = side[pins[0] as usize];
                pins.iter().any(|&p| side[p as usize] != first)
            })
            .map(|(w, _)| *w)
            .sum()
    }

    /// Bisects the vertices targeting `target_frac` of the weight on side
    /// `false`, within ± `balance` of the total. Returns the side
    /// assignment. Runs FM from several random initial solutions and keeps
    /// the best.
    pub fn bisect(&self, target_frac: f64, balance: f64, seed: u64) -> Vec<bool> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut best: Option<(u64, Vec<bool>)> = None;
        let restarts = if self.len() > 20_000 { 2 } else { 4 };
        for _ in 0..restarts {
            let mut side = self.initial_split(target_frac, &mut rng);
            let cut = self.fm_refine(&mut side, target_frac, balance);
            if best.as_ref().is_none_or(|(c, _)| cut < *c) {
                best = Some((cut, side));
            }
        }
        best.expect("at least one restart").1
    }

    /// Greedy BFS growth from a random seed until the target weight is
    /// reached; unreached vertices go to side `true`.
    fn initial_split(&self, target_frac: f64, rng: &mut ChaCha8Rng) -> Vec<bool> {
        let n = self.len();
        let total = self.total_weight();
        let target = (total as f64 * target_frac) as u64;
        let mut side = vec![true; n];
        let mut weight = 0u64;
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(rng);
        let mut queue = std::collections::VecDeque::new();
        let mut seen = vec![false; n];
        let mut oi = 0;
        while weight < target && oi < n {
            // Find an unseen seed.
            while oi < n && seen[order[oi] as usize] {
                oi += 1;
            }
            if oi >= n {
                break;
            }
            queue.push_back(order[oi]);
            seen[order[oi] as usize] = true;
            while let Some(v) = queue.pop_front() {
                if weight >= target {
                    break;
                }
                let wv = self.vertex_weights[v as usize];
                if weight > 0 && weight + wv > target + (target / 10) {
                    continue; // would badly overshoot; leave on the other side
                }
                side[v as usize] = false;
                weight += wv;
                for &e in &self.incidence[v as usize] {
                    for &u in &self.edges[e as usize].1 {
                        if !seen[u as usize] {
                            seen[u as usize] = true;
                            queue.push_back(u);
                        }
                    }
                }
            }
        }
        side
    }

    /// One-sided FM refinement (a few passes). Returns the final cut.
    fn fm_refine(&self, side: &mut [bool], target_frac: f64, balance: f64) -> u64 {
        let n = self.len();
        let total = self.total_weight() as f64;
        let target_a = total * target_frac;
        let slack = total * balance + 1.0;
        let mut cur_cut = self.cut(side) as i64;
        for _pass in 0..3 {
            // Pin counts per side for each edge.
            let mut cnt: Vec<[u32; 2]> = self
                .edges
                .iter()
                .map(|(_, pins)| {
                    let a = pins.iter().filter(|&&p| !side[p as usize]).count() as u32;
                    [a, pins.len() as u32 - a]
                })
                .collect();
            // Initial gains.
            let mut gain = vec![0i64; n];
            for (ei, (w, pins)) in self.edges.iter().enumerate() {
                for &p in pins {
                    let from = side[p as usize] as usize;
                    let to = 1 - from;
                    if cnt[ei][from] == 1 {
                        gain[p as usize] += *w as i64;
                    }
                    if cnt[ei][to] == 0 {
                        gain[p as usize] -= *w as i64;
                    }
                }
            }
            let mut locked = vec![false; n];
            let mut heap: std::collections::BinaryHeap<(i64, u32)> =
                (0..n as u32).map(|v| (gain[v as usize], v)).collect();
            let mut weight_a: f64 = (0..n)
                .filter(|&v| !side[v])
                .map(|v| self.vertex_weights[v] as f64)
                .sum();
            // Sequence of tentative moves; remember best prefix.
            let mut moves: Vec<u32> = Vec::new();
            let mut cut_now = cur_cut;
            let mut best_cut = cur_cut;
            let mut best_len = 0usize;
            let mut best_dev = (weight_a - target_a).abs();
            while let Some((g0, v)) = heap.pop() {
                let v_us = v as usize;
                if locked[v_us] || g0 != gain[v_us] {
                    continue; // stale heap entry
                }
                let w = self.vertex_weights[v_us] as f64;
                let new_weight_a = if side[v_us] {
                    weight_a + w
                } else {
                    weight_a - w
                };
                if (new_weight_a - target_a).abs() > slack {
                    continue; // would break balance; leave locked out this pass
                }
                // Commit tentative move.
                locked[v_us] = true;
                let from = side[v_us] as usize;
                let to = 1 - from;
                cut_now -= gain[v_us];
                for &e in &self.incidence[v_us] {
                    let (w_e, pins) = &self.edges[e as usize];
                    let w_e = *w_e as i64;
                    // Standard FM gain updates.
                    if cnt[e as usize][to] == 0 {
                        for &u in pins {
                            if !locked[u as usize] {
                                gain[u as usize] += w_e;
                                heap.push((gain[u as usize], u));
                            }
                        }
                    } else if cnt[e as usize][to] == 1 {
                        for &u in pins {
                            if !locked[u as usize] && side[u as usize] == (to == 1) {
                                gain[u as usize] -= w_e;
                                heap.push((gain[u as usize], u));
                            }
                        }
                    }
                    cnt[e as usize][from] -= 1;
                    cnt[e as usize][to] += 1;
                    if cnt[e as usize][from] == 0 {
                        for &u in pins {
                            if !locked[u as usize] {
                                gain[u as usize] -= w_e;
                                heap.push((gain[u as usize], u));
                            }
                        }
                    } else if cnt[e as usize][from] == 1 {
                        for &u in pins {
                            if !locked[u as usize] && side[u as usize] == (from == 1) {
                                gain[u as usize] += w_e;
                                heap.push((gain[u as usize], u));
                            }
                        }
                    }
                }
                side[v_us] = !side[v_us];
                weight_a = new_weight_a;
                moves.push(v);
                let dev = (weight_a - target_a).abs();
                if cut_now < best_cut || (cut_now == best_cut && dev < best_dev) {
                    best_cut = cut_now;
                    best_len = moves.len();
                    best_dev = dev;
                }
            }
            // Roll back past the best prefix.
            for &v in &moves[best_len..] {
                side[v as usize] = !side[v as usize];
            }
            if best_cut >= cur_cut {
                cur_cut = best_cut;
                break; // no improvement this pass
            }
            cur_cut = best_cut;
        }
        cur_cut.max(0) as u64
    }

    /// Recursive bisection into `k` parts; returns a part id per vertex.
    pub fn partition_kway(&self, k: usize, balance: f64, seed: u64) -> Vec<u32> {
        let n = self.len();
        let mut assignment = vec![0u32; n];
        if k <= 1 || n == 0 {
            return assignment;
        }
        // Work queue of (vertex subset, part id range).
        let mut work: Vec<(Vec<u32>, usize, usize, u64)> =
            vec![((0..n as u32).collect(), 0, k, seed)];
        while let Some((verts, part_lo, parts, s)) = work.pop() {
            if parts == 1 || verts.len() <= 1 {
                for &v in &verts {
                    assignment[v as usize] = part_lo as u32;
                }
                if verts.len() > 1 && parts > 1 {
                    // Degenerate: spread single-vertex leftovers round-robin.
                    for (i, &v) in verts.iter().enumerate() {
                        assignment[v as usize] = (part_lo + i % parts) as u32;
                    }
                }
                continue;
            }
            let left_parts = parts / 2;
            let frac = left_parts as f64 / parts as f64;
            let sub = self.subgraph(&verts);
            let side = sub.bisect(frac, balance, s);
            let mut left = Vec::new();
            let mut right = Vec::new();
            for (i, &v) in verts.iter().enumerate() {
                if !side[i] {
                    left.push(v);
                } else {
                    right.push(v);
                }
            }
            // Guard against empty halves (tiny inputs): fall back to a
            // round-robin split.
            if left.is_empty() || right.is_empty() {
                left.clear();
                right.clear();
                for (i, &v) in verts.iter().enumerate() {
                    if i % 2 == 0 {
                        left.push(v)
                    } else {
                        right.push(v)
                    }
                }
            }
            work.push((
                left,
                part_lo,
                left_parts,
                s.wrapping_mul(0x9E3779B97F4A7C15),
            ));
            work.push((
                right,
                part_lo + left_parts,
                parts - left_parts,
                s.wrapping_add(0x9E3779B97F4A7C15),
            ));
        }
        assignment
    }

    /// Induced subgraph over `verts` (edges restricted to kept pins).
    fn subgraph(&self, verts: &[u32]) -> Hypergraph {
        let mut remap = vec![u32::MAX; self.len()];
        for (i, &v) in verts.iter().enumerate() {
            remap[v as usize] = i as u32;
        }
        let mut sub = Hypergraph::new(
            verts
                .iter()
                .map(|&v| self.vertex_weights[v as usize])
                .collect(),
        );
        for (w, pins) in &self.edges {
            let kept: Vec<u32> = pins
                .iter()
                .filter_map(|&p| {
                    let r = remap[p as usize];
                    (r != u32::MAX).then_some(r)
                })
                .collect();
            sub.add_edge(*w, kept);
        }
        sub
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 10-vertex cliques joined by one light edge: the obvious
    /// bisection cuts only the bridge.
    fn two_cliques() -> Hypergraph {
        let mut h = Hypergraph::new(vec![1; 20]);
        for c in 0..2u32 {
            let base = c * 10;
            for i in 0..10 {
                for j in (i + 1)..10 {
                    h.add_edge(10, vec![base + i, base + j]);
                }
            }
        }
        h.add_edge(1, vec![0, 10]);
        h
    }

    #[test]
    fn bisect_finds_the_bridge() {
        let h = two_cliques();
        let side = h.bisect(0.5, 0.1, 42);
        assert_eq!(h.cut(&side), 1);
        let a = side.iter().filter(|&&s| !s).count();
        assert_eq!(a, 10);
    }

    #[test]
    fn kway_respects_part_count() {
        let h = two_cliques();
        let parts = h.partition_kway(4, 0.2, 7);
        let distinct: std::collections::HashSet<u32> = parts.iter().copied().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn cut_metric() {
        let mut h = Hypergraph::new(vec![1; 4]);
        h.add_edge(5, vec![0, 1]);
        h.add_edge(3, vec![2, 3]);
        h.add_edge(7, vec![1, 2]);
        let side = vec![false, false, true, true];
        assert_eq!(h.cut(&side), 7);
    }

    #[test]
    fn balance_respected() {
        // 100 vertices, no edges: bisection must still split by weight.
        let h = Hypergraph::new(vec![1; 100]);
        let side = h.bisect(0.5, 0.05, 3);
        let a = side.iter().filter(|&&s| !s).count();
        assert!((45..=55).contains(&a), "split {a}/100 out of balance");
    }

    #[test]
    fn weighted_vertices_balance_by_weight() {
        // One heavy vertex (weight 50) + 50 light: the heavy one should sit
        // alone-ish on its side.
        let mut w = vec![1u64; 50];
        w.push(50);
        let h = Hypergraph::new(w);
        let side = h.bisect(0.5, 0.1, 9);
        let heavy_side = side[50];
        let same: u64 = (0..50).filter(|&v| side[v] == heavy_side).count() as u64;
        assert!(same <= 10, "heavy vertex grouped with {same} light ones");
    }

    #[test]
    fn single_pin_edges_ignored() {
        let mut h = Hypergraph::new(vec![1; 3]);
        h.add_edge(5, vec![1]);
        h.add_edge(5, vec![]);
        assert_eq!(h.edges.len(), 0);
    }

    #[test]
    fn empty_and_k1() {
        let h = Hypergraph::new(vec![]);
        assert!(h.is_empty());
        assert!(h.partition_kway(4, 0.1, 0).is_empty());
        let h2 = Hypergraph::new(vec![1, 1]);
        assert_eq!(h2.partition_kway(1, 0.1, 0), vec![0, 0]);
    }
}
