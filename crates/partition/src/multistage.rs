//! GEM's multi-stage extension of RepCut (paper §III-C, Fig 5).
//!
//! Replication cost grows super-linearly with partition count: RepCut
//! reports 1.30 % at 8 partitions and 10.95 % at 48, and the paper
//! measures over 200 % at the 216 partitions a modern GPU needs. The fix:
//! cut the circuit at one or more middle logic levels, treat the crossing
//! signals as endpoints of the earlier stage, and run RepCut per stage.
//! Each extra stage costs one device-wide synchronization per cycle and
//! buys a dramatic replication reduction.

use crate::repcut::{partition_region, Region};
use crate::{PartitionOptions, Partitioning, Stage};
use gem_aig::{Eaig, Lit, Node};

/// Partitions `g` into [`PartitionOptions::stages`] pipeline stages of
/// [`PartitionOptions::target_parts`] partitions each (see [`crate::partition`]).
pub fn partition_staged(g: &Eaig, opts: &PartitionOptions) -> Partitioning {
    let original_gates = g.num_live_ands();
    let stages = opts.stages.max(1);
    if stages == 1 {
        let region = Region::whole(g);
        let partitions = partition_region(g, &region, opts.target_parts, opts);
        return Partitioning {
            stages: vec![Stage {
                partitions,
                cut_lits: Vec::new(),
            }],
            original_gates,
        };
    }
    // Choose cut levels evenly across the live depth.
    let levels = g.levels();
    let depth = levels.depth;
    let cut_levels: Vec<u32> = (1..stages)
        .map(|k| (depth as u64 * k as u64 / stages as u64) as u32)
        .filter(|&l| l > 0 && l < depth)
        .collect();
    partition_with_cuts(g, &cut_levels, opts, original_gates)
}

/// Partitions with explicit cut levels (exposed for experiments that sweep
/// the cut position).
pub fn partition_with_cuts(
    g: &Eaig,
    cut_levels: &[u32],
    opts: &PartitionOptions,
    original_gates: usize,
) -> Partitioning {
    let node_levels = g.node_levels();
    let live = g.live_nodes();
    let mut cut_levels: Vec<u32> = cut_levels.to_vec();
    cut_levels.sort_unstable();
    cut_levels.dedup();
    let nstages = cut_levels.len() + 1;

    // Cut sets: for boundary k (level L), the AND nodes at level ≤ L with a
    // live consumer at level > L (consumers in later segments read them).
    // A node can cross several boundaries; it is published at the first
    // boundary above its level and re-used afterwards (stops accumulate).
    let mut crossing: Vec<Vec<Lit>> = vec![Vec::new(); cut_levels.len()];
    for (i, n) in g.nodes().iter().enumerate() {
        if let Node::And(a, b) = n {
            if !live[i] {
                continue;
            }
            for x in [a, b] {
                let src = x.node().0 as usize;
                if !matches!(g.node(x.node()), Node::And(..)) {
                    continue; // global sources never need publishing
                }
                let src_level = node_levels[src];
                let use_level = node_levels[i];
                // Boundaries strictly between src_level and use_level.
                for (bi, &bl) in cut_levels.iter().enumerate() {
                    if src_level <= bl && use_level > bl {
                        crossing[bi].push(Lit::from_node(x.node()));
                    }
                }
            }
        }
    }
    // A node may cross several boundaries; publish it only at the first
    // one (later segments read the already-published value).
    let mut published = vec![false; g.len()];
    for c in crossing.iter_mut() {
        c.sort_unstable();
        c.dedup();
        c.retain(|l| !published[l.node().0 as usize]);
        for l in c.iter() {
            published[l.node().0 as usize] = true;
        }
    }

    // Segment s covers levels (cut[s-1], cut[s]]; its sinks are the
    // boundary-s crossing signals plus any real sinks whose node level
    // falls inside the segment.
    let real_sinks = g.sinks();
    let seg_upper = |s: usize| -> u32 {
        if s < cut_levels.len() {
            cut_levels[s]
        } else {
            u32::MAX
        }
    };
    let seg_lower = |s: usize| -> u32 {
        if s == 0 {
            0
        } else {
            cut_levels[s - 1]
        }
    };

    // Stop sets accumulate: segment s stops at everything published by
    // earlier boundaries.
    let mut stop = vec![false; g.len()];
    let mut stages_out = Vec::new();
    // Gate totals per segment for proportional part allocation.
    let mut seg_gates = vec![0usize; nstages];
    for (i, n) in g.nodes().iter().enumerate() {
        if live[i] && matches!(n, Node::And(..)) {
            let l = node_levels[i];
            let s = cut_levels.iter().take_while(|&&b| b < l).count();
            seg_gates[s] += 1;
        }
    }
    let total_gates: usize = seg_gates.iter().sum::<usize>().max(1);

    for s in 0..nstages {
        let mut sinks: Vec<Lit> = Vec::new();
        if s < cut_levels.len() {
            sinks.extend(crossing[s].iter().copied());
        }
        // Real sinks whose driving node lives in this segment.
        for &rs in &real_sinks {
            let l = node_levels[rs.node().0 as usize];
            if l > seg_lower(s) && l <= seg_upper(s) || (s == 0 && l == 0) {
                sinks.push(rs);
            }
        }
        sinks.sort_unstable();
        sinks.dedup();
        let share = ((opts.target_parts * seg_gates[s]) / total_gates).max(1);
        let region = Region {
            sinks: sinks.clone(),
            stop: stop.clone(),
        };
        let partitions = partition_region(g, &region, share, opts);
        let cut_lits = if s < cut_levels.len() {
            crossing[s].clone()
        } else {
            Vec::new()
        };
        // Later segments stop at this boundary's published nodes.
        for l in &cut_lits {
            stop[l.node().0 as usize] = true;
        }
        stages_out.push(Stage {
            partitions,
            cut_lits,
        });
    }
    Partitioning {
        stages: stages_out,
        original_gates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_aig::Lit;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// A deep circuit with heavy sharing near the inputs: single-stage
    /// partitioning replicates the shared base into every partition, while
    /// a two-stage cut publishes it once.
    fn shared_base_circuit(sinks: usize) -> Eaig {
        let mut g = Eaig::new();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let inputs: Vec<Lit> = (0..32).map(|i| g.input(format!("i{i}"))).collect();
        // Shared base: a layered random mesh everything depends on.
        let mut layer = inputs.clone();
        for _ in 0..6 {
            let mut next = Vec::new();
            for k in 0..layer.len() {
                let a = layer[k];
                let b = layer[rng.gen_range(0..layer.len())];
                next.push(g.xor(a, b));
            }
            layer = next;
        }
        // Per-sink private towers on top of random base taps.
        for si in 0..sinks {
            let mut cur = layer[rng.gen_range(0..layer.len())];
            for _ in 0..8 {
                let t = layer[rng.gen_range(0..layer.len())];
                cur = g.and(cur, t.flip());
                let e = g.input(format!("p{si}_{}", rng.gen_range(0..1 << 30)));
                cur = g.xor(cur, e);
            }
            let q = g.ff(false);
            g.set_ff_next(q, cur);
            g.output(format!("o{si}"), q);
        }
        g
    }

    #[test]
    fn multistage_reduces_replication() {
        let g = shared_base_circuit(24);
        let opts1 = PartitionOptions {
            target_parts: 12,
            stages: 1,
            ..Default::default()
        };
        let opts2 = PartitionOptions {
            target_parts: 12,
            stages: 2,
            ..Default::default()
        };
        let single = partition_staged(&g, &opts1);
        let multi = partition_staged(&g, &opts2);
        assert!(
            multi.replication_cost() < single.replication_cost(),
            "2-stage {:.3} should beat 1-stage {:.3}",
            multi.replication_cost(),
            single.replication_cost()
        );
    }

    #[test]
    fn all_sinks_covered_exactly_once_across_stages() {
        let g = shared_base_circuit(10);
        let opts = PartitionOptions {
            target_parts: 8,
            stages: 2,
            ..Default::default()
        };
        let p = partition_staged(&g, &opts);
        let mut covered: Vec<Lit> = p
            .stages
            .iter()
            .flat_map(|s| s.partitions.iter().flat_map(|pt| pt.sinks.iter().copied()))
            .collect();
        covered.sort_unstable();
        covered.dedup_by_key(|l| l.node()); // cut lits may duplicate polarity
        let mut expected: Vec<Lit> = g.sinks();
        // Expected = real sinks ∪ cut lits.
        for s in &p.stages {
            expected.extend(s.cut_lits.iter().copied());
        }
        expected.sort_unstable();
        expected.dedup_by_key(|l| l.node());
        let covered_nodes: std::collections::HashSet<u32> =
            covered.iter().map(|l| l.node().0).collect();
        for e in expected {
            assert!(
                covered_nodes.contains(&e.node().0),
                "sink {e} not covered by any partition"
            );
        }
    }

    #[test]
    fn stage2_partitions_stop_at_cut() {
        let g = shared_base_circuit(10);
        let opts = PartitionOptions {
            target_parts: 8,
            stages: 2,
            ..Default::default()
        };
        let p = partition_staged(&g, &opts);
        assert_eq!(p.stages.len(), 2);
        let cut_nodes: std::collections::HashSet<u32> =
            p.stages[0].cut_lits.iter().map(|l| l.node().0).collect();
        for part in &p.stages[1].partitions {
            for n in &part.nodes {
                assert!(
                    !cut_nodes.contains(&n.0),
                    "stage-2 partition recomputes published node n{}",
                    n.0
                );
            }
        }
    }

    #[test]
    fn single_stage_has_no_cut_lits() {
        let g = shared_base_circuit(4);
        let p = partition_staged(&g, &PartitionOptions::default());
        assert_eq!(p.stages.len(), 1);
        assert!(p.stages[0].cut_lits.is_empty());
    }
}
