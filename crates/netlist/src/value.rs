//! Arbitrary-width two-state (`0`/`1`) values.
//!
//! GEM is a two-state simulator (the paper lists 4-state simulation as
//! future work), so a value is just a fixed-width vector of bits. [`Bits`]
//! stores them packed into `u64` limbs, least-significant limb first.

use std::fmt;

/// A fixed-width two-state value, bit 0 being the least significant.
///
/// # Example
///
/// ```
/// use gem_netlist::Bits;
///
/// let a = Bits::from_u64(0b1011, 4);
/// assert_eq!(a.bit(0), true);
/// assert_eq!(a.bit(2), false);
/// assert_eq!(a.to_u64(), 0b1011);
/// assert_eq!(format!("{a}"), "4'b1011");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bits {
    width: u32,
    limbs: Vec<u64>,
}

impl Bits {
    /// Creates an all-zero value of the given width.
    ///
    /// A zero-width value is allowed and compares equal to any other
    /// zero-width value.
    pub fn zeros(width: u32) -> Self {
        Bits {
            width,
            limbs: vec![0; Self::limb_count(width)],
        }
    }

    /// Creates an all-ones value of the given width.
    pub fn ones(width: u32) -> Self {
        let mut b = Bits {
            width,
            limbs: vec![!0u64; Self::limb_count(width)],
        };
        b.mask_top();
        b
    }

    /// Creates a value from the low `width` bits of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` would be required to hold set bits of `v`
    /// that get truncated; truncation of zero bits is fine.
    pub fn from_u64(v: u64, width: u32) -> Self {
        let mut b = Bits::zeros(width);
        if width > 0 {
            if width < 64 {
                debug_assert_eq!(v >> width, 0, "value {v:#x} does not fit in {width} bits");
            }
            b.limbs[0] = if width >= 64 {
                v
            } else {
                v & ((1u64 << width) - 1)
            };
        }
        b
    }

    /// Creates a value from individual bits, index 0 being the LSB.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut b = Bits::zeros(bits.len() as u32);
        for (i, &bit) in bits.iter().enumerate() {
            b.set_bit(i as u32, bit);
        }
        b
    }

    fn limb_count(width: u32) -> usize {
        width.div_ceil(64) as usize
    }

    /// Width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: u32) -> bool {
        assert!(
            i < self.width,
            "bit index {i} out of range 0..{}",
            self.width
        );
        (self.limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set_bit(&mut self, i: u32, v: bool) {
        assert!(
            i < self.width,
            "bit index {i} out of range 0..{}",
            self.width
        );
        let limb = &mut self.limbs[(i / 64) as usize];
        if v {
            *limb |= 1u64 << (i % 64);
        } else {
            *limb &= !(1u64 << (i % 64));
        }
    }

    /// Returns the value as a `u64`, truncating to the low 64 bits.
    pub fn to_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// True if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Iterator over bits, LSB first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.width).map(move |i| self.bit(i))
    }

    fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            if let Some(last) = self.limbs.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    fn check_same_width(&self, other: &Self) {
        assert_eq!(
            self.width, other.width,
            "width mismatch: {} vs {}",
            self.width, other.width
        );
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Self {
        let mut r = self.clone();
        for l in &mut r.limbs {
            *l = !*l;
        }
        r.mask_top();
        r
    }

    /// Bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if widths differ (same for the other bitwise ops).
    pub fn and(&self, other: &Self) -> Self {
        self.check_same_width(other);
        self.zip(other, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &Self) -> Self {
        self.check_same_width(other);
        self.zip(other, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &Self) -> Self {
        self.check_same_width(other);
        self.zip(other, |a, b| a ^ b)
    }

    fn zip(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        let mut r = self.clone();
        for (l, o) in r.limbs.iter_mut().zip(&other.limbs) {
            *l = f(*l, *o);
        }
        r.mask_top();
        r
    }

    /// Wrapping addition (modulo `2^width`).
    pub fn add(&self, other: &Self) -> Self {
        self.check_same_width(other);
        let mut r = Bits::zeros(self.width);
        let mut carry = 0u64;
        for i in 0..self.limbs.len() {
            let (s1, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            r.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        r.mask_top();
        r
    }

    /// Wrapping subtraction (modulo `2^width`).
    pub fn sub(&self, other: &Self) -> Self {
        self.check_same_width(other);
        // a - b = a + !b + 1
        let mut r = self.add(&other.not());
        // add 1
        let one = {
            let mut o = Bits::zeros(self.width);
            if self.width > 0 {
                o.limbs[0] = 1;
            }
            o
        };
        r = r.add(&one);
        r
    }

    /// Wrapping multiplication (modulo `2^width`). Widths must match.
    pub fn mul(&self, other: &Self) -> Self {
        self.check_same_width(other);
        let n = self.limbs.len();
        let mut acc = vec![0u64; n];
        for i in 0..n {
            let mut carry = 0u128;
            for j in 0..n - i {
                let t =
                    acc[i + j] as u128 + (self.limbs[i] as u128) * (other.limbs[j] as u128) + carry;
                acc[i + j] = t as u64;
                carry = t >> 64;
            }
        }
        let mut r = Bits {
            width: self.width,
            limbs: acc,
        };
        r.mask_top();
        r
    }

    /// Unsigned comparison: `self < other`.
    pub fn ult(&self, other: &Self) -> bool {
        self.check_same_width(other);
        for i in (0..self.limbs.len()).rev() {
            if self.limbs[i] != other.limbs[i] {
                return self.limbs[i] < other.limbs[i];
            }
        }
        false
    }

    /// Logical shift left by a constant amount (zeros shifted in).
    pub fn shl(&self, amount: u32) -> Self {
        let mut r = Bits::zeros(self.width);
        for i in 0..self.width {
            if i >= amount && self.bit(i - amount) {
                r.set_bit(i, true);
            }
        }
        r
    }

    /// Logical shift right by a constant amount (zeros shifted in).
    pub fn lshr(&self, amount: u32) -> Self {
        let mut r = Bits::zeros(self.width);
        for i in 0..self.width {
            if i + amount < self.width && self.bit(i + amount) {
                r.set_bit(i, true);
            }
        }
        r
    }

    /// AND-reduction over all bits. The reduction of a zero-width value is
    /// `true` (empty product), matching Verilog's vacuous behaviour.
    pub fn reduce_and(&self) -> bool {
        *self == Bits::ones(self.width)
    }

    /// OR-reduction over all bits.
    pub fn reduce_or(&self) -> bool {
        !self.is_zero()
    }

    /// XOR-reduction (parity) over all bits.
    pub fn reduce_xor(&self) -> bool {
        self.limbs.iter().map(|l| l.count_ones()).sum::<u32>() % 2 == 1
    }

    /// Extracts bits `[lo, lo+width)` as a new value.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds this value's width.
    pub fn slice(&self, lo: u32, width: u32) -> Self {
        assert!(
            lo + width <= self.width,
            "slice [{lo}, {}) out of range 0..{}",
            lo + width,
            self.width
        );
        let mut r = Bits::zeros(width);
        for i in 0..width {
            r.set_bit(i, self.bit(lo + i));
        }
        r
    }

    /// Concatenates `self` (low part) with `hi` (high part).
    pub fn concat(&self, hi: &Self) -> Self {
        let mut r = Bits::zeros(self.width + hi.width);
        for i in 0..self.width {
            r.set_bit(i, self.bit(i));
        }
        for i in 0..hi.width {
            r.set_bit(self.width + i, hi.bit(i));
        }
        r
    }

    /// Zero-extends or truncates to `width`.
    pub fn resize(&self, width: u32) -> Self {
        let mut r = Bits::zeros(width);
        for i in 0..width.min(self.width) {
            r.set_bit(i, self.bit(i));
        }
        r
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b", self.width)?;
        if self.width == 0 {
            return write!(f, "0");
        }
        for i in (0..self.width).rev() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl From<bool> for Bits {
    fn from(v: bool) -> Self {
        Bits::from_u64(v as u64, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let b = Bits::from_u64(0b1010, 4);
        assert_eq!(b.width(), 4);
        assert!(!b.bit(0));
        assert!(b.bit(1));
        assert!(!b.bit(2));
        assert!(b.bit(3));
        assert_eq!(b.to_u64(), 0b1010);
    }

    #[test]
    fn wide_values() {
        let mut b = Bits::zeros(130);
        b.set_bit(0, true);
        b.set_bit(64, true);
        b.set_bit(129, true);
        assert!(b.bit(129));
        assert!(b.bit(64));
        assert!(!b.bit(128));
        let n = b.not();
        assert!(!n.bit(129));
        assert!(n.bit(128));
    }

    #[test]
    fn arithmetic_wraps() {
        let a = Bits::from_u64(0xF, 4);
        let one = Bits::from_u64(1, 4);
        assert_eq!(a.add(&one).to_u64(), 0);
        assert_eq!(Bits::zeros(4).sub(&one).to_u64(), 0xF);
    }

    #[test]
    fn wide_add_carry_propagates() {
        let mut a = Bits::zeros(128);
        for i in 0..64 {
            a.set_bit(i, true); // low limb all ones
        }
        let one = Bits::from_u64(1, 128);
        let s = a.add(&one);
        assert!(s.bit(64));
        for i in 0..64 {
            assert!(!s.bit(i));
        }
    }

    #[test]
    fn mul_matches_u64() {
        let a = Bits::from_u64(123, 32);
        let b = Bits::from_u64(4567, 32);
        assert_eq!(a.mul(&b).to_u64(), (123u64 * 4567) & 0xFFFF_FFFF);
    }

    #[test]
    fn comparisons() {
        let a = Bits::from_u64(5, 8);
        let b = Bits::from_u64(9, 8);
        assert!(a.ult(&b));
        assert!(!b.ult(&a));
        assert!(!a.ult(&a));
    }

    #[test]
    fn reductions() {
        assert!(Bits::ones(7).reduce_and());
        assert!(!Bits::from_u64(0b011, 3).reduce_and());
        assert!(Bits::from_u64(0b010, 3).reduce_or());
        assert!(!Bits::zeros(3).reduce_or());
        assert!(Bits::from_u64(0b0111, 4).reduce_xor());
        assert!(!Bits::from_u64(0b0101, 4).reduce_xor());
    }

    #[test]
    fn shifts() {
        let a = Bits::from_u64(0b0011, 4);
        assert_eq!(a.shl(2).to_u64(), 0b1100);
        assert_eq!(a.shl(5).to_u64(), 0);
        assert_eq!(Bits::from_u64(0b1100, 4).lshr(2).to_u64(), 0b0011);
    }

    #[test]
    fn slice_concat_resize() {
        let a = Bits::from_u64(0xAB, 8);
        assert_eq!(a.slice(4, 4).to_u64(), 0xA);
        let c = a.slice(0, 4).concat(&a.slice(4, 4));
        assert_eq!(c.to_u64(), 0xAB);
        assert_eq!(a.resize(4).to_u64(), 0xB);
        assert_eq!(a.resize(16).to_u64(), 0xAB);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", Bits::from_u64(0b101, 3)), "3'b101");
        assert_eq!(format!("{}", Bits::zeros(0)), "0'b0");
    }

    #[test]
    fn ones_masks_top_limb() {
        let b = Bits::ones(65);
        assert!(b.bit(64));
        assert_eq!(b.limbs[1], 1);
    }

    #[test]
    fn from_bools_round_trip() {
        let v = [true, false, true, true];
        let b = Bits::from_bools(&v);
        assert_eq!(b.iter().collect::<Vec<_>>(), v);
    }
}
