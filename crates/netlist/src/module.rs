//! The word-level netlist data model.
//!
//! A [`Module`] is a flat, single-clock-domain netlist of word-level nets
//! driven by [`Cell`]s, with multi-port [`Memory`] arrays modeled natively
//! (the GEM E-AIG has native RAM blocks, so memories must survive until
//! synthesis rather than being bit-blasted here).

use crate::value::Bits;
use std::fmt;

/// Identifies a net (a named or anonymous word-level signal) in a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Identifies a cell in a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

/// Identifies a memory array in a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemId(pub u32);

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A word-level signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Optional user-facing name (ports always have one).
    pub name: Option<String>,
    /// Width in bits; zero-width nets are rejected by validation.
    pub width: u32,
}

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Driven by the environment each cycle.
    Input,
    /// Observed by the environment each cycle.
    Output,
}

/// A top-level port binding a direction and name to a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name, unique within the module.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// The net carrying the port value.
    pub net: NetId,
}

/// Unary word-level operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unary {
    /// Bitwise complement; output width equals input width.
    Not,
    /// Two's-complement negation; output width equals input width.
    Neg,
    /// AND-reduction to 1 bit.
    ReduceAnd,
    /// OR-reduction to 1 bit.
    ReduceOr,
    /// XOR-reduction (parity) to 1 bit.
    ReduceXor,
}

/// Binary word-level operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Binary {
    /// Bitwise AND (same widths in and out).
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Wrapping addition (same widths in and out).
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Equality; output is 1 bit.
    Eq,
    /// Unsigned less-than; output is 1 bit.
    Ult,
    /// Logical shift left by a *variable* amount; output width equals the
    /// first operand's width.
    Shl,
    /// Logical shift right by a variable amount.
    Lshr,
}

/// The operation performed by a [`Cell`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellKind {
    /// A constant driver. The output width equals `value.width()`.
    Const {
        /// The constant value.
        value: Bits,
    },
    /// A unary operator.
    Unary {
        /// Operator.
        op: Unary,
        /// Operand net.
        a: NetId,
    },
    /// A binary operator.
    Binary {
        /// Operator.
        op: Binary,
        /// Left operand.
        a: NetId,
        /// Right operand.
        b: NetId,
    },
    /// A 2:1 word multiplexer: `out = if sel { t } else { f }`.
    Mux {
        /// 1-bit select.
        sel: NetId,
        /// Value when `sel` is 1.
        t: NetId,
        /// Value when `sel` is 0.
        f: NetId,
    },
    /// Extracts bits `[lo, lo+out_width)` of `a`.
    Slice {
        /// Source net.
        a: NetId,
        /// Low bit index.
        lo: u32,
    },
    /// Concatenation; `parts[0]` occupies the least-significant bits.
    Concat {
        /// Nets to concatenate, LSB-part first.
        parts: Vec<NetId>,
    },
    /// A posedge-clocked D flip-flop bank with optional enable and
    /// synchronous reset. Every sequential element in the design is one of
    /// these (or a [`Memory`]); the clock is implicit and global.
    Dff {
        /// Next-state input.
        d: NetId,
        /// Power-on value (width must match the output).
        init: Bits,
        /// Optional active-high clock enable.
        enable: Option<NetId>,
        /// Optional synchronous active-high reset to `init`.
        reset: Option<NetId>,
    },
}

/// A cell drives exactly one output net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// The operation.
    pub kind: CellKind,
    /// Output net.
    pub out: NetId,
}

/// Whether a memory read port is registered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadKind {
    /// Data appears the cycle *after* the address is presented (block-RAM
    /// style). Maps natively onto GEM RAM blocks.
    Sync,
    /// Data is a combinational function of the address (register-file
    /// style). The paper notes these can only be polyfilled with FFs and
    /// decoder logic; `gem-synth` does exactly that.
    Async,
}

/// A memory read port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadPort {
    /// Address net (width `ceil(log2(words))`, at least 1).
    pub addr: NetId,
    /// Data output net (width equals the memory width).
    pub data: NetId,
    /// Synchronous or asynchronous read.
    pub kind: ReadKind,
}

/// A memory write port. Writes take effect at the clock edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritePort {
    /// Address net.
    pub addr: NetId,
    /// Data input net (width equals the memory width).
    pub data: NetId,
    /// Active-high write enable (1 bit).
    pub enable: NetId,
}

/// A word-addressed memory array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    /// Name for diagnostics and waveforms.
    pub name: String,
    /// Number of words (need not be a power of two).
    pub words: u32,
    /// Word width in bits.
    pub width: u32,
    /// Write ports.
    pub write_ports: Vec<WritePort>,
    /// Read ports.
    pub read_ports: Vec<ReadPort>,
}

/// A flat single-clock netlist.
///
/// Construct one through [`crate::ModuleBuilder`]; direct mutation is
/// intentionally not exposed so that a `Module` in hand has always passed
/// validation ([`crate::ModuleBuilder::finish`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    pub(crate) name: String,
    pub(crate) nets: Vec<Net>,
    pub(crate) ports: Vec<Port>,
    pub(crate) cells: Vec<Cell>,
    pub(crate) memories: Vec<Memory>,
}

impl Module {
    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nets, indexable by [`NetId`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// Net accessor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Width of a net in bits.
    pub fn width(&self, id: NetId) -> u32 {
        self.net(id).width
    }

    /// All ports in declaration order.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Input ports in declaration order.
    pub fn inputs(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.dir == PortDir::Input)
    }

    /// Output ports in declaration order.
    pub fn outputs(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.dir == PortDir::Output)
    }

    /// Finds a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// All cells, indexable by [`CellId`].
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Cell accessor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0 as usize]
    }

    /// All memories, indexable by [`MemId`].
    pub fn memories(&self) -> &[Memory] {
        &self.memories
    }

    /// Total number of sequential state bits (FF bits plus memory bits).
    pub fn state_bits(&self) -> u64 {
        let ff: u64 = self
            .cells
            .iter()
            .filter(|c| matches!(c.kind, CellKind::Dff { .. }))
            .map(|c| self.width(c.out) as u64)
            .sum();
        let mem: u64 = self
            .memories
            .iter()
            .map(|m| m.words as u64 * m.width as u64)
            .sum();
        ff + mem
    }

    /// Nets read by a cell (its fan-in), in a deterministic order.
    pub fn cell_inputs(&self, cell: &Cell) -> Vec<NetId> {
        match &cell.kind {
            CellKind::Const { .. } => vec![],
            CellKind::Unary { a, .. } => vec![*a],
            CellKind::Binary { a, b, .. } => vec![*a, *b],
            CellKind::Mux { sel, t, f } => vec![*sel, *t, *f],
            CellKind::Slice { a, .. } => vec![*a],
            CellKind::Concat { parts } => parts.clone(),
            CellKind::Dff {
                d, enable, reset, ..
            } => {
                let mut v = vec![*d];
                v.extend(enable.iter().copied());
                v.extend(reset.iter().copied());
                v
            }
        }
    }
}

/// Errors produced by [`crate::ModuleBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A net has no driver (and is not an input port).
    UndrivenNet(NetId),
    /// A net has more than one driver.
    MultipleDrivers(NetId),
    /// A cell's operand widths are inconsistent; the string describes the
    /// mismatch.
    WidthMismatch(String),
    /// A zero-width net was created.
    ZeroWidth(NetId),
    /// Two ports share a name.
    DuplicatePort(String),
    /// The combinational part of the design has a cycle; `cycle` lists the
    /// nets on it in dependency order (each net combinationally depends on
    /// the next, and the last depends on the first).
    CombinationalCycle {
        /// The nets forming the cycle, in dependency order.
        cycle: Vec<NetId>,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UndrivenNet(n) => write!(f, "net {n} has no driver"),
            ValidateError::MultipleDrivers(n) => write!(f, "net {n} has multiple drivers"),
            ValidateError::WidthMismatch(s) => write!(f, "width mismatch: {s}"),
            ValidateError::ZeroWidth(n) => write!(f, "net {n} has zero width"),
            ValidateError::DuplicatePort(s) => write!(f, "duplicate port name {s:?}"),
            ValidateError::CombinationalCycle { cycle } => {
                write!(f, "combinational cycle through ")?;
                for (i, n) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{n}")?;
                }
                if let Some(first) = cycle.first() {
                    write!(f, " -> {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ValidateError {}
