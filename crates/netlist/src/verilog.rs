//! Parser for a synthesizable structural-Verilog subset.
//!
//! GEM's published flow consumes Verilog RTL. This frontend accepts the
//! single-clock synthesizable subset sufficient for the designs in this
//! repository:
//!
//! * `module` with ANSI port lists (`input`/`output [msb:lsb] name`,
//!   `output reg` allowed),
//! * `wire`/`reg` declarations, memory arrays `reg [w-1:0] m [0:depth-1];`,
//! * `assign` with expressions over `~ & | ^ + - * == != < <= > >= << >>
//!   ?: {,} [i] [hi:lo] !`, sized and unsized literals,
//! * `always @(posedge <clk>)` blocks containing non-blocking assignments
//!   to regs or memory words, and `if`/`else` with `begin`/`end`,
//! * memory reads `m[addr]` in expressions (asynchronous read port) or as
//!   non-blocking RHS inside `always` (synchronous read port).
//!
//! The clock is implicit and global, as everywhere in this workspace: the
//! identifier in `@(posedge ...)` is checked to be a 1-bit input and
//! otherwise ignored.
//!
//! # Example
//!
//! ```
//! let src = r#"
//! module counter(input clk, input rst, output reg [7:0] q);
//!   always @(posedge clk) begin
//!     if (rst) q <= 8'd0;
//!     else q <= q + 8'd1;
//!   end
//! endmodule
//! "#;
//! let module = gem_netlist::verilog::parse(src)?;
//! assert_eq!(module.name(), "counter");
//! assert_eq!(module.state_bits(), 8);
//! # Ok::<(), gem_netlist::verilog::ParseVerilogError>(())
//! ```

use crate::builder::ModuleBuilder;
use crate::module::{Module, NetId, ReadKind, ValidateError};
use std::collections::HashMap;
use std::fmt;

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseVerilogError {
    /// Lexical or syntactic problem at `line` with a message.
    Syntax {
        /// 1-based source line.
        line: u32,
        /// Description of what went wrong.
        message: String,
    },
    /// The netlist produced from the source failed validation.
    Validate(ValidateError),
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseVerilogError::Syntax { line, message } => {
                write!(f, "syntax error at line {line}: {message}")
            }
            ParseVerilogError::Validate(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl std::error::Error for ParseVerilogError {}

impl From<ValidateError> for ParseVerilogError {
    fn from(e: ValidateError) -> Self {
        ParseVerilogError::Validate(e)
    }
}

/// A source-level observation made during elaboration that is legal
/// Verilog but suspicious — the raw material for `gem-analyze`'s
/// frontend lint family. These never fail [`parse`]; they ride along on
/// [`parse_with_lints`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceLint {
    /// An implicit resize dropped high bits: the right-hand side of an
    /// assignment to `target` was `from` bits wide, the target only `to`.
    WidthTruncation {
        /// The assigned wire/reg/memory name.
        target: String,
        /// RHS width before the implicit resize.
        from: u32,
        /// Target width.
        to: u32,
    },
}

impl fmt::Display for SourceLint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceLint::WidthTruncation { target, from, to } => write!(
                f,
                "assignment to {target:?} truncates {from}-bit value to {to} bits"
            ),
        }
    }
}

/// Parses Verilog source into a [`Module`].
///
/// # Errors
///
/// Returns [`ParseVerilogError::Syntax`] for constructs outside the subset
/// and [`ParseVerilogError::Validate`] if the elaborated netlist is
/// inconsistent (e.g. a combinational cycle — the error carries the full
/// cycle path).
pub fn parse(src: &str) -> Result<Module, ParseVerilogError> {
    let (module, _) = parse_with_lints(src)?;
    crate::builder::validate(&module)?;
    Ok(module)
}

/// Like [`parse`], but returns the module **unvalidated** together with
/// the frontend's [`SourceLint`]s. This is the entry point for the static
/// analyzer: broken-but-elaboratable netlists (combinational `assign`
/// loops, multiply assigned wires) come back as structural [`Module`]s so
/// the analyzer can name the nets involved, instead of dying on the first
/// [`ValidateError`]. Run [`crate::validate`] before feeding the module to
/// synthesis.
///
/// # Errors
///
/// Returns [`ParseVerilogError::Syntax`] for constructs outside the
/// subset.
pub fn parse_with_lints(src: &str) -> Result<(Module, Vec<SourceLint>), ParseVerilogError> {
    let tokens = lex(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    let ast = parser.module()?;
    elaborate(&ast)
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Number { width: Option<u32>, value: u64 },
    Punct(&'static str),
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    line: u32,
}

fn lex(src: &str) -> Result<Vec<SpannedTok>, ParseVerilogError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    let err = |line: u32, m: &str| ParseVerilogError::Syntax {
        line,
        message: m.to_string(),
    };
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            i += 2;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(SpannedTok {
                tok: Tok::Ident(src[start..i].to_string()),
                line,
            });
        } else if c.is_ascii_digit() {
            // number: [size]'[base]digits or plain decimal
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'\'' {
                let width: u32 = src[start..i]
                    .parse()
                    .map_err(|_| err(line, "bad literal size"))?;
                i += 1;
                if i >= bytes.len() {
                    return Err(err(line, "truncated literal"));
                }
                let base = bytes[i] as char;
                i += 1;
                let dstart = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let digits: String = src[dstart..i].chars().filter(|&c| c != '_').collect();
                let radix = match base {
                    'b' | 'B' => 2,
                    'o' | 'O' => 8,
                    'd' | 'D' => 10,
                    'h' | 'H' => 16,
                    _ => return Err(err(line, "bad literal base")),
                };
                let value = u64::from_str_radix(&digits, radix)
                    .map_err(|_| err(line, "bad literal digits"))?;
                out.push(SpannedTok {
                    tok: Tok::Number {
                        width: Some(width),
                        value,
                    },
                    line,
                });
            } else {
                let value: u64 = src[start..i]
                    .parse()
                    .map_err(|_| err(line, "bad decimal literal"))?;
                out.push(SpannedTok {
                    tok: Tok::Number { width: None, value },
                    line,
                });
            }
        } else {
            const PUNCTS: &[&str] = &[
                "<=", ">=", "==", "!=", "<<", ">>", "&&", "||", "(", ")", "[", "]", "{", "}", ",",
                ";", ":", "?", "=", "+", "-", "*", "&", "|", "^", "~", "!", "<", ">", "@",
            ];
            let rest = &src[i..];
            let mut matched = None;
            for p in PUNCTS {
                if rest.starts_with(p) {
                    matched = Some(*p);
                    break;
                }
            }
            match matched {
                Some(p) => {
                    out.push(SpannedTok {
                        tok: Tok::Punct(p),
                        line,
                    });
                    i += p.len();
                }
                None => return Err(err(line, &format!("unexpected character {c:?}"))),
            }
        }
    }
    Ok(out)
}

// ----------------------------------------------------------------- AST --

#[derive(Debug, Clone)]
enum Expr {
    Ident(String),
    Number { width: Option<u32>, value: u64 },
    Unary(&'static str, Box<Expr>),
    Binary(&'static str, Box<Expr>, Box<Expr>),
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    Concat(Vec<Expr>),
    Index(String, Box<Expr>), // ident[expr] — bit select or memory read
    Range(String, u32, u32),  // ident[hi:lo]
}

#[derive(Debug, Clone)]
enum Stmt {
    NonBlocking {
        target: Target,
        rhs: Expr,
    },
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
}

#[derive(Debug, Clone)]
enum Target {
    Reg(String),
    MemWord(String, Expr),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum DeclKind {
    Input,
    Output,
    OutputReg,
    Wire,
    Reg,
}

#[derive(Debug, Clone)]
struct Decl {
    kind: DeclKind,
    width: u32,
    name: String,
    mem_depth: Option<u32>,
}

#[derive(Debug)]
struct AstModule {
    name: String,
    decls: Vec<Decl>,
    assigns: Vec<(Target2, Expr, u32)>, // lhs, rhs, line
    always: Vec<(String, Vec<Stmt>)>,   // clock name, body
}

#[derive(Debug, Clone)]
enum Target2 {
    Whole(String),
}

// -------------------------------------------------------------- parser --

struct Parser {
    tokens: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err<T>(&self, m: impl Into<String>) -> Result<T, ParseVerilogError> {
        Err(ParseVerilogError::Syntax {
            line: self.line(),
            message: m.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if let Some(Tok::Punct(q)) = self.peek() {
            if *q == p {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseVerilogError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected {p:?}, found {:?}", self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseVerilogError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {kw:?}"))
        }
    }

    fn ident(&mut self) -> Result<String, ParseVerilogError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                self.pos -= 1;
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    fn const_u32(&mut self) -> Result<u32, ParseVerilogError> {
        match self.next() {
            Some(Tok::Number { value, .. }) => Ok(value as u32),
            other => {
                self.pos -= 1;
                self.err(format!("expected constant, found {other:?}"))
            }
        }
    }

    /// Optional `[msb:lsb]` width; defaults to 1.
    fn opt_range_width(&mut self) -> Result<u32, ParseVerilogError> {
        if self.eat_punct("[") {
            let msb = self.const_u32()?;
            self.expect_punct(":")?;
            let lsb = self.const_u32()?;
            self.expect_punct("]")?;
            if lsb != 0 {
                return self.err("only [msb:0] ranges are supported");
            }
            Ok(msb + 1)
        } else {
            Ok(1)
        }
    }

    fn module(&mut self) -> Result<AstModule, ParseVerilogError> {
        self.expect_kw("module")?;
        let name = self.ident()?;
        let mut decls = Vec::new();
        self.expect_punct("(")?;
        if !self.eat_punct(")") {
            loop {
                let kind = if self.eat_kw("input") {
                    DeclKind::Input
                } else if self.eat_kw("output") {
                    if self.eat_kw("reg") {
                        DeclKind::OutputReg
                    } else {
                        DeclKind::Output
                    }
                } else {
                    return self.err("port must start with input/output");
                };
                self.eat_kw("wire");
                let width = self.opt_range_width()?;
                let pname = self.ident()?;
                decls.push(Decl {
                    kind,
                    width,
                    name: pname,
                    mem_depth: None,
                });
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        self.expect_punct(";")?;

        let mut assigns = Vec::new();
        let mut always = Vec::new();
        loop {
            if self.eat_kw("endmodule") {
                break;
            } else if self.eat_kw("wire") || {
                if self.eat_kw("reg") {
                    decls.push(self.finish_decl(DeclKind::Reg)?);
                    continue;
                }
                false
            } {
                decls.push(self.finish_decl(DeclKind::Wire)?);
            } else if self.eat_kw("assign") {
                let line = self.line();
                let lhs = self.ident()?;
                self.expect_punct("=")?;
                let rhs = self.expr()?;
                self.expect_punct(";")?;
                assigns.push((Target2::Whole(lhs), rhs, line));
            } else if self.eat_kw("always") {
                self.expect_punct("@")?;
                self.expect_punct("(")?;
                self.expect_kw("posedge")?;
                let clk = self.ident()?;
                self.expect_punct(")")?;
                let body = self.stmt_block()?;
                always.push((clk, body));
            } else if self.peek().is_none() {
                return self.err("unexpected end of file, missing endmodule");
            } else {
                return self.err(format!("unexpected token {:?}", self.peek()));
            }
        }
        Ok(AstModule {
            name,
            decls,
            assigns,
            always,
        })
    }

    fn finish_decl(&mut self, kind: DeclKind) -> Result<Decl, ParseVerilogError> {
        let width = self.opt_range_width()?;
        let name = self.ident()?;
        let mem_depth = if self.eat_punct("[") {
            let lo = self.const_u32()?;
            self.expect_punct(":")?;
            let hi = self.const_u32()?;
            self.expect_punct("]")?;
            if lo != 0 {
                return self.err("memory ranges must start at 0");
            }
            Some(hi + 1)
        } else {
            None
        };
        self.expect_punct(";")?;
        Ok(Decl {
            kind,
            width,
            name,
            mem_depth,
        })
    }

    /// A single statement or a begin/end block, returned as a list.
    fn stmt_block(&mut self) -> Result<Vec<Stmt>, ParseVerilogError> {
        if self.eat_kw("begin") {
            let mut stmts = Vec::new();
            while !self.eat_kw("end") {
                stmts.push(self.stmt()?);
            }
            Ok(stmts)
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseVerilogError> {
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_branch = self.stmt_block()?;
            let else_branch = if self.eat_kw("else") {
                self.stmt_block()?
            } else {
                Vec::new()
            };
            Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
            })
        } else {
            let name = self.ident()?;
            let target = if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                Target::MemWord(name, idx)
            } else {
                Target::Reg(name)
            };
            self.expect_punct("<=")?;
            let rhs = self.expr()?;
            self.expect_punct(";")?;
            Ok(Stmt::NonBlocking { target, rhs })
        }
    }

    // Expression precedence (loosest to tightest):
    // ?: || && | ^ & (== !=) (< <= > >=) (<< >>) (+ -) (*) unary primary
    fn expr(&mut self) -> Result<Expr, ParseVerilogError> {
        let cond = self.expr_or()?;
        if self.eat_punct("?") {
            let t = self.expr()?;
            self.expect_punct(":")?;
            let f = self.expr()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(t), Box::new(f)))
        } else {
            Ok(cond)
        }
    }

    fn left_assoc(
        &mut self,
        ops: &[&'static str],
        next: fn(&mut Self) -> Result<Expr, ParseVerilogError>,
    ) -> Result<Expr, ParseVerilogError> {
        let mut lhs = next(self)?;
        'outer: loop {
            for &op in ops {
                if self.eat_punct(op) {
                    let rhs = next(self)?;
                    lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn expr_or(&mut self) -> Result<Expr, ParseVerilogError> {
        self.left_assoc(&["||"], Self::expr_and)
    }
    fn expr_and(&mut self) -> Result<Expr, ParseVerilogError> {
        self.left_assoc(&["&&"], Self::expr_bitor)
    }
    fn expr_bitor(&mut self) -> Result<Expr, ParseVerilogError> {
        self.left_assoc(&["|"], Self::expr_bitxor)
    }
    fn expr_bitxor(&mut self) -> Result<Expr, ParseVerilogError> {
        self.left_assoc(&["^"], Self::expr_bitand)
    }
    fn expr_bitand(&mut self) -> Result<Expr, ParseVerilogError> {
        self.left_assoc(&["&"], Self::expr_eq)
    }
    fn expr_eq(&mut self) -> Result<Expr, ParseVerilogError> {
        self.left_assoc(&["==", "!="], Self::expr_rel)
    }
    fn expr_rel(&mut self) -> Result<Expr, ParseVerilogError> {
        self.left_assoc(&["<=", ">=", "<", ">"], Self::expr_shift)
    }
    fn expr_shift(&mut self) -> Result<Expr, ParseVerilogError> {
        self.left_assoc(&["<<", ">>"], Self::expr_add)
    }
    fn expr_add(&mut self) -> Result<Expr, ParseVerilogError> {
        self.left_assoc(&["+", "-"], Self::expr_mul)
    }
    fn expr_mul(&mut self) -> Result<Expr, ParseVerilogError> {
        self.left_assoc(&["*"], Self::expr_unary)
    }

    fn expr_unary(&mut self) -> Result<Expr, ParseVerilogError> {
        for op in ["~", "!", "-", "&", "|", "^"] {
            if self.eat_punct(op) {
                let inner = self.expr_unary()?;
                let op: &'static str = match op {
                    "~" => "~",
                    "!" => "!",
                    "-" => "neg",
                    "&" => "&red",
                    "|" => "|red",
                    "^" => "^red",
                    _ => unreachable!(),
                };
                return Ok(Expr::Unary(op, Box::new(inner)));
            }
        }
        self.expr_primary()
    }

    fn expr_primary(&mut self) -> Result<Expr, ParseVerilogError> {
        if self.eat_punct("(") {
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        if self.eat_punct("{") {
            let mut parts = Vec::new();
            loop {
                parts.push(self.expr()?);
                if self.eat_punct("}") {
                    break;
                }
                self.expect_punct(",")?;
            }
            return Ok(Expr::Concat(parts));
        }
        match self.next() {
            Some(Tok::Number { width, value }) => Ok(Expr::Number { width, value }),
            Some(Tok::Ident(name)) => {
                if self.eat_punct("[") {
                    // Could be [expr] (index) or [hi:lo] (range). A range
                    // requires two constants separated by ':'.
                    let save = self.pos;
                    if let (Some(Tok::Number { value: hi, .. }), Some(Tok::Punct(":"))) = (
                        self.peek().cloned(),
                        self.tokens.get(self.pos + 1).map(|t| t.tok.clone()),
                    ) {
                        self.pos += 2;
                        let lo = self.const_u32()?;
                        self.expect_punct("]")?;
                        return Ok(Expr::Range(name, hi as u32, lo));
                    }
                    self.pos = save;
                    let idx = self.expr()?;
                    self.expect_punct("]")?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            other => {
                self.pos -= 1;
                self.err(format!("expected expression, found {other:?}"))
            }
        }
    }
}

// ---------------------------------------------------------- elaboration --

struct Elab<'a> {
    b: ModuleBuilder,
    decls: HashMap<String, Decl>,
    nets: HashMap<String, NetId>,
    mems: HashMap<String, crate::module::MemId>,
    ast: &'a AstModule,
    /// Wires whose `assign` is currently being elaborated; re-entering one
    /// means a combinational cycle, which is broken with a forward net so
    /// the loop becomes structural (and diagnosable) instead of recursing
    /// forever.
    in_flight: Vec<String>,
    /// Forward nets created to break cycles, keyed by wire name; the
    /// owning `resolve` closes the loop with `drive` when its RHS lands.
    placeholders: HashMap<String, NetId>,
    /// Frontend lints collected along the way (width truncations).
    lints: Vec<SourceLint>,
}

fn syntax_err<T>(m: impl Into<String>) -> Result<T, ParseVerilogError> {
    Err(ParseVerilogError::Syntax {
        line: 0,
        message: m.into(),
    })
}

fn elaborate(ast: &AstModule) -> Result<(Module, Vec<SourceLint>), ParseVerilogError> {
    let mut e = Elab {
        b: ModuleBuilder::new(ast.name.clone()),
        decls: HashMap::new(),
        nets: HashMap::new(),
        mems: HashMap::new(),
        ast,
        in_flight: Vec::new(),
        placeholders: HashMap::new(),
        lints: Vec::new(),
    };
    // Pass 1: declare everything.
    for d in &ast.decls {
        if e.decls.contains_key(&d.name) {
            return syntax_err(format!("duplicate declaration of {:?}", d.name));
        }
        e.decls.insert(d.name.clone(), d.clone());
        match (d.kind, d.mem_depth) {
            (DeclKind::Input, None) => {
                let n = e.b.input(&d.name, d.width);
                e.nets.insert(d.name.clone(), n);
            }
            (DeclKind::Reg | DeclKind::OutputReg, None) => {
                let q = e.b.dff(d.width);
                e.b.name_net(q, &d.name);
                e.nets.insert(d.name.clone(), q);
            }
            (DeclKind::Reg, Some(depth)) => {
                let m = e.b.memory(&d.name, depth, d.width);
                e.mems.insert(d.name.clone(), m);
            }
            (DeclKind::Wire | DeclKind::Output, None) => {
                // Driven later by an assign; recorded lazily.
            }
            _ => return syntax_err(format!("unsupported declaration shape for {:?}", d.name)),
        }
    }
    // Pass 2: assigns. Wires may reference each other in any order, so
    // elaborate on demand with memoization.
    let names: Vec<String> = ast
        .decls
        .iter()
        .filter(|d| matches!(d.kind, DeclKind::Wire | DeclKind::Output) && d.mem_depth.is_none())
        .map(|d| d.name.clone())
        .collect();
    for name in &names {
        e.resolve(name)?;
    }
    // Pass 3: always blocks.
    let ffs: Vec<String> = ast
        .decls
        .iter()
        .filter(|d| matches!(d.kind, DeclKind::Reg | DeclKind::OutputReg) && d.mem_depth.is_none())
        .map(|d| d.name.clone())
        .collect();
    let mut next: HashMap<String, NetId> = HashMap::new();
    for (clk, body) in &ast.always {
        match e.decls.get(clk) {
            Some(d) if d.kind == DeclKind::Input && d.width == 1 => {}
            _ => return syntax_err(format!("clock {clk:?} must be a 1-bit input")),
        }
        let true_net = e.b.lit(1, 1);
        e.exec_block(body, true_net, &mut next)?;
    }
    for name in &ffs {
        let q = e.nets[name];
        let d = next.remove(name).unwrap_or(q); // unassigned reg holds value
        e.b.connect_dff(q, d);
    }
    // Pass 4: output ports.
    for d in &ast.decls {
        match d.kind {
            DeclKind::Output => {
                let n = e.resolve(&d.name)?;
                e.b.output(&d.name, n);
            }
            DeclKind::OutputReg => {
                let n = e.nets[&d.name];
                e.b.output(&d.name, n);
            }
            _ => {}
        }
    }
    Ok((e.b.finish_raw(), e.lints))
}

impl Elab<'_> {
    /// Net for a named wire/reg/input, elaborating its `assign` on demand.
    fn resolve(&mut self, name: &str) -> Result<NetId, ParseVerilogError> {
        if let Some(&n) = self.nets.get(name) {
            return Ok(n);
        }
        let decl = match self.decls.get(name) {
            Some(d) => d.clone(),
            None => return syntax_err(format!("undeclared identifier {name:?}")),
        };
        if self.in_flight.iter().any(|f| f == name) {
            // A combinational `assign` cycle: break it with a forward net
            // so the loop becomes a structural cycle in the module (which
            // validation and the analyzer then name), rather than
            // recursing without bound here.
            let p = self.b.forward(decl.width);
            self.b.name_net(p, name);
            self.nets.insert(name.to_string(), p);
            self.placeholders.insert(name.to_string(), p);
            return Ok(p);
        }
        let assigns: Vec<(Target2, Expr, u32)> = self
            .ast
            .assigns
            .iter()
            .filter(|(Target2::Whole(t), _, _)| t == name)
            .cloned()
            .collect();
        if assigns.is_empty() {
            return syntax_err(format!("wire {name:?} has no assign"));
        }
        if assigns.len() > 1 {
            // Multiply assigned wire: elaborate every RHS and drive one
            // shared net from each, so validation/analysis reports the
            // multiple drivers by name instead of silently using the
            // first assign.
            let p = self.b.forward(decl.width);
            self.b.name_net(p, name);
            self.nets.insert(name.to_string(), p);
            for (_, rhs, _) in &assigns {
                self.in_flight.push(name.to_string());
                let res = self.expr(rhs);
                self.in_flight.pop();
                let n = self.sized_to(res?, decl.width, name);
                self.b.drive(p, n);
            }
            return Ok(p);
        }
        let (_, rhs, _) = &assigns[0];
        self.in_flight.push(name.to_string());
        let res = self.expr(rhs);
        self.in_flight.pop();
        let n = self.sized_to(res?, decl.width, name);
        if let Some(&p) = self.placeholders.get(name) {
            // The RHS looped back through this wire; close the structural
            // cycle on the forward net that broke the recursion.
            self.b.drive(p, n);
            Ok(p)
        } else {
            self.b.name_net(n, name);
            self.nets.insert(name.to_string(), n);
            Ok(n)
        }
    }

    /// Resizes `n` to `want` bits, recording a truncation lint when high
    /// bits are dropped.
    fn sized_to(&mut self, n: NetId, want: u32, target: &str) -> NetId {
        let have = self.width(n);
        if have > want {
            self.lints.push(SourceLint::WidthTruncation {
                target: target.to_string(),
                from: have,
                to: want,
            });
        }
        self.b.resize(n, want)
    }

    fn expr(&mut self, e: &Expr) -> Result<NetId, ParseVerilogError> {
        match e {
            Expr::Ident(name) => self.resolve(name),
            Expr::Number { width, value } => {
                let w = width.unwrap_or(32);
                Ok(self.b.lit(*value, w))
            }
            Expr::Unary(op, a) => {
                let an = self.expr(a)?;
                Ok(match *op {
                    "~" => self.b.not(an),
                    "neg" => self.b.neg(an),
                    "!" => {
                        let r = self.b.reduce_or(an);
                        self.b.not(r)
                    }
                    "&red" => self.b.reduce_and(an),
                    "|red" => self.b.reduce_or(an),
                    "^red" => self.b.reduce_xor(an),
                    _ => unreachable!(),
                })
            }
            Expr::Binary(op, a, b) => {
                let mut an = self.expr(a)?;
                let mut bn = self.expr(b)?;
                match *op {
                    "&&" | "||" => {
                        an = self.b.reduce_or(an);
                        bn = self.b.reduce_or(bn);
                        return Ok(if *op == "&&" {
                            self.b.and(an, bn)
                        } else {
                            self.b.or(an, bn)
                        });
                    }
                    "<<" | ">>" => {
                        return Ok(if *op == "<<" {
                            self.b.shl(an, bn)
                        } else {
                            self.b.lshr(an, bn)
                        });
                    }
                    _ => {}
                }
                // Extend both to common width (Verilog self-determined-ish).
                let (wa, wb) = (self.width(an), self.width(bn));
                let w = wa.max(wb);
                an = self.b.resize(an, w);
                bn = self.b.resize(bn, w);
                Ok(match *op {
                    "&" => self.b.and(an, bn),
                    "|" => self.b.or(an, bn),
                    "^" => self.b.xor(an, bn),
                    "+" => self.b.add(an, bn),
                    "-" => self.b.sub(an, bn),
                    "*" => self.b.mul(an, bn),
                    "==" => self.b.eq(an, bn),
                    "!=" => {
                        let r = self.b.eq(an, bn);
                        self.b.not(r)
                    }
                    "<" => self.b.ult(an, bn),
                    ">" => self.b.ult(bn, an),
                    "<=" => {
                        let r = self.b.ult(bn, an);
                        self.b.not(r)
                    }
                    ">=" => {
                        let r = self.b.ult(an, bn);
                        self.b.not(r)
                    }
                    other => return syntax_err(format!("unsupported operator {other:?}")),
                })
            }
            Expr::Ternary(c, t, f) => {
                let cn0 = self.expr(c)?;
                let cn = if self.width(cn0) > 1 {
                    self.b.reduce_or(cn0)
                } else {
                    cn0
                };
                let mut tn = self.expr(t)?;
                let mut fn_ = self.expr(f)?;
                let w = self.width(tn).max(self.width(fn_));
                tn = self.b.resize(tn, w);
                fn_ = self.b.resize(fn_, w);
                Ok(self.b.mux(cn, tn, fn_))
            }
            Expr::Concat(parts) => {
                // Verilog concat is MSB-first; builder concat is LSB-first.
                let mut nets = Vec::new();
                for p in parts.iter().rev() {
                    nets.push(self.expr(p)?);
                }
                Ok(self.b.concat(&nets))
            }
            Expr::Index(name, idx) => {
                if self.mems.contains_key(name) {
                    let mem = self.mems[name];
                    let addr = self.expr(idx)?;
                    Ok(self.b.read_port(mem, addr, ReadKind::Async))
                } else {
                    let a = self.resolve(name)?;
                    // Constant index → slice; dynamic index → shift+mask.
                    if let Expr::Number { value, .. } = **idx {
                        Ok(self.b.bit(a, value as u32))
                    } else {
                        let i = self.expr(idx)?;
                        let iw = self.width(a);
                        let ir = self.b.resize(i, iw);
                        let shifted = self.b.lshr(a, ir);
                        Ok(self.b.bit(shifted, 0))
                    }
                }
            }
            Expr::Range(name, hi, lo) => {
                let a = self.resolve(name)?;
                Ok(self.b.slice(a, *lo, hi - lo + 1))
            }
        }
    }

    fn width(&self, n: NetId) -> u32 {
        // ModuleBuilder doesn't expose width; track via a probe slice trick.
        // Instead we mirror: builder keeps nets internally; add a helper.
        self.b.net_width(n)
    }

    /// Executes a statement list under a path condition, updating the
    /// next-state map (`reg name -> next-value net`). Memory writes create
    /// write ports guarded by the path condition; memory reads on RHS
    /// become synchronous read ports.
    fn exec_block(
        &mut self,
        stmts: &[Stmt],
        path: NetId,
        next: &mut HashMap<String, NetId>,
    ) -> Result<(), ParseVerilogError> {
        for s in stmts {
            match s {
                Stmt::NonBlocking { target, rhs } => match target {
                    Target::Reg(name) => {
                        let decl = match self.decls.get(name) {
                            Some(d)
                                if matches!(d.kind, DeclKind::Reg | DeclKind::OutputReg)
                                    && d.mem_depth.is_none() =>
                            {
                                d.clone()
                            }
                            _ => {
                                return syntax_err(format!(
                                    "non-blocking target {name:?} is not a reg"
                                ))
                            }
                        };
                        let rhs_net = self.rhs_expr(rhs)?;
                        let rhs_net = self.sized_to(rhs_net, decl.width, name);
                        let old = next.get(name).copied().unwrap_or(self.nets[name]);
                        let merged = self.b.mux(path, rhs_net, old);
                        next.insert(name.clone(), merged);
                    }
                    Target::MemWord(name, idx) => {
                        let mem = match self.mems.get(name) {
                            Some(&m) => m,
                            None => return syntax_err(format!("{name:?} is not a memory")),
                        };
                        let addr = self.expr(idx)?;
                        let data0 = self.rhs_expr(rhs)?;
                        let width = self.decls[name].width;
                        let data = self.sized_to(data0, width, name);
                        self.b.write_port(mem, addr, data, path);
                    }
                },
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let c0 = self.expr(cond)?;
                    let c = if self.width(c0) > 1 {
                        self.b.reduce_or(c0)
                    } else {
                        c0
                    };
                    let then_path = self.b.and(path, c);
                    let nc = self.b.not(c);
                    let else_path = self.b.and(path, nc);
                    self.exec_block(then_branch, then_path, next)?;
                    self.exec_block(else_branch, else_path, next)?;
                }
            }
        }
        Ok(())
    }

    /// Like [`expr`](Self::expr) but memory reads become *synchronous* read
    /// ports (they sit behind the clock edge).
    fn rhs_expr(&mut self, e: &Expr) -> Result<NetId, ParseVerilogError> {
        if let Expr::Index(name, idx) = e {
            if self.mems.contains_key(name) {
                let mem = self.mems[name];
                let addr = self.expr(idx)?;
                return Ok(self.b.read_port(mem, addr, ReadKind::Sync));
            }
        }
        self.expr(e)
    }
}

impl ModuleBuilder {
    /// Width of a net under construction (used by the Verilog elaborator).
    pub fn net_width(&self, n: NetId) -> u32 {
        self.peek_width(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counter() {
        let src = r#"
            module counter(input clk, input rst, output reg [7:0] q);
              always @(posedge clk) begin
                if (rst) q <= 8'd0;
                else q <= q + 8'd1;
              end
            endmodule
        "#;
        let m = parse(src).unwrap();
        assert_eq!(m.name(), "counter");
        assert_eq!(m.state_bits(), 8);
        assert!(m.port("q").is_some());
    }

    #[test]
    fn parses_combinational_assigns() {
        let src = r#"
            module alu(input [3:0] a, input [3:0] b, input op, output [3:0] y);
              wire [3:0] s;
              wire [3:0] d;
              assign s = a + b;
              assign d = a - b;
              assign y = op ? d : s;
            endmodule
        "#;
        let m = parse(src).unwrap();
        assert_eq!(m.outputs().count(), 1);
    }

    #[test]
    fn parses_memory_sync_and_async() {
        let src = r#"
            module ram(input clk, input we, input [3:0] wa, input [7:0] wd,
                       input [3:0] ra, output [7:0] async_q, output reg [7:0] sync_q);
              reg [7:0] mem [0:15];
              always @(posedge clk) begin
                if (we) mem[wa] <= wd;
                sync_q <= mem[ra];
              end
              assign async_q = mem[ra];
            endmodule
        "#;
        let m = parse(src).unwrap();
        assert_eq!(m.memories().len(), 1);
        let mem = &m.memories()[0];
        assert_eq!(mem.write_ports.len(), 1);
        assert_eq!(mem.read_ports.len(), 2);
        assert_eq!(
            mem.read_ports
                .iter()
                .filter(|r| r.kind == ReadKind::Sync)
                .count(),
            1
        );
    }

    #[test]
    fn wires_elaborate_in_any_order() {
        let src = r#"
            module m(input [1:0] a, output [1:0] y);
              wire [1:0] second;
              assign y = second;
              assign second = a ^ 2'b11;
            endmodule
        "#;
        assert!(parse(src).is_ok());
    }

    #[test]
    fn rejects_unknown_identifier() {
        let src = "module m(input a, output y); assign y = nope; endmodule";
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_missing_endmodule() {
        let src = "module m(input a, output y); assign y = a;";
        assert!(matches!(parse(src), Err(ParseVerilogError::Syntax { .. })));
    }

    #[test]
    fn operators_and_concat() {
        let src = r#"
            module m(input [7:0] a, input [7:0] b, output [15:0] y, output p);
              assign y = {a & b, a | b};
              assign p = ^a;
            endmodule
        "#;
        let m = parse(src).unwrap();
        assert_eq!(m.width(m.port("y").unwrap().net), 16);
        assert_eq!(m.width(m.port("p").unwrap().net), 1);
    }

    #[test]
    fn comparison_chain() {
        let src = r#"
            module m(input [3:0] a, input [3:0] b, output lt, output ge, output ne);
              assign lt = a < b;
              assign ge = a >= b;
              assign ne = a != b;
            endmodule
        "#;
        assert!(parse(src).is_ok());
    }

    #[test]
    fn unassigned_reg_holds_value() {
        let src = r#"
            module m(input clk, input en, input [3:0] d, output reg [3:0] q);
              always @(posedge clk) begin
                if (en) q <= d;
              end
            endmodule
        "#;
        let m = parse(src).unwrap();
        assert_eq!(m.state_bits(), 4);
    }

    #[test]
    fn comments_are_skipped() {
        let src = r#"
            // a comment
            module m(input a, output y); /* inline */ assign y = ~a; endmodule
        "#;
        assert!(parse(src).is_ok());
    }

    #[test]
    fn dynamic_bit_select() {
        let src = r#"
            module m(input [7:0] a, input [2:0] i, output y);
              assign y = a[i];
            endmodule
        "#;
        assert!(parse(src).is_ok());
    }

    #[test]
    fn assign_cycle_elaborates_and_fails_validation_with_path() {
        let src = r#"
            module m(input [3:0] a, output [3:0] y);
              wire [3:0] p;
              wire [3:0] q;
              assign p = q ^ a;
              assign q = p + 4'd1;
              assign y = q;
            endmodule
        "#;
        // The raw module elaborates (the cycle is broken structurally)...
        let (module, lints) = parse_with_lints(src).unwrap();
        assert!(lints.is_empty());
        // ...and validation names the full cycle, not just one net.
        match parse(src) {
            Err(ParseVerilogError::Validate(ValidateError::CombinationalCycle { cycle })) => {
                assert!(cycle.len() >= 2, "cycle too short: {cycle:?}");
                let names: Vec<_> = cycle
                    .iter()
                    .filter_map(|&n| module.net(n).name.clone())
                    .collect();
                assert!(
                    names.iter().any(|n| n == "p" || n == "q"),
                    "cycle path {names:?} should mention p or q"
                );
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn self_referential_assign_is_a_cycle() {
        let src = r#"
            module m(input [3:0] a, output [3:0] y);
              wire [3:0] w;
              assign w = w & a;
              assign y = w;
            endmodule
        "#;
        assert!(matches!(
            parse(src),
            Err(ParseVerilogError::Validate(
                ValidateError::CombinationalCycle { .. }
            ))
        ));
    }

    #[test]
    fn duplicate_assign_is_multiply_driven() {
        let src = r#"
            module m(input [3:0] a, input [3:0] b, output [3:0] y);
              wire [3:0] w;
              assign w = a;
              assign w = b;
              assign y = w;
            endmodule
        "#;
        match parse(src) {
            Err(ParseVerilogError::Validate(ValidateError::MultipleDrivers(n))) => {
                // `assign y = w` aliases w's net to y, so either name
                // identifies the offender.
                let (module, _) = parse_with_lints(src).unwrap();
                let name = module.net(n).name.clone().expect("offender is named");
                assert!(name == "w" || name == "y", "unexpected name {name:?}");
            }
            other => panic!("expected multiple drivers, got {other:?}"),
        }
    }

    #[test]
    fn truncating_assign_is_linted() {
        let src = r#"
            module m(input [7:0] a, output [3:0] y);
              assign y = a;
            endmodule
        "#;
        let (_, lints) = parse_with_lints(src).unwrap();
        assert_eq!(
            lints,
            vec![SourceLint::WidthTruncation {
                target: "y".to_string(),
                from: 8,
                to: 4,
            }]
        );
        assert!(parse(src).is_ok(), "truncation is legal, only linted");
    }

    #[test]
    fn clean_sources_carry_no_lints() {
        let src = r#"
            module m(input clk, input [7:0] a, output reg [7:0] q, output [7:0] y);
              assign y = a ^ 8'hFF;
              always @(posedge clk) q <= a + 8'd1;
            endmodule
        "#;
        let (_, lints) = parse_with_lints(src).unwrap();
        assert!(lints.is_empty(), "unexpected lints: {lints:?}");
    }
}
