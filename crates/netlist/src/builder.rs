//! Ergonomic construction of [`Module`]s.
//!
//! [`ModuleBuilder`] hands out [`NetId`]s as you add operators, then
//! validates the result (driver uniqueness, width consistency, combinational
//! acyclicity) in [`ModuleBuilder::finish`].

use crate::module::*;
use crate::value::Bits;
use std::collections::HashMap;

/// Incremental builder for a [`Module`].
///
/// Flip-flops are two-phase so feedback loops can be expressed: create the
/// state net with [`dff`](Self::dff), use it freely, then wire its
/// next-state input with [`connect_dff`](Self::connect_dff).
///
/// # Example
///
/// ```
/// use gem_netlist::ModuleBuilder;
///
/// let mut b = ModuleBuilder::new("toggler");
/// let q = b.dff(1);
/// let nq = b.not(q);
/// b.connect_dff(q, nq);
/// b.output("q", q);
/// let m = b.finish()?;
/// assert_eq!(m.state_bits(), 1);
/// # Ok::<(), gem_netlist::ValidateError>(())
/// ```
#[derive(Debug)]
pub struct ModuleBuilder {
    name: String,
    nets: Vec<Net>,
    ports: Vec<Port>,
    cells: Vec<Cell>,
    memories: Vec<Memory>,
    /// Dffs created by `dff` that still need `connect_dff`.
    pending_dffs: HashMap<NetId, PendingDff>,
}

#[derive(Debug)]
struct PendingDff {
    init: Bits,
    enable: Option<NetId>,
    reset: Option<NetId>,
}

impl ModuleBuilder {
    /// Starts a new module.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            name: name.into(),
            nets: Vec::new(),
            ports: Vec::new(),
            cells: Vec::new(),
            memories: Vec::new(),
            pending_dffs: HashMap::new(),
        }
    }

    fn add_net(&mut self, width: u32, name: Option<String>) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net { name, width });
        id
    }

    fn width(&self, n: NetId) -> u32 {
        self.nets[n.0 as usize].width
    }

    /// Width of a net under construction.
    pub(crate) fn peek_width(&self, n: NetId) -> u32 {
        self.width(n)
    }

    fn push_cell(&mut self, kind: CellKind, out_width: u32) -> NetId {
        let out = self.add_net(out_width, None);
        self.cells.push(Cell { kind, out });
        out
    }

    /// Declares an input port of the given width and returns its net.
    pub fn input(&mut self, name: impl Into<String>, width: u32) -> NetId {
        let name = name.into();
        let net = self.add_net(width, Some(name.clone()));
        self.ports.push(Port {
            name,
            dir: PortDir::Input,
            net,
        });
        net
    }

    /// Declares `net` as an output port.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        self.ports.push(Port {
            name: name.into(),
            dir: PortDir::Output,
            net,
        });
    }

    /// Gives `net` a debug name (useful for waveforms).
    pub fn name_net(&mut self, net: NetId, name: impl Into<String>) {
        self.nets[net.0 as usize].name = Some(name.into());
    }

    /// A constant driver.
    pub fn constant(&mut self, value: Bits) -> NetId {
        let w = value.width();
        self.push_cell(CellKind::Const { value }, w)
    }

    /// A constant from a `u64`.
    pub fn lit(&mut self, value: u64, width: u32) -> NetId {
        self.constant(Bits::from_u64(value, width))
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: NetId) -> NetId {
        let w = self.width(a);
        self.push_cell(CellKind::Unary { op: Unary::Not, a }, w)
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: NetId) -> NetId {
        let w = self.width(a);
        self.push_cell(CellKind::Unary { op: Unary::Neg, a }, w)
    }

    /// AND-reduction to 1 bit.
    pub fn reduce_and(&mut self, a: NetId) -> NetId {
        self.push_cell(
            CellKind::Unary {
                op: Unary::ReduceAnd,
                a,
            },
            1,
        )
    }

    /// OR-reduction to 1 bit.
    pub fn reduce_or(&mut self, a: NetId) -> NetId {
        self.push_cell(
            CellKind::Unary {
                op: Unary::ReduceOr,
                a,
            },
            1,
        )
    }

    /// XOR-reduction to 1 bit.
    pub fn reduce_xor(&mut self, a: NetId) -> NetId {
        self.push_cell(
            CellKind::Unary {
                op: Unary::ReduceXor,
                a,
            },
            1,
        )
    }

    fn binary(&mut self, op: Binary, a: NetId, b: NetId) -> NetId {
        let w = match op {
            Binary::Eq | Binary::Ult => 1,
            _ => self.width(a),
        };
        self.push_cell(CellKind::Binary { op, a, b }, w)
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(Binary::And, a, b)
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(Binary::Or, a, b)
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(Binary::Xor, a, b)
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(Binary::Add, a, b)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(Binary::Sub, a, b)
    }

    /// Wrapping multiplication.
    pub fn mul(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(Binary::Mul, a, b)
    }

    /// Equality comparison (1-bit result).
    pub fn eq(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(Binary::Eq, a, b)
    }

    /// Unsigned less-than (1-bit result).
    pub fn ult(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(Binary::Ult, a, b)
    }

    /// Variable logical shift left.
    pub fn shl(&mut self, a: NetId, amount: NetId) -> NetId {
        self.binary(Binary::Shl, a, amount)
    }

    /// Variable logical shift right.
    pub fn lshr(&mut self, a: NetId, amount: NetId) -> NetId {
        self.binary(Binary::Lshr, a, amount)
    }

    /// 2:1 multiplexer: `if sel { t } else { f }`.
    pub fn mux(&mut self, sel: NetId, t: NetId, f: NetId) -> NetId {
        let w = self.width(t);
        self.push_cell(CellKind::Mux { sel, t, f }, w)
    }

    /// Extracts bits `[lo, lo+width)`.
    pub fn slice(&mut self, a: NetId, lo: u32, width: u32) -> NetId {
        self.push_cell(CellKind::Slice { a, lo }, width)
    }

    /// Extracts a single bit.
    pub fn bit(&mut self, a: NetId, i: u32) -> NetId {
        self.slice(a, i, 1)
    }

    /// Concatenates nets, first argument in the least-significant position.
    pub fn concat(&mut self, parts: &[NetId]) -> NetId {
        let w = parts.iter().map(|&p| self.width(p)).sum();
        self.push_cell(
            CellKind::Concat {
                parts: parts.to_vec(),
            },
            w,
        )
    }

    /// Zero-extends (or truncates) `a` to `width`.
    pub fn resize(&mut self, a: NetId, width: u32) -> NetId {
        let aw = self.width(a);
        if aw == width {
            a
        } else if aw > width {
            self.slice(a, 0, width)
        } else {
            let pad = self.lit(0, width - aw);
            self.concat(&[a, pad])
        }
    }

    /// Creates a flip-flop bank of the given width initialized to zero and
    /// returns its output (state) net. The next-state input must later be
    /// wired with [`connect_dff`](Self::connect_dff).
    pub fn dff(&mut self, width: u32) -> NetId {
        self.dff_init(Bits::zeros(width))
    }

    /// Like [`dff`](Self::dff) with an explicit power-on value.
    pub fn dff_init(&mut self, init: Bits) -> NetId {
        let q = self.add_net(init.width(), None);
        self.pending_dffs.insert(
            q,
            PendingDff {
                init,
                enable: None,
                reset: None,
            },
        );
        q
    }

    /// Adds an active-high clock-enable to a pending flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a pending flip-flop from [`dff`](Self::dff).
    pub fn dff_enable(&mut self, q: NetId, enable: NetId) {
        self.pending_dffs
            .get_mut(&q)
            .expect("dff_enable target must be a pending dff")
            .enable = Some(enable);
    }

    /// Adds an active-high synchronous reset (to the init value) to a
    /// pending flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a pending flip-flop from [`dff`](Self::dff).
    pub fn dff_reset(&mut self, q: NetId, reset: NetId) {
        self.pending_dffs
            .get_mut(&q)
            .expect("dff_reset target must be a pending dff")
            .reset = Some(reset);
    }

    /// Wires the next-state input of a flip-flop created by
    /// [`dff`](Self::dff).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a pending flip-flop or was already connected.
    pub fn connect_dff(&mut self, q: NetId, d: NetId) {
        let pending = self
            .pending_dffs
            .remove(&q)
            .expect("connect_dff target must be an unconnected pending dff");
        self.cells.push(Cell {
            kind: CellKind::Dff {
                d,
                init: pending.init,
                enable: pending.enable,
                reset: pending.reset,
            },
            out: q,
        });
    }

    /// Convenience: a register whose next state is an expression already in
    /// hand (no feedback). Returns the state net.
    pub fn reg_next(&mut self, d: NetId, init: Bits) -> NetId {
        let q = self.dff_init(init);
        self.connect_dff(q, d);
        q
    }

    /// Declares a *forward* net: a net with the given width and no driver
    /// yet, to be driven later with [`drive`](Self::drive). This is the
    /// combinational analogue of the [`dff`](Self::dff)/
    /// [`connect_dff`](Self::connect_dff) two-phase protocol and exists so
    /// frontends can represent reconvergent (and even cyclic) `assign`
    /// networks structurally; a forward net that is never driven shows up
    /// as an undriven net in validation.
    pub fn forward(&mut self, width: u32) -> NetId {
        self.add_net(width, None)
    }

    /// Drives a previously declared [`forward`](Self::forward) net from
    /// `src` through an identity (full-width slice) cell. The widths must
    /// match.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn drive(&mut self, out: NetId, src: NetId) {
        assert_eq!(
            self.width(out),
            self.width(src),
            "drive width mismatch: out {} vs src {}",
            self.width(out),
            self.width(src)
        );
        self.cells.push(Cell {
            kind: CellKind::Slice { a: src, lo: 0 },
            out,
        });
    }

    /// Declares a memory array and returns its id. Ports are added with
    /// [`read_port`](Self::read_port) and [`write_port`](Self::write_port).
    pub fn memory(&mut self, name: impl Into<String>, words: u32, width: u32) -> MemId {
        let id = MemId(self.memories.len() as u32);
        self.memories.push(Memory {
            name: name.into(),
            words,
            width,
            write_ports: Vec::new(),
            read_ports: Vec::new(),
        });
        id
    }

    /// Adds a read port to a memory; returns the data output net.
    pub fn read_port(&mut self, mem: MemId, addr: NetId, kind: ReadKind) -> NetId {
        let width = self.memories[mem.0 as usize].width;
        let data = self.add_net(width, None);
        self.memories[mem.0 as usize]
            .read_ports
            .push(ReadPort { addr, data, kind });
        data
    }

    /// Adds a write port to a memory.
    pub fn write_port(&mut self, mem: MemId, addr: NetId, data: NetId, enable: NetId) {
        self.memories[mem.0 as usize]
            .write_ports
            .push(WritePort { addr, data, enable });
    }

    /// Validates and returns the finished module.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found: undriven or multiply
    /// driven nets, width inconsistencies, zero-width nets, duplicate port
    /// names, unconnected flip-flops (reported as undriven nets), or a
    /// combinational cycle.
    pub fn finish(self) -> Result<Module, ValidateError> {
        let module = self.finish_raw();
        validate(&module)?;
        Ok(module)
    }

    /// Returns the module **without validating it** — the escape hatch for
    /// analysis tooling (`gem-analyze`) that wants to diagnose broken
    /// netlists (combinational cycles, multiple drivers, width mismatches)
    /// with full structural context instead of receiving the first
    /// [`ValidateError`]. Anything feeding the compile flow must still
    /// pass [`validate`].
    pub fn finish_raw(self) -> Module {
        Module {
            name: self.name,
            nets: self.nets,
            ports: self.ports,
            cells: self.cells,
            memories: self.memories,
        }
    }
}

/// Validates a [`Module`]: driver uniqueness, width consistency,
/// zero-width nets, duplicate port names, combinational acyclicity.
/// [`ModuleBuilder::finish`] runs this automatically; it is public so
/// modules obtained through [`ModuleBuilder::finish_raw`] (e.g. by the
/// static analyzer) can be re-checked before entering the flow.
///
/// # Errors
///
/// Returns the first [`ValidateError`] found.
pub fn validate(m: &Module) -> Result<(), ValidateError> {
    // Zero-width nets.
    for (i, n) in m.nets.iter().enumerate() {
        if n.width == 0 {
            return Err(ValidateError::ZeroWidth(NetId(i as u32)));
        }
    }
    // Duplicate ports.
    let mut seen = std::collections::HashSet::new();
    for p in &m.ports {
        if !seen.insert(p.name.as_str()) {
            return Err(ValidateError::DuplicatePort(p.name.clone()));
        }
    }
    // Driver map.
    let mut drivers = vec![0u8; m.nets.len()];
    for p in m.inputs() {
        drivers[p.net.0 as usize] += 1;
    }
    for c in &m.cells {
        drivers[c.out.0 as usize] += 1;
    }
    for mem in &m.memories {
        for rp in &mem.read_ports {
            drivers[rp.data.0 as usize] += 1;
        }
    }
    for (i, &d) in drivers.iter().enumerate() {
        match d {
            0 => return Err(ValidateError::UndrivenNet(NetId(i as u32))),
            1 => {}
            _ => return Err(ValidateError::MultipleDrivers(NetId(i as u32))),
        }
    }
    // Width checks.
    check_widths(m)?;
    // Combinational cycles: DFS over cells treating Dff outputs and sync
    // read data as sources.
    check_acyclic(m)?;
    Ok(())
}

fn check_widths(m: &Module) -> Result<(), ValidateError> {
    let w = |n: NetId| m.width(n);
    let err = |s: String| Err(ValidateError::WidthMismatch(s));
    for c in &m.cells {
        let ow = w(c.out);
        match &c.kind {
            CellKind::Const { value } => {
                if value.width() != ow {
                    return err(format!("const width {} vs out {}", value.width(), ow));
                }
            }
            CellKind::Unary { op, a } => match op {
                Unary::Not | Unary::Neg => {
                    if w(*a) != ow {
                        return err(format!("unary in {} vs out {}", w(*a), ow));
                    }
                }
                _ => {
                    if ow != 1 {
                        return err(format!("reduction out width {ow} != 1"));
                    }
                }
            },
            CellKind::Binary { op, a, b } => match op {
                Binary::Eq | Binary::Ult => {
                    if w(*a) != w(*b) || ow != 1 {
                        return err(format!("cmp widths {} vs {} out {}", w(*a), w(*b), ow));
                    }
                }
                Binary::Shl | Binary::Lshr => {
                    if w(*a) != ow {
                        return err(format!("shift in {} vs out {}", w(*a), ow));
                    }
                }
                _ => {
                    if w(*a) != w(*b) || w(*a) != ow {
                        return err(format!("binary widths {} vs {} out {}", w(*a), w(*b), ow));
                    }
                }
            },
            CellKind::Mux { sel, t, f } => {
                if w(*sel) != 1 || w(*t) != w(*f) || w(*t) != ow {
                    return err(format!(
                        "mux sel {} t {} f {} out {}",
                        w(*sel),
                        w(*t),
                        w(*f),
                        ow
                    ));
                }
            }
            CellKind::Slice { a, lo } => {
                if lo + ow > w(*a) {
                    return err(format!("slice [{lo},{}) of width {}", lo + ow, w(*a)));
                }
            }
            CellKind::Concat { parts } => {
                let sum: u32 = parts.iter().map(|&p| w(p)).sum();
                if sum != ow {
                    return err(format!("concat parts {sum} vs out {ow}"));
                }
            }
            CellKind::Dff {
                d,
                init,
                enable,
                reset,
            } => {
                if w(*d) != ow || init.width() != ow {
                    return err(format!("dff d {} init {} out {}", w(*d), init.width(), ow));
                }
                if let Some(e) = enable {
                    if w(*e) != 1 {
                        return err(format!("dff enable width {}", w(*e)));
                    }
                }
                if let Some(r) = reset {
                    if w(*r) != 1 {
                        return err(format!("dff reset width {}", w(*r)));
                    }
                }
            }
        }
    }
    for mem in &m.memories {
        for rp in &mem.read_ports {
            if w(rp.data) != mem.width {
                return err(format!(
                    "memory {} read data width {} vs {}",
                    mem.name,
                    w(rp.data),
                    mem.width
                ));
            }
        }
        for wp in &mem.write_ports {
            if w(wp.data) != mem.width || w(wp.enable) != 1 {
                return err(format!("memory {} write port widths", mem.name));
            }
        }
    }
    Ok(())
}

fn check_acyclic(m: &Module) -> Result<(), ValidateError> {
    // Map net -> driving cell (combinational only).
    let mut driver: Vec<Option<usize>> = vec![None; m.nets.len()];
    for (i, c) in m.cells.iter().enumerate() {
        if !matches!(c.kind, CellKind::Dff { .. }) {
            driver[c.out.0 as usize] = Some(i);
        }
    }
    // Async read ports are combinational paths addr -> data.
    let mut async_reads: HashMap<u32, NetId> = HashMap::new();
    for mem in &m.memories {
        for rp in &mem.read_ports {
            if rp.kind == ReadKind::Async {
                async_reads.insert(rp.data.0, rp.addr);
            }
        }
    }
    // Iterative DFS with colors.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; m.nets.len()];
    for start in 0..m.nets.len() as u32 {
        if color[start as usize] != WHITE {
            continue;
        }
        let mut stack: Vec<(u32, usize)> = vec![(start, 0)];
        color[start as usize] = GRAY;
        while let Some(&mut (net, ref mut child)) = stack.last_mut() {
            let fanins: Vec<NetId> = if let Some(ci) = driver[net as usize] {
                m.cell_inputs(&m.cells[ci])
            } else if let Some(&addr) = async_reads.get(&net) {
                vec![addr]
            } else {
                vec![]
            };
            if *child < fanins.len() {
                let next = fanins[*child];
                *child += 1;
                match color[next.0 as usize] {
                    WHITE => {
                        color[next.0 as usize] = GRAY;
                        stack.push((next.0, 0));
                    }
                    GRAY => {
                        // The DFS stack is the current path; the suffix
                        // starting at `next` is the cycle, in dependency
                        // order (each net reads the one after it).
                        let pos = stack
                            .iter()
                            .position(|&(n, _)| n == next.0)
                            .expect("gray net must be on the DFS path");
                        let cycle = stack[pos..].iter().map(|&(n, _)| NetId(n)).collect();
                        return Err(ValidateError::CombinationalCycle { cycle });
                    }
                    _ => {}
                }
            } else {
                color[net as usize] = BLACK;
                stack.pop();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_module() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 4);
        let c = b.input("b", 4);
        let s = b.add(a, c);
        b.output("s", s);
        let m = b.finish().unwrap();
        assert_eq!(m.name(), "m");
        assert_eq!(m.ports().len(), 3);
        assert_eq!(m.cells().len(), 1);
    }

    #[test]
    fn dff_feedback_is_not_a_cycle() {
        let mut b = ModuleBuilder::new("m");
        let q = b.dff(1);
        let n = b.not(q);
        b.connect_dff(q, n);
        b.output("q", q);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn pending_dff_is_undriven() {
        let mut b = ModuleBuilder::new("m");
        let q = b.dff(1); // never connected: shows up as an undriven net
        let n = b.not(q);
        let n2 = b.not(n);
        b.output("q", n2);
        match b.finish() {
            Err(ValidateError::UndrivenNet(_)) => {}
            other => panic!("expected undriven, got {other:?}"),
        }
    }

    #[test]
    fn combinational_cycle_detected_with_witness_path() {
        // f -> not -> not -> back into f via drive: a genuine 3-net cycle.
        let mut b = ModuleBuilder::new("m");
        let f = b.forward(1);
        let x = b.not(f);
        let y = b.not(x);
        b.drive(f, y);
        b.output("y", y);
        match b.finish() {
            Err(ValidateError::CombinationalCycle { cycle }) => {
                assert!(cycle.len() >= 3, "cycle too short: {cycle:?}");
                for (i, &n) in cycle.iter().enumerate() {
                    let next = cycle[(i + 1) % cycle.len()];
                    assert!(
                        [f, x, y].contains(&n) && [f, x, y].contains(&next),
                        "cycle {cycle:?} strayed off the loop"
                    );
                }
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn undriven_forward_net_detected() {
        let mut b = ModuleBuilder::new("m");
        let f = b.forward(4);
        let n = b.not(f);
        b.output("y", n);
        match b.finish() {
            Err(ValidateError::UndrivenNet(net)) => assert_eq!(net, f),
            other => panic!("expected undriven, got {other:?}"),
        }
    }

    #[test]
    fn driven_forward_net_is_an_identity() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 4);
        let f = b.forward(4);
        let inv = b.not(a);
        b.drive(f, inv);
        b.output("y", f);
        let m = b.finish().unwrap();
        assert_eq!(m.width(m.port("y").unwrap().net), 4);
    }

    #[test]
    fn width_mismatch_detected() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 4);
        let c = b.input("b", 5);
        // Force mismatched binary by hand.
        let s = b.add(a, c);
        b.output("s", s);
        match b.finish() {
            Err(ValidateError::WidthMismatch(_)) => {}
            other => panic!("expected width mismatch, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_port_detected() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 1);
        b.output("a", a);
        match b.finish() {
            Err(ValidateError::DuplicatePort(_)) => {}
            other => panic!("expected duplicate port, got {other:?}"),
        }
    }

    #[test]
    fn memory_ports() {
        let mut b = ModuleBuilder::new("m");
        let addr = b.input("addr", 4);
        let data = b.input("data", 8);
        let we = b.input("we", 1);
        let mem = b.memory("ram", 16, 8);
        b.write_port(mem, addr, data, we);
        let q = b.read_port(mem, addr, ReadKind::Sync);
        b.output("q", q);
        let m = b.finish().unwrap();
        assert_eq!(m.memories().len(), 1);
        assert_eq!(m.state_bits(), 16 * 8);
    }

    #[test]
    fn resize_behaviour() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 4);
        let wide = b.resize(a, 8);
        let same = b.resize(a, 4);
        assert_eq!(same, a);
        b.output("w", wide);
        let m = b.finish().unwrap();
        assert_eq!(m.width(m.port("w").unwrap().net), 8);
    }

    #[test]
    fn reg_next_helper() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 8);
        let q = b.reg_next(a, Bits::zeros(8));
        b.output("q", q);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn state_bits_counts_ffs_and_memories() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 8);
        let q = b.reg_next(a, Bits::zeros(8));
        b.output("q", q);
        let mem = b.memory("ram", 4, 4);
        let addr = b.input("addr", 2);
        let r = b.read_port(mem, addr, ReadKind::Sync);
        b.output("r", r);
        let m = b.finish().unwrap();
        assert_eq!(m.state_bits(), 8 + 16);
    }
}
