//! RTL netlist intermediate representation for the GEM flow.
//!
//! This crate is the front end of the GEM compilation pipeline: it defines a
//! word-level, single-clock-domain netlist ([`Module`]) that can represent
//! any synthesizable synchronous design, together with
//!
//! * a convenient programmatic [`builder`] API,
//! * a parser for a synthesizable structural-Verilog subset ([`verilog`]),
//! * VCD waveform reading/writing ([`vcd`]) for stimuli and result dumps,
//! * arbitrary-width two-state values ([`Bits`]).
//!
//! Downstream, `gem-synth` lowers a [`Module`] to the extended
//! and-inverter graph consumed by the rest of the flow.
//!
//! # Example
//!
//! ```
//! use gem_netlist::ModuleBuilder;
//!
//! // An 8-bit accumulator: acc <= acc + in.
//! let mut b = ModuleBuilder::new("accum");
//! let input = b.input("in", 8);
//! let acc = b.dff(8);
//! let sum = b.add(acc, input);
//! b.connect_dff(acc, sum);
//! b.output("acc", acc);
//! let module = b.finish().expect("valid module");
//! assert_eq!(module.cells().len(), 2); // dff + add
//! ```

pub mod builder;
pub mod module;
pub mod value;
pub mod vcd;
pub mod verilog;

pub use builder::{validate, ModuleBuilder};
pub use module::{
    Binary, Cell, CellId, CellKind, MemId, Memory, Module, Net, NetId, Port, PortDir, ReadKind,
    ReadPort, Unary, ValidateError, WritePort,
};
pub use value::Bits;
