//! Minimal VCD (Value Change Dump) writing and parsing.
//!
//! The GEM execution stage consumes input stimuli "provided as waveforms or
//! recorded signal patterns (e.g., VCD ...)" and simulators dump result
//! waveforms the same way. This module implements the two-state subset we
//! need: scalar and vector variables, `$scope`/`$var` headers, and `#time`
//! stamped value changes.

use crate::value::Bits;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Writes a two-state VCD file into a `String` buffer.
///
/// # Example
///
/// ```
/// use gem_netlist::vcd::VcdWriter;
/// use gem_netlist::Bits;
///
/// let mut w = VcdWriter::new("top");
/// let clk = w.add_var("clk", 1);
/// let bus = w.add_var("bus", 8);
/// w.begin();
/// w.timestamp(0);
/// w.change(clk, &Bits::from_u64(0, 1));
/// w.change(bus, &Bits::from_u64(0xAB, 8));
/// let text = w.finish();
/// assert!(text.contains("$var wire 8"));
/// ```
#[derive(Debug)]
pub struct VcdWriter {
    header: String,
    body: String,
    widths: Vec<u32>,
    started: bool,
}

/// Handle to a variable declared in a [`VcdWriter`] or parsed by
/// [`VcdDump`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub u32);

fn id_code(id: u32) -> String {
    // Printable-ASCII identifier codes, like real VCD emitters.
    let mut n = id;
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

impl VcdWriter {
    /// Starts a VCD document with a single scope named `scope`.
    pub fn new(scope: &str) -> Self {
        let mut header = String::new();
        let _ = writeln!(header, "$timescale 1ns $end");
        let _ = writeln!(header, "$scope module {scope} $end");
        VcdWriter {
            header,
            body: String::new(),
            widths: Vec::new(),
            started: false,
        }
    }

    /// Declares a variable; must be called before [`begin`](Self::begin).
    ///
    /// # Panics
    ///
    /// Panics if called after `begin`.
    pub fn add_var(&mut self, name: &str, width: u32) -> VarId {
        assert!(!self.started, "add_var after begin");
        let id = VarId(self.widths.len() as u32);
        self.widths.push(width);
        let code = id_code(id.0);
        let _ = writeln!(self.header, "$var wire {width} {code} {name} $end");
        id
    }

    /// Ends the header; subsequent calls are timestamps and changes.
    pub fn begin(&mut self) {
        if !self.started {
            let _ = writeln!(self.header, "$upscope $end");
            let _ = writeln!(self.header, "$enddefinitions $end");
            self.started = true;
        }
    }

    /// Emits a `#time` marker.
    pub fn timestamp(&mut self, t: u64) {
        let _ = writeln!(self.body, "#{t}");
    }

    /// Emits a value change for `var`.
    ///
    /// # Panics
    ///
    /// Panics if the value width does not match the declaration.
    pub fn change(&mut self, var: VarId, value: &Bits) {
        let w = self.widths[var.0 as usize];
        assert_eq!(value.width(), w, "VCD value width mismatch");
        let code = id_code(var.0);
        if w == 1 {
            let _ = writeln!(self.body, "{}{code}", if value.bit(0) { '1' } else { '0' });
        } else {
            let mut bits = String::with_capacity(w as usize);
            for i in (0..w).rev() {
                bits.push(if value.bit(i) { '1' } else { '0' });
            }
            let _ = writeln!(self.body, "b{bits} {code}");
        }
    }

    /// Returns the complete VCD text.
    pub fn finish(mut self) -> String {
        self.begin();
        let mut out = self.header;
        out.push_str(&self.body);
        out
    }
}

/// A parsed VCD dump: variables and their value-change streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdDump {
    /// Declared variables in order: `(name, width)`.
    pub vars: Vec<(String, u32)>,
    /// Timestamped changes: `(time, var, value)`, in file order.
    pub changes: Vec<(u64, VarId, Bits)>,
}

/// Errors from [`VcdDump::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseVcdError {
    /// A `$var` declaration was malformed.
    BadVar(String),
    /// A value change referenced an unknown identifier code.
    UnknownId(String),
    /// A line could not be interpreted.
    BadLine(String),
}

impl std::fmt::Display for ParseVcdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseVcdError::BadVar(s) => write!(f, "malformed $var: {s}"),
            ParseVcdError::UnknownId(s) => write!(f, "unknown identifier code {s:?}"),
            ParseVcdError::BadLine(s) => write!(f, "unparseable line {s:?}"),
        }
    }
}

impl std::error::Error for ParseVcdError {}

impl VcdDump {
    /// Parses VCD text (two-state; `x`/`z` bits are read as `0`).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseVcdError`] on malformed declarations or changes.
    pub fn parse(text: &str) -> Result<Self, ParseVcdError> {
        let mut vars = Vec::new();
        let mut codes: HashMap<String, VarId> = HashMap::new();
        let mut changes = Vec::new();
        let mut time = 0u64;
        let mut in_header = true;
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if in_header {
                if line.starts_with("$var") {
                    let parts: Vec<&str> = line.split_whitespace().collect();
                    // $var wire <width> <code> <name> [$end]
                    if parts.len() < 5 {
                        return Err(ParseVcdError::BadVar(line.into()));
                    }
                    let width: u32 = parts[2]
                        .parse()
                        .map_err(|_| ParseVcdError::BadVar(line.into()))?;
                    let code = parts[3].to_string();
                    let name = parts[4].to_string();
                    let id = VarId(vars.len() as u32);
                    vars.push((name, width));
                    codes.insert(code, id);
                } else if line.starts_with("$enddefinitions") {
                    in_header = false;
                }
                continue;
            }
            if let Some(t) = line.strip_prefix('#') {
                time = t.parse().map_err(|_| ParseVcdError::BadLine(line.into()))?;
            } else if let Some(rest) = line.strip_prefix('b') {
                let mut it = rest.split_whitespace();
                let bits = it
                    .next()
                    .ok_or_else(|| ParseVcdError::BadLine(line.into()))?;
                let code = it
                    .next()
                    .ok_or_else(|| ParseVcdError::BadLine(line.into()))?;
                let id = *codes
                    .get(code)
                    .ok_or_else(|| ParseVcdError::UnknownId(code.into()))?;
                let decl_w = vars[id.0 as usize].1;
                let mut v = Bits::zeros(decl_w);
                for (i, ch) in bits.chars().rev().enumerate() {
                    if ch == '1' && (i as u32) < decl_w {
                        v.set_bit(i as u32, true);
                    }
                }
                changes.push((time, id, v));
            } else if line.starts_with('$') {
                // Body directives — `$dumpvars`, mid-stream `$dumpoff` /
                // `$dumpon` / `$dumpall` blocks, `$comment`, and their
                // closing `$end` — carry no two-state value information;
                // the x-value entries inside a `$dumpoff` block parse as
                // ordinary changes (x reads as 0).
            } else {
                let (vch, code) = line.split_at(1);
                let id = *codes
                    .get(code)
                    .ok_or_else(|| ParseVcdError::UnknownId(code.into()))?;
                let bit = vch == "1";
                changes.push((time, id, Bits::from(bit)));
            }
        }
        Ok(VcdDump { vars, changes })
    }

    /// Looks up a variable id by name.
    pub fn var(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| VarId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_parse_round_trip() {
        let mut w = VcdWriter::new("tb");
        let clk = w.add_var("clk", 1);
        let bus = w.add_var("bus", 8);
        w.begin();
        w.timestamp(0);
        w.change(clk, &Bits::from(false));
        w.change(bus, &Bits::from_u64(0x5A, 8));
        w.timestamp(5);
        w.change(clk, &Bits::from(true));
        let text = w.finish();

        let dump = VcdDump::parse(&text).unwrap();
        assert_eq!(dump.vars.len(), 2);
        assert_eq!(dump.var("bus"), Some(VarId(1)));
        assert_eq!(dump.changes.len(), 3);
        assert_eq!(dump.changes[1].2.to_u64(), 0x5A);
        assert_eq!(dump.changes[2].0, 5);
        assert!(dump.changes[2].2.bit(0));
    }

    #[test]
    fn id_codes_are_printable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let c = id_code(i);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn parse_rejects_unknown_code() {
        let text = "$enddefinitions $end\n#0\n1?\n";
        assert!(matches!(
            VcdDump::parse(text),
            Err(ParseVcdError::UnknownId(_))
        ));
    }

    #[test]
    fn body_directives_ignored() {
        // A mid-stream $dumpoff … $dumpon sequence, as real simulators
        // emit around checkpoints, must not break parsing; the x entries
        // inside the off-block read as 0.
        let text = "$var wire 1 ! v $end\n$enddefinitions $end\n\
                    $dumpvars\n0!\n$end\n#0\n1!\n#5\n$dumpoff\nx!\n$end\n\
                    #10\n$dumpon\n1!\n$end\n";
        let d = VcdDump::parse(text).unwrap();
        let vals: Vec<(u64, u64)> = d.changes.iter().map(|(t, _, v)| (*t, v.to_u64())).collect();
        assert_eq!(vals, vec![(0, 0), (0, 1), (5, 0), (10, 1)]);
    }

    #[test]
    fn x_bits_read_as_zero() {
        let text = "$var wire 4 ! v $end\n$enddefinitions $end\n#0\nbx1x1 !\n";
        let d = VcdDump::parse(text).unwrap();
        assert_eq!(d.changes[0].2.to_u64(), 0b0101);
    }
}
