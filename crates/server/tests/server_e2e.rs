//! End-to-end wire-protocol tests: real TCP connections, concurrent
//! clients, golden-model cross-checks, backpressure, and metric
//! reconciliation.

use gem_core::{compile, CompileOptions, Compiled};
use gem_netlist::vcd::VcdWriter;
use gem_netlist::{verilog, Bits};
use gem_server::{GemClient, Server, ServerConfig};
use gem_sim::EaigSim;
use gem_telemetry::Json;
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Design A: gated accumulator (stateful, multi-port).
const DESIGN_A: &str = "
module accum(input clk, input en, input [7:0] delta, output reg [15:0] acc);
  always @(posedge clk) begin
    if (en) acc <= acc + {8'd0, delta};
  end
endmodule
";

/// Design B: combinational mix feeding a scrambling register.
const DESIGN_B: &str = "
module mixer(input clk, input [7:0] a, input [7:0] b,
             output [7:0] x, output reg [7:0] r);
  assign x = (a ^ b) + (a & b);
  always @(posedge clk) r <= x ^ (r << 1);
endmodule
";

/// The compile options the server derives from the wire `opts` below —
/// must stay in lockstep with [`wire_opts`] for the golden comparison.
fn small_opts() -> CompileOptions {
    CompileOptions {
        core_width: 256,
        target_parts: 4,
        stages: 1,
        ..Default::default()
    }
}

fn wire_opts() -> Json {
    let mut o = Json::object();
    o.set("width", 256u64);
    o.set("parts", 4u64);
    o.set("stages", 1u64);
    o
}

fn start_server(cfg: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(cfg).expect("bind loopback");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shutdown_and_join(addr: SocketAddr, server: std::thread::JoinHandle<std::io::Result<()>>) {
    let mut c = GemClient::connect(addr).expect("connect for shutdown");
    c.shutdown().expect("shutdown acknowledged");
    server
        .join()
        .expect("server thread")
        .expect("server run result");
}

/// Drives one named input port of the golden E-AIG interpreter.
fn golden_set(sim: &mut EaigSim<'_>, compiled: &Compiled, port: &str, value: u64) {
    let p = compiled
        .eaig_inputs
        .iter()
        .find(|p| p.name == port)
        .unwrap_or_else(|| panic!("no input {port:?}"));
    for i in 0..p.width {
        sim.set_input(p.lsb_index + i as usize, (value >> i) & 1 == 1);
    }
}

/// Reads one named output port from the golden interpreter.
fn golden_get(sim: &mut EaigSim<'_>, compiled: &Compiled, port: &str) -> u64 {
    let p = compiled
        .eaig_outputs
        .iter()
        .find(|p| p.name == port)
        .unwrap_or_else(|| panic!("no output {port:?}"));
    sim.eval();
    let mut v = 0u64;
    for i in 0..p.width {
        if sim.output(p.lsb_index + i as usize) {
            v |= 1 << i;
        }
    }
    v
}

fn out_u64(resp: &Json, port: &str) -> u64 {
    let hex = resp
        .get("outputs")
        .and_then(|o| o.get(port))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("step response missing output {port:?}"));
    u64::from_str_radix(hex, 16).expect("hex output")
}

/// Sums every sample of one metric family in a `stats` response.
fn metric(stats: &Json, family: &str) -> f64 {
    let families = stats
        .get("metrics")
        .and_then(|m| m.get("families"))
        .and_then(Json::as_array)
        .expect("stats carry metric families");
    families
        .iter()
        .find(|f| f.get("name").and_then(Json::as_str) == Some(family))
        .and_then(|f| f.get("samples").and_then(Json::as_array))
        .map(|samples| {
            samples
                .iter()
                .filter_map(|s| s.get("value").and_then(Json::as_f64))
                .sum()
        })
        .unwrap_or_else(|| panic!("no metric family {family:?}"))
}

/// Reads one sample of a labeled metric family in a `stats` response.
fn labeled_metric(stats: &Json, family: &str, label: &str, value: &str) -> f64 {
    let families = stats
        .get("metrics")
        .and_then(|m| m.get("families"))
        .and_then(Json::as_array)
        .expect("stats carry metric families");
    families
        .iter()
        .find(|f| f.get("name").and_then(Json::as_str) == Some(family))
        .and_then(|f| f.get("samples").and_then(Json::as_array))
        .and_then(|samples| {
            samples
                .iter()
                .find(|s| {
                    s.get("labels")
                        .and_then(|l| l.get(label))
                        .and_then(Json::as_str)
                        == Some(value)
                })
                .and_then(|s| s.get("value").and_then(Json::as_f64))
        })
        .unwrap_or_else(|| panic!("no sample {family}{{{label}={value:?}}}"))
}

/// Polls `stats` until the pool quiesces (submitted = completed +
/// rejected); completion counters lag the response by one scheduler
/// beat, so a fixed-point read needs a retry loop.
fn quiesced_stats(client: &mut GemClient) -> Json {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.stats().expect("stats");
        let submitted = metric(&stats, "gem_server_jobs_submitted_total");
        let done = metric(&stats, "gem_server_jobs_completed_total")
            + metric(&stats, "gem_server_jobs_rejected_total");
        if submitted == done {
            return stats;
        }
        assert!(Instant::now() < deadline, "pool never quiesced");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The flagship scenario: two designs, two sessions each, opened
/// concurrently by four clients over TCP. The compile cache must
/// collapse the four compiles into two, every session's outputs must
/// match the golden interpreter bit for bit, and the server's metrics
/// must reconcile at quiesce.
#[test]
fn concurrent_sessions_share_compiles_and_match_golden() {
    let (addr, server) = start_server(ServerConfig {
        workers: 4,
        queue: 16,
        cache: 4,
        ..ServerConfig::default()
    });

    // Four clients open concurrently: sessions 0,1 → design A; 2,3 → B.
    let barrier = Arc::new(Barrier::new(4));
    let handles: Vec<_> = (0..4usize)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = GemClient::connect(addr).expect("connect");
                let source = if i < 2 { DESIGN_A } else { DESIGN_B };
                barrier.wait();
                let resp = client.open(source, wire_opts()).expect("open");
                let session = resp.get("session").and_then(Json::as_u64).unwrap();
                let cached = resp.get("cached").and_then(Json::as_bool).unwrap();
                (i, client, session, cached)
            })
        })
        .collect();
    let opens: Vec<_> = handles
        .into_iter()
        .map(|t| t.join().expect("open thread"))
        .collect();

    // Exactly one compile per design: of the two clients per design, one
    // (either one — the race is real) must have hit the cache.
    for pair in opens.chunks(2) {
        let hits = pair.iter().filter(|(_, _, _, cached)| *cached).count();
        assert_eq!(hits, 1, "one of each design pair must hit the cache");
    }

    // Drive every session and its golden model with the same stimulus,
    // all four sessions in parallel.
    let compiled_a = Arc::new(compile(&verilog::parse(DESIGN_A).unwrap(), &small_opts()).unwrap());
    let compiled_b = Arc::new(compile(&verilog::parse(DESIGN_B).unwrap(), &small_opts()).unwrap());
    let drivers: Vec<_> = opens
        .into_iter()
        .map(|(i, mut client, session, _)| {
            let compiled = if i < 2 {
                Arc::clone(&compiled_a)
            } else {
                Arc::clone(&compiled_b)
            };
            std::thread::spawn(move || {
                let mut golden = EaigSim::new(&compiled.eaig);
                for cycle in 0..20u64 {
                    if i < 2 {
                        let en = !(cycle + i as u64).is_multiple_of(3);
                        let delta = (cycle * 7 + i as u64 * 13) & 0xFF;
                        let delta_hex = format!("{delta:02x}");
                        let resp = client
                            .step(
                                session,
                                1,
                                vec![("en", if en { "1" } else { "0" }), ("delta", &delta_hex)],
                            )
                            .expect("step");
                        golden_set(&mut golden, &compiled, "en", en as u64);
                        golden_set(&mut golden, &compiled, "delta", delta);
                        assert_eq!(
                            out_u64(&resp, "acc"),
                            golden_get(&mut golden, &compiled, "acc"),
                            "session {i} diverged from golden at cycle {cycle}"
                        );
                        golden.step();
                    } else {
                        let a = (cycle * 5 + i as u64) & 0xFF;
                        let b = (cycle * 11 + 3 * i as u64) & 0xFF;
                        let (ah, bh) = (format!("{a:02x}"), format!("{b:02x}"));
                        let resp = client
                            .step(session, 1, vec![("a", &ah), ("b", &bh)])
                            .expect("step");
                        golden_set(&mut golden, &compiled, "a", a);
                        golden_set(&mut golden, &compiled, "b", b);
                        assert_eq!(
                            out_u64(&resp, "x"),
                            golden_get(&mut golden, &compiled, "x"),
                            "session {i} output x diverged at cycle {cycle}"
                        );
                        assert_eq!(
                            out_u64(&resp, "r"),
                            golden_get(&mut golden, &compiled, "r"),
                            "session {i} output r diverged at cycle {cycle}"
                        );
                        golden.step();
                    }
                }
                // Cheap inline path: peek returns the same value a step
                // response reported.
                let outputs = if i < 2 { vec!["acc"] } else { vec!["x", "r"] };
                for port in outputs {
                    client.peek(session, port).expect("peek");
                }
                client.close(session).expect("close");
                client
            })
        })
        .collect();
    let mut clients: Vec<_> = drivers
        .into_iter()
        .map(|t| t.join().expect("driver thread"))
        .collect();

    // Metric reconciliation at quiesce.
    let stats = quiesced_stats(&mut clients[0]);
    assert_eq!(metric(&stats, "gem_server_compiles_total"), 2.0);
    assert_eq!(metric(&stats, "gem_server_cache_misses_total"), 2.0);
    assert_eq!(metric(&stats, "gem_server_cache_hits_total"), 2.0);
    assert_eq!(metric(&stats, "gem_server_cache_lookups_total"), 4.0);
    assert_eq!(metric(&stats, "gem_server_sessions_opened_total"), 4.0);
    assert_eq!(metric(&stats, "gem_server_sessions_closed_total"), 4.0);
    assert_eq!(metric(&stats, "gem_server_sessions_active"), 0.0);
    assert_eq!(metric(&stats, "gem_server_cycles_total"), 80.0);
    assert_eq!(stats.get("sessions").and_then(Json::as_u64), Some(0));

    shutdown_and_join(addr, server);
}

/// The verify gate end to end: a compile whose bitstream fails static
/// verification (forced here via the `verify_fault` injection knob) is
/// refused, negatively cached — the second open fails without a second
/// compile — and never becomes a servable session, while the same
/// design compiles and runs clean without the fault.
#[test]
fn verify_gate_refuses_to_cache_failing_bitstream() {
    let (addr, server) = start_server(ServerConfig::default());
    let mut client = GemClient::connect(addr).expect("connect");

    let mut faulty = wire_opts();
    faulty.set("verify_fault", 5u64);

    // First open: the injected corruption must be caught by the verifier.
    let err = client
        .open(DESIGN_A, faulty.clone())
        .expect_err("fault-injected compile must fail");
    match err {
        gem_server::ClientError::Server { code, message, .. } => {
            assert_eq!(code, "compile_failed");
            assert!(
                message.contains("verification failed"),
                "error must name the verifier: {message}"
            );
        }
        other => panic!("expected server error, got {other}"),
    }

    // Second open of the same (source, opts): served from the negative
    // cache — same failure, no recompile.
    let err = client
        .open(DESIGN_A, faulty)
        .expect_err("negative cache must keep refusing");
    assert!(matches!(
        err,
        gem_server::ClientError::Server { ref code, .. } if code == "compile_failed"
    ));

    // The clean variant (different cache key) compiles, verifies, and
    // actually simulates.
    let resp = client.open(DESIGN_A, wire_opts()).expect("clean open");
    let session = resp.get("session").and_then(Json::as_u64).unwrap();
    client
        .step(session, 1, vec![("en", "1"), ("delta", "02")])
        .expect("clean session steps");
    client.close(session).expect("close");

    let stats = quiesced_stats(&mut client);
    assert_eq!(
        metric(&stats, "gem_server_verify_failures_total"),
        1.0,
        "one verifier rejection, not re-verified on the cached retry"
    );
    assert_eq!(
        metric(&stats, "gem_server_compiles_total"),
        2.0,
        "faulty key compiled once, clean key once"
    );
    assert_eq!(metric(&stats, "gem_server_cache_lookups_total"), 3.0);
    assert_eq!(metric(&stats, "gem_server_cache_hits_total"), 1.0);
    assert_eq!(metric(&stats, "gem_server_sessions_opened_total"), 1.0);

    shutdown_and_join(addr, server);
}

/// A full queue answers `busy` with a retry hint — immediately, not
/// after the queue drains.
#[test]
fn full_queue_rejects_with_retry_hint() {
    let (addr, server) = start_server(ServerConfig {
        workers: 1,
        queue: 1,
        ..ServerConfig::default()
    });

    // Occupy the single worker, then the single queue slot.
    let t1 = std::thread::spawn(move || {
        GemClient::connect(addr).unwrap().ping(400).expect("ping 1");
    });
    std::thread::sleep(Duration::from_millis(100));
    let t2 = std::thread::spawn(move || {
        GemClient::connect(addr).unwrap().ping(400).expect("ping 2");
    });
    std::thread::sleep(Duration::from_millis(100));

    // Third delayed ping must be rejected busy, fast.
    let mut c3 = GemClient::connect(addr).expect("connect");
    let t0 = Instant::now();
    let err = c3.ping(10).expect_err("queue is full");
    assert!(
        t0.elapsed() < Duration::from_millis(250),
        "reject was not immediate"
    );
    assert!(err.is_busy(), "expected busy, got {err}");
    match err {
        gem_server::ClientError::Server { retry_after_ms, .. } => {
            assert!(retry_after_ms.is_some(), "busy must carry retry_after_ms");
        }
        other => panic!("expected server error, got {other}"),
    }

    t1.join().unwrap();
    t2.join().unwrap();

    // After the backlog drains, the same request succeeds.
    c3.ping(1).expect("retry succeeds after drain");

    let stats = quiesced_stats(&mut c3);
    assert!(metric(&stats, "gem_server_jobs_rejected_total") >= 1.0);
    assert_eq!(
        metric(&stats, "gem_server_jobs_submitted_total"),
        metric(&stats, "gem_server_jobs_completed_total")
            + metric(&stats, "gem_server_jobs_rejected_total")
    );
    // The per-reason family must attribute every rejection: this path
    // only produces full-queue rejections, and the reasons must sum to
    // the unlabeled total.
    assert!(
        labeled_metric(&stats, "gem_server_rejected_total", "reason", "queue_full") >= 1.0,
        "full-queue rejection must be attributed to its reason"
    );
    assert_eq!(
        labeled_metric(
            &stats,
            "gem_server_rejected_total",
            "reason",
            "shutting_down"
        ),
        0.0
    );
    assert_eq!(
        metric(&stats, "gem_server_rejected_total"),
        metric(&stats, "gem_server_jobs_rejected_total"),
        "reason breakdown must reconcile with the total"
    );

    shutdown_and_join(addr, server);
}

/// Session lifecycle odds and ends over the wire: checkpoints restore
/// bit-exact state, VCD replay matches stepping, errors carry their
/// typed codes, and the idle reaper evicts abandoned sessions.
#[test]
fn lifecycle_checkpoints_replay_and_errors() {
    let (addr, server) = start_server(ServerConfig {
        idle_timeout: Duration::from_millis(400),
        reap_interval: Duration::from_millis(25),
        ..ServerConfig::default()
    });
    let mut client = GemClient::connect(addr).expect("connect");

    // --- checkpoint/restore -------------------------------------------
    let resp = client.open(DESIGN_A, wire_opts()).expect("open");
    let session = resp.get("session").and_then(Json::as_u64).unwrap();
    for _ in 0..5 {
        client
            .step(session, 1, vec![("en", "1"), ("delta", "01")])
            .expect("warm-up step");
    }
    client.save(session).expect("save");
    let after_save = client
        .step(session, 1, vec![("en", "1"), ("delta", "01")])
        .expect("step");
    let v1 = out_u64(&after_save, "acc");
    client
        .step(session, 2, vec![])
        .expect("diverge past the checkpoint");
    client.restore(session).expect("restore");
    let replayed = client
        .step(session, 1, vec![("en", "1"), ("delta", "01")])
        .expect("step after restore");
    assert_eq!(out_u64(&replayed, "acc"), v1, "restore must be bit-exact");

    // --- VCD replay vs. golden ----------------------------------------
    let compiled_a = compile(&verilog::parse(DESIGN_A).unwrap(), &small_opts()).unwrap();
    let mut w = VcdWriter::new("tb");
    let en = w.add_var("en", 1);
    let delta = w.add_var("delta", 8);
    w.begin();
    for t in 0..6u64 {
        w.timestamp(t);
        w.change(en, &Bits::from_u64((t % 2 == 0) as u64, 1));
        w.change(delta, &Bits::from_u64(t * 3 + 1, 8));
    }
    let vcd_text = w.finish();
    let fresh = client.open(DESIGN_A, wire_opts()).expect("open fresh");
    let fresh_session = fresh.get("session").and_then(Json::as_u64).unwrap();
    let replayed = client.replay(fresh_session, &vcd_text).expect("replay");
    assert_eq!(replayed.get("cycles").and_then(Json::as_u64), Some(6));
    let rows = replayed
        .get("outputs")
        .and_then(Json::as_array)
        .expect("per-cycle outputs");
    let mut golden = EaigSim::new(&compiled_a.eaig);
    for (t, row) in rows.iter().enumerate() {
        golden_set(&mut golden, &compiled_a, "en", (t % 2 == 0) as u64);
        golden_set(&mut golden, &compiled_a, "delta", t as u64 * 3 + 1);
        let want = golden_get(&mut golden, &compiled_a, "acc");
        let got = row.get("acc").and_then(Json::as_str).expect("acc hex");
        assert_eq!(u64::from_str_radix(got, 16).unwrap(), want, "cycle {t}");
        golden.step();
    }
    // The response's VCD document parses and covers the same cycles.
    let vcd_out = replayed.get("vcd").and_then(Json::as_str).expect("vcd");
    let dump = gem_netlist::vcd::VcdDump::parse(vcd_out).expect("valid vcd");
    assert!(dump.var("acc").is_some());

    // --- typed error codes --------------------------------------------
    let err = client
        .open(
            "module broken(input clk, output w); endmodule garbage",
            wire_opts(),
        )
        .expect_err("bad source");
    match err {
        gem_server::ClientError::Server { code, .. } => assert_eq!(code, "compile_failed"),
        other => panic!("expected server error, got {other}"),
    }
    let err = client.peek(999_999, "acc").expect_err("unknown session");
    match err {
        gem_server::ClientError::Server { code, .. } => assert_eq!(code, "not_found"),
        other => panic!("expected server error, got {other}"),
    }
    let err = client
        .request("frobnicate", Vec::new())
        .expect_err("unknown command");
    match err {
        gem_server::ClientError::Server { code, .. } => assert_eq!(code, "bad_request"),
        other => panic!("expected server error, got {other}"),
    }

    // --- idle eviction -------------------------------------------------
    // Leave both sessions untouched past the idle timeout; the reaper
    // must evict them and later requests must see not_found.
    std::thread::sleep(Duration::from_millis(700));
    let err = client.peek(session, "acc").expect_err("evicted session");
    assert!(matches!(
        err,
        gem_server::ClientError::Server { ref code, .. } if code == "not_found"
    ));
    let stats = quiesced_stats(&mut client);
    assert!(metric(&stats, "gem_server_sessions_evicted_total") >= 2.0);
    assert_eq!(
        metric(&stats, "gem_server_sessions_opened_total"),
        metric(&stats, "gem_server_sessions_active")
            + metric(&stats, "gem_server_sessions_closed_total")
            + metric(&stats, "gem_server_sessions_evicted_total")
    );

    shutdown_and_join(addr, server);
}

/// Per-timestamp values of one output port in a response VCD (the
/// server's writers emit every port at every timestamp).
fn vcd_port_values(dump: &gem_netlist::vcd::VcdDump, port: &str) -> Vec<u64> {
    let var = dump.var(port).unwrap_or_else(|| panic!("no var {port:?}"));
    dump.changes
        .iter()
        .filter(|(_, v, _)| *v == var)
        .map(|(_, _, bits)| bits.to_u64())
        .collect()
}

/// Batch sessions end to end: lane counts are validated with a typed
/// error before any compile, per-lane pokes/peeks and `lane_outputs`
/// match one golden model per lane, lockstep batch replay returns one
/// output VCD per lane (short streams hold their last values), and the
/// lane metrics reconcile.
#[test]
fn batch_sessions_fan_lanes_over_the_wire() {
    let (addr, server) = start_server(ServerConfig::default());
    let mut client = GemClient::connect(addr).expect("connect");

    // --- lane-count validation -----------------------------------------
    for lanes in [0u32, 65, 128] {
        let err = client
            .open_lanes(DESIGN_A, wire_opts(), lanes)
            .expect_err("bad lane count must be rejected");
        match err {
            gem_server::ClientError::Server { code, message, .. } => {
                assert_eq!(code, "bad_lanes", "lanes={lanes}");
                assert!(message.contains("between 1 and 64"), "got: {message}");
            }
            other => panic!("expected server error, got {other}"),
        }
    }
    // Rejected before touching the compile cache.
    let stats = client.stats().expect("stats");
    assert_eq!(metric(&stats, "gem_server_cache_lookups_total"), 0.0);

    // --- per-lane stepping vs. one golden model per lane ----------------
    const LANES: u32 = 8;
    let resp = client
        .open_lanes(DESIGN_A, wire_opts(), LANES)
        .expect("open batch");
    let accum = resp.get("session").and_then(Json::as_u64).unwrap();
    assert_eq!(resp.get("lanes").and_then(Json::as_u64), Some(LANES as u64));

    let compiled_a = compile(&verilog::parse(DESIGN_A).unwrap(), &small_opts()).unwrap();
    let mut goldens: Vec<EaigSim> = (0..LANES).map(|_| EaigSim::new(&compiled_a.eaig)).collect();
    let mut last_acc = vec![0u64; LANES as usize];
    for cycle in 0..12u64 {
        client.poke(accum, "en", "1").expect("broadcast poke");
        for lane in 0..LANES {
            let delta = (cycle * 9 + lane as u64 * 17 + 1) & 0xFF;
            client
                .poke_lane(accum, lane, "delta", &format!("{delta:02x}"))
                .expect("poke lane");
        }
        let resp = client.step(accum, 1, vec![]).expect("step");
        let lane_outputs = resp
            .get("lane_outputs")
            .and_then(Json::as_array)
            .expect("batch step carries lane_outputs");
        assert_eq!(lane_outputs.len(), LANES as usize);
        for lane in 0..LANES as usize {
            let delta = (cycle * 9 + lane as u64 * 17 + 1) & 0xFF;
            golden_set(&mut goldens[lane], &compiled_a, "en", 1);
            golden_set(&mut goldens[lane], &compiled_a, "delta", delta);
            let want = golden_get(&mut goldens[lane], &compiled_a, "acc");
            let got = lane_outputs[lane]
                .get("acc")
                .and_then(Json::as_str)
                .expect("acc hex");
            assert_eq!(
                u64::from_str_radix(got, 16).unwrap(),
                want,
                "lane {lane} diverged from its golden model at cycle {cycle}"
            );
            last_acc[lane] = want;
            goldens[lane].step();
        }
        // The scalar "outputs" view is lane 0.
        assert_eq!(
            out_u64(&resp, "acc"),
            u64::from_str_radix(
                lane_outputs[0].get("acc").and_then(Json::as_str).unwrap(),
                16
            )
            .unwrap()
        );
    }
    // Lane-addressed peek (no step in between) agrees with the last
    // step's lane view; a lane index past the session's count is a
    // typed error.
    for lane in 0..LANES {
        let hex = client.peek_lane(accum, lane, "acc").expect("peek lane");
        assert_eq!(
            u64::from_str_radix(&hex, 16).unwrap(),
            last_acc[lane as usize],
            "peek_lane disagrees with the step response on lane {lane}"
        );
    }
    let err = client
        .peek_lane(accum, LANES, "acc")
        .expect_err("lane index out of range");
    assert!(matches!(
        err,
        gem_server::ClientError::Server { ref code, .. } if code == "bad_lanes"
    ));
    let err = client
        .poke_lane(accum, 31, "delta", "00")
        .expect_err("lane index beyond session lanes");
    assert!(matches!(
        err,
        gem_server::ClientError::Server { ref code, .. } if code == "bad_lanes"
    ));

    // --- lockstep batch replay vs. per-lane golden models ---------------
    const RLANES: usize = 4;
    let resp = client
        .open_lanes(DESIGN_B, wire_opts(), RLANES as u32)
        .expect("open replay batch");
    let mixer = resp.get("session").and_then(Json::as_u64).unwrap();

    // While both batch sessions live, the lane gauge counts them all.
    let stats = client.stats().expect("stats");
    assert_eq!(
        metric(&stats, "gem_server_lanes_active"),
        (LANES as usize + RLANES) as f64
    );
    assert_eq!(metric(&stats, "gem_server_batch_sessions_total"), 2.0);

    // Streams of *different* lengths: exhausted lanes hold last values.
    let lens = [6usize, 5, 4, 3];
    let stim = |lane: usize, t: u64| {
        (
            (t * 5 + lane as u64 * 7 + 1) & 0xFF,
            (t * 3 + lane as u64 * 11 + 2) & 0xFF,
        )
    };
    let texts: Vec<String> = (0..RLANES)
        .map(|lane| {
            let mut w = VcdWriter::new("tb");
            let va = w.add_var("a", 8);
            let vb = w.add_var("b", 8);
            w.begin();
            for t in 0..lens[lane] as u64 {
                let (a, b) = stim(lane, t);
                w.timestamp(t);
                w.change(va, &Bits::from_u64(a, 8));
                w.change(vb, &Bits::from_u64(b, 8));
            }
            w.finish()
        })
        .collect();

    // Too many stimuli for the session is a typed error, session intact.
    let five: Vec<&str> = std::iter::repeat_n(texts[0].as_str(), 5).collect();
    let err = client
        .replay_batch(mixer, &five)
        .expect_err("5 stimuli on a 4-lane session");
    assert!(matches!(
        err,
        gem_server::ClientError::Server { ref code, .. } if code == "bad_lanes"
    ));

    let text_refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let resp = client
        .replay_batch(mixer, &text_refs)
        .expect("batch replay");
    let total = *lens.iter().max().unwrap() as u64;
    assert_eq!(resp.get("cycles").and_then(Json::as_u64), Some(total));
    let vcds = resp
        .get("vcds")
        .and_then(Json::as_array)
        .expect("per-lane output vcds");
    assert_eq!(vcds.len(), RLANES);

    let compiled_b = compile(&verilog::parse(DESIGN_B).unwrap(), &small_opts()).unwrap();
    for lane in 0..RLANES {
        let text = vcds[lane].as_str().expect("vcd string");
        let dump = gem_netlist::vcd::VcdDump::parse(text).expect("valid vcd");
        let xs = vcd_port_values(&dump, "x");
        let rs = vcd_port_values(&dump, "r");
        assert_eq!(xs.len(), total as usize, "lane {lane}");
        let mut golden = EaigSim::new(&compiled_b.eaig);
        let mut held = stim(lane, 0);
        for t in 0..total {
            if t < lens[lane] as u64 {
                held = stim(lane, t); // fresh values while the stream lasts
            }
            golden_set(&mut golden, &compiled_b, "a", held.0);
            golden_set(&mut golden, &compiled_b, "b", held.1);
            assert_eq!(
                xs[t as usize],
                golden_get(&mut golden, &compiled_b, "x"),
                "lane {lane} output x diverged at cycle {t}"
            );
            assert_eq!(
                rs[t as usize],
                golden_get(&mut golden, &compiled_b, "r"),
                "lane {lane} output r diverged at cycle {t}"
            );
            golden.step();
        }
    }

    // --- lane metrics drain with their sessions -------------------------
    client.close(accum).expect("close accum");
    client.close(mixer).expect("close mixer");
    let stats = quiesced_stats(&mut client);
    assert_eq!(metric(&stats, "gem_server_lanes_active"), 0.0);
    assert_eq!(metric(&stats, "gem_server_batch_sessions_total"), 2.0);
    assert_eq!(metric(&stats, "gem_server_sessions_active"), 0.0);
    // Batch replay counts machine cycles, not lane-cycles: 12 steps plus
    // the 6-cycle lockstep replay.
    assert_eq!(metric(&stats, "gem_server_cycles_total"), 18.0);

    shutdown_and_join(addr, server);
}

/// A full-width batch session end to end: `open {"lanes": 64}` succeeds
/// (65 is rejected pre-pool in the validation sweep above), a 64-stream
/// lockstep `replay_batch` produces 64 per-lane output VCDs bit-equal
/// to 64 independent single-lane sessions replaying the same stimuli,
/// and per-lane poke/peek addresses every one of the 64 lanes.
#[test]
fn full_width_batch_matches_independent_sessions() {
    let (addr, server) = start_server(ServerConfig::default());
    let mut client = GemClient::connect(addr).expect("connect");
    const LANES: usize = 64;
    let resp = client
        .open_lanes(DESIGN_B, wire_opts(), LANES as u32)
        .expect("open 64-lane batch");
    let batch = resp.get("session").and_then(Json::as_u64).unwrap();
    assert_eq!(resp.get("lanes").and_then(Json::as_u64), Some(64));

    // 64 distinct stimulus streams.
    let cycles = 6u64;
    let stim = |lane: usize, t: u64| {
        (
            (t * 5 + lane as u64 * 7 + 1) & 0xFF,
            (t * 3 + lane as u64 * 11 + 2) & 0xFF,
        )
    };
    let texts: Vec<String> = (0..LANES)
        .map(|lane| {
            let mut w = VcdWriter::new("tb");
            let va = w.add_var("a", 8);
            let vb = w.add_var("b", 8);
            w.begin();
            for t in 0..cycles {
                let (a, b) = stim(lane, t);
                w.timestamp(t);
                w.change(va, &Bits::from_u64(a, 8));
                w.change(vb, &Bits::from_u64(b, 8));
            }
            w.finish()
        })
        .collect();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let resp = client.replay_batch(batch, &refs).expect("replay 64 lanes");
    assert_eq!(resp.get("cycles").and_then(Json::as_u64), Some(cycles));
    let vcds = resp
        .get("vcds")
        .and_then(Json::as_array)
        .expect("per-lane output vcds");
    assert_eq!(vcds.len(), LANES);

    // Every lane must be bit-equal to its own independent session.
    for lane in 0..LANES {
        let resp = client.open(DESIGN_B, wire_opts()).expect("open single");
        let single = resp.get("session").and_then(Json::as_u64).unwrap();
        let replayed = client.replay(single, &texts[lane]).expect("replay single");
        let batch_dump =
            gem_netlist::vcd::VcdDump::parse(vcds[lane].as_str().unwrap()).expect("batch vcd");
        let single_dump = gem_netlist::vcd::VcdDump::parse(
            replayed.get("vcd").and_then(Json::as_str).expect("vcd"),
        )
        .expect("single vcd");
        for port in ["x", "r"] {
            assert_eq!(
                vcd_port_values(&batch_dump, port),
                vcd_port_values(&single_dump, port),
                "lane {lane} port {port} diverged from its independent session"
            );
        }
        client.close(single).expect("close single");
    }

    // Per-lane poke/peek across the full width (x is combinational, so
    // the session state left by the replay does not disturb it).
    for lane in 0..LANES as u32 {
        client
            .poke_lane(batch, lane, "a", &format!("{lane:02x}"))
            .expect("poke a");
        client.poke_lane(batch, lane, "b", "a5").expect("poke b");
    }
    client.step(batch, 1, vec![]).expect("step");
    for lane in 0..LANES as u32 {
        let (a, b) = (u64::from(lane), 0xA5u64);
        let want = ((a ^ b) + (a & b)) & 0xFF;
        let got = client.peek_lane(batch, lane, "x").expect("peek x");
        assert_eq!(
            u64::from_str_radix(&got, 16).unwrap(),
            want,
            "lane {lane} poke/peek"
        );
    }
    client.close(batch).expect("close batch");
    shutdown_and_join(addr, server);
}

/// Two sessions on the *same cached compiled design*, both running the
/// parallel vGPU engine (`sim_threads: 3`), stepping simultaneously
/// from two client threads with different stimuli. Guards the
/// PR-3 invariants: sharing a compiled design and an execution pool
/// must not bleed state across sessions, outputs must stay bit-exact
/// against per-session golden models, and the `gem_server_*` metrics
/// must reconcile exactly afterwards.
#[test]
fn parallel_engine_sessions_share_design_without_bleed() {
    let (addr, server) = start_server(ServerConfig {
        workers: 4,
        queue: 16,
        cache: 4,
        // Force the parallel engine in every session (auto-budgeting
        // would pick 1 thread on a small CI host, which would bypass
        // the code path under test).
        sim_threads: 3,
        ..ServerConfig::default()
    });

    let mut clients: Vec<GemClient> = Vec::new();
    let mut sessions = Vec::new();
    for i in 0..2 {
        let mut c = GemClient::connect(addr).expect("connect");
        let resp = c.open(DESIGN_A, wire_opts()).expect("open");
        let cached = resp.get("cached").and_then(Json::as_bool).unwrap();
        assert_eq!(cached, i == 1, "second open must hit the compile cache");
        sessions.push(resp.get("session").and_then(Json::as_u64).unwrap());
        clients.push(c);
    }

    let compiled = Arc::new(compile(&verilog::parse(DESIGN_A).unwrap(), &small_opts()).unwrap());
    let barrier = Arc::new(Barrier::new(2));
    let drivers: Vec<_> = clients
        .into_iter()
        .zip(sessions)
        .enumerate()
        .map(|(i, (mut client, session))| {
            let compiled = Arc::clone(&compiled);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut golden = EaigSim::new(&compiled.eaig);
                barrier.wait(); // step the two sessions truly concurrently
                for cycle in 0..30u64 {
                    // Deliberately different stimuli per session: any
                    // cross-session bleed diverges from the golden model
                    // within a cycle.
                    let en = !(cycle + 2 * i as u64).is_multiple_of(3);
                    let delta = (cycle * 31 + i as u64 * 101) & 0xFF;
                    let delta_hex = format!("{delta:02x}");
                    let resp = client
                        .step(
                            session,
                            1,
                            vec![("en", if en { "1" } else { "0" }), ("delta", &delta_hex)],
                        )
                        .expect("step");
                    golden_set(&mut golden, &compiled, "en", en as u64);
                    golden_set(&mut golden, &compiled, "delta", delta);
                    assert_eq!(
                        out_u64(&resp, "acc"),
                        golden_get(&mut golden, &compiled, "acc"),
                        "session {i} diverged at cycle {cycle}"
                    );
                    golden.step();
                }
                client.close(session).expect("close");
                client
            })
        })
        .collect();
    let mut clients: Vec<_> = drivers
        .into_iter()
        .map(|t| t.join().expect("driver thread"))
        .collect();

    let stats = quiesced_stats(&mut clients[0]);
    assert_eq!(metric(&stats, "gem_server_compiles_total"), 1.0);
    assert_eq!(metric(&stats, "gem_server_cache_hits_total"), 1.0);
    assert_eq!(metric(&stats, "gem_server_sessions_opened_total"), 2.0);
    assert_eq!(metric(&stats, "gem_server_sessions_closed_total"), 2.0);
    assert_eq!(metric(&stats, "gem_server_sessions_active"), 0.0);
    assert_eq!(metric(&stats, "gem_server_cycles_total"), 60.0);

    shutdown_and_join(addr, server);
}

/// The `backend` open option: a compiled-backend session must produce
/// the same waveform as an interpreted one over the wire, the response
/// echoes the backend, an unknown name is a typed `bad_backend` error,
/// and the `profile` command labels its report with the backend that
/// measured it.
#[test]
fn backend_option_selects_engine_without_changing_waveforms() {
    let (addr, server) = start_server(ServerConfig::default());
    let mut c = GemClient::connect(addr).expect("connect");

    let mut sessions = Vec::new();
    for backend in ["interpreted", "compiled"] {
        let resp = c
            .open_backend(DESIGN_B, wire_opts(), backend)
            .expect("open with backend");
        assert_eq!(
            resp.get("backend").and_then(Json::as_str),
            Some(backend),
            "open response must echo the session's backend"
        );
        sessions.push(resp.get("session").and_then(Json::as_u64).unwrap());
    }

    for cycle in 0..24u64 {
        let a = format!("{:02x}", (cycle * 37 + 5) & 0xFF);
        let b = format!("{:02x}", (cycle * 91 + 11) & 0xFF);
        let mut outs = Vec::new();
        for &session in &sessions {
            let resp = c
                .step(session, 1, vec![("a", a.as_str()), ("b", b.as_str())])
                .expect("step");
            outs.push((out_u64(&resp, "x"), out_u64(&resp, "r")));
        }
        assert_eq!(
            outs[0], outs[1],
            "backends diverged over the wire at cycle {cycle}"
        );
    }
    for session in sessions {
        c.close(session).expect("close");
    }

    // Unknown backend name: rejected before any pool work, typed code.
    let err = c
        .open_backend(DESIGN_B, wire_opts(), "warp")
        .expect_err("bogus backend must be rejected");
    match err {
        gem_server::ClientError::Server { code, message, .. } => {
            assert_eq!(code, "bad_backend");
            assert!(
                message.contains("warp"),
                "message names the input: {message}"
            );
        }
        other => panic!("expected typed server error, got {other}"),
    }

    // `profile` with an explicit backend labels the report it returns.
    let resp = c
        .request(
            "profile",
            vec![
                ("source", Json::Str(DESIGN_B.into())),
                ("opts", wire_opts()),
                ("cycles", Json::U64(16)),
                ("backend", Json::Str("compiled".into())),
            ],
        )
        .expect("profile with backend");
    let profile = resp.get("profile").expect("profile report");
    assert_eq!(
        profile.get("backend").and_then(Json::as_str),
        Some("compiled"),
        "profile report must name the measuring backend"
    );
    assert!(
        resp.get("table")
            .and_then(Json::as_str)
            .unwrap_or("")
            .contains("compiled backend"),
        "rendered table must label the backend"
    );

    shutdown_and_join(addr, server);
}

/// The `lint` wire op returns typed diagnostics and a schedule
/// certificate for clean designs, and names the offending nets — with
/// no compile attempted — for designs with error-severity findings.
#[test]
fn lint_op_reports_diagnostics_and_certification() {
    let (addr, server) = start_server(ServerConfig::default());
    let mut client = GemClient::connect(addr).expect("connect");

    // Clean design: zero warnings, compiled and certified.
    let resp = client.lint(DESIGN_A, wire_opts()).expect("lint clean");
    assert_eq!(resp.get("clean").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.get("certified").and_then(Json::as_bool), Some(true));
    let cert = resp.get("cert").and_then(Json::as_str).expect("cert");
    assert!(cert.contains("read(s) ordered"), "cert summary: {cert}");

    // A combinational loop: GEM-L001 with the looped nets named, not
    // certified, and no compile burned on it.
    let looped = "
module looped(input a, output y);
  wire fb;
  assign fb = fb & a;
  assign y = ~fb;
endmodule
";
    let resp = client.lint(looped, wire_opts()).expect("lint runs");
    assert_eq!(resp.get("clean").and_then(Json::as_bool), Some(false));
    assert_eq!(resp.get("certified").and_then(Json::as_bool), Some(false));
    let diags = resp
        .get("diagnostics")
        .and_then(Json::as_array)
        .expect("diagnostics array");
    let loop_diag = diags
        .iter()
        .find(|d| d.get("code").and_then(Json::as_str) == Some("GEM-L001"))
        .expect("comb-loop diagnostic");
    assert_eq!(
        loop_diag.get("severity").and_then(Json::as_str),
        Some("error")
    );
    let witness = loop_diag
        .get("witness")
        .and_then(Json::as_str)
        .expect("witness");
    assert!(witness.contains("fb"), "witness names the net: {witness}");

    let stats = quiesced_stats(&mut client);
    assert_eq!(
        metric(&stats, "gem_server_compiles_total"),
        1.0,
        "only the clean design compiled"
    );

    shutdown_and_join(addr, server);
}
