//! End-to-end request-correlation test: one client-visible request id
//! must link the wire frame, the connection-thread request span, the
//! worker-pool job span, and the compile/step spans recorded deep inside
//! the flow — and request latency must surface as p50/p95/p99 quantiles
//! in the `stats` snapshot.
//!
//! This lives in its own integration-test binary because the span
//! collector is process-global: sharing a process with other tests that
//! install collectors would interleave events.

use gem_server::{GemClient, Server, ServerConfig};
use gem_telemetry::span::{self, TraceCollector, TraceEvent};
use gem_telemetry::{validate_chrome_trace, Json};

const DESIGN: &str = "
module accum(input clk, input en, input [7:0] delta, output reg [15:0] acc);
  always @(posedge clk) begin
    if (en) acc <= acc + {8'd0, delta};
  end
endmodule
";

fn wire_opts() -> Json {
    let mut o = Json::object();
    o.set("width", 256u64);
    o.set("parts", 4u64);
    o.set("stages", 1u64);
    o
}

fn rid_of(resp: &Json) -> u64 {
    resp.get("rid")
        .and_then(Json::as_u64)
        .expect("every response must carry its correlation id")
}

fn names_with_rid(events: &[TraceEvent], rid: u64) -> Vec<&str> {
    events
        .iter()
        .filter(|e| e.rid == Some(rid))
        .map(|e| e.name.as_str())
        .collect()
}

#[test]
fn one_correlation_id_links_wire_frames_and_spans() {
    let collector = TraceCollector::arc();
    span::install(std::sync::Arc::clone(&collector));

    let server = Server::bind(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    let mut client = GemClient::connect(addr).expect("connect");

    // Open compiles the design on a pooled worker; the compile flow's
    // stage spans must inherit this request's id.
    let open = client.open(DESIGN, wire_opts()).expect("open");
    let open_rid = rid_of(&open);
    let session = open.get("session").and_then(Json::as_u64).unwrap();

    // Step runs the simulator on a pooled worker; cycle spans must
    // inherit this (different) request's id.
    let step = client
        .step(session, 3, vec![("en", "1"), ("delta", "07")])
        .expect("step");
    let step_rid = rid_of(&step);
    assert_ne!(open_rid, step_rid, "each request gets a fresh id");

    // Latency quantiles appear in the snapshot once requests completed.
    let stats = client.stats().expect("stats");
    let stats_rid = rid_of(&stats);
    assert!(stats_rid > step_rid, "ids are monotonic per server");
    let families = stats
        .get("metrics")
        .and_then(|m| m.get("families"))
        .and_then(Json::as_array)
        .expect("metric families");
    let latency = families
        .iter()
        .find(|f| f.get("name").and_then(Json::as_str) == Some("gem_server_request_latency_micros"))
        .expect("request latency histogram family");
    let samples = latency
        .get("samples")
        .and_then(Json::as_array)
        .expect("samples");
    for q in ["0.5", "0.95", "0.99"] {
        assert!(
            samples.iter().any(|s| {
                s.get("labels")
                    .and_then(|l| l.get("quantile"))
                    .and_then(Json::as_str)
                    == Some(q)
            }),
            "snapshot must expose p{q}"
        );
    }
    let count = samples
        .iter()
        .find(|s| {
            s.get("labels")
                .and_then(|l| l.get("agg"))
                .and_then(Json::as_str)
                == Some("count")
        })
        .and_then(|s| s.get("value").and_then(Json::as_f64))
        .expect("histogram count sample");
    assert!(
        count >= 2.0,
        "open + step must both be observed, got {count}"
    );

    client.close(session).expect("close");
    let mut shut = GemClient::connect(addr).expect("connect for shutdown");
    shut.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("run result");
    span::uninstall();

    let events = collector.drain();

    // The open request's id links: wire frame (asserted above via
    // `rid_of`), connection-thread request span, pooled job span, and
    // the compile flow's stage spans recorded inside the cache worker.
    let open_names = names_with_rid(&events, open_rid);
    assert!(open_names.contains(&"request:open"), "{open_names:?}");
    assert!(open_names.contains(&"job:open"), "{open_names:?}");
    for stage in ["synth", "partition", "merge", "place", "encode", "verify"] {
        assert!(
            open_names.contains(&stage),
            "compile stage {stage:?} must carry the open request's id: {open_names:?}"
        );
    }

    // The step request's id links its spans — and none of the compile
    // spans, proving ids do not bleed across requests.
    let step_names = names_with_rid(&events, step_rid);
    assert!(step_names.contains(&"request:step"), "{step_names:?}");
    assert!(step_names.contains(&"job:step"), "{step_names:?}");
    assert!(
        step_names.iter().filter(|n| **n == "cycle").count() >= 3,
        "three stepped cycles must each record a span: {step_names:?}"
    );
    assert!(
        !step_names.contains(&"synth"),
        "compile spans must not leak into the step request"
    );

    // The whole trace exports as a well-formed Chrome-trace document.
    let doc = span::events_to_chrome_trace(&events);
    let summary = validate_chrome_trace(&doc).expect("exported trace validates");
    assert!(summary.spans >= 10, "expected a rich trace: {summary:?}");
    assert!(summary.threads >= 2, "connection + worker threads");
}
