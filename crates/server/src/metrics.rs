//! Server-wide metric registry (lock-free counters and gauges).
//!
//! One [`ServerMetrics`] instance is shared by every connection handler,
//! the worker pool, the compile cache, and the session table. All fields
//! are relaxed atomics — the registry is on the request hot path and
//! never blocks. [`ServerMetrics::snapshot`] converts the registry into
//! the workspace's standard [`MetricsSnapshot`] form, so server metrics
//! flow through the same exporters (`--emit-metrics` JSON, Prometheus
//! text) as the compile-flow and virtual-GPU families.
//!
//! Reconciliation invariants (asserted by the integration tests and
//! documented in `docs/OBSERVABILITY.md`):
//!
//! * `jobs_submitted = jobs_completed + jobs_rejected` once the queue is
//!   drained,
//! * `cache_lookups = cache_hits + cache_misses`,
//! * `sessions_opened = sessions_active + sessions_closed +
//!   sessions_evicted`.

use gem_telemetry::{Histogram, MetricFamily, MetricKind, MetricsSnapshot, Sample};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shared atomic counters/gauges for one server instance.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted over the server's lifetime.
    pub connections_total: AtomicU64,
    /// Currently open connections.
    pub connections_active: AtomicU64,
    /// Requests dispatched, all commands.
    pub requests_total: AtomicU64,
    /// Sessions opened.
    pub sessions_opened: AtomicU64,
    /// Sessions closed by the client.
    pub sessions_closed: AtomicU64,
    /// Sessions evicted by the idle reaper.
    pub sessions_evicted: AtomicU64,
    /// Currently live sessions.
    pub sessions_active: AtomicU64,
    /// Sessions opened with more than one lane (batch sessions).
    pub batch_sessions: AtomicU64,
    /// Total stimulus lanes across currently live sessions (a
    /// single-lane session contributes 1, a full batch session 64).
    pub lanes_active: AtomicU64,
    /// Jobs offered to the worker pool (accepted or not).
    pub jobs_submitted: AtomicU64,
    /// Jobs that ran to completion.
    pub jobs_completed: AtomicU64,
    /// Jobs rejected with backpressure (queue full or shutting down).
    pub jobs_rejected: AtomicU64,
    /// Rejections whose reason was a full queue (`retry_after_ms` was
    /// attached to the BUSY response).
    pub rejected_queue_full: AtomicU64,
    /// Rejections whose reason was pool shutdown.
    pub rejected_shutting_down: AtomicU64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: AtomicU64,
    /// Cache lookups (each `get_or_compile` call counts once).
    pub cache_lookups: AtomicU64,
    /// Lookups served from cache (including waits on an in-flight
    /// compile of the same design).
    pub cache_hits: AtomicU64,
    /// Lookups that compiled (or failed to compile) the design.
    pub cache_misses: AtomicU64,
    /// Entries dropped by LRU eviction.
    pub cache_evictions: AtomicU64,
    /// Resident cache entries.
    pub cache_entries: AtomicU64,
    /// Designs actually compiled (excludes cache hits).
    pub compiles_total: AtomicU64,
    /// Compiles rejected by the static bitstream verifier (the failing
    /// artifact is negatively cached, never served).
    pub verify_failures: AtomicU64,
    /// Compiles rejected by the static analyzer or the schedule
    /// happens-before checker (negatively cached like verify failures).
    pub analyze_failures: AtomicU64,
    /// Summed queue+execution latency of completed jobs, microseconds.
    pub job_latency_micros: AtomicU64,
    /// Simulated cycles executed on behalf of all sessions.
    pub cycles_total: AtomicU64,
    /// Per-request wall-clock latency distribution, microseconds
    /// (measured around `dispatch` on the connection thread). The one
    /// non-atomic member: a log-bucketed histogram behind a mutex held
    /// only for the O(1) observe/merge.
    pub request_latency_micros: Mutex<Histogram>,
}

/// Relaxed increment helper: all metrics are monotonic or
/// gauge-adjusted, never used for synchronization.
pub(crate) fn inc(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// Relaxed add helper.
pub(crate) fn add(c: &AtomicU64, v: u64) {
    c.fetch_add(v, Ordering::Relaxed);
}

/// Relaxed subtract helper (gauges only).
pub(crate) fn dec(c: &AtomicU64) {
    c.fetch_sub(1, Ordering::Relaxed);
}

/// Relaxed multi-step subtract helper (gauges only).
pub(crate) fn sub(c: &AtomicU64, v: u64) {
    c.fetch_sub(v, Ordering::Relaxed);
}

impl ServerMetrics {
    fn get(c: &AtomicU64) -> f64 {
        c.load(Ordering::Relaxed) as f64
    }

    /// Records one request's wall-clock latency.
    pub fn observe_request_latency(&self, micros: f64) {
        self.request_latency_micros
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .observe(micros);
    }

    /// Exports every family under the `gem_server_` prefix.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        let mut c = |name: &str, help: &str, v: &AtomicU64| {
            s.push_scalar(name, help, MetricKind::Counter, Self::get(v));
        };
        c(
            "gem_server_connections_total",
            "Connections accepted",
            &self.connections_total,
        );
        c(
            "gem_server_requests_total",
            "Requests dispatched",
            &self.requests_total,
        );
        c(
            "gem_server_sessions_opened_total",
            "Sessions opened",
            &self.sessions_opened,
        );
        c(
            "gem_server_sessions_closed_total",
            "Sessions closed by clients",
            &self.sessions_closed,
        );
        c(
            "gem_server_sessions_evicted_total",
            "Sessions evicted after idle timeout",
            &self.sessions_evicted,
        );
        c(
            "gem_server_batch_sessions_total",
            "Sessions opened with more than one lane",
            &self.batch_sessions,
        );
        c(
            "gem_server_jobs_submitted_total",
            "Jobs offered to the worker pool",
            &self.jobs_submitted,
        );
        c(
            "gem_server_jobs_completed_total",
            "Jobs run to completion",
            &self.jobs_completed,
        );
        c(
            "gem_server_jobs_rejected_total",
            "Jobs rejected with backpressure",
            &self.jobs_rejected,
        );
        c(
            "gem_server_cache_lookups_total",
            "Compile-cache lookups",
            &self.cache_lookups,
        );
        c(
            "gem_server_cache_hits_total",
            "Compile-cache hits",
            &self.cache_hits,
        );
        c(
            "gem_server_cache_misses_total",
            "Compile-cache misses",
            &self.cache_misses,
        );
        c(
            "gem_server_cache_evictions_total",
            "Compile-cache LRU evictions",
            &self.cache_evictions,
        );
        c(
            "gem_server_compiles_total",
            "Designs compiled (cache misses that ran the flow)",
            &self.compiles_total,
        );
        c(
            "gem_server_verify_failures_total",
            "Compiles rejected by the static bitstream verifier",
            &self.verify_failures,
        );
        c(
            "gem_server_analyze_failures_total",
            "Compiles rejected by the static analyzer or schedule certifier",
            &self.analyze_failures,
        );
        c(
            "gem_server_job_latency_micros_total",
            "Summed queue+execution latency of completed jobs (us)",
            &self.job_latency_micros,
        );
        c(
            "gem_server_cycles_total",
            "Simulated cycles executed for all sessions",
            &self.cycles_total,
        );
        // Same rejections refined by reason, as one labeled family.
        s.push(MetricFamily {
            name: "gem_server_rejected_total".to_string(),
            help: "Backpressure rejections by reason (responses carrying retry_after_ms)"
                .to_string(),
            kind: MetricKind::Counter,
            samples: vec![
                Sample {
                    labels: vec![("reason".to_string(), "queue_full".to_string())],
                    value: Self::get(&self.rejected_queue_full),
                },
                Sample {
                    labels: vec![("reason".to_string(), "shutting_down".to_string())],
                    value: Self::get(&self.rejected_shutting_down),
                },
            ],
        });
        let mut g = |name: &str, help: &str, v: &AtomicU64| {
            s.push_scalar(name, help, MetricKind::Gauge, Self::get(v));
        };
        g(
            "gem_server_connections_active",
            "Currently open connections",
            &self.connections_active,
        );
        g(
            "gem_server_sessions_active",
            "Currently live sessions",
            &self.sessions_active,
        );
        g(
            "gem_server_lanes_active",
            "Total stimulus lanes across live sessions",
            &self.lanes_active,
        );
        g(
            "gem_server_queue_depth",
            "Jobs waiting in the worker-pool queue",
            &self.queue_depth,
        );
        g(
            "gem_server_cache_entries",
            "Resident compile-cache entries",
            &self.cache_entries,
        );
        s.push_histogram(
            "gem_server_request_latency_micros",
            "Per-request wall-clock latency (us) with p50/p95/p99 quantiles",
            &self
                .request_latency_micros
                .lock()
                .unwrap_or_else(|p| p.into_inner()),
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_exports_all_families() {
        let m = ServerMetrics::default();
        inc(&m.requests_total);
        add(&m.cycles_total, 41);
        inc(&m.cycles_total);
        let s = m.snapshot();
        assert_eq!(s.family("gem_server_requests_total").unwrap().total(), 1.0);
        assert_eq!(s.family("gem_server_cycles_total").unwrap().total(), 42.0);
        assert!(s.family("gem_server_queue_depth").is_some());
        // Prometheus export goes through the shared exporter unmodified.
        assert!(s
            .to_prometheus_text()
            .contains("# TYPE gem_server_sessions_active gauge"));
    }

    #[test]
    fn rejection_reasons_export_as_one_labeled_family() {
        let m = ServerMetrics::default();
        inc(&m.rejected_queue_full);
        inc(&m.rejected_queue_full);
        inc(&m.rejected_shutting_down);
        let s = m.snapshot();
        let fam = s.family("gem_server_rejected_total").unwrap();
        assert_eq!(fam.total(), 3.0);
        let text = s.to_prometheus_text();
        assert!(text.contains("gem_server_rejected_total{reason=\"queue_full\"} 2"));
        assert!(text.contains("gem_server_rejected_total{reason=\"shutting_down\"} 1"));
    }

    #[test]
    fn request_latency_quantiles_appear_in_snapshot() {
        let m = ServerMetrics::default();
        for v in [100.0, 200.0, 400.0, 800.0, 10_000.0] {
            m.observe_request_latency(v);
        }
        let s = m.snapshot();
        let fam = s.family("gem_server_request_latency_micros").unwrap();
        for q in ["0.5", "0.95", "0.99"] {
            assert!(
                fam.samples
                    .iter()
                    .any(|smp| smp.labels.iter().any(|(k, v)| k == "quantile" && v == q)),
                "missing p{q}"
            );
        }
        let text = s.to_prometheus_text();
        assert!(text.contains("gem_server_request_latency_micros_count 5"));
        assert!(text.contains("gem_server_request_latency_micros_bucket{le="));
    }
}
