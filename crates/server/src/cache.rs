//! Content-hash-keyed, single-flight LRU cache of compiled designs.
//!
//! The GEM flow splits compile from execute: a compiled design (its
//! bitstream and IO map) is immutable and reusable, so N sessions of the
//! same source
//! should pay for one compile. The cache keys on a content hash of
//! `(source, options)` — not on file names — so identical designs
//! submitted by different clients share an entry and any textual or
//! option change misses.
//!
//! Lookups are *single-flight*: the first thread to miss installs a
//! `Pending` slot and compiles outside the lock; concurrent lookups of
//! the same key block on a condvar and are counted as **hits** when the
//! compile lands (they paid no compile). Failed compiles are cached too
//! (negative caching), so a design that does not parse is rejected once
//! per revision instead of recompiled per request.

use crate::metrics::{inc, ServerMetrics};
use gem_core::{compile_verilog, CompileOptions, Compiled};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// FNV-1a 64-bit over the design source and the compile options.
///
/// The options participate through their canonical `Debug` form — every
/// field of [`CompileOptions`] (and its nested `SynthOptions`) derives
/// `Debug`, so any option change perturbs the key.
pub fn content_hash(source: &str, opts: &CompileOptions) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(source.as_bytes());
    eat(&[0xFF]); // separator: source/options boundary is unambiguous
    eat(format!("{opts:?}").as_bytes());
    h
}

/// A compile outcome held by the cache: the design or the error text.
pub type CacheResult = Result<Arc<Compiled>, String>;

enum Slot {
    /// A thread is compiling this key right now.
    Pending,
    /// Compile finished; `u64` is the LRU tick of the last touch.
    Ready(CacheResult, u64),
}

struct CacheState {
    slots: HashMap<u64, Slot>,
    tick: u64,
}

/// The cache. One instance per server, shared by all connections.
pub struct CompileCache {
    state: Mutex<CacheState>,
    ready: Condvar,
    capacity: usize,
    metrics: Arc<ServerMetrics>,
}

impl std::fmt::Debug for CompileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileCache")
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl CompileCache {
    /// A cache holding at most `capacity` compiled designs (clamped to at
    /// least 1). Eviction is least-recently-used and never removes
    /// `Pending` slots.
    pub fn new(capacity: usize, metrics: Arc<ServerMetrics>) -> Self {
        CompileCache {
            state: Mutex::new(CacheState {
                slots: HashMap::new(),
                tick: 0,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            metrics,
        }
    }

    /// Returns the compiled design for `(source, opts)`, compiling at
    /// most once per key however many threads ask concurrently.
    ///
    /// The second tuple element reports whether this lookup was served
    /// from cache (`true`) or ran the compile itself (`false`).
    pub fn get_or_compile(&self, source: &str, opts: &CompileOptions) -> (u64, CacheResult, bool) {
        let key = content_hash(source, opts);
        inc(&self.metrics.cache_lookups);
        {
            let mut st = self.state.lock().unwrap();
            loop {
                st.tick += 1;
                let tick = st.tick;
                match st.slots.get_mut(&key) {
                    Some(Slot::Ready(res, touched)) => {
                        *touched = tick;
                        inc(&self.metrics.cache_hits);
                        let res = res.clone();
                        return (key, res, true);
                    }
                    Some(Slot::Pending) => {
                        st = self.ready.wait(st).unwrap();
                    }
                    None => {
                        st.slots.insert(key, Slot::Pending);
                        break;
                    }
                }
            }
        }
        // Compile outside the lock; waiters park on the condvar.
        inc(&self.metrics.cache_misses);
        inc(&self.metrics.compiles_total);
        let result: CacheResult = compile_verilog(source, opts)
            .map_err(|e| {
                // A verifier or analyzer rejection is the gate working as
                // designed: count it, and let the Err land in the cache as
                // a negative entry — the malformed (or uncertifiable)
                // artifact itself is dropped here and can never be served.
                match &e {
                    gem_core::CompileError::Verify(_) => inc(&self.metrics.verify_failures),
                    gem_core::CompileError::Analyze(_) => inc(&self.metrics.analyze_failures),
                    _ => {}
                }
                e.to_string()
            })
            .map(Arc::new);
        let mut st = self.state.lock().unwrap();
        st.tick += 1;
        let tick = st.tick;
        st.slots.insert(key, Slot::Ready(result.clone(), tick));
        self.evict_lru(&mut st);
        self.metrics
            .cache_entries
            .store(st.slots.len() as u64, std::sync::atomic::Ordering::Relaxed);
        drop(st);
        self.ready.notify_all();
        (key, result, false)
    }

    /// Evicts least-recently-touched `Ready` slots until within capacity.
    fn evict_lru(&self, st: &mut CacheState) {
        while st.slots.len() > self.capacity {
            let victim = st
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready(_, touched) => Some((*k, *touched)),
                    Slot::Pending => None,
                })
                .min_by_key(|&(_, touched)| touched)
                .map(|(k, _)| k);
            match victim {
                Some(k) => {
                    st.slots.remove(&k);
                    inc(&self.metrics.cache_evictions);
                }
                None => break, // everything in flight; let it overshoot
            }
        }
    }

    /// Resident entry count (ready + pending).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().slots.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    const COUNTER: &str = "
module counter(input clk, input rst, output reg [7:0] q);
  always @(posedge clk) begin
    if (rst) q <= 8'd0;
    else q <= q + 8'd1;
  end
endmodule
";

    fn opts() -> CompileOptions {
        CompileOptions::small()
    }

    #[test]
    fn hash_distinguishes_source_and_options() {
        let a = content_hash(COUNTER, &opts());
        assert_eq!(a, content_hash(COUNTER, &opts()));
        assert_ne!(a, content_hash(&COUNTER.replace("8'd1", "8'd2"), &opts()));
        let mut o2 = opts();
        o2.core_width *= 2;
        assert_ne!(a, content_hash(COUNTER, &o2));
    }

    #[test]
    fn second_lookup_hits() {
        let m = Arc::new(ServerMetrics::default());
        let cache = CompileCache::new(4, Arc::clone(&m));
        let (k1, r1, cached1) = cache.get_or_compile(COUNTER, &opts());
        assert!(r1.is_ok() && !cached1);
        let (k2, r2, cached2) = cache.get_or_compile(COUNTER, &opts());
        assert!(r2.is_ok() && cached2);
        assert_eq!(k1, k2);
        assert_eq!(m.compiles_total.load(Ordering::Relaxed), 1);
        assert_eq!(m.cache_lookups.load(Ordering::Relaxed), 2);
        assert_eq!(
            m.cache_hits.load(Ordering::Relaxed) + m.cache_misses.load(Ordering::Relaxed),
            2
        );
    }

    #[test]
    fn concurrent_same_key_compiles_once() {
        let m = Arc::new(ServerMetrics::default());
        let cache = Arc::new(CompileCache::new(4, Arc::clone(&m)));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let (_, r, _) = cache.get_or_compile(COUNTER, &CompileOptions::small());
                    assert!(r.is_ok());
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.compiles_total.load(Ordering::Relaxed), 1);
        assert_eq!(m.cache_lookups.load(Ordering::Relaxed), 8);
        assert_eq!(m.cache_misses.load(Ordering::Relaxed), 1);
        assert_eq!(m.cache_hits.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn lru_evicts_oldest() {
        let m = Arc::new(ServerMetrics::default());
        let cache = CompileCache::new(2, Arc::clone(&m));
        let v1 = COUNTER.to_string();
        let v2 = COUNTER.replace("8'd1", "8'd2");
        let v3 = COUNTER.replace("8'd1", "8'd3");
        assert!(cache.get_or_compile(&v1, &opts()).1.is_ok());
        assert!(cache.get_or_compile(&v2, &opts()).1.is_ok());
        // Touch v1; v2 is now LRU.
        assert!(cache.get_or_compile(&v1, &opts()).1.is_ok());
        // Evicts v2.
        assert!(cache.get_or_compile(&v3, &opts()).1.is_ok());
        assert_eq!(cache.len(), 2);
        assert_eq!(m.cache_evictions.load(Ordering::Relaxed), 1);
        let (_, _, cached) = cache.get_or_compile(&v1, &opts());
        assert!(cached, "v1 must have survived eviction");
        let (_, _, cached) = cache.get_or_compile(&v2, &opts());
        assert!(!cached, "v2 must have been evicted");
    }

    #[test]
    fn analyzer_rejections_are_negative_cached_and_counted() {
        let m = Arc::new(ServerMetrics::default());
        let cache = CompileCache::new(4, Arc::clone(&m));
        let looped = "
module looped(input a, output y);
  wire fb;
  assign fb = fb & a;
  assign y = ~fb;
endmodule
";
        let (_, r1, cached1) = cache.get_or_compile(looped, &opts());
        let err = r1.expect_err("combinational loop must be rejected");
        assert!(!cached1);
        assert!(err.contains("static analysis failed"), "{err}");
        assert!(err.contains("GEM-L001"), "names the lint: {err}");
        assert!(err.contains("fb"), "names the looped net: {err}");
        let (_, r2, cached2) = cache.get_or_compile(looped, &opts());
        assert!(r2.is_err() && cached2, "negative entry served from cache");
        assert_eq!(m.compiles_total.load(Ordering::Relaxed), 1);
        assert_eq!(m.analyze_failures.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn compile_errors_are_negative_cached() {
        let m = Arc::new(ServerMetrics::default());
        let cache = CompileCache::new(4, Arc::clone(&m));
        let bad = "module broken(input clk, output w); endmodule garbage";
        let (_, r1, cached1) = cache.get_or_compile(bad, &opts());
        assert!(r1.is_err() && !cached1);
        let (_, r2, cached2) = cache.get_or_compile(bad, &opts());
        assert!(r2.is_err() && cached2);
        assert_eq!(m.compiles_total.load(Ordering::Relaxed), 1);
    }
}
