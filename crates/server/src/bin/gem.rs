//! `gem` — command-line front end for the GEM flow.
//!
//! ```text
//! gem compile <design.v> [-o out.gemb] [--width N] [--parts N] [--stages N]
//! gem run     <design.gemb|design.v> [--cycles N] [--poke port=hex ...]
//!             [--reset port] [--stimulus in.vcd] [--vcd out.vcd]
//!             [--gpu a100|3090]
//! gem stats   <design.v>            # Table-I style report
//! gem lint    <design.v|design.gemb> [--json] [--deny warnings]
//! gem serve   [--addr host:port] [--workers N] [--queue N] [--cache N]
//!             [--idle-ms N] [--port-file path]
//! gem client  --addr host:port <action> [...]
//! ```
//!
//! `compile` parses the synthesizable-Verilog subset, runs the full flow
//! (synthesis → partitioning → placement → bitstream) and writes a
//! self-contained `.gemb` package. `run` executes a package (or compiles
//! a Verilog file on the fly) on the virtual GPU, printing outputs each
//! cycle, optionally dumping a VCD and reporting the modeled simulation
//! speed. `serve` starts the multi-session simulation service
//! (`docs/SERVER.md`); `client` drives one against a running server.

use gem_analyze::Severity;
use gem_core::{
    compile, CompileOptions, ExecBackend, GemSimulator, Package, ProfileOptions, VcdStimulus,
};
use gem_netlist::vcd::VcdWriter;
use gem_netlist::{verilog, Bits};
use gem_server::{ClientError, GemClient, Server, ServerConfig};
use gem_telemetry::span::{self, TraceCollector};
use gem_telemetry::{validate_chrome_trace, Json};
use gem_vgpu::{GpuSpec, TimingModel};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("run") => traced(&args[1..], cmd_run),
        Some("stats") => cmd_stats(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("profile") => traced(&args[1..], cmd_profile),
        Some("trace-check") => cmd_trace_check(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
gem — GPU-accelerated emulator-inspired RTL simulation

USAGE:
  gem compile <design.v> [-o out.gemb] [--width N] [--parts N] [--stages N]
              [--emit-metrics out.json]
  gem run     <design.gemb|design.v> [--cycles N] [--poke port=hex ...]
              [--reset port] [--stimulus in.vcd] [--vcd out.vcd]
              [--gpu a100|3090] [--threads N] [--backend interpreted|compiled]
              [--emit-metrics out.json] [--trace-out trace.json]
  gem stats   <design.v> [--emit-metrics out.json]
  gem lint    <design.v|design.gemb> [--json] [--deny warnings]
              [--width N] [--parts N] [--stages N] [--fault SEED]
              [--emit-metrics out.json]
  gem verify  <design.gemb|design.v> [--width N] [--parts N] [--stages N]
              [--fault SEED] [--emit-metrics out.json]
  gem profile <design.v> [--cycles N] [--threads N]
              [--backend interpreted|compiled]
              [--gpu a100|3090] [--width N] [--parts N] [--stages N]
              [--json out.json] [--trace-out trace.json]
  gem trace-check <trace.json>
  gem serve   [--addr 127.0.0.1:0] [--workers 4] [--queue 32] [--cache 8]
              [--idle-ms 300000] [--sim-threads N]
              [--sim-backend interpreted|compiled] [--port-file path]
              [--emit-metrics out.json]
  gem client  --addr host:port <action>
      ping     [--delay-ms N]
      compile  <design.v> [--width N] [--parts N] [--stages N]
      open     <design.v> [--width N] [--parts N] [--stages N]
      poke     --session N --port name --value hex
      peek     --session N --port name
      step     --session N [--cycles N] [--poke port=hex ...]
      replay   --session N --stimulus in.vcd [--vcd out.vcd]
      profile  <design.v> [--cycles N] [--width N] [--parts N] [--stages N]
      close    --session N
      stats | shutdown

--threads picks the virtual GPU's execution-engine width (0 = auto:
GEM_THREADS env var, else host parallelism; 1 = serial). Waveforms and
counters are identical for every setting. --sim-threads is the same
knob per server session (0 = auto-budgeted against --workers).

--backend picks the execution engine: `interpreted` re-decodes the
boomerang program every cycle; `compiled` runs the pre-resolved
threaded-code form (docs/COMPILED.md) — same waveforms, same counters,
faster wall clock. Default: GEM_BACKEND env var, else interpreted.
--sim-backend is the per-server-session default; clients can override
it with the `backend` open option.

--emit-metrics writes a JSON document with the per-stage compile
timings/sizes (when the design is compiled in this invocation) and the
per-partition runtime counters (when it is run). For `serve` it writes
the gem_server_* families after shutdown; for `verify` it writes the
gem_verify_* families.

`lint` runs the whole-program static analyzer (docs/ANALYZE.md).
On Verilog source it prints every netlist diagnostic (comb loops with
the cycle named, undriven/multiply-driven nets, width mismatches, dead
and constant cones) and, when the netlist is error-free, compiles to
attach the schedule happens-before certificate. On a `.gemb` package
it re-checks the stored certificate against the bitstream. Exit is
nonzero on any error-severity finding; --deny warnings extends that to
warnings (the CI gate). --fault SEED (packages only) injects a seeded
schedule-race mutation first — the command must then FAIL.

`verify` runs the static bitstream checker (docs/VERIFY.md) over a
package or a freshly compiled design, prints a per-check table, and
exits nonzero on any violation. --fault SEED injects a seeded mutation
first (the command must then FAIL — a gate self-test).

`profile` compiles (or loads) a design, runs it for --cycles cycles,
and prints hotspot attribution: time by partition, by boomerang layer,
and per-stage barrier costs (docs/OBSERVABILITY.md §6).

--trace-out records every span the invocation produces (compile
stages, per-cycle execution, per-core work, barriers) and writes a
Chrome-trace JSON file loadable in Perfetto (ui.perfetto.dev) or
chrome://tracing. `trace-check` validates such a file: well-formed
JSON, balanced begin/end pairs, monotonic per-thread timestamps.
";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_u64(args: &[String], name: &str, default: u64) -> Result<u64, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{name} expects a number, got {v:?}")),
    }
}

/// Parses an optional backend flag (`--backend` / `--sim-backend`).
/// Absent → `None`, letting the caller fall back to the process default
/// (`GEM_BACKEND`, else interpreted).
fn flag_backend(args: &[String], name: &str) -> Result<Option<ExecBackend>, String> {
    match flag(args, name) {
        None => Ok(None),
        Some(v) => ExecBackend::parse(&v)
            .map(Some)
            .ok_or_else(|| format!("{name} expects \"interpreted\" or \"compiled\", got {v:?}")),
    }
}

/// Writes the `--emit-metrics` document if the flag is present:
/// compile-side metrics (report + flow timings) when available, plus the
/// runtime counter snapshot when a simulation ran.
fn emit_metrics(
    args: &[String],
    compile_side: Option<Json>,
    sim: Option<&GemSimulator>,
) -> Result<(), String> {
    let Some(path) = flag(args, "--emit-metrics") else {
        return Ok(());
    };
    let mut doc = compile_side.unwrap_or_else(Json::object);
    if let Some(sim) = sim {
        doc.set("runtime", sim.metrics().to_json());
    }
    std::fs::write(&path, doc.to_string_pretty())
        .map_err(|e| format!("cannot write {path:?}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// Runs a subcommand under `--trace-out`: installs a span collector
/// first (so compile and execution spans are captured), exports the
/// Chrome-trace file after — even when the command itself failed, so a
/// crash still leaves a timeline to inspect.
fn traced(args: &[String], cmd: fn(&[String]) -> Result<(), String>) -> Result<(), String> {
    let Some(path) = flag(args, "--trace-out") else {
        return cmd(args);
    };
    let collector = TraceCollector::arc();
    span::install(Arc::clone(&collector));
    let result = cmd(args);
    span::uninstall();
    let doc = collector.export_chrome_trace();
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .map_or(0, |a| a.len());
    let write = std::fs::write(&path, doc.to_string_pretty())
        .map_err(|e| format!("cannot write {path:?}: {e}"));
    if write.is_ok() {
        println!("wrote {path} ({events} trace events)");
    }
    result.and(write)
}

fn positional(args: &[String]) -> Result<&String, String> {
    args.iter()
        .find(|a| !a.starts_with("--") && !a.starts_with('-'))
        .ok_or_else(|| "missing input file".to_string())
}

fn compile_verilog(path: &str, args: &[String]) -> Result<gem_core::Compiled, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let opts = CompileOptions {
        core_width: flag_u64(args, "--width", 2048)? as u32,
        target_parts: flag_u64(args, "--parts", 8)? as usize,
        stages: flag_u64(args, "--stages", 1)? as usize,
        ..Default::default()
    };
    // The analyzing front end rejects broken designs with named
    // witnesses (e.g. a combinational loop's cycle) instead of an
    // opaque levelization failure deep in synthesis.
    gem_core::compile_verilog(&src, &opts).map_err(|e| format!("{path}: compilation failed: {e}"))
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let input = positional(args)?;
    let compiled = compile_verilog(input, args)?;
    let out = flag(args, "-o").unwrap_or_else(|| {
        std::path::Path::new(input)
            .with_extension("gemb")
            .to_string_lossy()
            .into_owned()
    });
    let pkg = Package::from_compiled(&compiled);
    std::fs::write(&out, pkg.to_bytes()).map_err(|e| format!("cannot write {out:?}: {e}"))?;
    let r = &compiled.report;
    println!(
        "{input}: {} gates / {} levels → {} stage(s), {} partition(s), {} layer(s)",
        r.gates, r.levels, r.stages, r.parts, r.layers
    );
    println!("wrote {out} ({} bytes)", r.bitstream_bytes);
    emit_metrics(args, Some(compiled.metrics_json()), None)
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let input = positional(args)?;
    let compiled = compile_verilog(input, args)?;
    let r = &compiled.report;
    println!("design:            {input}");
    println!("E-AIG gates:       {}", r.gates);
    println!("logic levels:      {}", r.levels);
    println!("pipeline stages:   {}", r.stages);
    println!("boomerang layers:  {}", r.layers);
    println!("partitions:        {}", r.parts);
    println!("RAM blocks:        {}", r.ram_blocks);
    println!("polyfilled bits:   {}", r.polyfilled_mem_bits);
    println!("replication cost:  {:.2}%", r.replication_cost * 100.0);
    println!("bitstream size:    {} bytes", r.bitstream_bytes);
    emit_metrics(args, Some(compiled.metrics_json()), None)
}

/// `gem lint`: whole-program static analysis. Verilog source runs the
/// netlist lint passes and (when error-free) a full compile to attach
/// the schedule happens-before certificate; a `.gemb` package re-checks
/// its stored certificate against the bitstream. Error-severity
/// findings exit nonzero; `--deny warnings` extends that to warnings.
fn cmd_lint(args: &[String]) -> Result<(), String> {
    let input = positional(args)?;
    let json_mode = args.iter().any(|a| a == "--json");
    let deny_floor = match flag(args, "--deny").as_deref() {
        None => None,
        Some("warnings") => Some(Severity::Warning),
        Some(other) => return Err(format!("--deny expects \"warnings\", got {other:?}")),
    };

    let diagnostics: Vec<gem_analyze::Diagnostic>;
    let summary: String;
    let mut certified = false;
    let mut cert_line: Option<String> = None;
    let mut analysis: Option<gem_analyze::AnalysisReport> = None;
    let mut compile_error: Option<String> = None;
    let metrics_doc: Json;

    if input.ends_with(".gemb") {
        let bytes = std::fs::read(input).map_err(|e| format!("cannot read {input:?}: {e}"))?;
        let pkg = Package::from_bytes(&bytes).map_err(|e| e.to_string())?;
        let fault = flag_u64(args, "--fault", 0)?;
        let bitstream = if fault != 0 {
            // Drill specifically against the happens-before checker:
            // both race classes must be killed by the schedule family.
            gem_isa::mutate::corrupt_from(
                &pkg.bitstream,
                fault,
                &[
                    gem_isa::mutate::MutationClass::MsgBeforeProducer,
                    gem_isa::mutate::MutationClass::DualWriterSameSlot,
                ],
            )
        } else {
            pkg.bitstream.clone()
        };
        let mut ctx = gem_core::verify::context(&pkg.device, &pkg.io, None);
        ctx.schedule_cert = pkg.schedule_cert.as_ref();
        let report = gem_isa::verify_bitstream(&bitstream, &ctx);
        let schedule: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.check == "schedule")
            .cloned()
            .collect();
        let other = report.violations.len() - schedule.len();
        if other > 0 {
            compile_error = Some(format!("{other} non-schedule verifier violation(s)"));
        }
        diagnostics = gem_analyze::diagnostics_from_violations(&schedule);
        certified = report.passed() && pkg.schedule_cert.is_some();
        cert_line = pkg.schedule_cert.as_ref().map(|c| c.summary());
        summary = format!("package re-check: {}", report.summary());
        metrics_doc = gem_core::verify_metrics(&report).to_json();
    } else {
        if flag(args, "--fault").is_some() {
            return Err(
                "--fault drills need a .gemb package (compile one with `gem compile`)".into(),
            );
        }
        let src =
            std::fs::read_to_string(input).map_err(|e| format!("cannot read {input:?}: {e}"))?;
        let (module, lints) =
            verilog::parse_with_lints(&src).map_err(|e| format!("{input}: {e}"))?;
        let report = gem_analyze::analyze_with_lints(&module, &lints);
        diagnostics = report.diagnostics.clone();
        summary = report.summary();
        if report.clean(Severity::Error) {
            let opts = CompileOptions {
                core_width: flag_u64(args, "--width", 2048)? as u32,
                target_parts: flag_u64(args, "--parts", 8)? as usize,
                stages: flag_u64(args, "--stages", 1)? as usize,
                ..Default::default()
            };
            match compile(&module, &opts) {
                Ok(c) => {
                    certified = c.report.certified;
                    cert_line = c.schedule_cert.as_ref().map(|x| x.summary());
                }
                Err(e) => compile_error = Some(e.to_string()),
            }
        }
        metrics_doc = gem_analyze::analyze_metrics(&report).to_json();
        analysis = Some(report);
    }

    if json_mode {
        let mut doc = Json::object();
        doc.set(
            "diagnostics",
            Json::Array(
                diagnostics
                    .iter()
                    .map(|d| {
                        let mut o = Json::object();
                        o.set("code", d.code);
                        o.set("severity", d.severity.name());
                        o.set("message", d.message.clone());
                        o.set("witness", d.witness.clone());
                        o
                    })
                    .collect(),
            ),
        );
        doc.set("summary", summary.clone());
        doc.set(
            "clean",
            diagnostics.iter().all(|d| d.severity < Severity::Warning),
        );
        doc.set("certified", certified);
        if let Some(c) = &cert_line {
            doc.set("cert", c.clone());
        }
        if let Some(e) = &compile_error {
            doc.set("compile_error", e.clone());
        }
        println!("{}", doc.to_string_pretty());
    } else {
        println!("design:   {input}");
        if let Some(r) = &analysis {
            println!("{:<12} {:>9} {:>12}", "pass", "findings", "wall");
            for p in &r.passes {
                println!(
                    "{:<12} {:>9} {:>9.2} µs",
                    p.name,
                    p.diagnostics,
                    p.wall_ns as f64 / 1e3
                );
            }
        }
        for d in &diagnostics {
            println!("  {d}");
        }
        println!("summary:  {summary}");
        match &cert_line {
            Some(c) => println!("schedule: {c}"),
            None => println!("schedule: no certificate"),
        }
        if let Some(e) = &compile_error {
            println!("compile:  {e}");
        }
    }
    if let Some(path) = flag(args, "--emit-metrics") {
        std::fs::write(&path, metrics_doc.to_string_pretty())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        // Stderr so `--json` stdout stays machine-parseable.
        eprintln!("wrote {path}");
    }

    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    if errors > 0 {
        return Err(format!("FAIL: {errors} error-severity finding(s)"));
    }
    if let Some(e) = compile_error {
        return Err(format!(
            "FAIL: analysis clean but compile/certification failed: {e}"
        ));
    }
    if let Some(floor) = deny_floor {
        let denied = diagnostics.iter().filter(|d| d.severity >= floor).count();
        if denied > 0 {
            return Err(format!(
                "FAIL (--deny warnings): {denied} finding(s) at or above warning severity"
            ));
        }
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let input = positional(args)?;
    let fault = flag_u64(args, "--fault", 0)?;
    // Packages carry no placement metadata, so the merge check is
    // skipped for `.gemb` inputs; fresh compiles run all six checks.
    let report = if input.ends_with(".gemb") {
        let bytes = std::fs::read(input).map_err(|e| format!("cannot read {input:?}: {e}"))?;
        let pkg = Package::from_bytes(&bytes).map_err(|e| e.to_string())?;
        let bitstream = if fault != 0 {
            // Packages carry no placement metadata, so restrict the
            // injection to classes detectable without the merge check.
            gem_isa::mutate::corrupt_from(
                &pkg.bitstream,
                fault,
                &gem_isa::mutate::PROGRAM_FREE_CLASSES,
            )
        } else {
            pkg.bitstream.clone()
        };
        gem_core::verify(&bitstream, &pkg.device, &pkg.io, None)
    } else {
        let src =
            std::fs::read_to_string(input).map_err(|e| format!("cannot read {input:?}: {e}"))?;
        let module = verilog::parse(&src).map_err(|e| format!("{input}: {e}"))?;
        // The in-flow gate is off: this command IS the verifier run, and
        // it reports per-check detail instead of a compile error.
        let opts = CompileOptions {
            core_width: flag_u64(args, "--width", 2048)? as u32,
            target_parts: flag_u64(args, "--parts", 8)? as usize,
            stages: flag_u64(args, "--stages", 1)? as usize,
            verify: false,
            verify_fault: fault,
            ..Default::default()
        };
        let compiled = compile(&module, &opts).map_err(|e| format!("compilation failed: {e}"))?;
        compiled.verify()
    };

    println!("design:  {input} ({} cores)", report.cores);
    println!("{:<12} {:>10} {:>12}", "check", "violations", "wall");
    for c in &report.checks {
        println!(
            "{:<12} {:>10} {:>9.2} µs",
            c.name,
            c.violations,
            c.wall_ns as f64 / 1e3
        );
    }
    for v in &report.violations {
        println!("  {v}");
    }
    if let Some(path) = flag(args, "--emit-metrics") {
        let doc = gem_core::verify_metrics(&report).to_json();
        std::fs::write(&path, doc.to_string_pretty())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        println!("wrote {path}");
    }
    if report.passed() {
        println!("PASS: all {} checks clean", report.checks.len());
        Ok(())
    } else {
        Err(format!(
            "FAIL: {} violation(s) across {} check(s)",
            report.total_violations(),
            report.checks.iter().filter(|c| c.violations > 0).count()
        ))
    }
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let input = positional(args)?;
    if input.ends_with(".gemb") {
        return Err("profile needs design source (.v): packages carry no placement metadata for partition attribution".into());
    }
    let compiled = compile_verilog(input, args)?;
    let opts = ProfileOptions {
        cycles: flag_u64(args, "--cycles", 256)?,
        threads: flag_u64(args, "--threads", 0)? as usize,
        backend: flag_backend(args, "--backend")?,
        spec: match flag(args, "--gpu").as_deref() {
            Some("3090" | "rtx3090") => GpuSpec::rtx3090(),
            _ => GpuSpec::a100(),
        },
    };
    let report = gem_core::profile(&compiled, input, &opts)
        .map_err(|e| format!("profile run failed: {e}"))?;
    print!("{}", report.render_table());
    if let Some(path) = flag(args, "--json") {
        std::fs::write(&path, report.to_json().to_string_pretty())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_trace_check(args: &[String]) -> Result<(), String> {
    let input = positional(args)?;
    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input:?}: {e}"))?;
    let doc =
        gem_telemetry::parse_json(&text).map_err(|e| format!("{input}: invalid JSON: {e}"))?;
    let summary = validate_chrome_trace(&doc).map_err(|e| format!("{input}: {e}"))?;
    println!(
        "{input}: OK — {} events ({} spans, {} complete, {} instants) on {} thread(s), {:.3} ms span",
        summary.events,
        summary.spans,
        summary.complete,
        summary.instants,
        summary.threads,
        summary.max_ts_micros / 1e3
    );
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let input = positional(args)?;
    let cycles = flag_u64(args, "--cycles", 16)?;
    let (mut sim, io, compile_doc) = if input.ends_with(".gemb") {
        let bytes = std::fs::read(input).map_err(|e| format!("cannot read {input:?}: {e}"))?;
        let pkg = Package::from_bytes(&bytes).map_err(|e| e.to_string())?;
        let io = pkg.io.clone();
        let mut doc = Json::object();
        doc.set("report", pkg.report.to_json());
        let sim = pkg
            .into_simulator()
            .map_err(|e| format!("package rejected: {e}"))?;
        (sim, io, doc)
    } else {
        let compiled = compile_verilog(input, args)?;
        let io = compiled.io.clone();
        let doc = compiled.metrics_json();
        let sim = GemSimulator::new(&compiled).map_err(|e| format!("load failed: {e}"))?;
        (sim, io, doc)
    };
    sim.set_threads(flag_u64(args, "--threads", 0)? as usize);
    if let Some(backend) = flag_backend(args, "--backend")? {
        sim.set_backend(backend);
    }
    // Pokes: --poke name=hex (applied every cycle).
    let mut pokes: Vec<(String, Bits)> = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == "--poke" {
            let spec = args
                .get(i + 1)
                .ok_or_else(|| "--poke expects port=hexvalue".to_string())?;
            let (name, val) = spec
                .split_once('=')
                .ok_or_else(|| format!("bad poke {spec:?}, expected port=hexvalue"))?;
            let port = io
                .input(name)
                .ok_or_else(|| format!("no input port named {name:?}"))?;
            let v = u64::from_str_radix(val.trim_start_matches("0x"), 16)
                .map_err(|_| format!("bad hex value in {spec:?}"))?;
            pokes.push((name.to_string(), Bits::from_u64(v, port.bits.len() as u32)));
        }
    }
    let mut vcd = flag(args, "--vcd").map(|path| {
        let mut w = VcdWriter::new("gem");
        let vars: Vec<_> = io
            .outputs
            .iter()
            .map(|p| (p.name.clone(), w.add_var(&p.name, p.bits.len() as u32)))
            .collect();
        w.begin();
        (path, w, vars)
    });
    for (name, v) in &pokes {
        sim.set_input(name, v.clone());
    }
    // Optional one-cycle reset pulse before the measured window.
    if let Some(rst) = flag(args, "--reset") {
        let port = io
            .input(&rst)
            .ok_or_else(|| format!("no input port named {rst:?} for --reset"))?;
        sim.set_input(&rst, Bits::ones(port.bits.len() as u32));
        sim.step();
        sim.set_input(&rst, Bits::zeros(port.bits.len() as u32));
    }
    println!(
        "cycle  {}",
        io.outputs
            .iter()
            .map(|p| format!("{:>12}", p.name))
            .collect::<String>()
    );
    // Waveform-driven run replaces the free-running loop.
    if let Some(path) = flag(args, "--stimulus") {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        let stim = VcdStimulus::new(&text, &io).map_err(|e| e.to_string())?;
        let outs = stim.replay(&mut sim);
        for (c, cycle_outs) in outs.iter().enumerate() {
            let row: String = cycle_outs
                .iter()
                .map(|(_, v)| format!("{:>12}", v.to_u64()))
                .collect();
            println!("{c:>5}  {row}");
            if let Some((_, w, vars)) = vcd.as_mut() {
                w.timestamp(c as u64);
                for ((_, var), (_, v)) in vars.iter().zip(cycle_outs) {
                    w.change(*var, v);
                }
            }
        }
        if let Some((path, w, _)) = vcd {
            std::fs::write(&path, w.finish()).map_err(|e| format!("cannot write {path:?}: {e}"))?;
            println!("wrote {path}");
        }
        if sim.counters().cycles > 0 {
            let hz = TimingModel::new(GpuSpec::a100()).hz_total(sim.counters());
            println!("modeled speed on A100: {hz:.0} simulated cycles/second");
        }
        return emit_metrics(args, Some(compile_doc), Some(&sim));
    }
    for c in 0..cycles {
        sim.step();
        let row: String = io
            .outputs
            .iter()
            .map(|p| format!("{:>12}", sim.output(&p.name).to_u64()))
            .collect();
        println!("{c:>5}  {row}");
        if let Some((_, w, vars)) = vcd.as_mut() {
            w.timestamp(c);
            for (name, var) in vars.iter() {
                w.change(*var, &sim.output(name));
            }
        }
    }
    if let Some((path, w, _)) = vcd {
        std::fs::write(&path, w.finish()).map_err(|e| format!("cannot write {path:?}: {e}"))?;
        println!("wrote {path}");
    }
    // Modeled speed (hz_total is zero-safe; skip the line when no cycles
    // ran rather than reporting a meaningless 0 Hz).
    if sim.counters().cycles > 0 {
        let gpu = flag(args, "--gpu").unwrap_or_else(|| "a100".into());
        let spec = match gpu.as_str() {
            "3090" | "rtx3090" => GpuSpec::rtx3090(),
            _ => GpuSpec::a100(),
        };
        let hz = TimingModel::new(spec.clone()).hz_total(sim.counters());
        println!(
            "modeled speed on {}: {:.0} simulated cycles/second",
            spec.name, hz
        );
    }
    emit_metrics(args, Some(compile_doc), Some(&sim))
}

// ------------------------------------------------------------- serving --

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let cfg = ServerConfig {
        addr: flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:0".into()),
        workers: flag_u64(args, "--workers", 4)? as usize,
        queue: flag_u64(args, "--queue", 32)? as usize,
        cache: flag_u64(args, "--cache", 8)? as usize,
        idle_timeout: Duration::from_millis(flag_u64(args, "--idle-ms", 300_000)?),
        sim_threads: flag_u64(args, "--sim-threads", 0)? as usize,
        sim_backend: flag_backend(args, "--sim-backend")?,
        ..ServerConfig::default()
    };
    let server = Server::bind(cfg).map_err(|e| format!("cannot bind: {e}"))?;
    let addr = server.local_addr();
    let metrics = server.metrics();
    println!("listening on {addr}");
    if let Some(path) = flag(args, "--port-file") {
        // The port file carries the resolved address, so scripts binding
        // port 0 can discover where the server actually listens.
        std::fs::write(&path, format!("{addr}\n"))
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
    }
    server.run().map_err(|e| format!("server failed: {e}"))?;
    if let Some(path) = flag(args, "--emit-metrics") {
        std::fs::write(&path, metrics.snapshot().to_json().to_string_pretty())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        println!("wrote {path}");
    }
    println!("server stopped");
    Ok(())
}

// -------------------------------------------------------------- client --

fn client_opts(args: &[String]) -> Result<Json, String> {
    let mut o = Json::object();
    o.set("width", flag_u64(args, "--width", 2048)?);
    o.set("parts", flag_u64(args, "--parts", 8)?);
    o.set("stages", flag_u64(args, "--stages", 1)?);
    Ok(o)
}

fn client_err(e: ClientError) -> String {
    e.to_string()
}

fn cmd_client(args: &[String]) -> Result<(), String> {
    let addr =
        flag(args, "--addr").ok_or_else(|| "client requires --addr host:port".to_string())?;
    let action = args
        .iter()
        .find(|a| !a.starts_with('-') && **a != addr)
        .ok_or_else(|| format!("missing client action\n{USAGE}"))?
        .clone();
    let rest: Vec<String> = args
        .iter()
        .skip_while(|a| **a != action)
        .skip(1)
        .cloned()
        .collect();
    let mut client =
        GemClient::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    match action.as_str() {
        "ping" => {
            client
                .ping(flag_u64(&rest, "--delay-ms", 0)?)
                .map_err(client_err)?;
            println!("pong");
        }
        "compile" | "open" => {
            let file = positional(&rest)?;
            let src =
                std::fs::read_to_string(file).map_err(|e| format!("cannot read {file:?}: {e}"))?;
            let opts = client_opts(&rest)?;
            let resp = if action == "open" {
                client.open(&src, opts).map_err(client_err)?
            } else {
                client.compile(&src, opts).map_err(client_err)?
            };
            if let Some(s) = resp.get("session").and_then(Json::as_u64) {
                println!("session {s}");
            }
            println!(
                "key {} cached {}",
                resp.get("key").and_then(Json::as_str).unwrap_or("?"),
                resp.get("cached").and_then(Json::as_bool).unwrap_or(false),
            );
        }
        "poke" => {
            let session = flag_u64(&rest, "--session", 0)?;
            let port = flag(&rest, "--port").ok_or("poke requires --port")?;
            let value = flag(&rest, "--value").ok_or("poke requires --value")?;
            client.poke(session, &port, &value).map_err(client_err)?;
            println!("ok");
        }
        "peek" => {
            let session = flag_u64(&rest, "--session", 0)?;
            let port = flag(&rest, "--port").ok_or("peek requires --port")?;
            let v = client.peek(session, &port).map_err(client_err)?;
            println!("{port} = 0x{v}");
        }
        "step" => {
            let session = flag_u64(&rest, "--session", 0)?;
            let cycles = flag_u64(&rest, "--cycles", 1)?;
            let mut pokes = Vec::new();
            for (i, a) in rest.iter().enumerate() {
                if a == "--poke" {
                    let spec = rest
                        .get(i + 1)
                        .ok_or_else(|| "--poke expects port=hexvalue".to_string())?;
                    let (name, val) = spec
                        .split_once('=')
                        .ok_or_else(|| format!("bad poke {spec:?}"))?;
                    pokes.push((name, val));
                }
            }
            let resp = client.step(session, cycles, pokes).map_err(client_err)?;
            println!(
                "cycle {}",
                resp.get("cycle").and_then(Json::as_u64).unwrap_or(0)
            );
            if let Some(Json::Object(outs)) = resp.get("outputs") {
                for (name, v) in outs {
                    println!("  {name} = 0x{}", v.as_str().unwrap_or("?"));
                }
            }
        }
        "replay" => {
            let session = flag_u64(&rest, "--session", 0)?;
            let path = flag(&rest, "--stimulus").ok_or("replay requires --stimulus in.vcd")?;
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
            let resp = client.replay(session, &text).map_err(client_err)?;
            println!(
                "replayed {} cycle(s)",
                resp.get("cycles").and_then(Json::as_u64).unwrap_or(0)
            );
            if let Some(out) = flag(&rest, "--vcd") {
                let text = resp.get("vcd").and_then(Json::as_str).unwrap_or_default();
                std::fs::write(&out, text).map_err(|e| format!("cannot write {out:?}: {e}"))?;
                println!("wrote {out}");
            }
        }
        "profile" => {
            let file = positional(&rest)?;
            let src =
                std::fs::read_to_string(file).map_err(|e| format!("cannot read {file:?}: {e}"))?;
            let opts = client_opts(&rest)?;
            let cycles = flag_u64(&rest, "--cycles", 256)?;
            let resp = client.profile(&src, opts, cycles).map_err(client_err)?;
            print!("{}", resp.get("table").and_then(Json::as_str).unwrap_or(""));
        }
        "close" => {
            client
                .close(flag_u64(&rest, "--session", 0)?)
                .map_err(client_err)?;
            println!("closed");
        }
        "stats" => {
            let resp = client.stats().map_err(client_err)?;
            println!("{}", resp.to_string_pretty());
        }
        "shutdown" => {
            client.shutdown().map_err(client_err)?;
            println!("server shutting down");
        }
        other => return Err(format!("unknown client action {other:?}\n{USAGE}")),
    }
    Ok(())
}
