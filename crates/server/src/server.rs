//! The TCP server: accept loop, connection handlers, and the command
//! dispatcher.
//!
//! Threading model, smallest to largest scope:
//!
//! * **one thread per connection** reads frames and answers cheap
//!   control commands (`poke`, `peek`, `close`, `stats`) inline;
//! * **heavy commands** (`compile`, `open`, `step`, `replay`, delayed
//!   `ping`) are offered to the shared [`WorkerPool`]; a full queue turns
//!   into a `busy` response with a `retry_after_ms` hint instead of a
//!   blocked handler;
//! * **one reaper thread** evicts sessions idle past the configured
//!   timeout;
//! * the **accept loop** owns everything and joins all of it on
//!   `shutdown`, so `Server::run` returning means no thread of this
//!   server is left behind.

use crate::cache::CompileCache;
use crate::metrics::{dec, inc, ServerMetrics};
use crate::pool::{SubmitError, WorkerPool};
use crate::protocol::{self, codes};
use crate::session::SessionTable;
use gem_core::{CompileOptions, ExecBackend, GemSimulator, ProfileOptions, VcdStimulus};
use gem_netlist::vcd::VcdWriter;
use gem_telemetry::span;
use gem_telemetry::{read_frame, write_frame, FrameError, Json, DEFAULT_MAX_FRAME};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads executing simulation jobs.
    pub workers: usize,
    /// Bounded job-queue capacity (beyond-running jobs waiting).
    pub queue: usize,
    /// Compiled designs kept in the LRU cache.
    pub cache: usize,
    /// Sessions idle longer than this are evicted.
    pub idle_timeout: Duration,
    /// Largest accepted/emitted frame payload, bytes.
    pub max_frame: usize,
    /// How often the reaper scans for idle sessions.
    pub reap_interval: Duration,
    /// Worker threads *inside each session's* virtual-GPU execution
    /// engine. `0` (the default) budgets automatically: the process-wide
    /// thread target (`GEM_THREADS`, else host parallelism) divided by
    /// `workers`, floored at 1 — so `workers` concurrently stepping
    /// sessions together use about the host's parallelism instead of
    /// oversubscribing it `workers`-fold (see docs/PARALLEL.md §4).
    /// `1` forces the serial engine.
    pub sim_threads: usize,
    /// Execution backend new sessions start under. `None` (the default)
    /// defers to the process default (`GEM_BACKEND`, else interpreted);
    /// clients can still override per session with the `backend` open
    /// option. Purely a host-side engine choice — waveforms and counters
    /// are bit-identical either way (docs/COMPILED.md).
    pub sim_backend: Option<ExecBackend>,
}

impl ServerConfig {
    /// Resolves `sim_threads` to the per-session engine thread count.
    pub fn resolved_sim_threads(&self) -> usize {
        if self.sim_threads > 0 {
            return self.sim_threads;
        }
        let target = gem_vgpu::ExecMode::resolved_default().threads();
        (target / self.workers.max(1)).max(1)
    }

    /// Resolves `sim_backend` to the backend new sessions start under.
    pub fn resolved_sim_backend(&self) -> ExecBackend {
        self.sim_backend
            .unwrap_or_else(ExecBackend::resolved_default)
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue: 32,
            cache: 8,
            idle_timeout: Duration::from_secs(300),
            max_frame: DEFAULT_MAX_FRAME,
            reap_interval: Duration::from_millis(100),
            sim_threads: 0,
            sim_backend: None,
        }
    }
}

struct ServerState {
    cfg: ServerConfig,
    metrics: Arc<ServerMetrics>,
    cache: CompileCache,
    sessions: SessionTable,
    pool: WorkerPool,
    stop: AtomicBool,
    local_addr: SocketAddr,
    /// Clones of live connection streams, for unblocking reads at
    /// shutdown. Keyed by connection id; handlers remove themselves.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    /// Request correlation ids, unique across all connections of this
    /// server. Every request gets one; it is echoed in the response
    /// (`"rid"`) and stamped onto every span the request causes —
    /// including spans recorded by pool workers (see [`run_on_pool`]).
    next_rid: AtomicU64,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.state.local_addr)
            .finish()
    }
}

impl Server {
    /// Binds the listener and builds the shared state (pool threads start
    /// immediately; the accept loop starts in [`run`](Self::run)).
    ///
    /// # Errors
    ///
    /// I/O errors from binding `cfg.addr`.
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = Arc::new(ServerMetrics::default());
        let state = Arc::new(ServerState {
            metrics: Arc::clone(&metrics),
            cache: CompileCache::new(cfg.cache, Arc::clone(&metrics)),
            sessions: SessionTable::new(Arc::clone(&metrics)),
            pool: WorkerPool::new(cfg.workers, cfg.queue, Arc::clone(&metrics)),
            stop: AtomicBool::new(false),
            local_addr,
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(1),
            next_rid: AtomicU64::new(1),
            cfg,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// The server's metric registry (shared; survives `run` returning).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.state.metrics)
    }

    /// Serves until a client issues `shutdown`. Joins every connection
    /// handler, the reaper, and the worker pool before returning.
    ///
    /// # Errors
    ///
    /// I/O errors from the accept loop (not from individual connections).
    pub fn run(self) -> io::Result<()> {
        let state = self.state;
        let reaper = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("gem-reaper".into())
                .spawn(move || {
                    while !state.stop.load(Ordering::SeqCst) {
                        std::thread::sleep(state.cfg.reap_interval);
                        state.sessions.evict_idle(state.cfg.idle_timeout);
                    }
                })
                .expect("spawn reaper")
        };
        let mut handlers = Vec::new();
        for incoming in self.listener.incoming() {
            if state.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match incoming {
                Ok(s) => s,
                Err(_) if state.stop.load(Ordering::SeqCst) => break,
                Err(e) => return Err(e),
            };
            let conn_id = state.next_conn.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                state.conns.lock().unwrap().insert(conn_id, clone);
            }
            inc(&state.metrics.connections_total);
            inc(&state.metrics.connections_active);
            let state2 = Arc::clone(&state);
            handlers.push(
                std::thread::Builder::new()
                    .name(format!("gem-conn-{conn_id}"))
                    .spawn(move || handle_connection(&state2, stream, conn_id))
                    .expect("spawn connection handler"),
            );
        }
        // Unblock handlers still parked in read_frame, then join them.
        for (_, c) in state.conns.lock().unwrap().drain() {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        for h in handlers {
            let _ = h.join();
        }
        let _ = reaper.join();
        // Dropping the state joins the worker pool (queue runs dry first).
        Ok(())
    }
}

/// Wakes a `run` loop blocked in `accept` after `stop` was set.
fn wake_accept(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream, conn_id: u64) {
    loop {
        let req = match read_frame(&mut stream, state.cfg.max_frame) {
            Ok(v) => v,
            Err(FrameError::Closed) => break,
            Err(e) => {
                // Framing is broken; report once (best effort) and drop.
                let resp =
                    protocol::err_response(0, codes::BAD_REQUEST, &format!("bad frame: {e}"));
                let _ = write_frame(&mut stream, &resp, state.cfg.max_frame);
                break;
            }
        };
        inc(&state.metrics.requests_total);
        let id = req.get("id").and_then(Json::as_u64).unwrap_or(0);
        // One correlation id per request: scoped here so every span this
        // request records (inline or via a pool worker) carries it, and
        // echoed on the wire so the client can link frames to spans.
        let rid = state.next_rid.fetch_add(1, Ordering::Relaxed);
        let started = std::time::Instant::now();
        let (mut resp, shutdown) = {
            let _scope = span::request_scope(rid);
            let _req_span = if span::enabled() {
                let cmd = req.get("cmd").and_then(Json::as_str).unwrap_or("?");
                let mut sp = span::span(format!("request:{cmd}"), "server");
                sp.arg("id", id).arg("conn", conn_id);
                Some(sp)
            } else {
                None
            };
            dispatch(state, id, &req)
        };
        state
            .metrics
            .observe_request_latency(started.elapsed().as_nanos() as f64 / 1e3);
        resp.set("rid", rid);
        if write_frame(&mut stream, &resp, state.cfg.max_frame).is_err() {
            break;
        }
        if shutdown {
            state.stop.store(true, Ordering::SeqCst);
            wake_accept(state.local_addr);
            break;
        }
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
    }
    state.conns.lock().unwrap().remove(&conn_id);
    dec(&state.metrics.connections_active);
}

/// Routes one request. Returns the response and whether this request
/// asked the whole server to shut down.
fn dispatch(state: &Arc<ServerState>, id: u64, req: &Json) -> (Json, bool) {
    let cmd = match req.get("cmd").and_then(Json::as_str) {
        Some(c) => c,
        None => {
            return (
                protocol::err_response(id, codes::BAD_REQUEST, "missing field \"cmd\""),
                false,
            )
        }
    };
    let result = match cmd {
        "ping" => cmd_ping(state, id, req),
        "compile" => cmd_compile(state, id, req),
        "open" => cmd_open(state, id, req),
        "poke" => cmd_poke(state, id, req),
        "peek" => cmd_peek(state, id, req),
        "step" => cmd_step(state, id, req),
        "replay" => cmd_replay(state, id, req),
        "profile" => cmd_profile(state, id, req),
        "lint" => cmd_lint(state, id, req),
        "save" => cmd_save(state, id, req),
        "restore" => cmd_restore(state, id, req),
        "close" => cmd_close(state, id, req),
        "stats" => cmd_stats(state, id),
        "shutdown" => return (protocol::ok_response(id), true),
        other => Err((
            codes::BAD_REQUEST.to_string(),
            format!("unknown command {other:?}"),
        )),
    };
    let resp = match result {
        Ok(r) => r,
        Err((code, message)) => {
            let mut r = protocol::err_response(id, &code, &message);
            if code == codes::BUSY {
                r.set("retry_after_ms", state.pool.retry_after_ms());
            }
            r
        }
    };
    (resp, false)
}

type CmdResult = Result<Json, (String, String)>;

fn bad(msg: impl Into<String>) -> (String, String) {
    (codes::BAD_REQUEST.to_string(), msg.into())
}

/// Offers `job` to the pool and waits for its response. A full queue
/// becomes a `busy` error, so the connection thread never blocks on
/// queue space — only on the job it successfully enqueued.
///
/// The connection thread's request id crosses into the worker: the job
/// wrapper re-installs the request scope and opens a `name` span on the
/// worker thread, so pooled compile/step work stays correlated with the
/// wire request that caused it. Rejections count into the per-reason
/// `gem_server_rejected_total` family.
fn run_on_pool(
    state: &Arc<ServerState>,
    name: &'static str,
    job: impl FnOnce() -> Json + Send + 'static,
) -> CmdResult {
    let (tx, rx) = mpsc::channel();
    let rid = span::current_request_id();
    let submitted = state.pool.try_submit(move || {
        let _scope = rid.map(span::request_scope);
        let _job_span = span::enabled().then(|| span::span(format!("job:{name}"), "server"));
        let _ = tx.send(job());
    });
    match submitted {
        Ok(()) => rx
            .recv()
            .map_err(|_| (codes::INTERNAL.to_string(), "worker dropped job".into())),
        Err(e @ SubmitError::Full { .. }) => {
            inc(&state.metrics.rejected_queue_full);
            Err((codes::BUSY.to_string(), e.to_string()))
        }
        Err(e @ SubmitError::ShuttingDown) => {
            inc(&state.metrics.rejected_shutting_down);
            Err((codes::BUSY.to_string(), e.to_string()))
        }
    }
}

/// Parses the optional `opts` object of `compile`/`open` requests.
fn compile_opts(req: &Json) -> Result<CompileOptions, (String, String)> {
    let mut opts = CompileOptions {
        core_width: 2048,
        target_parts: 8,
        stages: 1,
        ..Default::default()
    };
    if let Some(o) = req.get("opts") {
        opts.core_width =
            protocol::opt_u64(o, "width", opts.core_width as u64).map_err(bad)? as u32;
        opts.target_parts =
            protocol::opt_u64(o, "parts", opts.target_parts as u64).map_err(bad)? as usize;
        opts.stages = protocol::opt_u64(o, "stages", opts.stages as u64).map_err(bad)? as usize;
        opts.seed = protocol::opt_u64(o, "seed", opts.seed).map_err(bad)?;
        if let Some(v) = o.get("verify").and_then(Json::as_bool) {
            opts.verify = v;
        }
        // Fault injection for the verify gate (tests, drills): a nonzero
        // seed corrupts the bitstream before verification.
        opts.verify_fault = protocol::opt_u64(o, "verify_fault", opts.verify_fault).map_err(bad)?;
    }
    Ok(opts)
}

fn cmd_ping(state: &Arc<ServerState>, id: u64, req: &Json) -> CmdResult {
    let delay_ms = protocol::opt_u64(req, "delay_ms", 0).map_err(bad)?;
    let mut resp = protocol::ok_response(id);
    resp.set("pong", true);
    if delay_ms == 0 {
        return Ok(resp);
    }
    // Delayed pings run through the pool: they occupy a worker slot
    // exactly like simulation work, which makes backpressure directly
    // testable without racing a real compile.
    run_on_pool(state, "ping", move || {
        std::thread::sleep(Duration::from_millis(delay_ms));
        resp
    })
}

fn cmd_compile(state: &Arc<ServerState>, id: u64, req: &Json) -> CmdResult {
    let source = protocol::req_str(req, "source").map_err(bad)?.to_string();
    let opts = compile_opts(req)?;
    let state2 = Arc::clone(state);
    run_on_pool(state, "compile", move || {
        let (key, result, cached) = state2.cache.get_or_compile(&source, &opts);
        match result {
            Ok(design) => {
                let mut r = protocol::ok_response(id);
                r.set("key", format!("{key:016x}"));
                r.set("cached", cached);
                r.set("report", design.report.to_json());
                r
            }
            Err(e) => protocol::err_response(id, codes::COMPILE_FAILED, &e),
        }
    })
}

fn cmd_open(state: &Arc<ServerState>, id: u64, req: &Json) -> CmdResult {
    let source = protocol::req_str(req, "source").map_err(bad)?.to_string();
    let opts = compile_opts(req)?;
    // Optional lane count (`"lanes": N`): N > 1 opens a *batch* session
    // that steps N independent stimulus streams per cycle. Validated
    // here, before any pool work, so a bad count is a cheap typed error.
    let lanes = protocol::opt_u64(req, "lanes", 1).map_err(bad)?;
    if lanes == 0 || lanes > GemSimulator::MAX_LANES as u64 {
        return Err((
            codes::BAD_LANES.to_string(),
            format!(
                "lane count {lanes} out of range: must be between 1 and {}",
                GemSimulator::MAX_LANES
            ),
        ));
    }
    let lanes = lanes as u32;
    // Optional execution backend (`"backend": "interpreted"|"compiled"`):
    // absent falls back to the server's configured default. Validated
    // here for the same cheap-typed-error reason as `lanes`.
    let backend = match opt_backend(req)? {
        Some(b) => b,
        None => state.cfg.resolved_sim_backend(),
    };
    let state2 = Arc::clone(state);
    run_on_pool(state, "open", move || {
        let (key, result, cached) = state2.cache.get_or_compile(&source, &opts);
        let design = match result {
            Ok(d) => d,
            Err(e) => return protocol::err_response(id, codes::COMPILE_FAILED, &e),
        };
        let mut sim = match GemSimulator::new(&design) {
            Ok(s) => s,
            Err(e) => return protocol::err_response(id, codes::INTERNAL, &e.to_string()),
        };
        sim.set_threads(state2.cfg.resolved_sim_threads());
        sim.set_backend(backend);
        if let Err(e) = sim.set_lanes(lanes) {
            return protocol::err_response(id, codes::BAD_LANES, &e.to_string());
        }
        let session = state2.sessions.open(key, Arc::clone(&design), sim, lanes);
        let mut r = protocol::ok_response(id);
        r.set("session", session);
        r.set("lanes", lanes as u64);
        r.set("backend", backend.name());
        r.set("key", format!("{key:016x}"));
        r.set("cached", cached);
        r.set("report", design.report.to_json());
        r
    })
}

/// Parses the optional `backend` field of `open`/`profile` requests.
/// `None` means the field was absent (caller picks its default).
fn opt_backend(req: &Json) -> Result<Option<ExecBackend>, (String, String)> {
    match req.get("backend") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| bad("non-string field \"backend\""))?;
            match ExecBackend::parse(name) {
                Some(b) => Ok(Some(b)),
                None => Err((
                    codes::BAD_BACKEND.to_string(),
                    format!("unknown backend {name:?}: expected \"interpreted\" or \"compiled\""),
                )),
            }
        }
    }
}

/// Parses the optional `lane` field of `poke`/`peek` requests and
/// validates it against the session's lane count.
fn opt_lane(req: &Json, lanes: u32) -> Result<Option<u32>, (String, String)> {
    match req.get("lane") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let lane = v
                .as_u64()
                .ok_or_else(|| bad("non-integer field \"lane\""))?;
            if lane >= lanes as u64 {
                return Err((
                    codes::BAD_LANES.to_string(),
                    format!("lane {lane} out of range: session has {lanes} lane(s)"),
                ));
            }
            Ok(Some(lane as u32))
        }
    }
}

fn session_of(
    state: &Arc<ServerState>,
    req: &Json,
) -> Result<Arc<crate::session::SessionEntry>, (String, String)> {
    let sid = protocol::req_u64(req, "session").map_err(bad)?;
    state
        .sessions
        .get(sid)
        .ok_or_else(|| (codes::NOT_FOUND.to_string(), format!("no session {sid}")))
}

fn cmd_poke(state: &Arc<ServerState>, id: u64, req: &Json) -> CmdResult {
    let entry = session_of(state, req)?;
    let port = protocol::req_str(req, "port").map_err(bad)?;
    let value = protocol::req_str(req, "value").map_err(bad)?;
    let lane = opt_lane(req, entry.lanes)?;
    let mut sim = entry.sim.lock().unwrap();
    let width = sim
        .io()
        .input(port)
        .ok_or_else(|| bad(format!("no input port {port:?}")))?
        .bits
        .len() as u32;
    let bits = protocol::bits_from_hex(value, width).map_err(bad)?;
    match lane {
        // No lane: the poke broadcasts to every lane (single-stimulus
        // clients keep their exact old semantics).
        None => sim.set_input(port, bits),
        Some(lane) => sim.set_input_lane(port, lane, bits),
    }
    Ok(protocol::ok_response(id))
}

fn cmd_peek(state: &Arc<ServerState>, id: u64, req: &Json) -> CmdResult {
    let entry = session_of(state, req)?;
    let port = protocol::req_str(req, "port").map_err(bad)?.to_string();
    let lane = opt_lane(req, entry.lanes)?;
    let sim = entry.sim.lock().unwrap();
    if sim.io().output(&port).is_none() {
        return Err(bad(format!("no output port {port:?}")));
    }
    let value = match lane {
        None => sim.output(&port), // lane 0: the scalar view
        Some(lane) => sim.output_lane(&port, lane),
    };
    let mut r = protocol::ok_response(id);
    r.set("value", protocol::bits_to_hex(&value));
    Ok(r)
}

fn cmd_step(state: &Arc<ServerState>, id: u64, req: &Json) -> CmdResult {
    let entry = session_of(state, req)?;
    let cycles = protocol::opt_u64(req, "cycles", 1).map_err(bad)?;
    // Pokes applied before the first cycle: {"pokes": {"port": "hex"}}.
    let pokes: Vec<(String, String)> = match req.get("pokes") {
        None | Some(Json::Null) => Vec::new(),
        Some(Json::Object(fields)) => fields
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .map(|s| (k.clone(), s.to_string()))
                    .ok_or_else(|| bad(format!("poke {k:?} is not a hex string")))
            })
            .collect::<Result<_, _>>()?,
        Some(_) => return Err(bad("\"pokes\" must be an object")),
    };
    let state2 = Arc::clone(state);
    run_on_pool(state, "step", move || {
        let mut sim = entry.sim.lock().unwrap();
        for (port, value) in &pokes {
            let Some(p) = sim.io().input(port) else {
                return protocol::err_response(
                    id,
                    codes::BAD_REQUEST,
                    &format!("no input port {port:?}"),
                );
            };
            let width = p.bits.len() as u32;
            match protocol::bits_from_hex(value, width) {
                Ok(bits) => sim.set_input(port, bits),
                Err(e) => return protocol::err_response(id, codes::BAD_REQUEST, &e),
            }
        }
        for _ in 0..cycles {
            sim.step();
        }
        crate::metrics::add(&state2.metrics.cycles_total, cycles);
        let mut outputs = Json::object();
        for p in sim.io().outputs.iter() {
            outputs.set(&p.name, protocol::bits_to_hex(&sim.output(&p.name)));
        }
        let mut r = protocol::ok_response(id);
        r.set("cycle", sim.counters().cycles);
        r.set("outputs", outputs);
        // Batch sessions additionally get every lane's view:
        // `lane_outputs[k]` maps port → hex for lane k ("outputs" above
        // stays the lane-0 scalar view).
        if entry.lanes > 1 {
            let lane_outputs: Vec<Json> = (0..entry.lanes)
                .map(|lane| {
                    let mut o = Json::object();
                    for p in sim.io().outputs.iter() {
                        o.set(
                            &p.name,
                            protocol::bits_to_hex(&sim.output_lane(&p.name, lane)),
                        );
                    }
                    o
                })
                .collect();
            r.set("lane_outputs", Json::Array(lane_outputs));
        }
        r
    })
}

fn cmd_replay(state: &Arc<ServerState>, id: u64, req: &Json) -> CmdResult {
    let entry = session_of(state, req)?;
    // Batch form: `"vcds": [text, …]` replays one stimulus VCD per lane
    // in lockstep (see cmd_replay_batch). Mutually exclusive with the
    // single-stimulus `"vcd"` field.
    if req.get("vcds").is_some() {
        return cmd_replay_batch(state, id, req, entry);
    }
    let vcd_text = protocol::req_str(req, "vcd").map_err(bad)?.to_string();
    let state2 = Arc::clone(state);
    run_on_pool(state, "replay", move || {
        let mut sim = entry.sim.lock().unwrap();
        let stim = match VcdStimulus::new(&vcd_text, sim.io()) {
            Ok(s) => s,
            Err(e) => return protocol::err_response(id, codes::BAD_REQUEST, &e.to_string()),
        };
        let rows = stim.replay(&mut sim);
        crate::metrics::add(&state2.metrics.cycles_total, rows.len() as u64);
        // The response carries the outputs both structured (per-cycle hex
        // maps) and as a VCD document, so a client can `read-vcd` without
        // a second round trip.
        let mut w = VcdWriter::new("gem");
        let vars: Vec<_> = sim
            .io()
            .outputs
            .iter()
            .map(|p| w.add_var(&p.name, p.bits.len() as u32))
            .collect();
        w.begin();
        let mut cycles_json = Vec::with_capacity(rows.len());
        for (t, row) in rows.iter().enumerate() {
            w.timestamp(t as u64);
            let mut obj = Json::object();
            for (var, (name, v)) in vars.iter().zip(row) {
                w.change(*var, v);
                obj.set(name, protocol::bits_to_hex(v));
            }
            cycles_json.push(obj);
        }
        let mut r = protocol::ok_response(id);
        r.set("cycles", rows.len() as u64);
        r.set("outputs", Json::Array(cycles_json));
        r.set("vcd", w.finish());
        r
    })
}

/// Batch replay: one stimulus VCD per lane, advanced in lockstep (the
/// k-th timestamp of every stimulus lands on the same machine cycle).
/// Streams may have different lengths; a lane whose stimulus is
/// exhausted simply holds its last values, exactly like a waveform that
/// stops changing. The response carries one output VCD per stimulus
/// lane in the same order.
fn cmd_replay_batch(
    state: &Arc<ServerState>,
    id: u64,
    req: &Json,
    entry: Arc<crate::session::SessionEntry>,
) -> CmdResult {
    let texts: Vec<String> = match req.get("vcds") {
        Some(Json::Array(items)) => items
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| bad("\"vcds\" entries must be VCD strings"))
            })
            .collect::<Result<_, _>>()?,
        _ => return Err(bad("\"vcds\" must be an array of VCD strings")),
    };
    if texts.is_empty() || texts.len() > entry.lanes as usize {
        return Err((
            codes::BAD_LANES.to_string(),
            format!(
                "{} stimulus VCD(s) for a session with {} lane(s)",
                texts.len(),
                entry.lanes
            ),
        ));
    }
    let state2 = Arc::clone(state);
    run_on_pool(state, "replay", move || {
        let mut sim = entry.sim.lock().unwrap();
        let mut stims = Vec::with_capacity(texts.len());
        for (lane, text) in texts.iter().enumerate() {
            match VcdStimulus::new(text, sim.io()) {
                Ok(s) => stims.push(s),
                Err(e) => {
                    return protocol::err_response(
                        id,
                        codes::BAD_REQUEST,
                        &format!("stimulus VCD for lane {lane}: {e}"),
                    )
                }
            }
        }
        let total = stims.iter().map(VcdStimulus::cycles).max().unwrap_or(0);
        let mut writers: Vec<(VcdWriter, Vec<_>)> = (0..stims.len())
            .map(|_| {
                let mut w = VcdWriter::new("gem");
                let vars: Vec<_> = sim
                    .io()
                    .outputs
                    .iter()
                    .map(|p| w.add_var(&p.name, p.bits.len() as u32))
                    .collect();
                w.begin();
                (w, vars)
            })
            .collect();
        for t in 0..total {
            for (lane, stim) in stims.iter().enumerate() {
                for (_, name, v) in stim.changes_at(t) {
                    sim.set_input_lane(name, lane as u32, v.clone());
                }
            }
            sim.step();
            for (lane, (w, vars)) in writers.iter_mut().enumerate() {
                w.timestamp(t as u64);
                for (var, p) in vars.iter().zip(sim.io().outputs.iter()) {
                    w.change(*var, &sim.output_lane(&p.name, lane as u32));
                }
            }
        }
        crate::metrics::add(&state2.metrics.cycles_total, total as u64);
        let mut r = protocol::ok_response(id);
        r.set("cycles", total as u64);
        r.set(
            "vcds",
            Json::Array(
                writers
                    .into_iter()
                    .map(|(w, _)| Json::Str(w.finish()))
                    .collect(),
            ),
        );
        r
    })
}

/// `profile`: compile (through the cache) and run a hotspot-attribution
/// pass on a fresh simulator — sessions are untouched, so profiling a
/// design never perturbs live waveforms.
fn cmd_profile(state: &Arc<ServerState>, id: u64, req: &Json) -> CmdResult {
    let source = protocol::req_str(req, "source").map_err(bad)?.to_string();
    let opts = compile_opts(req)?;
    let cycles = protocol::opt_u64(req, "cycles", 256).map_err(bad)?;
    let threads = protocol::opt_u64(req, "threads", 0).map_err(bad)? as usize;
    let backend = match opt_backend(req)? {
        Some(b) => Some(b),
        None => state.cfg.sim_backend,
    };
    let design_name = req
        .get("design")
        .and_then(Json::as_str)
        .unwrap_or("design")
        .to_string();
    let state2 = Arc::clone(state);
    run_on_pool(state, "profile", move || {
        let (key, result, cached) = state2.cache.get_or_compile(&source, &opts);
        let design = match result {
            Ok(d) => d,
            Err(e) => return protocol::err_response(id, codes::COMPILE_FAILED, &e),
        };
        let popts = ProfileOptions {
            cycles,
            threads,
            backend,
            ..ProfileOptions::default()
        };
        match gem_core::profile(&design, &design_name, &popts) {
            Ok(report) => {
                let mut r = protocol::ok_response(id);
                r.set("key", format!("{key:016x}"));
                r.set("cached", cached);
                r.set("profile", report.to_json());
                r.set("table", report.render_table());
                r
            }
            Err(e) => protocol::err_response(id, codes::INTERNAL, &e.to_string()),
        }
    })
}

/// `lint`: run the static analyzer over a design source and, when the
/// netlist is clean of errors, compile it (through the cache) to attach
/// the schedule happens-before certificate. Sessions are untouched.
fn cmd_lint(state: &Arc<ServerState>, id: u64, req: &Json) -> CmdResult {
    let source = protocol::req_str(req, "source").map_err(bad)?.to_string();
    let opts = compile_opts(req)?;
    let state2 = Arc::clone(state);
    run_on_pool(state, "lint", move || {
        let (module, lints) = match gem_netlist::verilog::parse_with_lints(&source) {
            Ok(r) => r,
            Err(e) => return protocol::err_response(id, codes::COMPILE_FAILED, &e.to_string()),
        };
        let report = gem_analyze::analyze_with_lints(&module, &lints);
        let diagnostics: Vec<Json> = report
            .diagnostics
            .iter()
            .map(|d| {
                let mut o = Json::object();
                o.set("code", d.code);
                o.set("severity", d.severity.name());
                o.set("message", d.message.as_str());
                o.set("witness", d.witness.as_str());
                o
            })
            .collect();
        let mut r = protocol::ok_response(id);
        r.set("diagnostics", Json::Array(diagnostics));
        r.set("summary", report.summary());
        r.set("clean", report.clean(gem_analyze::Severity::Warning));
        // Certification needs the compiled schedule; skip it when the
        // netlist already has error-severity findings.
        let mut certified = false;
        if report.clean(gem_analyze::Severity::Error) {
            let (key, result, cached) = state2.cache.get_or_compile(&source, &opts);
            r.set("key", format!("{key:016x}"));
            r.set("cached", cached);
            match result {
                Ok(design) => {
                    certified = design.report.certified;
                    if let Some(cert) = &design.schedule_cert {
                        r.set("cert", cert.summary());
                    }
                }
                Err(e) => {
                    r.set("compile_error", e.as_str());
                }
            }
        }
        r.set("certified", certified);
        r
    })
}

fn cmd_save(state: &Arc<ServerState>, id: u64, req: &Json) -> CmdResult {
    let entry = session_of(state, req)?;
    let sim = entry.sim.lock().unwrap();
    let snap = sim.snapshot();
    let mut r = protocol::ok_response(id);
    r.set("bytes", snap.approx_bytes() as u64);
    *entry.saved.lock().unwrap() = Some(snap);
    Ok(r)
}

fn cmd_restore(state: &Arc<ServerState>, id: u64, req: &Json) -> CmdResult {
    let entry = session_of(state, req)?;
    let saved = entry.saved.lock().unwrap();
    let Some(snap) = saved.as_ref() else {
        return Err((
            codes::NOT_FOUND.to_string(),
            "no saved checkpoint for this session".into(),
        ));
    };
    let mut sim = entry.sim.lock().unwrap();
    sim.restore(snap)
        .map_err(|e| (codes::INTERNAL.to_string(), e.to_string()))?;
    Ok(protocol::ok_response(id))
}

fn cmd_close(state: &Arc<ServerState>, id: u64, req: &Json) -> CmdResult {
    let sid = protocol::req_u64(req, "session").map_err(bad)?;
    if state.sessions.close(sid) {
        Ok(protocol::ok_response(id))
    } else {
        Err((codes::NOT_FOUND.to_string(), format!("no session {sid}")))
    }
}

fn cmd_stats(state: &Arc<ServerState>, id: u64) -> CmdResult {
    let mut r = protocol::ok_response(id);
    r.set("metrics", state.metrics.snapshot().to_json());
    r.set("sessions", state.sessions.len() as u64);
    r.set("cache_entries", state.cache.len() as u64);
    Ok(r)
}
