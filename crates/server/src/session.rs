//! Session table: per-client simulator instances with idle eviction.
//!
//! A session pairs one [`GemSimulator`] (mutable machine state) with the
//! shared, immutable [`Compiled`] design it was instantiated from. The
//! table hands out `Arc<SessionEntry>` so a connection handler and a pool
//! worker can both hold the session while a job is in flight; the
//! simulator itself sits behind a `Mutex`, serializing cycles per session
//! while different sessions run fully in parallel.
//!
//! Sessions that go quiet are reclaimed by the idle reaper
//! ([`SessionTable::evict_idle`], driven by a timer thread in the
//! server): every request touches `last_used`, and entries older than the
//! configured idle timeout are dropped and counted in
//! `gem_server_sessions_evicted_total`.

use crate::metrics::{add, dec, inc, sub, ServerMetrics};
use gem_core::{Compiled, GemSimulator};
use gem_vgpu::GpuSnapshot;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One live simulation session.
pub struct SessionEntry {
    /// Server-assigned session id (stable for the session's lifetime).
    pub id: u64,
    /// Compile-cache key of the design this session runs.
    pub key: u64,
    /// The shared compiled design (IO map, report, golden E-AIG).
    pub design: Arc<Compiled>,
    /// Stimulus lanes this session runs (1 for plain sessions, up to 64
    /// for batch sessions). Fixed at `open`; counted into the
    /// `gem_server_lanes_active` gauge while the session lives.
    pub lanes: u32,
    /// The session's machine state. Lock order: never hold this while
    /// taking the table lock.
    pub sim: Mutex<GemSimulator>,
    /// Client-managed checkpoint filled by the `save` command and
    /// consumed (non-destructively) by `restore`.
    pub saved: Mutex<Option<GpuSnapshot>>,
    last_used: Mutex<Instant>,
}

impl SessionEntry {
    /// Marks the session as active now (resets the idle clock).
    pub fn touch(&self) {
        *self.last_used.lock().unwrap() = Instant::now();
    }

    fn idle_for(&self) -> Duration {
        self.last_used.lock().unwrap().elapsed()
    }
}

impl std::fmt::Debug for SessionEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionEntry")
            .field("id", &self.id)
            .field("key", &format_args!("{:016x}", self.key))
            .finish()
    }
}

/// All live sessions of one server.
#[derive(Debug)]
pub struct SessionTable {
    entries: Mutex<HashMap<u64, Arc<SessionEntry>>>,
    next_id: AtomicU64,
    metrics: Arc<ServerMetrics>,
}

impl SessionTable {
    /// An empty table.
    pub fn new(metrics: Arc<ServerMetrics>) -> Self {
        SessionTable {
            entries: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            metrics,
        }
    }

    /// Registers a new session and returns its id. `lanes` is the
    /// session's stimulus lane count (already validated and applied to
    /// `sim`); sessions with more than one lane count into the
    /// batch-session metrics.
    pub fn open(&self, key: u64, design: Arc<Compiled>, sim: GemSimulator, lanes: u32) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(SessionEntry {
            id,
            key,
            design,
            lanes,
            sim: Mutex::new(sim),
            saved: Mutex::new(None),
            last_used: Mutex::new(Instant::now()),
        });
        self.entries.lock().unwrap().insert(id, entry);
        inc(&self.metrics.sessions_opened);
        inc(&self.metrics.sessions_active);
        add(&self.metrics.lanes_active, lanes as u64);
        if lanes > 1 {
            inc(&self.metrics.batch_sessions);
        }
        id
    }

    /// Looks up a session and touches its idle clock.
    pub fn get(&self, id: u64) -> Option<Arc<SessionEntry>> {
        let entry = self.entries.lock().unwrap().get(&id).cloned()?;
        entry.touch();
        Some(entry)
    }

    /// Closes a session at the client's request. Returns `false` when the
    /// id is unknown (already closed or evicted).
    pub fn close(&self, id: u64) -> bool {
        let removed = self.entries.lock().unwrap().remove(&id);
        if let Some(e) = &removed {
            inc(&self.metrics.sessions_closed);
            dec(&self.metrics.sessions_active);
            sub(&self.metrics.lanes_active, e.lanes as u64);
        }
        removed.is_some()
    }

    /// Drops every session idle for longer than `max_idle`; returns how
    /// many were evicted. In-flight sessions survive: a pool job holds
    /// the `Arc`, so the machine state is freed only when the job ends,
    /// and the job itself touched `last_used` at dispatch.
    pub fn evict_idle(&self, max_idle: Duration) -> usize {
        let mut entries = self.entries.lock().unwrap();
        let victims: Vec<u64> = entries
            .iter()
            .filter(|(_, e)| e.idle_for() > max_idle)
            .map(|(&id, _)| id)
            .collect();
        for id in &victims {
            if let Some(e) = entries.remove(id) {
                inc(&self.metrics.sessions_evicted);
                dec(&self.metrics.sessions_active);
                sub(&self.metrics.lanes_active, e.lanes as u64);
            }
        }
        victims.len()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_core::{compile, CompileOptions};
    use gem_netlist::ModuleBuilder;

    fn tiny_design() -> Arc<Compiled> {
        let mut b = ModuleBuilder::new("t");
        let a = b.input("a", 4);
        let n = b.not(a);
        b.output("y", n);
        let m = b.finish().expect("valid");
        Arc::new(compile(&m, &CompileOptions::small()).expect("compiles"))
    }

    #[test]
    fn open_get_close_lifecycle() {
        let m = Arc::new(ServerMetrics::default());
        let table = SessionTable::new(Arc::clone(&m));
        let design = tiny_design();
        let sim = GemSimulator::new(&design).unwrap();
        let id = table.open(7, Arc::clone(&design), sim, 1);
        assert!(table.get(id).is_some());
        assert_eq!(table.len(), 1);
        assert_eq!(m.lanes_active.load(Ordering::Relaxed), 1);
        assert!(table.close(id));
        assert!(!table.close(id), "double close reports unknown");
        assert!(table.get(id).is_none());
        assert_eq!(m.sessions_opened.load(Ordering::Relaxed), 1);
        assert_eq!(m.sessions_closed.load(Ordering::Relaxed), 1);
        assert_eq!(m.sessions_active.load(Ordering::Relaxed), 0);
        assert_eq!(m.lanes_active.load(Ordering::Relaxed), 0);
        assert_eq!(m.batch_sessions.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn batch_sessions_count_their_lanes() {
        let m = Arc::new(ServerMetrics::default());
        let table = SessionTable::new(Arc::clone(&m));
        let design = tiny_design();
        let mut sim = GemSimulator::new(&design).unwrap();
        sim.set_lanes(8).unwrap();
        let batch = table.open(1, Arc::clone(&design), sim, 8);
        let plain = table.open(
            2,
            Arc::clone(&design),
            GemSimulator::new(&design).unwrap(),
            1,
        );
        assert_eq!(m.lanes_active.load(Ordering::Relaxed), 9);
        assert_eq!(m.batch_sessions.load(Ordering::Relaxed), 1);
        assert!(table.close(batch));
        assert_eq!(m.lanes_active.load(Ordering::Relaxed), 1);
        assert!(table.close(plain));
        assert_eq!(m.lanes_active.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn idle_sessions_evicted_touched_ones_survive() {
        let m = Arc::new(ServerMetrics::default());
        let table = SessionTable::new(Arc::clone(&m));
        let design = tiny_design();
        let id1 = table.open(
            1,
            Arc::clone(&design),
            GemSimulator::new(&design).unwrap(),
            1,
        );
        let id2 = table.open(
            2,
            Arc::clone(&design),
            GemSimulator::new(&design).unwrap(),
            1,
        );
        std::thread::sleep(Duration::from_millis(30));
        table.get(id2); // touch
        let evicted = table.evict_idle(Duration::from_millis(15));
        assert_eq!(evicted, 1);
        assert!(table.get(id1).is_none());
        assert!(table.get(id2).is_some());
        assert_eq!(m.sessions_evicted.load(Ordering::Relaxed), 1);
        // opened = active + closed + evicted
        assert_eq!(
            m.sessions_opened.load(Ordering::Relaxed),
            m.sessions_active.load(Ordering::Relaxed)
                + m.sessions_closed.load(Ordering::Relaxed)
                + m.sessions_evicted.load(Ordering::Relaxed)
        );
    }
}
