//! Blocking client for the `gem-server` wire protocol.
//!
//! [`GemClient`] wraps one TCP connection: it assigns request ids,
//! frames requests, and checks the response envelope, turning
//! `{"ok": false}` into a typed [`ClientError::Server`] that carries the
//! machine-readable code and the `retry_after_ms` backoff hint. A
//! rejected-because-busy submission is therefore an `Err` the caller can
//! retry, never a hang.

use crate::protocol::codes;
use gem_telemetry::{read_frame, write_frame, FrameError, Json, DEFAULT_MAX_FRAME};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Frame(FrameError),
    /// The server answered with an error envelope.
    Server {
        /// Machine-readable code (see [`codes`]).
        code: String,
        /// Human-readable description.
        message: String,
        /// Backoff hint accompanying `busy` rejections.
        retry_after_ms: Option<u64>,
    },
    /// The response did not match the request (missing/wrong id).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "transport error: {e}"),
            ClientError::Server { code, message, .. } => {
                write!(f, "server error [{code}]: {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl ClientError {
    /// Whether this is a `busy` rejection worth retrying.
    pub fn is_busy(&self) -> bool {
        matches!(self, ClientError::Server { code, .. } if code == codes::BUSY)
    }
}

/// One connection to a `gem serve` instance.
#[derive(Debug)]
pub struct GemClient {
    stream: TcpStream,
    next_id: u64,
    max_frame: usize,
}

impl GemClient {
    /// Connects to `addr` (e.g. `"127.0.0.1:7453"`).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<GemClient> {
        Ok(GemClient {
            stream: TcpStream::connect(addr)?,
            next_id: 1,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Sends `cmd` with extra `fields` and returns the success response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for error envelopes (including `busy`),
    /// [`ClientError::Frame`] for transport problems.
    pub fn request(&mut self, cmd: &str, fields: Vec<(&str, Json)>) -> Result<Json, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut req = Json::object();
        req.set("id", id);
        req.set("cmd", cmd);
        for (k, v) in fields {
            req.set(k, v);
        }
        write_frame(&mut self.stream, &req, self.max_frame)?;
        let resp = read_frame(&mut self.stream, self.max_frame)?;
        if resp.get("id").and_then(Json::as_u64) != Some(id) {
            return Err(ClientError::Protocol(format!(
                "response id does not match request id {id}"
            )));
        }
        match resp.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(resp),
            Some(false) => Err(ClientError::Server {
                code: resp
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                message: resp
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                retry_after_ms: resp.get("retry_after_ms").and_then(Json::as_u64),
            }),
            None => Err(ClientError::Protocol(
                "response missing \"ok\" field".into(),
            )),
        }
    }

    /// Round-trip health check; `delay_ms > 0` routes through the worker
    /// pool (and can therefore be rejected `busy`).
    pub fn ping(&mut self, delay_ms: u64) -> Result<(), ClientError> {
        let fields = if delay_ms > 0 {
            vec![("delay_ms", Json::U64(delay_ms))]
        } else {
            Vec::new()
        };
        self.request("ping", fields).map(|_| ())
    }

    /// Compiles (or cache-hits) a design without opening a session.
    /// Returns the full response (`key`, `cached`, `report`).
    pub fn compile(&mut self, source: &str, opts: Json) -> Result<Json, ClientError> {
        self.request(
            "compile",
            vec![("source", Json::Str(source.into())), ("opts", opts)],
        )
    }

    /// Opens a session; returns the full response (`session`, `key`,
    /// `cached`, `report`).
    pub fn open(&mut self, source: &str, opts: Json) -> Result<Json, ClientError> {
        self.request(
            "open",
            vec![("source", Json::Str(source.into())), ("opts", opts)],
        )
    }

    /// Opens a *batch* session: `lanes` independent stimulus streams
    /// stepped together (1..=64). Returns the full response (`session`,
    /// `lanes`, `key`, `cached`, `report`).
    pub fn open_lanes(
        &mut self,
        source: &str,
        opts: Json,
        lanes: u32,
    ) -> Result<Json, ClientError> {
        self.request(
            "open",
            vec![
                ("source", Json::Str(source.into())),
                ("opts", opts),
                ("lanes", Json::U64(lanes as u64)),
            ],
        )
    }

    /// Opens a session under an explicit execution backend
    /// (`"interpreted"` or `"compiled"`); a plain [`open`](Self::open)
    /// takes the server's default. Returns the full response (`session`,
    /// `backend`, `key`, `cached`, `report`).
    pub fn open_backend(
        &mut self,
        source: &str,
        opts: Json,
        backend: &str,
    ) -> Result<Json, ClientError> {
        self.request(
            "open",
            vec![
                ("source", Json::Str(source.into())),
                ("opts", opts),
                ("backend", Json::Str(backend.into())),
            ],
        )
    }

    /// Sets an input port to a hex value for upcoming cycles.
    pub fn poke(&mut self, session: u64, port: &str, hex: &str) -> Result<(), ClientError> {
        self.request(
            "poke",
            vec![
                ("session", Json::U64(session)),
                ("port", Json::Str(port.into())),
                ("value", Json::Str(hex.into())),
            ],
        )
        .map(|_| ())
    }

    /// Reads an output port as a hex string.
    pub fn peek(&mut self, session: u64, port: &str) -> Result<String, ClientError> {
        let r = self.request(
            "peek",
            vec![
                ("session", Json::U64(session)),
                ("port", Json::Str(port.into())),
            ],
        )?;
        r.get("value")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("peek response missing \"value\"".into()))
    }

    /// Sets an input port on one lane of a batch session (a lane-less
    /// [`poke`](Self::poke) broadcasts to every lane instead).
    pub fn poke_lane(
        &mut self,
        session: u64,
        lane: u32,
        port: &str,
        hex: &str,
    ) -> Result<(), ClientError> {
        self.request(
            "poke",
            vec![
                ("session", Json::U64(session)),
                ("lane", Json::U64(lane as u64)),
                ("port", Json::Str(port.into())),
                ("value", Json::Str(hex.into())),
            ],
        )
        .map(|_| ())
    }

    /// Reads an output port on one lane of a batch session (a lane-less
    /// [`peek`](Self::peek) reads lane 0, the scalar view).
    pub fn peek_lane(
        &mut self,
        session: u64,
        lane: u32,
        port: &str,
    ) -> Result<String, ClientError> {
        let r = self.request(
            "peek",
            vec![
                ("session", Json::U64(session)),
                ("lane", Json::U64(lane as u64)),
                ("port", Json::Str(port.into())),
            ],
        )?;
        r.get("value")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("peek response missing \"value\"".into()))
    }

    /// Runs `cycles` cycles with optional pokes applied first; returns
    /// the full response (`cycle`, `outputs`).
    pub fn step(
        &mut self,
        session: u64,
        cycles: u64,
        pokes: Vec<(&str, &str)>,
    ) -> Result<Json, ClientError> {
        let mut fields = vec![
            ("session", Json::U64(session)),
            ("cycles", Json::U64(cycles)),
        ];
        if !pokes.is_empty() {
            let mut o = Json::object();
            for (k, v) in pokes {
                o.set(k, v);
            }
            fields.push(("pokes", o));
        }
        self.request("step", fields)
    }

    /// Replays a VCD stimulus; returns the full response (`cycles`,
    /// per-cycle `outputs`, result `vcd`).
    pub fn replay(&mut self, session: u64, vcd: &str) -> Result<Json, ClientError> {
        self.request(
            "replay",
            vec![
                ("session", Json::U64(session)),
                ("vcd", Json::Str(vcd.into())),
            ],
        )
    }

    /// Replays one stimulus VCD per lane in lockstep on a batch session;
    /// returns the full response (`cycles`, per-lane output `vcds`).
    pub fn replay_batch(&mut self, session: u64, vcds: &[&str]) -> Result<Json, ClientError> {
        self.request(
            "replay",
            vec![
                ("session", Json::U64(session)),
                (
                    "vcds",
                    Json::Array(vcds.iter().map(|s| Json::Str((*s).into())).collect()),
                ),
            ],
        )
    }

    /// Profiles a design server-side: compiles (through the cache), runs
    /// `cycles` cycles on a scratch simulator, and returns hotspot
    /// attribution (`profile` JSON report plus a rendered `table`).
    pub fn profile(&mut self, source: &str, opts: Json, cycles: u64) -> Result<Json, ClientError> {
        self.request(
            "profile",
            vec![
                ("source", Json::Str(source.into())),
                ("opts", opts),
                ("cycles", Json::U64(cycles)),
            ],
        )
    }

    /// Lints a design server-side: runs the static analyzer and, when
    /// the netlist is error-free, compiles (through the cache) to attach
    /// the schedule certificate. Returns the full response
    /// (`diagnostics`, `summary`, `clean`, `certified`, optional `cert`).
    pub fn lint(&mut self, source: &str, opts: Json) -> Result<Json, ClientError> {
        self.request(
            "lint",
            vec![("source", Json::Str(source.into())), ("opts", opts)],
        )
    }

    /// Checkpoints the session's machine state server-side.
    pub fn save(&mut self, session: u64) -> Result<(), ClientError> {
        self.request("save", vec![("session", Json::U64(session))])
            .map(|_| ())
    }

    /// Restores the last checkpoint taken with [`save`](Self::save).
    pub fn restore(&mut self, session: u64) -> Result<(), ClientError> {
        self.request("restore", vec![("session", Json::U64(session))])
            .map(|_| ())
    }

    /// Closes a session.
    pub fn close(&mut self, session: u64) -> Result<(), ClientError> {
        self.request("close", vec![("session", Json::U64(session))])
            .map(|_| ())
    }

    /// Fetches the server's metric snapshot and table sizes.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request("stats", Vec::new())
    }

    /// Asks the server to shut down (the response acknowledges; the
    /// server then stops accepting and joins its threads).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request("shutdown", Vec::new()).map(|_| ())
    }
}
