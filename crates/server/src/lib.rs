//! Multi-session RTL simulation service over the GEM flow.
//!
//! GEM's compile → bitstream → interpret split makes compiled designs
//! immutable, shareable artifacts — the natural unit of a *simulation
//! service*: many clients, one host, one compile per distinct design.
//! This crate provides that service, std-only (the build environment is
//! sealed):
//!
//! * [`wire protocol`](protocol) — length-prefixed JSON frames
//!   ([`gem_telemetry::wire`]) carrying `{"id", "cmd", …}` requests and
//!   `{"id", "ok", …}` responses; values as hex strings;
//! * [`CompileCache`] — content-hash-keyed, single-flight, LRU: N
//!   concurrent opens of the same source pay exactly one compile;
//! * [`WorkerPool`] — fixed threads, bounded queue, explicit
//!   backpressure: a full queue is a `busy` response with
//!   `retry_after_ms`, never a hang;
//! * [`SessionTable`] — per-client simulator instances with
//!   idle-timeout eviction and `save`/`restore` checkpoints;
//! * [`ServerMetrics`] — `gem_server_*` counter/gauge families exported
//!   through the shared [`gem_telemetry`] snapshot/exporter machinery;
//! * [`Server`] / [`GemClient`] — the TCP loopback service and its
//!   blocking client, also exposed as `gem serve` / `gem client`.
//!
//! See `docs/SERVER.md` for the protocol reference and operational
//! notes.

pub mod cache;
pub mod client;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod session;

pub use cache::{content_hash, CompileCache};
pub use client::{ClientError, GemClient};
pub use metrics::ServerMetrics;
pub use pool::{SubmitError, WorkerPool};
pub use server::{Server, ServerConfig};
pub use session::{SessionEntry, SessionTable};
