//! Fixed worker thread pool with a bounded queue and explicit
//! backpressure.
//!
//! Simulation work (compiles, stepped cycles, waveform replay) runs on a
//! fixed number of OS threads so N greedy clients cannot oversubscribe
//! the host. The queue is bounded: when it is full, [`WorkerPool::try_submit`]
//! fails *immediately* with [`SubmitError::Full`] instead of blocking the
//! connection handler — the server turns that into a `busy` wire response
//! carrying a `retry_after_ms` hint. Rejecting at the edge keeps one slow
//! client from head-of-line-blocking everyone else's control traffic
//! (pokes, peeks, stats stay off the pool entirely).

use crate::metrics::{add, dec, inc, ServerMetrics};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send>;

/// Why [`WorkerPool::try_submit`] declined a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry after the hinted backoff.
    Full {
        /// Jobs currently waiting (equals the configured capacity).
        queued: usize,
    },
    /// The pool is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full { queued } => write!(f, "job queue full ({queued} waiting)"),
            SubmitError::ShuttingDown => write!(f, "worker pool shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct PoolState {
    jobs: VecDeque<(Job, Instant)>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    available: Condvar,
    capacity: usize,
    metrics: Arc<ServerMetrics>,
}

/// The pool itself. Dropping it (or calling [`shutdown`](Self::shutdown))
/// drains queued jobs and joins every worker.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("capacity", &self.shared.capacity)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` threads sharing a queue of at most `capacity`
    /// waiting jobs. Both are clamped to at least 1.
    pub fn new(workers: usize, capacity: usize, metrics: Arc<ServerMetrics>) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            metrics,
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gem-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Offers a job to the pool without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the queue is at capacity,
    /// [`SubmitError::ShuttingDown`] after [`shutdown`](Self::shutdown)
    /// began. Either way the job is dropped and `jobs_rejected` counts it.
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let m = &self.shared.metrics;
        inc(&m.jobs_submitted);
        let mut st = self.shared.state.lock().unwrap();
        if st.shutdown {
            inc(&m.jobs_rejected);
            return Err(SubmitError::ShuttingDown);
        }
        if st.jobs.len() >= self.shared.capacity {
            inc(&m.jobs_rejected);
            return Err(SubmitError::Full {
                queued: st.jobs.len(),
            });
        }
        st.jobs.push_back((Box::new(job), Instant::now()));
        inc(&m.queue_depth);
        drop(st);
        self.shared.available.notify_one();
        Ok(())
    }

    /// A backoff hint for rejected submissions: the average completed-job
    /// latency so far, clamped to [1, 1000] ms. With no history it
    /// defaults to 10 ms.
    pub fn retry_after_ms(&self) -> u64 {
        use std::sync::atomic::Ordering;
        let done = self.shared.metrics.jobs_completed.load(Ordering::Relaxed);
        if done == 0 {
            return 10;
        }
        let total_us = self
            .shared
            .metrics
            .job_latency_micros
            .load(Ordering::Relaxed);
        (total_us / done / 1000).clamp(1, 1000)
    }

    /// Stops accepting work, runs out the queue, and joins the workers.
    pub fn shutdown(mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let (job, enqueued_at) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(j) = st.jobs.pop_front() {
                    dec(&shared.metrics.queue_depth);
                    break j;
                }
                if st.shutdown {
                    return;
                }
                st = shared.available.wait(st).unwrap();
            }
        };
        job();
        add(
            &shared.metrics.job_latency_micros,
            enqueued_at.elapsed().as_micros() as u64,
        );
        inc(&shared.metrics.jobs_completed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_counters_reconcile() {
        let m = Arc::new(ServerMetrics::default());
        let pool = WorkerPool::new(2, 8, Arc::clone(&m));
        let ran = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..8 {
            let ran = Arc::clone(&ran);
            let tx = tx.clone();
            pool.try_submit(move || {
                ran.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            })
            .unwrap();
        }
        for _ in 0..8 {
            rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 8);
        assert_eq!(m.jobs_submitted.load(Ordering::Relaxed), 8);
        assert_eq!(m.jobs_completed.load(Ordering::Relaxed), 8);
        assert_eq!(m.jobs_rejected.load(Ordering::Relaxed), 0);
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let m = Arc::new(ServerMetrics::default());
        let pool = WorkerPool::new(1, 1, Arc::clone(&m));
        // Occupy the single worker until released.
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel();
        pool.try_submit(move || {
            started_tx.send(()).unwrap();
            hold_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        // One slot in the queue…
        pool.try_submit(|| {}).unwrap();
        // …then rejection, immediately.
        let t0 = Instant::now();
        match pool.try_submit(|| {}) {
            Err(SubmitError::Full { queued }) => assert_eq!(queued, 1),
            other => panic!("expected Full, got {other:?}"),
        }
        assert!(t0.elapsed() < Duration::from_secs(1));
        hold_tx.send(()).unwrap();
        pool.shutdown();
        assert_eq!(
            m.jobs_submitted.load(Ordering::Relaxed),
            m.jobs_completed.load(Ordering::Relaxed) + m.jobs_rejected.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn shutdown_runs_out_queued_jobs() {
        let m = Arc::new(ServerMetrics::default());
        let pool = WorkerPool::new(1, 16, Arc::clone(&m));
        let ran = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let ran = Arc::clone(&ran);
            pool.try_submit(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 10);
    }
}
