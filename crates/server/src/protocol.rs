//! Wire protocol: request/response schema and value encodings.
//!
//! Every message is one length-prefixed JSON frame
//! ([`gem_telemetry::wire`]). Requests carry a client-chosen `id` echoed
//! verbatim in the response, so a client can pipeline:
//!
//! ```text
//! → {"id": 1, "cmd": "open", "source": "module …", "opts": {"width": 256}}
//! ← {"id": 1, "ok": true, "session": 3, "key": "9f2c…", "cached": false}
//! ← {"id": 2, "ok": false, "error": "busy", "message": "…",
//!    "retry_after_ms": 10}
//! ```
//!
//! Port values travel as lowercase hex strings (MSB-first nibbles, no
//! `0x` prefix) so widths beyond 64 bits round-trip exactly; the width is
//! always taken from the design's IO map, never from the string length.
//! See `docs/SERVER.md` for the full command table.

use gem_netlist::Bits;
use gem_telemetry::Json;

/// Machine-readable error codes carried in the `error` field.
pub mod codes {
    /// The queue is full or the pool is stopping; retry after
    /// `retry_after_ms`.
    pub const BUSY: &str = "busy";
    /// Malformed request (unknown command, missing/ill-typed field).
    pub const BAD_REQUEST: &str = "bad_request";
    /// Unknown session id (closed, evicted, or never opened).
    pub const NOT_FOUND: &str = "not_found";
    /// The design failed to parse or compile.
    pub const COMPILE_FAILED: &str = "compile_failed";
    /// A lane count outside `1..=64`, or a lane index at or beyond the
    /// session's lane count.
    pub const BAD_LANES: &str = "bad_lanes";
    /// An unknown execution-backend name in the `backend` option
    /// (`"interpreted"` and `"compiled"` are accepted).
    pub const BAD_BACKEND: &str = "bad_backend";
    /// Unexpected server-side failure.
    pub const INTERNAL: &str = "internal";
}

/// Builds a success envelope: `{"id": …, "ok": true}`.
pub fn ok_response(id: u64) -> Json {
    let mut r = Json::object();
    r.set("id", id);
    r.set("ok", true);
    r
}

/// Builds an error envelope with a machine-readable `code` from
/// [`codes`] and human-readable `message`.
pub fn err_response(id: u64, code: &str, message: &str) -> Json {
    let mut r = Json::object();
    r.set("id", id);
    r.set("ok", false);
    r.set("error", code);
    r.set("message", message);
    r
}

/// Encodes port bits as lowercase hex, MSB-first, one nibble per 4 bits
/// (width rounded up). `Bits` of width 0 encode as `""`.
pub fn bits_to_hex(v: &Bits) -> String {
    let nibbles = v.width().div_ceil(4);
    let mut s = String::with_capacity(nibbles as usize);
    for n in (0..nibbles).rev() {
        let mut nib = 0u8;
        for k in 0..4 {
            let i = n * 4 + k;
            if i < v.width() && v.bit(i) {
                nib |= 1 << k;
            }
        }
        s.push(char::from_digit(nib as u32, 16).unwrap());
    }
    s
}

/// Decodes a hex string into `width` bits.
///
/// # Errors
///
/// Rejects non-hex characters and values that set bits at or above
/// `width`. Shorter strings are zero-extended, so `"0"` is a valid
/// 128-bit value.
pub fn bits_from_hex(s: &str, width: u32) -> Result<Bits, String> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    let mut v = Bits::zeros(width);
    for (pos, ch) in s.chars().rev().enumerate() {
        let nib = ch
            .to_digit(16)
            .ok_or_else(|| format!("bad hex digit {ch:?}"))?;
        for k in 0..4 {
            if nib & (1 << k) != 0 {
                let i = pos as u32 * 4 + k;
                if i >= width {
                    return Err(format!("value {s:?} does not fit in {width} bit(s)"));
                }
                v.set_bit(i, true);
            }
        }
    }
    Ok(v)
}

/// Pulls a required string field out of a request object.
pub fn req_str<'a>(req: &'a Json, field: &str) -> Result<&'a str, String> {
    req.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field {field:?}"))
}

/// Pulls a required u64 field out of a request object.
pub fn req_u64(req: &Json, field: &str) -> Result<u64, String> {
    req.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {field:?}"))
}

/// Pulls an optional u64 field (absent → `default`).
pub fn opt_u64(req: &Json, field: &str, default: u64) -> Result<u64, String> {
    match req.get(field) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("non-integer field {field:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips_wide_values() {
        let mut v = Bits::zeros(100);
        v.set_bit(0, true);
        v.set_bit(63, true);
        v.set_bit(99, true);
        let s = bits_to_hex(&v);
        assert_eq!(s.len(), 25); // 100 bits → 25 nibbles
        assert_eq!(bits_from_hex(&s, 100).unwrap(), v);
        assert_eq!(bits_to_hex(&Bits::from_u64(0xAB, 8)), "ab");
        assert_eq!(bits_from_hex("0xAB", 8).unwrap().to_u64(), 0xAB);
    }

    #[test]
    fn hex_zero_extends_and_rejects_overflow() {
        assert_eq!(bits_from_hex("0", 128).unwrap(), Bits::zeros(128));
        assert_eq!(bits_from_hex("5", 3).unwrap().to_u64(), 5);
        assert!(bits_from_hex("f", 3).is_err()); // bit 3 set, width 3
        assert!(bits_from_hex("zz", 8).is_err());
    }

    #[test]
    fn envelopes_have_the_documented_shape() {
        let ok = ok_response(7);
        assert_eq!(ok.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(ok.get("ok").unwrap().as_bool(), Some(true));
        let e = err_response(8, codes::BUSY, "queue full");
        assert_eq!(e.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(e.get("error").unwrap().as_str(), Some(codes::BUSY));
    }
}
