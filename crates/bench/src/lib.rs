//! Shared harness for regenerating every table and figure of the paper.
//!
//! The binaries in `src/bin/` each reproduce one artifact:
//!
//! | binary          | artifact |
//! |-----------------|----------|
//! | `table1`        | Table I — design statistics and GEM mapping results |
//! | `table2`        | Table II — simulation speed and speed-ups |
//! | `fig3_boomerang`| Fig 3 — permutation/synchronization reduction |
//! | `fig5_repcut`   | Fig 5 — multi-stage replication-cost reduction |
//! | `obs4_longtail` | Observation 4 — long-tailed level histograms |
//!
//! Methodology (see DESIGN.md §3): CPU baselines (the event-driven
//! "commercial" stand-in and the levelized "Verilator" stand-in) are
//! measured in wall-clock on this machine; GPU engines (GEM itself and the
//! GL0AM-style gate-level baseline) are *modeled* — executed functionally
//! on the virtual GPU and converted to Hz with the calibrated A100/3090
//! timing models. Designs are ≈1/15 the gate count of the paper's, with
//! matching structure; intensive quantities (ratios, crossovers, layer
//! compression, replication percentages) are the reproduction targets.

use gem_core::{compile, CompileOptions, Compiled, GemSimulator};
use gem_designs::{Design, Workload};
use gem_netlist::Bits;
use gem_sim::{EaigSim, EventSim, LevelizedSim};
use gem_synth::PortBits;
use gem_vgpu::{Gl0amModel, GpuSpec, TimingModel};
use std::time::Instant;

/// Per-design harness configuration mirroring Table I's stages column.
pub fn compile_options_for(design_name: &str) -> CompileOptions {
    let stages = match design_name {
        // The paper uses 2 RepCut stages for the OpenPiton designs.
        "OpenPiton1" | "OpenPiton8" => 2,
        _ => 1,
    };
    CompileOptions {
        target_parts: 16,
        stages,
        core_width: 2048,
        ..Default::default()
    }
}

/// The evaluation suite at the given scale with per-design options.
pub fn suite(scale: u32) -> Vec<(Design, CompileOptions)> {
    gem_designs::all_designs(scale)
        .into_iter()
        .map(|d| {
            let opts = compile_options_for(&d.name);
            (d, opts)
        })
        .collect()
}

/// Applies named-port inputs to a bit-level input vector using the E-AIG
/// port layout.
pub fn apply_to_bitvec(layout: &[PortBits], inputs: &[(String, Bits)], bits: &mut [bool]) {
    for (name, v) in inputs {
        if let Some(pb) = layout.iter().find(|p| &p.name == name) {
            for i in 0..pb.width.min(v.width()) {
                bits[pb.lsb_index + i as usize] = v.bit(i);
            }
        }
    }
}

/// Wall-clock measurement of a closure executing `cycles` cycles; returns
/// simulated cycles per second.
pub fn measure_hz(cycles: u64, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..cycles {
        f();
    }
    cycles as f64 / t0.elapsed().as_secs_f64()
}

/// Speed of the event-driven ("commercial") baseline on a workload;
/// also returns the measured signal events per cycle.
pub fn measure_event(d: &Design, c: &Compiled, w: &Workload, cycles: u64) -> (f64, f64) {
    let widths = |n: &str| port_width(d, n);
    let mut stim = w.stimulus(&widths);
    let mut sim = EventSim::new(&c.eaig);
    let mut bits = vec![false; c.eaig.inputs().len()];
    for _ in 0..stim.warmup_cycles() {
        let ins = stim.next_inputs();
        apply_to_bitvec(&c.eaig_inputs, &ins, &mut bits);
        sim.cycle(&bits);
    }
    let ev0 = sim.events_total();
    let hz = measure_hz(cycles, || {
        let ins = stim.next_inputs();
        apply_to_bitvec(&c.eaig_inputs, &ins, &mut bits);
        sim.cycle(&bits);
    });
    let events_per_cycle = (sim.events_total() - ev0) as f64 / cycles as f64;
    (hz, events_per_cycle)
}

/// Speed of the levelized full-cycle ("Verilator") baseline.
///
/// `threads == 1` is measured in wall-clock. For `threads > 1` the speed
/// is *modeled* from the single-thread measurement: compute scales by
/// `threads − 1` (imbalance leaves one thread's worth on the table) and
/// each logic level costs one barrier (≈0.6 µs on a Xeon-class host).
/// Measuring a thread pool for real requires a multi-core host; this
/// harness must also run on single-core CI boxes, and the model
/// reproduces the paper's observed 2–4× scaling with its per-level
/// saturation.
pub fn measure_levelized(
    d: &Design,
    c: &Compiled,
    w: &Workload,
    threads: usize,
    cycles: u64,
) -> f64 {
    let widths = |n: &str| port_width(d, n);
    let mut stim = w.stimulus(&widths);
    let mut sim = LevelizedSim::new(&c.eaig, 1);
    let mut bits = vec![false; c.eaig.inputs().len()];
    for _ in 0..stim.warmup_cycles() {
        let ins = stim.next_inputs();
        apply_to_bitvec(&c.eaig_inputs, &ins, &mut bits);
        sim.cycle(&bits);
    }
    let hz1 = measure_hz(cycles, || {
        let ins = stim.next_inputs();
        apply_to_bitvec(&c.eaig_inputs, &ins, &mut bits);
        sim.cycle(&bits);
    });
    if threads <= 1 {
        return hz1;
    }
    const BARRIER_S: f64 = 0.6e-6;
    let t1 = 1.0 / hz1;
    let t_mt = t1 / (threads as f64 - 1.0) + sim.num_levels() as f64 * BARRIER_S;
    1.0 / t_mt
}

/// Modeled speed of the GL0AM-style gate-level GPU baseline (A100).
pub fn measure_gl0am(d: &Design, c: &Compiled, w: &Workload, cycles: u64) -> f64 {
    let widths = |n: &str| port_width(d, n);
    let mut stim = w.stimulus(&widths);
    let mut sim = Gl0amModel::new(&c.eaig);
    let mut bits = vec![false; c.eaig.inputs().len()];
    for _ in 0..stim.warmup_cycles() + cycles {
        let ins = stim.next_inputs();
        apply_to_bitvec(&c.eaig_inputs, &ins, &mut bits);
        sim.cycle(&bits);
    }
    TimingModel::new(GpuSpec::a100()).hz_total(sim.counters())
}

/// Modeled GEM speed on both GPUs. Runs a few functional cycles on the
/// virtual GPU to accumulate counters (they are cycle-invariant — GEM is
/// a full-cycle simulator).
pub fn measure_gem(d: &Design, c: &Compiled, w: &Workload, cycles: u64) -> (f64, f64) {
    let widths = |n: &str| port_width(d, n);
    let mut stim = w.stimulus(&widths);
    let mut sim = GemSimulator::new(c).expect("bitstream loads");
    for _ in 0..cycles.min(8) {
        for (name, v) in stim.next_inputs() {
            sim.set_input(&name, v);
        }
        sim.step();
    }
    let totals = sim.counters();
    (
        TimingModel::new(GpuSpec::a100()).hz_total(totals),
        TimingModel::new(GpuSpec::rtx3090()).hz_total(totals),
    )
}

/// Cross-checks the compiled design against the golden E-AIG interpreter
/// on the workload's stimulus for `cycles` cycles.
///
/// # Panics
///
/// Panics on any output mismatch — the harness refuses to report speed
/// numbers for an incorrect engine.
pub fn verify_gem(d: &Design, c: &Compiled, w: &Workload, cycles: u64) {
    let widths = |n: &str| port_width(d, n);
    let mut stim = w.stimulus(&widths);
    let mut gem = GemSimulator::new(c).expect("bitstream loads");
    let mut gold = EaigSim::new(&c.eaig);
    let mut bits = vec![false; c.eaig.inputs().len()];
    for cycle in 0..cycles {
        let ins = stim.next_inputs();
        apply_to_bitvec(&c.eaig_inputs, &ins, &mut bits);
        for (name, v) in &ins {
            gem.set_input(name, v.clone());
        }
        for (i, &bv) in bits.iter().enumerate() {
            gold.set_input(i, bv);
        }
        gold.eval();
        gem.step();
        for pb in &c.eaig_outputs {
            let got = gem.output(&pb.name);
            for i in 0..pb.width {
                let want = gold.output(pb.lsb_index + i as usize);
                assert_eq!(
                    got.bit(i),
                    want,
                    "design {} workload {} cycle {cycle}: output {}[{i}] mismatch",
                    d.name,
                    w.name,
                    pb.name
                );
            }
        }
        gold.step();
    }
}

fn port_width(d: &Design, name: &str) -> u32 {
    d.module
        .port(name)
        .map(|p| d.module.width(p.net))
        .unwrap_or(1)
}

/// Compiles a design with its harness options (convenience for binaries).
pub fn compile_design(d: &Design, opts: &CompileOptions) -> Compiled {
    compile(&d.module, opts).unwrap_or_else(|e| panic!("design {} failed to compile: {e}", d.name))
}

/// Formats a f64 Hz value with thousands separators, paper-style.
pub fn fmt_hz(hz: f64) -> String {
    let v = hz.round() as i64;
    let s = v.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Writes a JSON record under `target/gem-experiments/`.
pub fn write_record(name: &str, value: &gem_telemetry::Json) {
    let dir = std::path::Path::new("target/gem-experiments");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = std::fs::write(&path, value.to_string_pretty()) {
        gem_telemetry::warn!("could not write {}: {e}", path.display());
    } else {
        gem_telemetry::info!("wrote {}", path.display());
    }
}

/// Parses `--scale N` / `--cycles N` style flags from argv with defaults.
pub fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_hz_groups_thousands() {
        assert_eq!(fmt_hz(65385.2), "65,385");
        assert_eq!(fmt_hz(7.9), "8");
        assert_eq!(fmt_hz(1234567.0), "1,234,567");
    }

    #[test]
    fn smoke_suite_compiles_and_verifies() {
        // Tiny designs: compile, verify a few cycles, measure each engine.
        for (d, opts) in suite(0).into_iter().take(2) {
            let opts = CompileOptions {
                core_width: 1024,
                target_parts: 4,
                ..opts
            };
            let c = compile_design(&d, &opts);
            let w = &d.workloads[0];
            verify_gem(&d, &c, w, 10);
            let (hz_a, hz_r) = measure_gem(&d, &c, w, 4);
            assert!(hz_a > 0.0 && hz_r > 0.0);
            let (ev_hz, epc) = measure_event(&d, &c, w, 20);
            assert!(ev_hz > 0.0 && epc >= 0.0);
            let lv = measure_levelized(&d, &c, w, 1, 20);
            assert!(lv > 0.0);
            let gl = measure_gl0am(&d, &c, w, 20);
            assert!(gl > 0.0);
        }
    }
}
