//! **Extension E2** (paper future work: "multi-GPU support"): model GEM's
//! cycle time when partitions are sharded across several A100s connected
//! by NVLink. Instruction streaming divides across devices; device-wide
//! synchronizations become slower inter-GPU barriers — so bandwidth-bound
//! designs scale and synchronization-bound ones do not.
//!
//! Usage: `cargo run -p gem-bench --release --bin ext_multigpu`

use gem_bench::{compile_design, fmt_hz, suite, write_record};
use gem_core::GemSimulator;
use gem_vgpu::{GpuSpec, KernelCounters, TimingModel};

fn main() {
    println!("EXTENSION E2 — multi-GPU scaling model (A100 + NVLink)");
    println!(
        "{:<22} {:>11} {:>11} {:>11} {:>11}",
        "Design", "1 GPU", "2 GPUs", "4 GPUs", "8 GPUs"
    );
    let model = TimingModel::new(GpuSpec::a100());
    let mut records = Vec::new();
    let mut show = |name: &str, c: &KernelCounters| {
        let hz: Vec<f64> = [1u32, 2, 4, 8]
            .iter()
            .map(|&n| model.multi_gpu_hz(c, n))
            .collect();
        println!(
            "{:<22} {:>11} {:>11} {:>11} {:>11}",
            name,
            fmt_hz(hz[0]),
            fmt_hz(hz[1]),
            fmt_hz(hz[2]),
            fmt_hz(hz[3])
        );
        records.push(gem_telemetry::json!({
            "design": name, "hz_1": hz[0], "hz_2": hz[1], "hz_4": hz[2], "hz_8": hz[3],
        }));
    };
    // Our harness designs, measured on the virtual GPU.
    for (d, opts) in suite(1) {
        let c = compile_design(&d, &opts);
        let mut sim = GemSimulator::new(&c).expect("loads");
        for _ in 0..4 {
            sim.step();
        }
        let per_cycle = sim.counters().per_cycle().expect("ran");
        show(&d.name, &per_cycle);
    }
    // The paper's largest design, reconstructed from its published
    // bitstream size and partition count (162.4 MB, 947 blocks, 2 stages).
    let paper_op8 = KernelCounters {
        global_bytes: 162_400_000,
        global_transactions: 162_400_000 / 128,
        shared_accesses: 947 * 8192 * 2 * 13,
        alu_ops: 947 * 8191 * 13,
        block_syncs: 947 * 14 * 13,
        device_syncs: 4,
        blocks_run: 947,
        blocks_skipped: 0,
        cycles: 1,
    };
    show("OpenPiton8 (paper-sz)", &paper_op8);
    println!();
    println!("Bandwidth-bound designs scale toward linear; small designs are pinned by");
    println!("the (slower) inter-GPU barrier — the quantitative reason multi-GPU is");
    println!("future work rather than a free win.");
    write_record("ext_multigpu", &gem_telemetry::Json::Array(records));
}
