//! Regenerates **Observation 4**: the long-tailed gate-per-level
//! distribution that motivates the boomerang executor.
//!
//! For each design, prints the logic depth, the level index by which half
//! of all gates have appeared, the fraction of gates in the shallowest
//! quarter of levels, and a coarse histogram sparkline.
//!
//! Usage: `cargo run -p gem-bench --release --bin obs4_longtail [--scale N]`

use gem_bench::{arg, write_record};
use gem_synth::{synthesize, SynthOptions};

fn sparkline(hist: &[u64], buckets: usize) -> String {
    if hist.is_empty() {
        return String::new();
    }
    let chunk = hist.len().div_ceil(buckets);
    let sums: Vec<u64> = hist.chunks(chunk).map(|c| c.iter().sum()).collect();
    let max = *sums.iter().max().unwrap_or(&1);
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    sums.iter()
        .map(|&s| {
            let i = (s * 7).checked_div(max).unwrap_or(0) as usize;
            BARS[i]
        })
        .collect()
}

fn main() {
    let scale = arg("--scale", 1) as u32;
    println!("OBSERVATION 4 — long-tailed gates-per-level distributions (scale {scale})");
    println!(
        "{:<12} {:>7} {:>7} {:>12} {:>14}  histogram (shallow→deep)",
        "Design", "Gates", "Depth", "HalfAtLevel", "Front25%Gates"
    );
    let mut records = Vec::new();
    for d in gem_designs::all_designs(scale) {
        let synth = synthesize(&d.module, &SynthOptions::default()).expect("synthesizable");
        let levels = synth.eaig.levels();
        let stats = levels.stats();
        println!(
            "{:<12} {:>7} {:>7} {:>12} {:>13.1}%  {}",
            d.name,
            stats.gates,
            stats.depth,
            stats.levels_for_half_gates,
            stats.frontier_fraction * 100.0,
            sparkline(&levels.histogram, 32),
        );
        records.push(gem_telemetry::json!({
            "design": d.name.as_str(),
            "gates": stats.gates,
            "depth": stats.depth,
            "half_at_level": stats.levels_for_half_gates,
            "frontier_fraction": stats.frontier_fraction,
            "histogram": levels.histogram,
        }));
    }
    println!();
    println!("Paper: \"A large portion of the gates reside in a few frontier levels whereas");
    println!("only a few gates are accountable for the rest of the levels.\"");
    write_record("obs4_longtail", &gem_telemetry::Json::Array(records));
}
