//! Regenerates **Fig 5**: multi-stage partitioning slashes RepCut's
//! replication cost at GPU-scale partition counts.
//!
//! Sweeps the partition count for single-stage and two-stage RepCut on
//! the design with the deepest *shared* logic — the RocketChip-like CPU,
//! whose vector-MAC unit and register-file decoders sit under every sink
//! — printing the replication-cost curve of Fig 5. (Designs whose sharing
//! is only at sources, like the NVDLA lanes, do not replicate and do not
//! need stages; the CPU is the honest stress case.) Also reprints the
//! RepCut reference points from the paper (1.30 % at 8 parts, 10.95 % at
//! 48) and GEM's headline (>200 % single-stage at 216 parts → <3 % with 2
//! stages).
//!
//! Usage: `cargo run -p gem-bench --release --bin fig5_repcut [--scale N]`

use gem_bench::{arg, write_record};
use gem_partition::{partition, PartitionOptions};

fn main() {
    let scale = arg("--scale", 1) as u32;
    let _ = scale;
    let design = gem_designs::rocket_like();
    let synth = gem_synth::synthesize(&design.module, &gem_synth::SynthOptions::default())
        .expect("synthesizable");
    let g = &synth.eaig;
    println!(
        "FIG 5 — Replication cost vs partition count ({} gates, design {})",
        synth.stats.gates, design.name
    );
    println!(
        "{:>7} {:>16} {:>16} {:>16}",
        "#Parts", "1-stage repl%", "2-stage repl%", "3-stage repl%"
    );
    let mut records = Vec::new();
    for parts in [2usize, 4, 8, 16, 24, 32] {
        let p1 = partition(
            g,
            &PartitionOptions {
                target_parts: parts,
                stages: 1,
                ..Default::default()
            },
        );
        let p2 = partition(
            g,
            &PartitionOptions {
                target_parts: parts,
                stages: 2,
                ..Default::default()
            },
        );
        let p3 = partition(
            g,
            &PartitionOptions {
                target_parts: parts,
                stages: 3,
                ..Default::default()
            },
        );
        println!(
            "{:>7} {:>15.2}% {:>15.2}% {:>15.2}%",
            parts,
            p1.replication_cost() * 100.0,
            p2.replication_cost() * 100.0,
            p3.replication_cost() * 100.0,
        );
        records.push(gem_telemetry::json!({
            "parts": parts,
            "single_stage_replication": p1.replication_cost(),
            "two_stage_replication": p2.replication_cost(),
            "three_stage_replication": p3.replication_cost(),
            "single_stage_actual_parts": p1.max_parts(),
            "two_stage_actual_parts": p2.max_parts(),
        }));
    }
    println!();
    println!("Reference points:");
    println!("  RepCut (paper [17]): 1.30% at 8 threads, 10.95% at 48 threads");
    println!("  GEM paper: >200% single-stage at 216 blocks on a 500K-gate design,");
    println!("             <3% with one extra stage (1 added synchronization)");
    write_record("fig5_repcut", &gem_telemetry::Json::Array(records));
}
