//! **Parallel engine** — serial vs multi-threaded execution of the
//! virtual GPU on the largest evaluation design.
//!
//! Measures the oblivious full-cycle loop in three engine shapes
//! (serial, 2 threads, 4 threads) and reports for each:
//!
//! * **wall-clock** simulated cycles/sec on this host (only meaningful
//!   on a multi-core machine — CI boxes are often single-core, where
//!   pool overhead makes the wall-clock ratio ≤ 1), and
//! * **modeled** speedup: per-core work is taken from the measured
//!   per-partition counters (ALU ops + shared accesses + global
//!   transactions) and scheduled onto N workers per pipeline stage with
//!   an LPT (longest-processing-time) assignment; the speedup is
//!   Σ work / Σ makespan. This mirrors the repository's GPU-Hz
//!   methodology (DESIGN.md §3): the counters are exact, only the
//!   host-time conversion is a model.
//!
//! Before any number is reported the binary *proves* the determinism
//! contract on this design: serial and 4-thread runs must produce
//! bit-identical outputs and identical merged counters every cycle.
//!
//! Records `BENCH_parallel.json` (plus the usual
//! `target/gem-experiments/ext_parallel.json`).
//!
//! Usage: `cargo run -p gem-bench --release --bin ext_parallel
//!         [--scale 1] [--cycles 256] [--threads 4]`

use gem_bench::{arg, compile_design, fmt_hz, suite, write_record};
use gem_core::GemSimulator;
use gem_telemetry::Json;
use std::time::Instant;

/// LPT makespan of `works` on `bins` identical workers.
fn lpt_makespan(works: &mut [u64], bins: usize) -> u64 {
    works.sort_unstable_by(|a, b| b.cmp(a));
    let mut load = vec![0u64; bins.max(1)];
    for &w in works.iter() {
        let min = load
            .iter()
            .enumerate()
            .min_by_key(|(_, &l)| l)
            .map(|(i, _)| i)
            .unwrap();
        load[min] += w;
    }
    load.into_iter().max().unwrap_or(0)
}

fn main() {
    let scale = arg("--scale", 1) as u32;
    let cycles = arg("--cycles", 256);
    let max_threads = arg("--threads", 4) as usize;

    // Largest design in the suite by synthesized gate count.
    let (design, opts) = suite(scale)
        .into_iter()
        .max_by_key(|(d, _)| d.module.cells().len())
        .expect("suite is non-empty");
    println!("ext_parallel: design {} (scale {scale})", design.name);
    let compiled = compile_design(&design, &opts);
    let r = &compiled.report;
    println!(
        "  {} gates, {} stage(s) x {} partition(s), {} layer(s)",
        r.gates, r.stages, r.parts, r.layers
    );

    let widths = |n: &str| {
        design
            .module
            .port(n)
            .map(|p| design.module.width(p.net))
            .unwrap_or(1)
    };
    let workload = &design.workloads[0];

    // --- determinism proof (refuse to benchmark a wrong engine) -------
    {
        let mut stim_a = workload.stimulus(&widths);
        let mut stim_b = workload.stimulus(&widths);
        let mut serial = GemSimulator::new(&compiled).expect("loads");
        let mut par = GemSimulator::new(&compiled).expect("loads");
        serial.set_threads(1);
        par.set_threads(max_threads.max(2));
        for cycle in 0..64u64 {
            for (name, v) in stim_a.next_inputs() {
                serial.set_input(&name, v);
            }
            for (name, v) in stim_b.next_inputs() {
                par.set_input(&name, v);
            }
            serial.step();
            par.step();
            for p in compiled.io.outputs.iter() {
                assert_eq!(
                    serial.output(&p.name),
                    par.output(&p.name),
                    "cycle {cycle}: output {} diverged between engines",
                    p.name
                );
            }
        }
        assert_eq!(
            serial.counters(),
            par.counters(),
            "merged counters diverged between engines"
        );
        println!(
            "  determinism: serial == {}-thread over 64 cycles ✓",
            max_threads.max(2)
        );
    }

    // --- per-core work profile for the modeled speedup ----------------
    // One instrumented run collects the per-partition counters; the
    // profile is identical for every engine shape (proved above).
    let mut profile = GemSimulator::new(&compiled).expect("loads");
    profile.set_threads(1);
    let mut stim = workload.stimulus(&widths);
    for _ in 0..cycles.min(32) {
        for (name, v) in stim.next_inputs() {
            profile.set_input(&name, v);
        }
        profile.step();
    }
    let bd = profile.breakdown();
    let work_of =
        |c: &gem_vgpu::KernelCounters| c.alu_ops + c.shared_accesses + c.global_transactions;
    let stages: Vec<Vec<u64>> = (0..r.stages)
        .map(|s| {
            bd.partitions
                .iter()
                .filter(|p| p.stage == s)
                .map(|p| work_of(&p.counters))
                .collect()
        })
        .collect();
    let serial_work: u64 = stages.iter().flatten().sum();

    let mut rec = Json::object();
    rec.set("design", design.name.clone());
    rec.set("gates", r.gates as u64);
    rec.set("stages", r.stages as u64);
    rec.set("partitions", r.parts as u64);
    rec.set("cycles", cycles);
    rec.set(
        "host_threads",
        std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
    );

    let mut rows = Vec::new();
    let mut serial_hz = 0.0;
    let mut speedup_modeled_at_max = 0.0;
    let mut speedup_wall_at_max = 0.0;
    for threads in [1usize, 2, max_threads.max(2)] {
        let mut sim = GemSimulator::new(&compiled).expect("loads");
        sim.set_threads(threads);
        let mut stim = workload.stimulus(&widths);
        // Warmup (pool spin-up, caches).
        for _ in 0..16 {
            for (name, v) in stim.next_inputs() {
                sim.set_input(&name, v);
            }
            sim.step();
        }
        let t0 = Instant::now();
        for _ in 0..cycles {
            for (name, v) in stim.next_inputs() {
                sim.set_input(&name, v);
            }
            sim.step();
        }
        let wall_hz = cycles as f64 / t0.elapsed().as_secs_f64();
        if threads == 1 {
            serial_hz = wall_hz;
        }
        // Modeled: LPT makespan per stage on `threads` workers.
        let makespan: u64 = stages
            .iter()
            .map(|works| lpt_makespan(&mut works.clone(), threads))
            .sum();
        let modeled_speedup = serial_work as f64 / makespan.max(1) as f64;
        let es = sim.exec_stats();
        println!(
            "  {threads} thread(s): {} cycles/s wall ({:.2}x), {:.2}x modeled, {} barriers, {:.1} ms barrier wait",
            fmt_hz(wall_hz),
            wall_hz / serial_hz,
            modeled_speedup,
            es.stage_barriers,
            es.barrier_wait_nanos as f64 / 1e6,
        );
        let mut row = Json::object();
        row.set("threads", threads as u64);
        row.set("wall_cycles_per_sec", wall_hz);
        row.set("wall_speedup", wall_hz / serial_hz);
        row.set("modeled_speedup", modeled_speedup);
        row.set("stage_barriers", es.stage_barriers);
        row.set("barrier_wait_nanos", es.barrier_wait_nanos);
        rows.push(row);
        if threads == max_threads.max(2) {
            speedup_modeled_at_max = modeled_speedup;
            speedup_wall_at_max = wall_hz / serial_hz;
        }
    }
    rec.set("engines", Json::Array(rows));
    // The headline number: modeled cycles/sec ratio at max threads
    // (wall-clock is reported alongside; on a single-core host only the
    // modeled figure is meaningful — same convention as every GPU-Hz
    // number in this repository).
    rec.set("speedup_modeled", speedup_modeled_at_max);
    rec.set("speedup_wall", speedup_wall_at_max);

    write_record("ext_parallel", &rec);
    if let Err(e) = std::fs::write("BENCH_parallel.json", rec.to_string_pretty()) {
        eprintln!("could not write BENCH_parallel.json: {e}");
    } else {
        println!("  baseline recorded in BENCH_parallel.json");
    }
    assert!(
        speedup_modeled_at_max >= 2.0,
        "modeled speedup at {} threads fell below 2x: {speedup_modeled_at_max:.2}",
        max_threads.max(2)
    );
}
