//! Regenerates the **Fig 3** claim: the boomerang-shaped executor reduces
//! the number of bit permutations and synchronizations inside a thread
//! block by more than 5× compared to plain levelized execution.
//!
//! For each design the levelized executor needs one permutation +
//! synchronization per logic level of each partition; the boomerang
//! executor needs one per *layer*. The table reports both and the ratio.
//!
//! Usage: `cargo run -p gem-bench --release --bin fig3_boomerang [--scale N]`

use gem_bench::{arg, compile_design, suite, write_record};
use gem_place::{place_partition, PlaceOptions};

fn main() {
    let scale = arg("--scale", 1) as u32;
    println!("FIG 3 — Permutations/synchronizations per cycle per core: levelized vs boomerang (scale {scale})");
    println!(
        "{:<12} {:>6} {:>16} {:>16} {:>10}",
        "Design", "Cores", "Levelized perms", "Boomerang perms", "Reduction"
    );
    let mut records = Vec::new();
    for (d, opts) in suite(scale) {
        let c = compile_design(&d, &opts);
        // Place at the paper's full 8192-bit core width: a boomerang layer
        // there has 13 fold levels, so it absorbs deeper slices of logic
        // per permutation than the narrow harness cores.
        let place_opts = PlaceOptions {
            core_width: 8192,
            ..Default::default()
        };
        let mut levelized_perms = 0u64; // one per logic level per core
        let mut boomerang_perms = 0u64; // one per layer per core
        let mut cores = 0u64;
        for stage in &c.partitioning.stages {
            for p in &stage.partitions {
                let (prog, stats) =
                    place_partition(&c.eaig, p, &place_opts).expect("placed during compile");
                levelized_perms += u64::from(stats.depth);
                boomerang_perms += prog.permutations() as u64;
                cores += 1;
            }
        }
        let ratio = levelized_perms as f64 / boomerang_perms.max(1) as f64;
        println!(
            "{:<12} {:>6} {:>16} {:>16} {:>9.1}x",
            d.name, cores, levelized_perms, boomerang_perms, ratio
        );
        records.push(gem_telemetry::json!({
            "design": d.name.as_str(),
            "cores": cores,
            "levelized_permutations": levelized_perms,
            "boomerang_permutations": boomerang_perms,
            "reduction": ratio,
        }));
    }
    println!();
    println!("Paper claim: \"boomerang layer reduces the number of bit permutations and");
    println!("synchronizations inside a GPU thread block by more than 5x\"");
    write_record("fig3_boomerang", &gem_telemetry::Json::Array(records));
}
