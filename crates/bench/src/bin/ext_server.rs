//! **Server baseline** — throughput of the multi-session simulation
//! service (`gem-server`) under its designed-for load: several clients
//! of the *same* design, so the compile cache collapses N compiles into
//! one and the worker pool interleaves the sessions' cycles.
//!
//! Four concurrent sessions of an NVDLA-like MAC datapath are driven
//! over real TCP loopback; the binary reports requests/sec and
//! simulated cycles/sec, cross-checks the cache (exactly one compile),
//! and records the baseline in `BENCH_server.json` (plus the usual
//! `target/gem-experiments/ext_server.json`).
//!
//! Usage: `cargo run -p gem-bench --release --bin ext_server
//!         [--sessions 4] [--reqs 64] [--cycles 16]`

use gem_bench::{arg, fmt_hz, write_record};
use gem_server::{GemClient, Server, ServerConfig};
use gem_telemetry::{Histogram, Json};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// The NVDLA stand-in's inner loop, expressed in the Verilog subset: a
/// bank of four 8-bit multiply–accumulate lanes feeding a 32-bit
/// accumulator tree — the same shape as `gem_designs::nvdla_like`, sized
/// for a service benchmark (compile cost is paid once; cycle cost is
/// what the pool schedules).
const NVDLA_MAC: &str = "
module nvdla_mac(input clk, input rst, input start,
                 input [31:0] act, input [31:0] wgt,
                 output reg [31:0] acc, output [15:0] p0);
  wire [15:0] m0;
  wire [15:0] m1;
  wire [15:0] m2;
  wire [15:0] m3;
  assign m0 = {8'd0, act[7:0]}   * {8'd0, wgt[7:0]};
  assign m1 = {8'd0, act[15:8]}  * {8'd0, wgt[15:8]};
  assign m2 = {8'd0, act[23:16]} * {8'd0, wgt[23:16]};
  assign m3 = {8'd0, act[31:24]} * {8'd0, wgt[31:24]};
  wire [31:0] sum;
  assign sum = {16'd0, m0} + {16'd0, m1} + {16'd0, m2} + {16'd0, m3};
  assign p0 = m0;
  always @(posedge clk) begin
    if (rst) acc <= 32'd0;
    else if (start) acc <= acc + sum;
  end
endmodule
";

fn wire_opts() -> Json {
    let mut o = Json::object();
    o.set("width", 512u64);
    o.set("parts", 4u64);
    o.set("stages", 1u64);
    o
}

fn metric(stats: &Json, family: &str) -> u64 {
    let Some(families) = stats
        .get("metrics")
        .and_then(|m| m.get("families"))
        .and_then(Json::as_array)
    else {
        return 0;
    };
    families
        .iter()
        .filter(|f| f.get("name").and_then(Json::as_str) == Some(family))
        .filter_map(|f| f.get("samples").and_then(Json::as_array))
        .flatten()
        .filter_map(|s| s.get("value").and_then(Json::as_f64))
        .sum::<f64>() as u64
}

/// One client session: open, stream `reqs` step requests of `cycles`
/// each (retrying politely on backpressure), peek, close. Returns
/// (requests sent, cycles simulated, per-step latency distribution).
fn drive_session(
    addr: std::net::SocketAddr,
    lane: u64,
    reqs: u64,
    cycles: u64,
) -> (u64, u64, Histogram) {
    let mut c = GemClient::connect(addr).expect("connect");
    let opened = c.open(NVDLA_MAC, wire_opts()).expect("open");
    let session = opened.get("session").and_then(Json::as_u64).expect("id");
    let mut sent = 2; // open + the close below
    c.poke(session, "rst", "0").expect("poke rst");
    sent += 1;
    // Client-observed step latency (including the wire round trip, which
    // the server-side gem_server_request_latency_micros excludes).
    let mut latency = Histogram::new();
    for r in 0..reqs {
        let act = format!("{:08x}", (r * 0x01010101 + lane * 0x11) & 0xffff_ffff);
        let wgt = format!("{:08x}", (r * 0x0f0f_0f01 + lane) & 0xffff_ffff);
        let pokes = vec![("start", "1"), ("act", act.as_str()), ("wgt", wgt.as_str())];
        loop {
            sent += 1;
            let t0 = Instant::now();
            match c.step(session, cycles, pokes.clone()) {
                Ok(_) => {
                    latency.observe(t0.elapsed().as_nanos() as f64 / 1e3);
                    break;
                }
                Err(e) if e.is_busy() => std::thread::sleep(Duration::from_millis(2)),
                Err(e) => panic!("step failed: {e}"),
            }
        }
    }
    let acc = c.peek(session, "acc").expect("peek acc");
    sent += 1;
    assert!(!acc.is_empty());
    c.close(session).expect("close");
    (sent, reqs * cycles, latency)
}

fn main() {
    let sessions = arg("--sessions", 4).max(1);
    let reqs = arg("--reqs", 64).max(1);
    let cycles = arg("--cycles", 16).max(1);

    println!("SERVER BASELINE — {sessions} concurrent NVDLA-like sessions over TCP loopback");

    let server = Server::bind(ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    let metrics = server.metrics();
    let server = std::thread::spawn(move || server.run());

    let start_line = Arc::new(Barrier::new(sessions as usize));
    let t0 = Instant::now();
    let drivers: Vec<_> = (0..sessions)
        .map(|lane| {
            let start_line = Arc::clone(&start_line);
            std::thread::spawn(move || {
                start_line.wait();
                drive_session(addr, lane, reqs, cycles)
            })
        })
        .collect();
    let mut total_reqs = 0u64;
    let mut total_cycles = 0u64;
    let mut latency = Histogram::new();
    for d in drivers {
        let (r, c, h) = d.join().expect("driver thread");
        total_reqs += r;
        total_cycles += c;
        latency.merge(&h);
    }
    let wall = t0.elapsed().as_secs_f64();

    let mut c = GemClient::connect(addr).expect("connect for stats");
    let stats = c.stats().expect("stats");
    c.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");

    let compiles = metric(&stats, "gem_server_compiles_total");
    let hits = metric(&stats, "gem_server_cache_hits_total");
    assert_eq!(compiles, 1, "all sessions must share one compile");
    assert_eq!(hits, sessions - 1, "every duplicate open must cache-hit");
    assert_eq!(
        metrics
            .cycles_total
            .load(std::sync::atomic::Ordering::Relaxed),
        total_cycles,
        "server-side cycle count must match what the clients drove"
    );

    let req_per_s = total_reqs as f64 / wall;
    let cyc_per_s = total_cycles as f64 / wall;
    let (p50, p95, p99) = (
        latency.quantile(0.50),
        latency.quantile(0.95),
        latency.quantile(0.99),
    );
    println!(
        "  {total_reqs} requests, {total_cycles} cycles in {wall:.3} s \
         → {} req/s, {} cycles/s (1 compile, {hits} cache hits)",
        fmt_hz(req_per_s),
        fmt_hz(cyc_per_s)
    );
    println!(
        "  step latency (client-observed): p50 {:.0} us, p95 {:.0} us, p99 {:.0} us \
         over {} samples",
        p50,
        p95,
        p99,
        latency.count()
    );

    let mut rec = Json::object();
    rec.set("experiment", "ext_server");
    rec.set("design", "nvdla_mac");
    rec.set("sessions", sessions);
    rec.set("requests_per_session", reqs);
    rec.set("cycles_per_request", cycles);
    rec.set("wall_seconds", wall);
    rec.set("requests_total", total_reqs);
    rec.set("cycles_total", total_cycles);
    rec.set("requests_per_sec", req_per_s);
    rec.set("cycles_per_sec", cyc_per_s);
    rec.set("compiles_total", compiles);
    rec.set("cache_hits_total", hits);
    let mut lat = Json::object();
    lat.set("p50_micros", p50);
    lat.set("p95_micros", p95);
    lat.set("p99_micros", p99);
    lat.set("mean_micros", latency.mean());
    lat.set("samples", latency.count());
    rec.set("step_latency", lat);
    write_record("ext_server", &rec);
    if let Err(e) = std::fs::write("BENCH_server.json", rec.to_string_pretty()) {
        eprintln!("could not write BENCH_server.json: {e}");
    } else {
        println!("  baseline recorded in BENCH_server.json");
    }
}
