//! Regenerates **Table I**: design statistics and GEM mapping results.
//!
//! Usage: `cargo run -p gem-bench --release --bin table1 [--scale N]`
//!
//! Columns match the paper: #E-AIG gates, #levels, #stages, #layers,
//! #parts, bitstream size. Designs are scaled-down structural analogues
//! (see `gem-designs`); compare *ratios* (layers vs levels, bytes per
//! gate), not absolute magnitudes.

use gem_bench::{compile_design, suite, write_record};

fn main() {
    let scale = gem_bench::arg("--scale", 1) as u32;
    println!("TABLE I — Design statistics and GEM mapping results (scale {scale})");
    println!(
        "{:<12} {:>12} {:>8} {:>7} {:>7} {:>6} {:>12} {:>8} {:>6}",
        "Design",
        "#E-AIG Gates",
        "#Levels",
        "#Stages",
        "#Layers",
        "#Parts",
        "Bitstream",
        "Repl%",
        "L/l"
    );
    let mut records = Vec::new();
    for (d, opts) in suite(scale) {
        let t0 = std::time::Instant::now();
        let c = compile_design(&d, &opts);
        let r = &c.report;
        let compression = r.levels as f64 / r.layers.max(1) as f64;
        println!(
            "{:<12} {:>12} {:>8} {:>7} {:>7} {:>6} {:>9} KB {:>7.2} {:>6.1}",
            d.name,
            r.gates,
            r.levels,
            r.stages,
            r.layers,
            r.parts,
            r.bitstream_bytes / 1024,
            r.replication_cost * 100.0,
            compression,
        );
        records.push(gem_telemetry::json!({
            "design": d.name.as_str(),
            "gates": r.gates,
            "levels": r.levels,
            "stages": r.stages,
            "layers": r.layers,
            "parts": r.parts,
            "bitstream_bytes": r.bitstream_bytes,
            "replication_cost": r.replication_cost,
            "ram_blocks": r.ram_blocks,
            "polyfilled_mem_bits": r.polyfilled_mem_bits,
            "compile_seconds": t0.elapsed().as_secs_f64(),
        }));
    }
    println!();
    println!("Paper reference (full-scale designs):");
    println!("  NVDLA 668,746 g / 62 lv / 1 st / 9 ly / 52 p / 11.2 MB");
    println!("  RocketChip 346,687 g / 82 lv / 1 st / 13 ly / 39 p / 9.2 MB");
    println!("  Gemmini 1,831,381 g / 148 lv / 1 st / 19 ly / 143 p / 44.4 MB");
    println!("  OpenPiton1 682,646 g / 66 lv / 2 st / 10 ly / 119 p / 18.4 MB");
    println!("  OpenPiton8 5,479,795 g / 66 lv / 2 st / 13 ly / 947 p / 162.4 MB");
    println!("  (layers are 6-8x fewer than levels in every row)");
    write_record("table1", &gem_telemetry::Json::Array(records));
}
