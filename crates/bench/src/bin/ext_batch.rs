//! **Lane-batched multi-stimulus execution** — aggregate throughput of
//! one 64-lane batch simulator vs independent single-lane runs.
//!
//! The lane subsystem packs up to 64 independent stimulus streams into
//! the bit-lanes of the vGPU's 64-bit state words (`gem_place::Word`),
//! so one `step()` advances 64 simulations (GATSPI/RTLflow-style data
//! parallelism; see docs/BATCH.md). This binary measures what that buys
//! on the largest evaluation design:
//!
//! * **single-lane baseline**: one simulator, one stream — wall-clock
//!   simulated cycles/sec,
//! * **batch engines** at 8, 32, and 64 lanes: one simulator, N streams
//!   — wall-clock *aggregate* lane-cycles/sec (steps/sec × lanes),
//! * **bank reference**: 64 independent single-lane simulators stepped
//!   round-robin — the honest no-lane way to run 64 streams.
//!
//! Before any number is reported the binary *proves* lane equivalence
//! on this design, across the whole execution matrix: a reference
//! per-lane trace is recorded from 64 independent single-lane runs,
//! and a full-width 64-lane batch must reproduce it bit for bit under
//! `{interpreted, compiled} × {1, 4} threads`.
//!
//! Records `BENCH_batch.json` (plus the usual
//! `target/gem-experiments/ext_batch.json`). The recorded run must show
//! the 64-lane aggregate at ≥ 1.5x the 32-lane aggregate (the word
//! lift's payoff) and ≥ 8x the single-lane baseline.
//!
//! Usage: `cargo run -p gem-bench --release --bin ext_batch
//!         [--scale 1] [--cycles 256]`

use gem_bench::{arg, compile_design, fmt_hz, suite, write_record};
use gem_core::{ExecBackend, GemSimulator};
use gem_netlist::Bits;
use gem_sim::FuzzRng;
use gem_telemetry::Json;
use std::time::Instant;

const LANES: usize = GemSimulator::MAX_LANES as usize;
const PROOF_CYCLES: u64 = 48;

fn main() {
    let scale = arg("--scale", 1) as u32;
    let cycles = arg("--cycles", 256);

    let (design, opts) = suite(scale)
        .into_iter()
        .max_by_key(|(d, _)| d.module.cells().len())
        .expect("suite is non-empty");
    println!("ext_batch: design {} (scale {scale})", design.name);
    let compiled = compile_design(&design, &opts);
    let r = &compiled.report;
    println!(
        "  {} gates, {} stage(s) x {} partition(s), {} layer(s)",
        r.gates, r.stages, r.parts, r.layers
    );

    let inputs: Vec<(String, u32)> = design
        .module
        .inputs()
        .map(|p| (p.name.clone(), design.module.width(p.net)))
        .collect();
    // One deterministic stimulus stream per lane, all distinct.
    let lane_rng = |lane: usize| FuzzRng::new(0xBA7C_4000 ^ lane as u64);

    // --- lane-equivalence proof (refuse to benchmark a wrong engine) --
    // Reference trace: 64 independent single-lane runs, recorded once
    // (the stimulus is deterministic, so one recording serves every
    // batch configuration).
    let reference: Vec<Vec<Vec<Bits>>> = {
        let mut bank: Vec<GemSimulator> = (0..LANES)
            .map(|_| GemSimulator::new(&compiled).expect("loads"))
            .collect();
        let mut rngs: Vec<FuzzRng> = (0..LANES).map(lane_rng).collect();
        let mut trace = Vec::new();
        for _ in 0..PROOF_CYCLES {
            for (lane, rng) in rngs.iter_mut().enumerate() {
                for (name, width) in &inputs {
                    bank[lane].set_input(name, rng.bits(*width));
                }
            }
            for sim in bank.iter_mut() {
                sim.step();
            }
            trace.push(
                bank.iter()
                    .map(|sim| {
                        compiled
                            .io
                            .outputs
                            .iter()
                            .map(|p| sim.output(&p.name))
                            .collect()
                    })
                    .collect(),
            );
        }
        trace
    };
    // The full-width batch must reproduce the reference per lane, under
    // both backends and both thread counts.
    for backend in [ExecBackend::Interpreted, ExecBackend::Compiled] {
        for threads in [1usize, 4] {
            let mut batch = GemSimulator::new(&compiled).expect("loads");
            batch.set_backend(backend);
            batch.set_threads(threads);
            batch.set_lanes(LANES as u32).expect("64 lanes");
            let mut rngs: Vec<FuzzRng> = (0..LANES).map(lane_rng).collect();
            for (cycle, want) in reference.iter().enumerate() {
                for (lane, rng) in rngs.iter_mut().enumerate() {
                    for (name, width) in &inputs {
                        batch.set_input_lane(name, lane as u32, rng.bits(*width));
                    }
                }
                batch.step();
                for (pi, p) in compiled.io.outputs.iter().enumerate() {
                    for (lane, lane_want) in want.iter().enumerate() {
                        assert_eq!(
                            batch.output_lane(&p.name, lane as u32),
                            lane_want[pi],
                            "{} backend, {threads} thread(s), cycle {cycle}: lane {lane} \
                             diverged from its independent run on {}",
                            backend.name(),
                            p.name
                        );
                    }
                }
            }
        }
    }
    println!(
        "  equivalence: {LANES}-lane batch == {LANES} independent runs over \
         {PROOF_CYCLES} cycles, {{interpreted, compiled}} x {{1, 4}} threads ✓"
    );

    let mut rec = Json::object();
    rec.set("design", design.name.clone());
    rec.set("gates", r.gates as u64);
    rec.set("cycles", cycles);
    rec.set("max_lanes", LANES as u64);

    // --- single-lane baseline -----------------------------------------
    let single_hz = {
        let mut sim = GemSimulator::new(&compiled).expect("loads");
        let mut rng = lane_rng(0);
        let mut drive_step = |sim: &mut GemSimulator| {
            for (name, width) in &inputs {
                sim.set_input(name, rng.bits(*width));
            }
            sim.step();
        };
        for _ in 0..16 {
            drive_step(&mut sim);
        }
        let t0 = Instant::now();
        for _ in 0..cycles {
            drive_step(&mut sim);
        }
        cycles as f64 / t0.elapsed().as_secs_f64()
    };
    println!("  1 lane (baseline): {} cycles/s", fmt_hz(single_hz));
    rec.set("single_lane_cycles_per_sec", single_hz);

    // --- batch engines -------------------------------------------------
    let mut rows = Vec::new();
    let mut aggregates: Vec<(usize, f64)> = Vec::new();
    for lanes in [8usize, 32, LANES] {
        let mut sim = GemSimulator::new(&compiled).expect("loads");
        sim.set_lanes(lanes as u32).expect("lane count");
        let mut rngs: Vec<FuzzRng> = (0..lanes).map(lane_rng).collect();
        let mut drive_step = |sim: &mut GemSimulator| {
            for (lane, rng) in rngs.iter_mut().enumerate() {
                for (name, width) in &inputs {
                    sim.set_input_lane(name, lane as u32, rng.bits(*width));
                }
            }
            sim.step();
        };
        for _ in 0..16 {
            drive_step(&mut sim);
        }
        let t0 = Instant::now();
        for _ in 0..cycles {
            drive_step(&mut sim);
        }
        let steps_hz = cycles as f64 / t0.elapsed().as_secs_f64();
        let aggregate = steps_hz * lanes as f64;
        let speedup = aggregate / single_hz;
        println!(
            "  {lanes} lanes: {} steps/s, {} lane-cycles/s aggregate ({speedup:.2}x)",
            fmt_hz(steps_hz),
            fmt_hz(aggregate),
        );
        let mut row = Json::object();
        row.set("lanes", lanes as u64);
        row.set("steps_per_sec", steps_hz);
        row.set("aggregate_cycles_per_sec", aggregate);
        row.set("speedup_vs_single", speedup);
        rows.push(row);
        aggregates.push((lanes, aggregate));
    }
    rec.set("engines", Json::Array(rows));
    let agg = |lanes: usize| {
        aggregates
            .iter()
            .find(|(l, _)| *l == lanes)
            .map(|(_, a)| *a)
            .expect("engine row recorded")
    };
    let speedup_at_max = agg(LANES) / single_hz;
    let word_lift_gain = agg(LANES) / agg(32);
    println!("  64-lane over 32-lane aggregate: {word_lift_gain:.2}x");

    // --- bank reference: 64 independent sims, no lanes -----------------
    let bank_aggregate = {
        let mut bank: Vec<GemSimulator> = (0..LANES)
            .map(|_| GemSimulator::new(&compiled).expect("loads"))
            .collect();
        let mut rngs: Vec<FuzzRng> = (0..LANES).map(lane_rng).collect();
        let mut drive_step = |bank: &mut Vec<GemSimulator>| {
            for (sim, rng) in bank.iter_mut().zip(rngs.iter_mut()) {
                for (name, width) in &inputs {
                    sim.set_input(name, rng.bits(*width));
                }
                sim.step();
            }
        };
        for _ in 0..4 {
            drive_step(&mut bank);
        }
        // The bank costs ~64x a single step; fewer rounds suffice.
        let rounds = (cycles / 16).max(8);
        let t0 = Instant::now();
        for _ in 0..rounds {
            drive_step(&mut bank);
        }
        rounds as f64 * LANES as f64 / t0.elapsed().as_secs_f64()
    };
    println!(
        "  bank of {LANES} (no lanes): {} lane-cycles/s aggregate ({:.2}x)",
        fmt_hz(bank_aggregate),
        bank_aggregate / single_hz
    );
    rec.set("bank_aggregate_cycles_per_sec", bank_aggregate);
    // The headline numbers: aggregate throughput of the full batch over
    // the single-lane baseline, and what the u32 → u64 word lift bought
    // over the old 32-lane ceiling.
    rec.set("speedup_aggregate", speedup_at_max);
    rec.set("speedup_64_vs_32_aggregate", word_lift_gain);

    write_record("ext_batch", &rec);
    if let Err(e) = std::fs::write("BENCH_batch.json", rec.to_string_pretty()) {
        eprintln!("could not write BENCH_batch.json: {e}");
    } else {
        println!("  baseline recorded in BENCH_batch.json");
    }
    assert!(
        speedup_at_max >= 8.0,
        "aggregate speedup at {LANES} lanes fell below 8x: {speedup_at_max:.2}"
    );
    assert!(
        word_lift_gain >= 1.5,
        "64-lane aggregate fell below 1.5x the 32-lane aggregate: {word_lift_gain:.2}"
    );
}
