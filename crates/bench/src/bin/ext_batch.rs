//! **Lane-batched multi-stimulus execution** — aggregate throughput of
//! one 32-lane batch simulator vs independent single-lane runs.
//!
//! The lane subsystem packs up to 32 independent stimulus streams into
//! the bit-lanes of the vGPU's u32 state words, so one `step()` advances
//! 32 simulations (GATSPI/RTLflow-style data parallelism; see
//! docs/BATCH.md). This binary measures what that buys on the largest
//! evaluation design:
//!
//! * **single-lane baseline**: one simulator, one stream — wall-clock
//!   simulated cycles/sec,
//! * **batch engines** at 8 and 32 lanes: one simulator, N streams —
//!   wall-clock *aggregate* lane-cycles/sec (steps/sec × lanes),
//! * **bank reference**: 32 independent single-lane simulators stepped
//!   round-robin — the honest no-lane way to run 32 streams.
//!
//! Before any number is reported the binary *proves* lane equivalence on
//! this design: every lane of a 32-lane batch must match its own
//! independent single-lane run bit for bit over 64 cycles of distinct
//! per-lane stimulus.
//!
//! Records `BENCH_batch.json` (plus the usual
//! `target/gem-experiments/ext_batch.json`).
//!
//! Usage: `cargo run -p gem-bench --release --bin ext_batch
//!         [--scale 1] [--cycles 256]`

use gem_bench::{arg, compile_design, fmt_hz, suite, write_record};
use gem_core::GemSimulator;
use gem_sim::FuzzRng;
use gem_telemetry::Json;
use std::time::Instant;

const LANES: usize = 32;

fn main() {
    let scale = arg("--scale", 1) as u32;
    let cycles = arg("--cycles", 256);

    let (design, opts) = suite(scale)
        .into_iter()
        .max_by_key(|(d, _)| d.module.cells().len())
        .expect("suite is non-empty");
    println!("ext_batch: design {} (scale {scale})", design.name);
    let compiled = compile_design(&design, &opts);
    let r = &compiled.report;
    println!(
        "  {} gates, {} stage(s) x {} partition(s), {} layer(s)",
        r.gates, r.stages, r.parts, r.layers
    );

    let inputs: Vec<(String, u32)> = design
        .module
        .inputs()
        .map(|p| (p.name.clone(), design.module.width(p.net)))
        .collect();
    // One deterministic stimulus stream per lane, all distinct.
    let lane_rng = |lane: usize| FuzzRng::new(0xBA7C_4000 ^ lane as u64);

    // --- lane-equivalence proof (refuse to benchmark a wrong engine) --
    {
        let mut batch = GemSimulator::new(&compiled).expect("loads");
        batch.set_lanes(LANES as u32).expect("32 lanes");
        let mut bank: Vec<GemSimulator> = (0..LANES)
            .map(|_| GemSimulator::new(&compiled).expect("loads"))
            .collect();
        let mut rngs: Vec<FuzzRng> = (0..LANES).map(lane_rng).collect();
        for cycle in 0..64u64 {
            for (lane, rng) in rngs.iter_mut().enumerate() {
                for (name, width) in &inputs {
                    let v = rng.bits(*width);
                    batch.set_input_lane(name, lane as u32, v.clone());
                    bank[lane].set_input(name, v);
                }
            }
            batch.step();
            for sim in bank.iter_mut() {
                sim.step();
            }
            for p in compiled.io.outputs.iter() {
                for (lane, sim) in bank.iter().enumerate() {
                    assert_eq!(
                        batch.output_lane(&p.name, lane as u32),
                        sim.output(&p.name),
                        "cycle {cycle}: lane {lane} diverged from its independent run on {}",
                        p.name
                    );
                }
            }
        }
        println!("  equivalence: 32-lane batch == 32 independent runs over 64 cycles ✓");
    }

    let mut rec = Json::object();
    rec.set("design", design.name.clone());
    rec.set("gates", r.gates as u64);
    rec.set("cycles", cycles);
    rec.set("max_lanes", LANES as u64);

    // --- single-lane baseline -----------------------------------------
    let single_hz = {
        let mut sim = GemSimulator::new(&compiled).expect("loads");
        let mut rng = lane_rng(0);
        let mut drive_step = |sim: &mut GemSimulator| {
            for (name, width) in &inputs {
                sim.set_input(name, rng.bits(*width));
            }
            sim.step();
        };
        for _ in 0..16 {
            drive_step(&mut sim);
        }
        let t0 = Instant::now();
        for _ in 0..cycles {
            drive_step(&mut sim);
        }
        cycles as f64 / t0.elapsed().as_secs_f64()
    };
    println!("  1 lane (baseline): {} cycles/s", fmt_hz(single_hz));
    rec.set("single_lane_cycles_per_sec", single_hz);

    // --- batch engines -------------------------------------------------
    let mut rows = Vec::new();
    let mut speedup_at_max = 0.0;
    for lanes in [8usize, LANES] {
        let mut sim = GemSimulator::new(&compiled).expect("loads");
        sim.set_lanes(lanes as u32).expect("lane count");
        let mut rngs: Vec<FuzzRng> = (0..lanes).map(lane_rng).collect();
        let mut drive_step = |sim: &mut GemSimulator| {
            for (lane, rng) in rngs.iter_mut().enumerate() {
                for (name, width) in &inputs {
                    sim.set_input_lane(name, lane as u32, rng.bits(*width));
                }
            }
            sim.step();
        };
        for _ in 0..16 {
            drive_step(&mut sim);
        }
        let t0 = Instant::now();
        for _ in 0..cycles {
            drive_step(&mut sim);
        }
        let steps_hz = cycles as f64 / t0.elapsed().as_secs_f64();
        let aggregate = steps_hz * lanes as f64;
        let speedup = aggregate / single_hz;
        println!(
            "  {lanes} lanes: {} steps/s, {} lane-cycles/s aggregate ({speedup:.2}x)",
            fmt_hz(steps_hz),
            fmt_hz(aggregate),
        );
        let mut row = Json::object();
        row.set("lanes", lanes as u64);
        row.set("steps_per_sec", steps_hz);
        row.set("aggregate_cycles_per_sec", aggregate);
        row.set("speedup_vs_single", speedup);
        rows.push(row);
        if lanes == LANES {
            speedup_at_max = speedup;
        }
    }
    rec.set("engines", Json::Array(rows));

    // --- bank reference: 32 independent sims, no lanes -----------------
    let bank_aggregate = {
        let mut bank: Vec<GemSimulator> = (0..LANES)
            .map(|_| GemSimulator::new(&compiled).expect("loads"))
            .collect();
        let mut rngs: Vec<FuzzRng> = (0..LANES).map(lane_rng).collect();
        let mut drive_step = |bank: &mut Vec<GemSimulator>| {
            for (sim, rng) in bank.iter_mut().zip(rngs.iter_mut()) {
                for (name, width) in &inputs {
                    sim.set_input(name, rng.bits(*width));
                }
                sim.step();
            }
        };
        for _ in 0..4 {
            drive_step(&mut bank);
        }
        // The bank costs ~32x a single step; fewer rounds suffice.
        let rounds = (cycles / 8).max(8);
        let t0 = Instant::now();
        for _ in 0..rounds {
            drive_step(&mut bank);
        }
        rounds as f64 * LANES as f64 / t0.elapsed().as_secs_f64()
    };
    println!(
        "  bank of 32 (no lanes): {} lane-cycles/s aggregate ({:.2}x)",
        fmt_hz(bank_aggregate),
        bank_aggregate / single_hz
    );
    rec.set("bank_aggregate_cycles_per_sec", bank_aggregate);
    // The headline number: aggregate throughput of the full batch over
    // the single-lane baseline.
    rec.set("speedup_aggregate", speedup_at_max);

    write_record("ext_batch", &rec);
    if let Err(e) = std::fs::write("BENCH_batch.json", rec.to_string_pretty()) {
        eprintln!("could not write BENCH_batch.json: {e}");
    } else {
        println!("  baseline recorded in BENCH_batch.json");
    }
    assert!(
        speedup_at_max >= 8.0,
        "aggregate speedup at {LANES} lanes fell below 8x: {speedup_at_max:.2}"
    );
}
