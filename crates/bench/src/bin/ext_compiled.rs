//! **Compiled backend** — interpreted vs threaded-code execution of the
//! virtual GPU on the largest evaluation design.
//!
//! Measures the oblivious full-cycle loop under both execution backends
//! on a **single host thread** (so the ratio isolates per-instruction
//! dispatch cost, not pool scheduling) and reports wall-clock simulated
//! cycles/sec for each. The compiled backend runs the same boomerang
//! programs lowered once at load into pre-resolved threaded-code form
//! (docs/COMPILED.md): flat gather indices, pre-splatted fold masks,
//! sparse writeback lists, zero per-cycle allocation.
//!
//! Before any number is reported the binary *proves* the equivalence
//! contract on this design: interpreted and compiled runs must produce
//! bit-identical outputs and identical merged counters every cycle.
//! A backend that is fast but wrong refuses to benchmark.
//!
//! A third row measures the compiled backend with the parallel engine,
//! demonstrating the two knobs compose (threads × backend).
//!
//! Records `BENCH_compiled.json` (plus the usual
//! `target/gem-experiments/ext_compiled.json`).
//!
//! Usage: `cargo run -p gem-bench --release --bin ext_compiled
//!         [--scale 1] [--cycles 256] [--threads 4]`

use gem_bench::{arg, compile_design, fmt_hz, suite, write_record};
use gem_core::{ExecBackend, GemSimulator};
use gem_telemetry::Json;
use std::time::Instant;

fn main() {
    let scale = arg("--scale", 1) as u32;
    let cycles = arg("--cycles", 256);
    let max_threads = arg("--threads", 4) as usize;

    // Largest design in the suite by synthesized gate count — the same
    // workload ext_parallel measures, so the two baselines compare.
    let (design, opts) = suite(scale)
        .into_iter()
        .max_by_key(|(d, _)| d.module.cells().len())
        .expect("suite is non-empty");
    println!("ext_compiled: design {} (scale {scale})", design.name);
    let compiled = compile_design(&design, &opts);
    let r = &compiled.report;
    println!(
        "  {} gates, {} stage(s) x {} partition(s), {} layer(s)",
        r.gates, r.stages, r.parts, r.layers
    );

    let widths = |n: &str| {
        design
            .module
            .port(n)
            .map(|p| design.module.width(p.net))
            .unwrap_or(1)
    };
    let workload = &design.workloads[0];

    // --- equivalence proof (refuse to benchmark a wrong backend) ------
    {
        let mut stim_a = workload.stimulus(&widths);
        let mut stim_b = workload.stimulus(&widths);
        let mut interp = GemSimulator::new(&compiled).expect("loads");
        let mut comp = GemSimulator::new(&compiled).expect("loads");
        interp.set_threads(1);
        interp.set_backend(ExecBackend::Interpreted);
        comp.set_threads(1);
        comp.set_backend(ExecBackend::Compiled);
        for cycle in 0..64u64 {
            for (name, v) in stim_a.next_inputs() {
                interp.set_input(&name, v);
            }
            for (name, v) in stim_b.next_inputs() {
                comp.set_input(&name, v);
            }
            interp.step();
            comp.step();
            for p in compiled.io.outputs.iter() {
                assert_eq!(
                    interp.output(&p.name),
                    comp.output(&p.name),
                    "cycle {cycle}: output {} diverged between backends",
                    p.name
                );
            }
            assert_eq!(
                interp.counters(),
                comp.counters(),
                "cycle {cycle}: merged counters diverged between backends"
            );
        }
        println!("  equivalence: interpreted == compiled over 64 cycles ✓");
    }

    let mut rec = Json::object();
    rec.set("design", design.name.clone());
    rec.set("gates", r.gates as u64);
    rec.set("stages", r.stages as u64);
    rec.set("partitions", r.parts as u64);
    rec.set("cycles", cycles);
    rec.set(
        "host_threads",
        std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
    );

    let mut rows = Vec::new();
    let mut interpreted_hz = 0.0;
    let mut compiled_hz = 0.0;
    for (backend, threads) in [
        (ExecBackend::Interpreted, 1usize),
        (ExecBackend::Compiled, 1),
        (ExecBackend::Compiled, max_threads.max(2)),
    ] {
        let mut sim = GemSimulator::new(&compiled).expect("loads");
        sim.set_threads(threads);
        sim.set_backend(backend);
        let mut stim = workload.stimulus(&widths);
        // Warmup (pool spin-up, scratch buffers, caches).
        for _ in 0..16 {
            for (name, v) in stim.next_inputs() {
                sim.set_input(&name, v);
            }
            sim.step();
        }
        let t0 = Instant::now();
        for _ in 0..cycles {
            for (name, v) in stim.next_inputs() {
                sim.set_input(&name, v);
            }
            sim.step();
        }
        let wall_hz = cycles as f64 / t0.elapsed().as_secs_f64();
        match (backend, threads) {
            (ExecBackend::Interpreted, 1) => interpreted_hz = wall_hz,
            (ExecBackend::Compiled, 1) => compiled_hz = wall_hz,
            _ => {}
        }
        println!(
            "  {} backend, {threads} thread(s): {} cycles/s wall ({:.2}x vs interpreted serial)",
            backend.name(),
            fmt_hz(wall_hz),
            if interpreted_hz > 0.0 {
                wall_hz / interpreted_hz
            } else {
                1.0
            },
        );
        let mut row = Json::object();
        row.set("backend", backend.name());
        row.set("threads", threads as u64);
        row.set("wall_cycles_per_sec", wall_hz);
        rows.push(row);
    }
    rec.set("engines", Json::Array(rows));
    // The headline number: wall-clock cycles/sec ratio, compiled over
    // interpreted, both on one host thread. Unlike the thread-scaling
    // baseline this IS a wall-clock claim — the backends execute
    // identical architectural work (proved above), so the modeled GPU-Hz
    // figure is the same for both and only host dispatch cost differs.
    let speedup = compiled_hz / interpreted_hz;
    rec.set("speedup_wall", speedup);
    println!("  compiled/interpreted wall speedup: {speedup:.2}x");

    write_record("ext_compiled", &rec);
    if let Err(e) = std::fs::write("BENCH_compiled.json", rec.to_string_pretty()) {
        eprintln!("could not write BENCH_compiled.json: {e}");
    } else {
        println!("  baseline recorded in BENCH_compiled.json");
    }
    assert!(
        speedup >= 2.0,
        "compiled backend fell below 2x over interpreted: {speedup:.2}x"
    );
}
