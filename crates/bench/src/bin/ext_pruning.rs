//! **Extension E1** (the paper's future work: "we plan to explore
//! event-based pruning in GEM"): skip thread blocks whose global reads
//! are bit-identical to their previous execution. Sound because a GEM
//! core's cycle function is pure — all state lives in the global signal
//! array.
//!
//! This binary compares baseline (oblivious) GEM with pruning GEM on the
//! OpenPiton8 idle-heavy workloads that motivated the extension: with 7
//! of 8 tiles spinning on NOPs, most partitions see unchanged inputs most
//! cycles.
//!
//! Usage: `cargo run -p gem-bench --release --bin ext_pruning`

use gem_bench::{compile_design, compile_options_for, fmt_hz, verify_gem, write_record};
use gem_core::GemSimulator;
use gem_designs::{Workload, WorkloadSpec};
use gem_vgpu::{GpuSpec, TimingModel};

fn main() {
    println!("EXTENSION E1 — event-based pruning in GEM (paper future work)");
    println!(
        "{:<12} {:<18} {:>8} {:>11} {:>11} {:>8}",
        "Design", "Test", "Skip%", "GEM (Hz)", "+prune (Hz)", "Gain"
    );
    let mut records = Vec::new();
    // The accelerator with its clock gate closed: everything is stable, so
    // pruning should skip (nearly) every block. The CPU designs spin on
    // NOPs — their program counters keep toggling, so pruning finds little
    // to skip, exactly like the paper's event counts for "idle" OpenPiton
    // cores (8,612 events/cycle with one busy core).
    let mut nvdla = gem_designs::nvdla_like(48);
    nvdla.workloads.insert(
        0,
        Workload {
            name: "clock_gated".into(),
            spec: WorkloadSpec::RandomToggle {
                ports: vec![],
                activity: 0.0,
                held: vec![
                    ("rst".into(), 0),
                    ("start".into(), 0),
                    ("host_we".into(), 0),
                    ("host_sel".into(), 0),
                    ("host_addr".into(), 0),
                    ("host_data".into(), 0),
                ],
                seed: 0,
                warmup: 8,
            },
        },
    );
    nvdla.workloads.truncate(2);
    let mut gemmini = gem_designs::gemmini_like(8);
    gemmini.workloads.remove(0); // keep the weight-stationary case
    for d in [nvdla, gemmini, gem_designs::openpiton_like(8)] {
        let opts = compile_options_for(&d.name);
        let c = compile_design(&d, &opts);
        verify_gem(&d, &c, &d.workloads[0], 16);
        for w in &d.workloads {
            let widths = |n: &str| d.module.port(n).map(|p| d.module.width(p.net)).unwrap_or(1);
            let model = TimingModel::new(GpuSpec::a100());
            // Baseline.
            let mut base = GemSimulator::new(&c).expect("loads");
            let mut stim = w.stimulus(&widths);
            for _ in 0..stim.warmup_cycles() + 64 {
                for (name, v) in stim.next_inputs() {
                    base.set_input(&name, v);
                }
                base.step();
            }
            let base_hz = model.hz(&base.counters().per_cycle().expect("ran"));
            // Pruned: measure steady state only (reset the comparison by
            // measuring counter deltas after warmup).
            let mut pruned = GemSimulator::new(&c).expect("loads");
            pruned.set_pruning(true);
            let mut stim = w.stimulus(&widths);
            for _ in 0..stim.warmup_cycles() {
                for (name, v) in stim.next_inputs() {
                    pruned.set_input(&name, v);
                }
                pruned.step();
            }
            let before = *pruned.counters();
            let mut gold_check = 0u64;
            for _ in 0..256 {
                for (name, v) in stim.next_inputs() {
                    pruned.set_input(&name, v);
                }
                pruned.step();
                gold_check += 1;
            }
            let _ = gold_check;
            let mut delta = *pruned.counters();
            delta.global_bytes -= before.global_bytes;
            delta.global_transactions -= before.global_transactions;
            delta.shared_accesses -= before.shared_accesses;
            delta.alu_ops -= before.alu_ops;
            delta.block_syncs -= before.block_syncs;
            delta.device_syncs -= before.device_syncs;
            delta.blocks_run -= before.blocks_run;
            delta.blocks_skipped -= before.blocks_skipped;
            delta.cycles -= before.cycles;
            let per_cycle = delta.per_cycle().expect("ran");
            let pruned_hz = model.hz(&per_cycle);
            let total = per_cycle.blocks_run + per_cycle.blocks_skipped;
            let skip_pct = if total == 0 {
                0.0
            } else {
                per_cycle.blocks_skipped as f64 / total as f64 * 100.0
            };
            println!(
                "{:<12} {:<18} {:>7.1}% {:>11} {:>11} {:>7.2}x",
                d.name,
                w.name,
                skip_pct,
                fmt_hz(base_hz),
                fmt_hz(pruned_hz),
                pruned_hz / base_hz
            );
            records.push(gem_telemetry::json!({
                "design": d.name.as_str(), "test": w.name.as_str(),
                "skip_fraction": skip_pct / 100.0,
                "baseline_hz": base_hz, "pruned_hz": pruned_hz,
            }));
        }
    }
    println!();
    println!("Correctness: pruning is validated against the oblivious machine in");
    println!("gem-vgpu tests (identical outputs cycle-by-cycle).");
    write_record("ext_pruning", &gem_telemetry::Json::Array(records));
}
