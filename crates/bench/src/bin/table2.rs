//! Regenerates **Table II**: simulation speed (Hz) and speed-up
//! comparison between GEM (A100/3090 timing models), the event-driven
//! commercial stand-in, the levelized Verilator stand-in (1 and 8
//! threads), and the GL0AM-style gate-level GPU model.
//!
//! Usage:
//! `cargo run -p gem-bench --release --bin table2 [--scale N] [--cycles N]`
//!
//! Every engine runs the same per-workload stimulus; GEM's output is
//! cross-checked against the golden model before any number is printed.

use gem_bench::*;

fn main() {
    let scale = arg("--scale", 1) as u32;
    let cycles = arg("--cycles", 2000);
    println!("TABLE II — Simulation speed (Hz) and speed-up vs GEM-A100 (scale {scale}, {cycles} measured cycles)");
    println!(
        "{:<12} {:<22} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} | {:>7} {:>7} {:>7} {:>7}",
        "Design",
        "Test",
        "Comm.",
        "Verl-8t",
        "Verl-1t",
        "GL0AM",
        "GEM-A100",
        "GEM-3090",
        "C/GEM",
        "V8/GEM",
        "V1/GEM",
        "GL/GEM"
    );
    let mut records = Vec::new();
    let mut sums = [0.0f64; 4];
    let mut n = 0usize;
    for (d, opts) in suite(scale) {
        let c = compile_design(&d, &opts);
        // Correctness gate: never report speed for a wrong simulator.
        verify_gem(&d, &c, &d.workloads[0], 24);
        for w in &d.workloads {
            let (gem_a100, gem_3090) = measure_gem(&d, &c, w, 8);
            let (comm, events) = measure_event(&d, &c, w, cycles);
            let v8 = measure_levelized(&d, &c, w, 8, cycles);
            let v1 = measure_levelized(&d, &c, w, 1, cycles);
            let gl0am = measure_gl0am(&d, &c, w, cycles.min(500));
            let su = [
                gem_a100 / comm,
                gem_a100 / v8,
                gem_a100 / v1,
                gem_a100 / gl0am,
            ];
            for (s, v) in sums.iter_mut().zip(su) {
                *s += v;
            }
            n += 1;
            println!(
                "{:<12} {:<22} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} | {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
                d.name,
                w.name,
                fmt_hz(comm),
                fmt_hz(v8),
                fmt_hz(v1),
                fmt_hz(gl0am),
                fmt_hz(gem_a100),
                fmt_hz(gem_3090),
                su[0],
                su[1],
                su[2],
                su[3],
            );
            records.push(gem_telemetry::json!({
                "design": d.name.as_str(), "test": w.name.as_str(),
                "commercial_hz": comm, "verilator8_hz": v8, "verilator1_hz": v1,
                "gl0am_hz": gl0am, "gem_a100_hz": gem_a100, "gem_3090_hz": gem_3090,
                "events_per_cycle": events,
                "speedup_comm": su[0], "speedup_v8": su[1], "speedup_v1": su[2], "speedup_gl0am": su[3],
            }));
        }
    }
    println!(
        "{:<35} {:>70} | {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
        "Average speed-up",
        "",
        sums[0] / n as f64,
        sums[1] / n as f64,
        sums[2] / n as f64,
        sums[3] / n as f64
    );
    println!();
    println!("Paper averages (full-scale): Comm. 9.15x, Verilator-8t 5.98x, Verilator-1t 24.87x, GL0AM 7.72x");
    println!("Paper peaks on NVDLA: 38.85x (Comm.), 64.76x (Verilator-1t)");
    write_record("table2", &gem_telemetry::Json::Array(records));
}
