//! Ablation A1 (DESIGN.md): timing-driven vs FIFO node selection in the
//! bit placer. Criterion measures the runtime of both; the quality metric
//! (boomerang layer count, which is what Algorithm 2's criticality
//! ordering exists to minimize) is printed alongside.

use criterion::{criterion_group, criterion_main, Criterion};
use gem_partition::{partition, PartitionOptions};
use gem_place::{place_partition, PlaceOptions};
use gem_synth::{synthesize, SynthOptions};

fn bench_ablation(c: &mut Criterion) {
    let m = gem_designs::gemmini_like(4).module;
    let synth = synthesize(&m, &SynthOptions::default()).expect("synthesizable");
    let parts = partition(
        &synth.eaig,
        &PartitionOptions {
            target_parts: 1,
            ..Default::default()
        },
    );
    let p = &parts.stages[0].partitions[0];
    let opts_td = PlaceOptions {
        core_width: 8192,
        timing_driven: true,
        ..Default::default()
    };
    let opts_fifo = PlaceOptions {
        timing_driven: false,
        ..opts_td
    };
    let (prog_td, stats_td) = place_partition(&synth.eaig, p, &opts_td).expect("mappable");
    let (prog_fifo, stats_fifo) = place_partition(&synth.eaig, p, &opts_fifo).expect("mappable");
    println!(
        "[ablation] depth {} → layers: timing-driven {}, fifo {} (state peak {} vs {})",
        stats_td.depth,
        prog_td.layers.len(),
        prog_fifo.layers.len(),
        stats_td.state_peak,
        stats_fifo.state_peak,
    );
    assert!(prog_td.layers.len() <= prog_fifo.layers.len());

    let mut group = c.benchmark_group("ablate_placement");
    group.sample_size(10);
    group.bench_function("timing_driven", |b| {
        b.iter(|| place_partition(&synth.eaig, p, &opts_td).expect("mappable"))
    });
    group.bench_function("fifo", |b| {
        b.iter(|| place_partition(&synth.eaig, p, &opts_fifo).expect("mappable"))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
