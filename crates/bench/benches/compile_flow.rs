//! Criterion benchmarks of the GEM compilation flow, per phase: synthesis
//! to E-AIG, replication-aided partitioning, and bit placement. The paper
//! positions GEM's minutes-scale compilation against days-scale FPGA
//! emulator builds; these benches track that the Rust flow stays fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gem_partition::{partition, PartitionOptions};
use gem_place::{place_partition, PlaceOptions};
use gem_synth::{synthesize, SynthOptions};

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize");
    group.sample_size(10);
    for (name, m) in [
        ("nvdla_s", gem_designs::nvdla_like(8).module),
        ("rocket", gem_designs::rocket_like().module),
        ("gemmini_s", gem_designs::gemmini_like(4).module),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &m, |b, m| {
            b.iter(|| synthesize(m, &SynthOptions::default()).expect("synthesizable"))
        });
    }
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let m = gem_designs::nvdla_like(16).module;
    let synth = synthesize(&m, &SynthOptions::default()).expect("synthesizable");
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    for stages in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("stages", stages), &stages, |b, &stages| {
            b.iter(|| {
                partition(
                    &synth.eaig,
                    &PartitionOptions {
                        target_parts: 8,
                        stages,
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_placement(c: &mut Criterion) {
    let m = gem_designs::rocket_like().module;
    let synth = synthesize(&m, &SynthOptions::default()).expect("synthesizable");
    let parts = partition(
        &synth.eaig,
        &PartitionOptions {
            target_parts: 2,
            stages: 2,
            ..Default::default()
        },
    );
    let p = &parts.stages[0].partitions[0];
    let mut group = c.benchmark_group("place_partition");
    group.sample_size(10);
    group.bench_function("timing_driven", |b| {
        b.iter(|| {
            place_partition(
                &synth.eaig,
                p,
                &PlaceOptions {
                    core_width: 8192,
                    ..Default::default()
                },
            )
            .expect("mappable")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_synthesis,
    bench_partitioning,
    bench_placement
);
criterion_main!(benches);
