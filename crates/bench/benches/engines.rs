//! Criterion benchmarks of per-cycle simulation throughput for every
//! engine in the comparison, on the same mid-size design and stimulus.
//! These are the wall-clock counterparts of the Table II harness.

use criterion::{criterion_group, criterion_main, Criterion};
use gem_core::{CompileOptions, GemSimulator};
use gem_sim::{BatchSim, EaigSim, EventSim, LevelizedSim};
use gem_vgpu::Gl0amModel;

fn bench_engines(c: &mut Criterion) {
    let d = gem_designs::nvdla_like(8);
    let opts = CompileOptions {
        core_width: 2048,
        target_parts: 4,
        ..Default::default()
    };
    let compiled = gem_core::compile(&d.module, &opts).expect("compiles");
    let g = &compiled.eaig;
    let n_in = g.inputs().len();
    let mut pattern = vec![false; n_in];
    for (i, p) in pattern.iter_mut().enumerate() {
        *p = i % 3 == 0;
    }

    let mut group = c.benchmark_group("cycle_throughput");
    group.sample_size(20);

    group.bench_function("golden_interpreter", |b| {
        let mut sim = EaigSim::new(g);
        b.iter(|| sim.cycle(&pattern))
    });
    group.bench_function("event_driven", |b| {
        let mut sim = EventSim::new(g);
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let mut ins = pattern.clone();
            if flip {
                for v in ins.iter_mut().take(8) {
                    *v = !*v;
                }
            }
            sim.cycle(&ins)
        })
    });
    group.bench_function("levelized_1t", |b| {
        let mut sim = LevelizedSim::new(g, 1);
        b.iter(|| sim.cycle(&pattern))
    });
    group.bench_function("levelized_8t", |b| {
        let mut sim = LevelizedSim::new(g, 8);
        b.iter(|| sim.cycle(&pattern))
    });
    group.bench_function("gl0am_model", |b| {
        let mut sim = Gl0amModel::new(g);
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let mut ins = pattern.clone();
            if flip {
                for v in ins.iter_mut().take(8) {
                    *v = !*v;
                }
            }
            sim.cycle(&ins)
        })
    });
    group.bench_function("gem_virtual_gpu", |b| {
        let mut sim = GemSimulator::new(&compiled).expect("loads");
        b.iter(|| sim.step())
    });
    // 64 testbenches per step: divide this time by 64 for per-testbench
    // throughput — far better than any latency engine, which is exactly
    // the throughput/latency trade-off the paper draws against
    // batch-stimulus approaches.
    group.bench_function("batch64_per_step", |b| {
        let mut sim = BatchSim::new(g);
        let packed: Vec<u64> = (0..n_in as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        b.iter(|| sim.cycle(&packed))
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
