//! Synthesis correctness: co-simulate the RTL netlist (word-level golden
//! model) against the synthesized E-AIG (bit-level golden model) on random
//! stimuli, for every operator class and both memory implementations.

use gem_netlist::{Bits, Module, ModuleBuilder, ReadKind};
use gem_sim::{EaigSim, NetlistSim};
use gem_synth::{synthesize, SynthOptions, SynthResult};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Runs `cycles` random cycles through both models and asserts identical
/// outputs each cycle.
fn cosim(m: &Module, opts: &SynthOptions, cycles: usize, seed: u64) -> SynthResult {
    let r = synthesize(m, opts).expect("synthesizable");
    let mut rtl = NetlistSim::new(m);
    let mut aig = EaigSim::new(&r.eaig);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for cycle in 0..cycles {
        // Random inputs.
        for (pi, p) in m.inputs().enumerate() {
            let w = m.width(p.net);
            let mut v = Bits::zeros(w);
            for i in 0..w {
                v.set_bit(i, rng.gen_bool(0.5));
            }
            rtl.set_input(&p.name, v.clone());
            let layout = &r.inputs[pi];
            for i in 0..w {
                aig.set_input(layout.lsb_index + i as usize, v.bit(i));
            }
        }
        rtl.eval();
        aig.eval();
        for (po, p) in m.outputs().enumerate() {
            let expect = rtl.output(&p.name);
            let layout = &r.outputs[po];
            for i in 0..expect.width() {
                let got = aig.output(layout.lsb_index + i as usize);
                assert_eq!(
                    got,
                    expect.bit(i),
                    "cycle {cycle}: output {}[{i}] mismatch (expect {expect})",
                    p.name
                );
            }
        }
        rtl.step();
        aig.step();
    }
    r
}

fn both_option_sets() -> [SynthOptions; 2] {
    [
        SynthOptions::default(),
        SynthOptions {
            depth_optimize: false,
            ram_mapping: true,
        },
    ]
}

#[test]
fn arithmetic_ops_equivalent() {
    let mut b = ModuleBuilder::new("arith");
    let x = b.input("x", 16);
    let y = b.input("y", 16);
    let add = b.add(x, y);
    let sub = b.sub(x, y);
    let neg = b.neg(x);
    let mul = b.mul(x, y);
    b.output("add", add);
    b.output("sub", sub);
    b.output("neg", neg);
    b.output("mul", mul);
    let m = b.finish().unwrap();
    for opts in both_option_sets() {
        cosim(&m, &opts, 64, 1);
    }
}

#[test]
fn comparison_ops_equivalent() {
    let mut b = ModuleBuilder::new("cmp");
    let x = b.input("x", 9);
    let y = b.input("y", 9);
    let eq = b.eq(x, y);
    let lt = b.ult(x, y);
    b.output("eq", eq);
    b.output("lt", lt);
    let m = b.finish().unwrap();
    for opts in both_option_sets() {
        cosim(&m, &opts, 128, 2);
    }
}

#[test]
fn bitwise_and_reductions_equivalent() {
    let mut b = ModuleBuilder::new("bits");
    let x = b.input("x", 13);
    let y = b.input("y", 13);
    let and = b.and(x, y);
    let or = b.or(x, y);
    let xor = b.xor(x, y);
    let not = b.not(x);
    let ra = b.reduce_and(x);
    let ro = b.reduce_or(x);
    let rx = b.reduce_xor(x);
    for (n, v) in [
        ("and", and),
        ("or", or),
        ("xor", xor),
        ("not", not),
        ("ra", ra),
        ("ro", ro),
        ("rx", rx),
    ] {
        b.output(n, v);
    }
    let m = b.finish().unwrap();
    for opts in both_option_sets() {
        cosim(&m, &opts, 64, 3);
    }
}

#[test]
fn shifts_equivalent_including_overflow_amounts() {
    // 5-bit value (non-power-of-two width exercises the ≥n masking) with a
    // wide amount input so out-of-range amounts occur often.
    let mut b = ModuleBuilder::new("shift");
    let x = b.input("x", 5);
    let amt = b.input("amt", 4);
    let shl = b.shl(x, amt);
    let shr = b.lshr(x, amt);
    b.output("shl", shl);
    b.output("shr", shr);
    let m = b.finish().unwrap();
    for opts in both_option_sets() {
        cosim(&m, &opts, 200, 4);
    }
}

#[test]
fn mux_slice_concat_equivalent() {
    let mut b = ModuleBuilder::new("wiring");
    let x = b.input("x", 12);
    let y = b.input("y", 12);
    let s = b.input("s", 1);
    let mx = b.mux(s, x, y);
    let hi = b.slice(x, 6, 6);
    let cat = b.concat(&[hi, y]);
    b.output("mx", mx);
    b.output("cat", cat);
    let m = b.finish().unwrap();
    cosim(&m, &SynthOptions::default(), 64, 5);
}

#[test]
fn registers_with_enable_and_reset_equivalent() {
    let mut b = ModuleBuilder::new("regs");
    let d = b.input("d", 8);
    let en = b.input("en", 1);
    let rst = b.input("rst", 1);
    let q = b.dff_init(Bits::from_u64(0xA5, 8));
    b.dff_enable(q, en);
    b.dff_reset(q, rst);
    let inc = b.lit(1, 8);
    let next = b.add(d, inc);
    b.connect_dff(q, next);
    b.output("q", q);
    let m = b.finish().unwrap();
    cosim(&m, &SynthOptions::default(), 100, 6);
}

#[test]
fn counter_feedback_equivalent() {
    let mut b = ModuleBuilder::new("counter");
    let q = b.dff(16);
    let one = b.lit(1, 16);
    let n = b.add(q, one);
    b.connect_dff(q, n);
    b.output("q", q);
    let m = b.finish().unwrap();
    cosim(&m, &SynthOptions::default(), 64, 7);
}

fn sync_ram_module(words: u32, width: u32) -> Module {
    let aw = 32 - (words - 1).leading_zeros().min(31);
    let aw = if words == 1 { 1 } else { aw };
    let mut b = ModuleBuilder::new("ram");
    let wa = b.input("wa", aw);
    let ra = b.input("ra", aw);
    let wd = b.input("wd", width);
    let we = b.input("we", 1);
    let mem = b.memory("m", words, width);
    b.write_port(mem, wa, wd, we);
    let q = b.read_port(mem, ra, ReadKind::Sync);
    b.output("q", q);
    b.finish().unwrap()
}

#[test]
fn sync_ram_maps_to_blocks_and_matches() {
    let m = sync_ram_module(64, 8);
    let r = cosim(&m, &SynthOptions::default(), 300, 8);
    assert_eq!(r.stats.ram_blocks, 1);
    assert_eq!(r.stats.polyfilled_mem_bits, 0);
}

#[test]
fn sync_ram_non_power_of_two_depth_matches() {
    // 40 words: addresses 40..63 exist in the address space but must read
    // as zero and drop writes.
    let m = sync_ram_module(40, 8);
    let r = cosim(&m, &SynthOptions::default(), 400, 9);
    assert_eq!(r.stats.ram_blocks, 1);
}

#[test]
fn wide_ram_splits_into_segments() {
    let m = sync_ram_module(16, 70); // 3 segments of 32 bits
    let r = cosim(&m, &SynthOptions::default(), 200, 10);
    assert_eq!(r.stats.ram_blocks, 3);
}

#[test]
fn sync_ram_polyfilled_when_mapping_disabled() {
    let m = sync_ram_module(16, 4);
    let opts = SynthOptions {
        ram_mapping: false,
        ..SynthOptions::default()
    };
    let r = cosim(&m, &opts, 300, 11);
    assert_eq!(r.stats.ram_blocks, 0);
    assert_eq!(r.stats.polyfilled_mem_bits, 64);
}

#[test]
fn async_ram_polyfilled_and_matches() {
    let mut b = ModuleBuilder::new("rf");
    let wa = b.input("wa", 4);
    let ra = b.input("ra", 4);
    let wd = b.input("wd", 8);
    let we = b.input("we", 1);
    let mem = b.memory("rf", 16, 8);
    b.write_port(mem, wa, wd, we);
    let q = b.read_port(mem, ra, ReadKind::Async);
    b.output("q", q);
    let m = b.finish().unwrap();
    let r = cosim(&m, &SynthOptions::default(), 300, 12);
    assert_eq!(r.stats.ram_blocks, 0);
    assert_eq!(r.stats.polyfilled_mem_bits, 128);
}

#[test]
fn multi_write_port_memory_polyfills_and_matches() {
    let mut b = ModuleBuilder::new("mw");
    let a0 = b.input("a0", 3);
    let a1 = b.input("a1", 3);
    let d0 = b.input("d0", 4);
    let d1 = b.input("d1", 4);
    let e0 = b.input("e0", 1);
    let e1 = b.input("e1", 1);
    let ra = b.input("ra", 3);
    let mem = b.memory("m", 8, 4);
    b.write_port(mem, a0, d0, e0);
    b.write_port(mem, a1, d1, e1); // later port wins on same-address clash
    let q = b.read_port(mem, ra, ReadKind::Sync);
    b.output("q", q);
    let m = b.finish().unwrap();
    let r = cosim(&m, &SynthOptions::default(), 400, 13);
    assert_eq!(r.stats.ram_blocks, 0, "multi-write must polyfill");
}

#[test]
fn two_read_ports_replicate_blocks() {
    let mut b = ModuleBuilder::new("dual");
    let wa = b.input("wa", 5);
    let ra0 = b.input("ra0", 5);
    let ra1 = b.input("ra1", 5);
    let wd = b.input("wd", 8);
    let we = b.input("we", 1);
    let mem = b.memory("m", 32, 8);
    b.write_port(mem, wa, wd, we);
    let q0 = b.read_port(mem, ra0, ReadKind::Sync);
    let q1 = b.read_port(mem, ra1, ReadKind::Sync);
    b.output("q0", q0);
    b.output("q1", q1);
    let m = b.finish().unwrap();
    let r = cosim(&m, &SynthOptions::default(), 300, 14);
    assert_eq!(r.stats.ram_blocks, 2, "one block per read port");
}

#[test]
fn deep_ram_banks() {
    // 3 × 8192 words deep: 3 banks, high address bits steer the mux.
    let m = sync_ram_module(3 * 8192, 8);
    let r = cosim(&m, &SynthOptions::default(), 200, 15);
    assert_eq!(r.stats.ram_blocks, 3);
}

#[test]
fn depth_optimization_reduces_levels() {
    let mut b = ModuleBuilder::new("deep");
    let x = b.input("x", 64);
    let y = b.input("y", 64);
    let s = b.add(x, y);
    b.output("s", s);
    let m = b.finish().unwrap();
    let fast = synthesize(&m, &SynthOptions::default()).unwrap();
    let slow = synthesize(
        &m,
        &SynthOptions {
            depth_optimize: false,
            ram_mapping: true,
        },
    )
    .unwrap();
    assert!(
        fast.stats.levels * 3 < slow.stats.levels,
        "prefix adder ({}) should be much shallower than ripple ({})",
        fast.stats.levels,
        slow.stats.levels
    );
}

#[test]
fn verilog_frontend_to_eaig_pipeline() {
    let src = r#"
        module gray(input clk, input [3:0] x, output [3:0] g, output reg [3:0] acc);
          assign g = x ^ (x >> 1);
          always @(posedge clk) acc <= acc + g;
        endmodule
    "#;
    let m = gem_netlist::verilog::parse(src).unwrap();
    cosim(&m, &SynthOptions::default(), 100, 16);
}
