//! Bit-blasting of word-level cells into the E-AIG.
//!
//! Depth is the scarce resource in GEM (each boomerang layer absorbs a
//! bounded number of logic levels), so all constructions here are
//! depth-optimized when [`SynthOptions::depth_optimize`] is set: Sklansky
//! prefix adders, balanced reduction trees, logarithmic barrel shifters.
//! The non-optimized (ripple/linear) forms are kept for ablation.

use crate::memory::{self, MemImpl};
use crate::{PortBits, SynthError, SynthOptions, SynthResult, SynthStats};
use gem_aig::{Eaig, Lit};
use gem_netlist::{Binary, CellKind, Module, NetId, Unary};

/// Drives one synthesis run; see [`crate::synthesize`].
pub(crate) struct Lowerer<'a> {
    pub(crate) m: &'a Module,
    pub(crate) opts: &'a SynthOptions,
    pub(crate) g: Eaig,
    /// Bit literals per net, filled as lowering progresses.
    pub(crate) bits: Vec<Option<Vec<Lit>>>,
    pub(crate) mem_impls: Vec<MemImpl>,
    pub(crate) stats: SynthStats,
}

impl<'a> Lowerer<'a> {
    pub(crate) fn new(m: &'a Module, opts: &'a SynthOptions) -> Self {
        Lowerer {
            m,
            opts,
            g: Eaig::new(),
            bits: vec![None; m.nets().len()],
            mem_impls: Vec::new(),
            stats: SynthStats::default(),
        }
    }

    pub(crate) fn run(mut self) -> Result<SynthResult, SynthError> {
        // 1. Primary inputs, in port order, LSB first.
        let mut input_layout = Vec::new();
        for p in self.m.inputs() {
            let w = self.m.width(p.net);
            input_layout.push(PortBits {
                name: p.name.clone(),
                lsb_index: self.g.inputs().len(),
                width: w,
            });
            let lits: Vec<Lit> = (0..w)
                .map(|i| self.g.input(format!("{}[{i}]", p.name)))
                .collect();
            self.bits[p.net.0 as usize] = Some(lits);
        }
        // 2. Flip-flop state nets.
        for c in self.m.cells() {
            if let CellKind::Dff { init, .. } = &c.kind {
                let lits: Vec<Lit> = init.iter().map(|b| self.g.ff(b)).collect();
                self.bits[c.out.0 as usize] = Some(lits);
            }
        }
        // 3. Memory state (RAM blocks or polyfill flip-flops).
        memory::prepass(&mut self)?;
        // 4. Combinational logic in topological order.
        for entry in self.topo_entries() {
            match entry {
                Entry::Cell(ci) => self.lower_cell(ci)?,
                Entry::AsyncRead(mi, pi) => memory::lower_async_read(&mut self, mi, pi)?,
            }
        }
        // 5. Sequential hookup: flip-flop next-states.
        for c in self.m.cells() {
            if let CellKind::Dff {
                d,
                init,
                enable,
                reset,
            } = &c.kind
            {
                let q = self.bits[c.out.0 as usize].clone().expect("dff seeded");
                let dv = self.net_bits(*d)?;
                let en = enable.map(|e| self.bit0(e)).transpose()?;
                let rst = reset.map(|r| self.bit0(r)).transpose()?;
                for (i, &qb) in q.iter().enumerate() {
                    let mut next = dv[i];
                    if let Some(e) = en {
                        next = self.g.mux(e, next, qb);
                    }
                    if let Some(r) = rst {
                        let init_lit = Lit::FALSE.flip_if(init.bit(i as u32));
                        next = self.g.mux(r, init_lit, next);
                    }
                    self.g.set_ff_next(qb, next);
                }
            }
        }
        // 6. Memory port hookup.
        memory::postpass(&mut self)?;
        // 7. Outputs.
        let mut output_layout = Vec::new();
        let output_ports: Vec<(String, NetId)> =
            self.m.outputs().map(|p| (p.name.clone(), p.net)).collect();
        for (name, net) in output_ports {
            let w = self.m.width(net);
            output_layout.push(PortBits {
                name: name.clone(),
                lsb_index: self.g.outputs().len(),
                width: w,
            });
            let lits = self.net_bits(net)?;
            for (i, l) in lits.into_iter().enumerate() {
                self.g.output(format!("{name}[{i}]"), l);
            }
        }
        // 8. Stats.
        let levels = self.g.levels();
        self.stats.gates = levels.gates;
        self.stats.levels = levels.depth;
        self.stats.ffs = self.g.ffs().len() as u64;
        self.stats.ram_blocks = self.g.rams().len() as u64;
        Ok(SynthResult {
            eaig: self.g,
            inputs: input_layout,
            outputs: output_layout,
            stats: self.stats,
        })
    }

    /// Lowered bits of a net; errors if the net has not been lowered yet
    /// (which would indicate a topological-ordering bug).
    pub(crate) fn net_bits(&self, n: NetId) -> Result<Vec<Lit>, SynthError> {
        self.bits[n.0 as usize]
            .clone()
            .ok_or_else(|| SynthError::Internal(format!("net {n} used before lowered")))
    }

    fn bit0(&self, n: NetId) -> Result<Lit, SynthError> {
        Ok(self.net_bits(n)?[0])
    }

    fn lower_cell(&mut self, ci: usize) -> Result<(), SynthError> {
        let cell = self.m.cells()[ci].clone();
        let out_w = self.m.width(cell.out) as usize;
        let lits: Vec<Lit> = match &cell.kind {
            CellKind::Dff { .. } => return Ok(()), // seeded
            CellKind::Const { value } => value.iter().map(|b| Lit::FALSE.flip_if(b)).collect(),
            CellKind::Unary { op, a } => {
                let av = self.net_bits(*a)?;
                match op {
                    Unary::Not => av.iter().map(|l| l.flip()).collect(),
                    Unary::Neg => {
                        let inv: Vec<Lit> = av.iter().map(|l| l.flip()).collect();
                        let zeros = vec![Lit::FALSE; av.len()];
                        let (sum, _) = self.adder(&inv, &zeros, Lit::TRUE);
                        sum
                    }
                    Unary::ReduceAnd => vec![self.reduce(&av, ReduceOp::And)],
                    Unary::ReduceOr => vec![self.reduce(&av, ReduceOp::Or)],
                    Unary::ReduceXor => vec![self.reduce(&av, ReduceOp::Xor)],
                }
            }
            CellKind::Binary { op, a, b } => {
                let av = self.net_bits(*a)?;
                let bv = self.net_bits(*b)?;
                match op {
                    Binary::And => self.zip2(&av, &bv, |g, x, y| g.and(x, y)),
                    Binary::Or => self.zip2(&av, &bv, |g, x, y| g.or(x, y)),
                    Binary::Xor => self.zip2(&av, &bv, |g, x, y| g.xor(x, y)),
                    Binary::Add => self.adder(&av, &bv, Lit::FALSE).0,
                    Binary::Sub => {
                        let inv: Vec<Lit> = bv.iter().map(|l| l.flip()).collect();
                        self.adder(&av, &inv, Lit::TRUE).0
                    }
                    Binary::Mul => self.multiplier(&av, &bv),
                    Binary::Eq => {
                        let xnors: Vec<Lit> = self
                            .zip2(&av, &bv, |g, x, y| g.xor(x, y))
                            .iter()
                            .map(|l| l.flip())
                            .collect();
                        vec![self.reduce(&xnors, ReduceOp::And)]
                    }
                    Binary::Ult => {
                        // a < b  ⇔  no carry out of a + !b + 1.
                        let inv: Vec<Lit> = bv.iter().map(|l| l.flip()).collect();
                        let (_, cout) = self.adder(&av, &inv, Lit::TRUE);
                        vec![cout.flip()]
                    }
                    Binary::Shl => self.shifter(&av, &bv, ShiftDir::Left),
                    Binary::Lshr => self.shifter(&av, &bv, ShiftDir::Right),
                }
            }
            CellKind::Mux { sel, t, f } => {
                let s = self.bit0(*sel)?;
                let tv = self.net_bits(*t)?;
                let fv = self.net_bits(*f)?;
                tv.iter()
                    .zip(&fv)
                    .map(|(&x, &y)| self.g.mux(s, x, y))
                    .collect()
            }
            CellKind::Slice { a, lo } => {
                let av = self.net_bits(*a)?;
                av[*lo as usize..*lo as usize + out_w].to_vec()
            }
            CellKind::Concat { parts } => {
                let mut v = Vec::with_capacity(out_w);
                for p in parts {
                    v.extend(self.net_bits(*p)?);
                }
                v
            }
        };
        debug_assert_eq!(lits.len(), out_w, "lowered width mismatch");
        self.bits[cell.out.0 as usize] = Some(lits);
        Ok(())
    }

    fn zip2(
        &mut self,
        a: &[Lit],
        b: &[Lit],
        mut f: impl FnMut(&mut Eaig, Lit, Lit) -> Lit,
    ) -> Vec<Lit> {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| f(&mut self.g, x, y))
            .collect()
    }

    /// Balanced (or linear, for ablation) reduction.
    pub(crate) fn reduce(&mut self, lits: &[Lit], op: ReduceOp) -> Lit {
        if self.opts.depth_optimize {
            match op {
                ReduceOp::And => self.g.and_many(lits),
                ReduceOp::Or => self.g.or_many(lits),
                ReduceOp::Xor => self.g.xor_many(lits),
            }
        } else {
            let mut acc = match op {
                ReduceOp::And => Lit::TRUE,
                ReduceOp::Or | ReduceOp::Xor => Lit::FALSE,
            };
            for &l in lits {
                acc = match op {
                    ReduceOp::And => self.g.and(acc, l),
                    ReduceOp::Or => self.g.or(acc, l),
                    ReduceOp::Xor => self.g.xor(acc, l),
                };
            }
            acc
        }
    }

    /// Adder with carry-in; returns (sum, carry-out). Sklansky prefix when
    /// depth-optimizing, ripple-carry otherwise.
    pub(crate) fn adder(&mut self, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
        assert_eq!(a.len(), b.len());
        let n = a.len();
        if n == 0 {
            return (vec![], cin);
        }
        if !self.opts.depth_optimize {
            let mut carry = cin;
            let mut sum = Vec::with_capacity(n);
            for i in 0..n {
                let axb = self.g.xor(a[i], b[i]);
                sum.push(self.g.xor(axb, carry));
                let ab = self.g.and(a[i], b[i]);
                let ac = self.g.and(axb, carry);
                carry = self.g.or(ab, ac);
            }
            return (sum, carry);
        }
        // Generate/propagate, with the carry-in folded into bit 0.
        let mut gen: Vec<Lit> = Vec::with_capacity(n);
        let mut pro: Vec<Lit> = Vec::with_capacity(n);
        let mut p_raw: Vec<Lit> = Vec::with_capacity(n);
        for i in 0..n {
            let gi = self.g.and(a[i], b[i]);
            let pi = self.g.xor(a[i], b[i]);
            p_raw.push(pi);
            if i == 0 {
                let pc = self.g.and(pi, cin);
                gen.push(self.g.or(gi, pc));
            } else {
                gen.push(gi);
            }
            pro.push(pi);
        }
        // Sklansky prefix: after round d, (gen[i], pro[i]) covers
        // [i - 2^d + 1, i] groups.
        let mut d = 1;
        while d < n {
            let mut new_gen = gen.clone();
            let mut new_pro = pro.clone();
            for i in 0..n {
                if (i / d) % 2 == 1 {
                    let j = (i / d) * d - 1; // last index of previous block
                    let pg = self.g.and(pro[i], gen[j]);
                    new_gen[i] = self.g.or(gen[i], pg);
                    new_pro[i] = self.g.and(pro[i], pro[j]);
                }
            }
            gen = new_gen;
            pro = new_pro;
            d *= 2;
        }
        // carry into bit i is gen[i-1]; carry into bit 0 is cin.
        let mut sum = Vec::with_capacity(n);
        for i in 0..n {
            let carry_in = if i == 0 { cin } else { gen[i - 1] };
            sum.push(self.g.xor(p_raw[i], carry_in));
        }
        (sum, gen[n - 1])
    }

    /// Wrapping multiplier: partial products summed with a balanced tree.
    fn multiplier(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let n = a.len();
        let mut terms: Vec<Vec<Lit>> = Vec::new();
        for (j, &bj) in b.iter().enumerate() {
            if j >= n {
                break;
            }
            let mut pp = vec![Lit::FALSE; n];
            for i in 0..n - j {
                pp[i + j] = self.g.and(a[i], bj);
            }
            terms.push(pp);
        }
        if terms.is_empty() {
            return vec![Lit::FALSE; n];
        }
        // Balanced pairwise summation.
        while terms.len() > 1 {
            let mut next: Vec<Vec<Lit>> = Vec::with_capacity(terms.len().div_ceil(2));
            let mut it = terms.into_iter();
            while let Some(x) = it.next() {
                match it.next() {
                    Some(y) => next.push(self.adder(&x, &y, Lit::FALSE).0),
                    None => next.push(x),
                }
            }
            terms = next;
        }
        terms.pop().expect("one term left")
    }

    /// Barrel shifter with zero fill; amounts ≥ width produce zero.
    fn shifter(&mut self, a: &[Lit], amount: &[Lit], dir: ShiftDir) -> Vec<Lit> {
        let n = a.len();
        let stages = (usize::BITS - (n - 1).leading_zeros()) as usize; // ceil(log2(n)) for n>1
        let stages = if n <= 1 { 0 } else { stages };
        let mut cur = a.to_vec();
        for (k, &sel) in amount.iter().enumerate().take(stages) {
            let sh = 1usize << k;
            let mut shifted = vec![Lit::FALSE; n];
            for (i, out) in shifted.iter_mut().enumerate() {
                let src = match dir {
                    ShiftDir::Left => i.checked_sub(sh),
                    ShiftDir::Right => {
                        let s = i + sh;
                        (s < n).then_some(s)
                    }
                };
                *out = src.map_or(Lit::FALSE, |s| cur[s]);
            }
            cur = cur
                .iter()
                .zip(&shifted)
                .map(|(&c, &s)| self.g.mux(sel, s, c))
                .collect();
        }
        // Any amount bit ≥ width zeroes the result (including bits beyond
        // the stages we consumed).
        let mut high_bits: Vec<Lit> = amount.iter().copied().skip(stages).collect();
        // Also the consumed bits can sum to >= n when n is not a power of
        // two; handle by comparing amount[0..stages] ≥ n.
        if n.count_ones() != 1 && n > 1 {
            let amt_low: Vec<Lit> = amount.iter().copied().take(stages).collect();
            let ge_n = self.unsigned_ge_const(&amt_low, n as u64);
            high_bits.push(ge_n);
        }
        if high_bits.is_empty() {
            return cur;
        }
        let any_high = self.reduce(&high_bits, ReduceOp::Or);
        cur.iter()
            .map(|&c| self.g.and(c, any_high.flip()))
            .collect()
    }

    /// `bits >= k` for a constant k (unsigned).
    pub(crate) fn unsigned_ge_const(&mut self, bits: &[Lit], k: u64) -> Lit {
        // bits >= k  ⇔  NOT (bits < k).
        self.unsigned_lt_const(bits, k).flip()
    }

    /// `bits < k` for a constant k (unsigned).
    pub(crate) fn unsigned_lt_const(&mut self, bits: &[Lit], k: u64) -> Lit {
        // If k has set bits above bits.len(), every value fits below k.
        if (k >> bits.len()) != 0 {
            return Lit::TRUE;
        }
        // Scan LSB→MSB; at each bit the comparison of the prefix [0..=i]
        // is: strictly-less if b < kbit, strictly-greater if b > kbit,
        // else whatever the lower bits decided.
        let mut lt = Lit::FALSE;
        for (i, &b) in bits.iter().enumerate() {
            let kbit = (k >> i) & 1 == 1;
            lt = if kbit {
                // b=0 → less; b=1 → keep lower result.
                self.g.or(b.flip(), lt)
            } else {
                // b=1 → greater; b=0 → keep.
                self.g.and(b.flip(), lt)
            };
        }
        lt
    }

    /// `bits == k` for a constant k.
    pub(crate) fn eq_const(&mut self, bits: &[Lit], k: u64) -> Lit {
        if (k >> bits.len()) != 0 {
            return Lit::FALSE;
        }
        let terms: Vec<Lit> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| b.flip_if((k >> i) & 1 == 0))
            .collect();
        self.reduce(&terms, ReduceOp::And)
    }

    /// Topological order over combinational cells and async read ports.
    fn topo_entries(&self) -> Vec<Entry> {
        let m = self.m;
        // producer per net
        let mut producer: Vec<Option<Entry>> = vec![None; m.nets().len()];
        for (ci, c) in m.cells().iter().enumerate() {
            if !matches!(c.kind, CellKind::Dff { .. }) {
                producer[c.out.0 as usize] = Some(Entry::Cell(ci));
            }
        }
        for (mi, mm) in m.memories().iter().enumerate() {
            for (pi, rp) in mm.read_ports.iter().enumerate() {
                if rp.kind == gem_netlist::ReadKind::Async
                    && matches!(self.mem_impls[mi], MemImpl::Polyfill { .. })
                {
                    producer[rp.data.0 as usize] = Some(Entry::AsyncRead(mi, pi));
                }
            }
        }
        let deps = |e: Entry| -> Vec<NetId> {
            match e {
                Entry::Cell(ci) => m.cell_inputs(&m.cells()[ci]),
                Entry::AsyncRead(mi, pi) => vec![m.memories()[mi].read_ports[pi].addr],
            }
        };
        let key = |e: Entry| -> usize {
            match e {
                Entry::Cell(ci) => ci,
                Entry::AsyncRead(mi, pi) => m.cells().len() + (mi << 8) + pi,
            }
        };
        let total = m.cells().len() + (m.memories().len() << 8) + 256;
        let mut state = vec![0u8; total]; // 0 white, 1 gray, 2 black
        let mut order = Vec::new();
        for start_ci in 0..m.cells().len() {
            let start = Entry::Cell(start_ci);
            if state[key(start)] != 0 {
                continue;
            }
            let mut stack: Vec<(Entry, usize)> = vec![(start, 0)];
            state[key(start)] = 1;
            while let Some(&mut (e, ref mut child)) = stack.last_mut() {
                let d = deps(e);
                if *child < d.len() {
                    let dep = d[*child];
                    *child += 1;
                    if let Some(p) = producer[dep.0 as usize] {
                        if state[key(p)] == 0 {
                            state[key(p)] = 1;
                            stack.push((p, 0));
                        }
                    }
                } else {
                    state[key(e)] = 2;
                    order.push(e);
                    stack.pop();
                }
            }
        }
        // Async reads not reachable from any cell (directly feeding an
        // output) still need lowering.
        for (mi, mm) in m.memories().iter().enumerate() {
            for pi in 0..mm.read_ports.len() {
                let e = Entry::AsyncRead(mi, pi);
                if matches!(self.mem_impls[mi], MemImpl::Polyfill { .. })
                    && mm.read_ports[pi].kind == gem_netlist::ReadKind::Async
                    && state[key(e)] == 0
                {
                    order.push(e);
                }
            }
        }
        order
    }
}

/// Reduction operator selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReduceOp {
    And,
    Or,
    Xor,
}

#[derive(Debug, Clone, Copy)]
enum ShiftDir {
    Left,
    Right,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Entry {
    Cell(usize),
    AsyncRead(usize, usize),
}
