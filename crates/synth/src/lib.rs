//! Synthesis from RTL netlists to extended and-inverter graphs.
//!
//! This crate is the GEM analogue of the paper's two-tool synthesis flow
//! (§III-B, Fig 4): Yosys performed RAM mapping against a fake FPGA target
//! defining the fixed GEM RAM block, and a commercial ASIC synthesizer with
//! a fake library (AND/OR = 1ps, INV = 0ps) performed depth-driven logic
//! synthesis. Both steps are implemented natively here:
//!
//! * [`memory`] — maps word-level memories onto the fixed 13-bit-address ×
//!   32-bit-data RAM block (splitting and banking as needed), and
//!   *polyfills* asynchronous-read memories with flip-flops and decoder
//!   logic, reproducing the inefficiency the paper observes for designs
//!   with register-file-style RAMs;
//! * [`lower`] — bit-blasts word-level cells into the E-AIG with
//!   depth-optimized constructions (prefix adders, balanced reduction
//!   trees, logarithmic barrel shifters), which is exactly the behaviour
//!   the fake 0ps-inverter library extracts from a timing-driven ASIC
//!   synthesizer.
//!
//! # Example
//!
//! ```
//! use gem_netlist::ModuleBuilder;
//! use gem_synth::{synthesize, SynthOptions};
//!
//! let mut b = ModuleBuilder::new("add");
//! let x = b.input("x", 16);
//! let y = b.input("y", 16);
//! let s = b.add(x, y);
//! b.output("s", s);
//! let m = b.finish().expect("valid module");
//!
//! let result = synthesize(&m, &SynthOptions::default()).expect("synthesizable");
//! // A prefix adder keeps the depth logarithmic.
//! assert!(result.eaig.levels().depth <= 12);
//! ```

pub mod lower;
pub mod memory;

use gem_aig::Eaig;
use std::fmt;

/// Tuning knobs for synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthOptions {
    /// Use depth-optimized constructions (prefix adders, balanced trees).
    /// Disabling this falls back to ripple/linear forms — the ablation knob
    /// for the "depth-optimized extended AIG synthesis" design choice.
    pub depth_optimize: bool,
    /// Map synchronous-read memories onto native RAM blocks. Disabling
    /// polyfills *all* memories with flip-flops and decoders (the paper's
    /// "extremely costly for large RAMs" alternative).
    pub ram_mapping: bool,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            depth_optimize: true,
            ram_mapping: true,
        }
    }
}

/// Where the bits of a port live in the E-AIG input/output vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortBits {
    /// Port name from the RTL netlist.
    pub name: String,
    /// First bit index in the E-AIG input (or output) list.
    pub lsb_index: usize,
    /// Width in bits; bits are consecutive, LSB first.
    pub width: u32,
}

/// Result of [`synthesize`].
#[derive(Debug, Clone)]
pub struct SynthResult {
    /// The synthesized graph.
    pub eaig: Eaig,
    /// Input port layout (bit positions within the E-AIG inputs).
    pub inputs: Vec<PortBits>,
    /// Output port layout.
    pub outputs: Vec<PortBits>,
    /// Synthesis statistics.
    pub stats: SynthStats,
}

/// Statistics of a synthesis run — the per-design numbers of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynthStats {
    /// Live AND gates ("#E-AIG Gates" in Table I).
    pub gates: u64,
    /// Logic depth ("#Levels" in Table I).
    pub levels: u32,
    /// Flip-flops, including those created by memory polyfill.
    pub ffs: u64,
    /// Native RAM blocks instantiated.
    pub ram_blocks: u64,
    /// State bits spent polyfilling asynchronous-read memories.
    pub polyfilled_mem_bits: u64,
}

/// Errors from [`synthesize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// A memory has an unsupported shape; the string names it and why.
    UnsupportedMemory(String),
    /// Internal inconsistency (a bug — should not occur on validated
    /// modules).
    Internal(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::UnsupportedMemory(s) => write!(f, "unsupported memory: {s}"),
            SynthError::Internal(s) => write!(f, "internal synthesis error: {s}"),
        }
    }
}

impl std::error::Error for SynthError {}

/// Synthesizes a validated RTL [`gem_netlist::Module`] into an E-AIG.
///
/// Input and output bits are created in port declaration order, LSB first;
/// the returned [`PortBits`] describe the layout.
///
/// # Errors
///
/// Returns [`SynthError::UnsupportedMemory`] for memory shapes outside the
/// supported envelope (see [`memory`]).
pub fn synthesize(m: &gem_netlist::Module, opts: &SynthOptions) -> Result<SynthResult, SynthError> {
    lower::Lowerer::new(m, opts).run()
}
