//! Memory mapping onto GEM's fixed RAM blocks, and polyfill.
//!
//! The E-AIG supports one native RAM shape: 8192 words × 32 bits (13-bit
//! address), one synchronous read port, one write port, read-first. This
//! module adapts arbitrary RTL memories to that shape, mirroring what the
//! paper delegates to Yosys with a fake FPGA target:
//!
//! * wider words are split across column *segments* of 32 bits;
//! * deeper arrays are split across *banks* of 8192 words, with the high
//!   address bits registered to steer a bank-select mux on the read side
//!   and decoded into per-bank write enables;
//! * extra synchronous read ports replicate the whole block array;
//! * memories with *asynchronous* read ports (or when RAM mapping is
//!   disabled) are **polyfilled** with a flip-flop matrix plus write
//!   decoders and read mux trees — the expensive fallback the paper calls
//!   out ("RAMs with asynchronous read ports ... can only be implemented
//!   inefficiently with FFs and decoder logic").
//!
//! Memories with more than one write port are always polyfilled: the
//! native block has a single write port and two simultaneous writes to
//! different addresses cannot be merged into one.

use crate::lower::{Lowerer, ReduceOp};
use crate::SynthError;
use gem_aig::{Lit, RamId, RAM_ADDR_BITS, RAM_DATA_BITS};
use gem_netlist::ReadKind;

/// How one RTL memory is realized in the E-AIG.
#[derive(Debug, Clone)]
pub(crate) enum MemImpl {
    /// Mapped onto native RAM blocks.
    RamBlocks {
        /// `ports[read_port][bank][segment]` RAM ids.
        ports: Vec<Vec<Vec<RamId>>>,
        /// Registered high read-address bits per read port (FF literals).
        haddr_regs: Vec<Vec<Lit>>,
        /// Registered address-valid flag per read port, present when the
        /// address space can exceed `words`.
        rvalid_regs: Vec<Option<Lit>>,
    },
    /// Polyfilled with flip-flops.
    Polyfill {
        /// `words[word][bit]` state literals.
        words: Vec<Vec<Lit>>,
        /// Registered read data per read port (`None` for async ports).
        sync_out: Vec<Option<Vec<Lit>>>,
    },
}

fn ceil_div(a: u32, b: u32) -> u32 {
    a.div_ceil(b)
}

fn addr_can_overflow(addr_width: u32, words: u32) -> bool {
    addr_width >= 32 || (1u64 << addr_width) > words as u64
}

/// Creates memory state elements and seeds read-data nets where the data
/// is a registered (or register-mux) function of existing literals.
pub(crate) fn prepass(lw: &mut Lowerer<'_>) -> Result<(), SynthError> {
    for mi in 0..lw.m.memories().len() {
        let mm = lw.m.memories()[mi].clone();
        let all_sync = mm.read_ports.iter().all(|r| r.kind == ReadKind::Sync);
        let ram_mapped = lw.opts.ram_mapping && all_sync && mm.write_ports.len() <= 1;
        if mm.words == 0 {
            return Err(SynthError::UnsupportedMemory(format!(
                "memory {} has zero words",
                mm.name
            )));
        }
        if ram_mapped {
            let banks = ceil_div(mm.words, 1 << RAM_ADDR_BITS);
            let segs = ceil_div(mm.width, RAM_DATA_BITS as u32);
            let hw = (32 - (banks - 1).leading_zeros()).min(31) as usize; // clog2(banks)
            let hw = if banks == 1 { 0 } else { hw };
            let mut ports = Vec::new();
            let mut haddr_regs = Vec::new();
            let mut rvalid_regs = Vec::new();
            for rp in &mm.read_ports {
                let mut bank_list = Vec::new();
                for _ in 0..banks {
                    let seg_list: Vec<RamId> = (0..segs).map(|_| lw.g.ram()).collect();
                    bank_list.push(seg_list);
                }
                let hregs: Vec<Lit> = (0..hw).map(|_| lw.g.ff(false)).collect();
                let addr_w = lw.m.width(rp.addr);
                let rvalid = addr_can_overflow(addr_w, mm.words).then(|| lw.g.ff(false));
                // Seed the read-data net: bank mux over registered data,
                // gated by the registered valid flag.
                let mut data_bits = Vec::with_capacity(mm.width as usize);
                for bit in 0..mm.width {
                    let seg = (bit / RAM_DATA_BITS as u32) as usize;
                    let b = (bit % RAM_DATA_BITS as u32) as usize;
                    let candidates: Vec<Lit> = (0..banks as usize)
                        .map(|bank| lw.g.ram_out(bank_list[bank][seg], b))
                        .collect();
                    let mut v = mux_tree(lw, &candidates, &hregs);
                    if let Some(val) = rvalid {
                        v = lw.g.and(v, val);
                    }
                    data_bits.push(v);
                }
                lw.bits[rp.data.0 as usize] = Some(data_bits);
                ports.push(bank_list);
                haddr_regs.push(hregs);
                rvalid_regs.push(rvalid);
            }
            lw.stats.ram_blocks += (banks * segs) as u64 * mm.read_ports.len() as u64;
            lw.mem_impls.push(MemImpl::RamBlocks {
                ports,
                haddr_regs,
                rvalid_regs,
            });
        } else {
            // Polyfill: a flip-flop per memory bit.
            let words: Vec<Vec<Lit>> = (0..mm.words)
                .map(|_| (0..mm.width).map(|_| lw.g.ff(false)).collect())
                .collect();
            let mut sync_out = Vec::new();
            for rp in &mm.read_ports {
                if rp.kind == ReadKind::Sync {
                    let regs: Vec<Lit> = (0..mm.width).map(|_| lw.g.ff(false)).collect();
                    lw.bits[rp.data.0 as usize] = Some(regs.clone());
                    sync_out.push(Some(regs));
                } else {
                    sync_out.push(None);
                }
            }
            lw.stats.polyfilled_mem_bits += mm.words as u64 * mm.width as u64;
            lw.mem_impls.push(MemImpl::Polyfill { words, sync_out });
        }
    }
    Ok(())
}

/// Selects one literal out of `candidates` using select bits (LSB first).
/// Missing candidates (index ≥ len) read as constant false.
fn mux_tree(lw: &mut Lowerer<'_>, candidates: &[Lit], sel: &[Lit]) -> Lit {
    fn rec(lw: &mut Lowerer<'_>, c: &[Lit], sel: &[Lit], base: usize, stride: usize) -> Lit {
        if sel.is_empty() {
            return c.get(base).copied().unwrap_or(Lit::FALSE);
        }
        let (head, rest) = (sel[sel.len() - 1], &sel[..sel.len() - 1]);
        let lo = rec(lw, c, rest, base, stride >> 1);
        let hi_base = base + (stride >> 1);
        if hi_base >= c.len() {
            // Entire high half is out of range: select zero when head=1.
            return lw.g.and(lo, head.flip());
        }
        let hi = rec(lw, c, rest, hi_base, stride >> 1);
        lw.g.mux(head, hi, lo)
    }
    if candidates.len() == 1 {
        return candidates[0];
    }
    rec(lw, candidates, sel, 0, 1 << sel.len())
}

/// Lowers an asynchronous read port of a polyfilled memory (called from
/// the topological pass once the address net is available).
pub(crate) fn lower_async_read(
    lw: &mut Lowerer<'_>,
    mi: usize,
    pi: usize,
) -> Result<(), SynthError> {
    let mm = lw.m.memories()[mi].clone();
    let rp = mm.read_ports[pi].clone();
    let addr = lw.net_bits(rp.addr)?;
    let MemImpl::Polyfill { words, .. } = lw.mem_impls[mi].clone() else {
        return Err(SynthError::Internal(
            "async read on a RAM-mapped memory".into(),
        ));
    };
    let data = read_words(lw, &words, &addr, mm.width);
    lw.bits[rp.data.0 as usize] = Some(data);
    Ok(())
}

/// Combinational read of a polyfilled word array: per-bit mux tree over
/// the words, out-of-range addresses read as zero.
fn read_words(lw: &mut Lowerer<'_>, words: &[Vec<Lit>], addr: &[Lit], width: u32) -> Vec<Lit> {
    // Bound the select width: bits above clog2(words) force zero.
    let need = if words.len() <= 1 {
        0
    } else {
        (usize::BITS - (words.len() - 1).leading_zeros()) as usize
    };
    let sel: Vec<Lit> = addr.iter().copied().take(need).collect();
    let extra: Vec<Lit> = addr.iter().copied().skip(need).collect();
    let mut in_range_extra = Lit::TRUE;
    if !extra.is_empty() {
        let any = lw.reduce(&extra, ReduceOp::Or);
        in_range_extra = any.flip();
    }
    // Non-power-of-two word counts: the mux tree already returns zero for
    // missing high entries (see mux_tree).
    (0..width as usize)
        .map(|bit| {
            let col: Vec<Lit> = words.iter().map(|w| w[bit]).collect();
            let v = mux_tree(lw, &col, &sel);
            lw.g.and(v, in_range_extra)
        })
        .collect()
}

/// Wires all memory sequential inputs once combinational lowering is done.
pub(crate) fn postpass(lw: &mut Lowerer<'_>) -> Result<(), SynthError> {
    for mi in 0..lw.m.memories().len() {
        let mm = lw.m.memories()[mi].clone();
        match lw.mem_impls[mi].clone() {
            MemImpl::RamBlocks {
                ports,
                haddr_regs,
                rvalid_regs,
            } => {
                // Single (possibly absent) write port.
                let (we, waddr, wdata) = match mm.write_ports.first() {
                    Some(wp) => (
                        lw.net_bits(wp.enable)?[0],
                        lw.net_bits(wp.addr)?,
                        lw.net_bits(wp.data)?,
                    ),
                    None => (Lit::FALSE, vec![], vec![]),
                };
                let waddr_w = waddr.len() as u32;
                let we = if waddr_w > 0 && addr_can_overflow(waddr_w, mm.words) {
                    let valid = lw.unsigned_lt_const(&waddr, mm.words as u64);
                    lw.g.and(we, valid)
                } else {
                    we
                };
                let banks = ports[0].len();
                for (p, rp) in mm.read_ports.iter().enumerate() {
                    let raddr = lw.net_bits(rp.addr)?;
                    // Register the high read-address bits.
                    for (k, &hreg) in haddr_regs[p].iter().enumerate() {
                        let src = raddr.get(RAM_ADDR_BITS + k).copied().unwrap_or(Lit::FALSE);
                        lw.g.set_ff_next(hreg, src);
                    }
                    if let Some(valid) = rvalid_regs[p] {
                        let ok = lw.unsigned_lt_const(&raddr, mm.words as u64);
                        lw.g.set_ff_next(valid, ok);
                    }
                    let read_low = pad_addr(&raddr);
                    let write_low = pad_addr(&waddr);
                    for (bank, bank_rams) in ports[p].iter().enumerate().take(banks) {
                        // Per-bank write enable decodes the high address.
                        let whigh: Vec<Lit> = waddr.iter().copied().skip(RAM_ADDR_BITS).collect();
                        let bank_we = if banks == 1 {
                            we
                        } else {
                            let hit = lw.eq_const(&whigh, bank as u64);
                            lw.g.and(we, hit)
                        };
                        for (seg, &ram) in bank_rams.iter().enumerate() {
                            let mut wd = [Lit::FALSE; RAM_DATA_BITS];
                            for (b, slot) in wd.iter_mut().enumerate() {
                                *slot = wdata
                                    .get(seg * RAM_DATA_BITS + b)
                                    .copied()
                                    .unwrap_or(Lit::FALSE);
                            }
                            lw.g.set_ram_ports(ram, read_low, write_low, wd, bank_we);
                        }
                    }
                }
            }
            MemImpl::Polyfill { words, sync_out } => {
                // Gather write-port signals.
                let mut wports = Vec::new();
                for wp in &mm.write_ports {
                    wports.push((
                        lw.net_bits(wp.enable)?[0],
                        lw.net_bits(wp.addr)?,
                        lw.net_bits(wp.data)?,
                    ));
                }
                // Word next-state: ports applied in order, later wins.
                for (w, word_ffs) in words.iter().enumerate() {
                    let mut next: Vec<Lit> = word_ffs.clone();
                    for (we, addr, data) in &wports {
                        let hit = lw.eq_const(addr, w as u64);
                        let sel = lw.g.and(*we, hit);
                        next = next
                            .iter()
                            .zip(data)
                            .map(|(&cur, &d)| lw.g.mux(sel, d, cur))
                            .collect();
                    }
                    for (&ff, &n) in word_ffs.iter().zip(&next) {
                        lw.g.set_ff_next(ff, n);
                    }
                }
                // Synchronous read ports: register the combinational read.
                for (pi, rp) in mm.read_ports.iter().enumerate() {
                    if let Some(regs) = &sync_out[pi] {
                        let addr = lw.net_bits(rp.addr)?;
                        let data = read_words(lw, &words, &addr, mm.width);
                        for (&ff, &d) in regs.iter().zip(&data) {
                            lw.g.set_ff_next(ff, d);
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn pad_addr(addr: &[Lit]) -> [Lit; RAM_ADDR_BITS] {
    let mut a = [Lit::FALSE; RAM_ADDR_BITS];
    for (i, slot) in a.iter_mut().enumerate() {
        *slot = addr.get(i).copied().unwrap_or(Lit::FALSE);
    }
    a
}
