//! Hotspot attribution: where does a design's simulation time go?
//!
//! [`profile`] runs a compiled design for N cycles and attributes the
//! cost three ways, combining the modeled GPU timing (deterministic,
//! from [`gem_vgpu::KernelCounters`]) with the measured execution-engine
//! waits ([`gem_vgpu::ExecStats`], wall clock):
//!
//! * **per partition** — each virtual core's modeled µs/cycle from its
//!   own counter refinement (memory traffic vs. compute, whichever
//!   dominates). Partitions of one stage run concurrently on the GPU, so
//!   the slowest partition of each stage bounds that stage.
//! * **per boomerang layer** — compute cost share by layer, localizing
//!   hot logic depth.
//! * **per stage barrier** — measured coordinator wait and summed
//!   core idle time at each stage boundary (the load-imbalance cost the
//!   satellite fix in `ExecStats` now splits per stage).
//!
//! The report is the data argument for the ROADMAP's compiled-backend
//! and re-partitioning items: `gem profile <design.v>` prints
//! [`ProfileReport::render_table`], and the server's `profile` wire op
//! returns [`ProfileReport::to_json`].

use crate::compile::Compiled;
use crate::simulator::GemSimulator;
use gem_telemetry::Json;
use gem_vgpu::{ExecBackend, GpuSpec, MachineError, TimingModel};
use std::time::Instant;

/// Knobs for a profiling run.
#[derive(Debug, Clone)]
pub struct ProfileOptions {
    /// Simulated cycles to run (clamped to at least 1).
    pub cycles: u64,
    /// Execution-engine threads (0 = process default, 1 = serial).
    pub threads: usize,
    /// Core evaluation backend the measured numbers come from
    /// (`None` = process default, i.e. `GEM_BACKEND` or interpreted).
    /// The *modeled* columns are backend-invariant — counters are
    /// bit-identical across backends — but `wall_seconds`, `actual_hz`,
    /// and the barrier table are wall clock, so the report labels which
    /// backend produced them.
    pub backend: Option<ExecBackend>,
    /// GPU the modeled timing targets.
    pub spec: GpuSpec,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            cycles: 256,
            threads: 0,
            backend: None,
            spec: GpuSpec::a100(),
        }
    }
}

/// Modeled cost of one partition (virtual core).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionProfile {
    /// Pipeline stage index.
    pub stage: u32,
    /// Core index within the stage.
    pub core: u32,
    /// Modeled µs per simulated cycle (max of memory and compute terms).
    pub modeled_micros_per_cycle: f64,
    /// Share of the summed per-partition modeled cost (0..=1).
    pub share: f64,
    /// Whether this is the slowest partition of its stage (it bounds the
    /// stage's modeled time — partitions of a stage run concurrently).
    pub stage_critical: bool,
    /// Global-memory bytes per cycle.
    pub global_bytes_per_cycle: f64,
    /// Shared-memory accesses plus fold ALU ops per cycle.
    pub compute_ops_per_cycle: f64,
}

/// Compute cost of one boomerang layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerProfile {
    /// Layer index (0 = widest).
    pub layer: u32,
    /// Times any core executed this layer.
    pub executions: u64,
    /// Shared-memory accesses plus ALU ops attributed to the layer.
    pub compute_ops: u64,
    /// Share of the summed layer compute cost (0..=1).
    pub share: f64,
}

/// Measured waits at one stage barrier (wall clock, host-side).
#[derive(Debug, Clone, PartialEq)]
pub struct BarrierProfile {
    /// Pipeline stage index.
    pub stage: u32,
    /// Barriers crossed.
    pub barriers: u64,
    /// Coordinator blocking time at this barrier, milliseconds.
    pub coordinator_wait_ms: f64,
    /// Summed core idle time waiting for the stage's slowest peer,
    /// milliseconds.
    pub core_idle_ms: f64,
    /// Core tasks fanned out at this stage.
    pub tasks: u64,
}

/// The full attribution report of one profiling run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Design name.
    pub design: String,
    /// Cycles simulated.
    pub cycles: u64,
    /// Execution-engine threads used.
    pub threads: usize,
    /// Core evaluation backend the measured numbers (wall clock,
    /// barrier waits) were produced under — canonical name from
    /// [`ExecBackend::name`].
    pub backend: String,
    /// GPU the modeled numbers target.
    pub gpu: String,
    /// Measured wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// Measured simulation speed, cycles per second.
    pub actual_hz: f64,
    /// Modeled speed on the target GPU, cycles per second.
    pub modeled_hz: f64,
    /// Partitions, most expensive first.
    pub partitions: Vec<PartitionProfile>,
    /// Boomerang layers, widest (layer 0) first.
    pub layers: Vec<LayerProfile>,
    /// Stage barriers in stage order.
    pub barriers: Vec<BarrierProfile>,
}

/// Compiles nothing, simulates everything: runs `compiled` for
/// `opts.cycles` cycles on a fresh simulator (inputs held at zero —
/// GEM's full-cycle execution makes the cost stimulus-independent) and
/// attributes the time.
///
/// # Errors
///
/// Returns [`MachineError`] if the bitstream fails to load (a compiler
/// bug).
pub fn profile(
    compiled: &Compiled,
    design: &str,
    opts: &ProfileOptions,
) -> Result<ProfileReport, MachineError> {
    let mut sim = GemSimulator::new(compiled)?;
    sim.set_threads(opts.threads);
    if let Some(backend) = opts.backend {
        sim.set_backend(backend);
    }
    let cycles = opts.cycles.max(1);
    let started = Instant::now();
    for _ in 0..cycles {
        sim.step();
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    let model = TimingModel::new(opts.spec.clone());
    let bd = sim.breakdown();
    let spec = &opts.spec;

    // Per-partition modeled cost: memory vs. compute, per cycle.
    let mut partitions: Vec<PartitionProfile> = bd
        .partitions
        .iter()
        .map(|p| {
            let c = &p.counters;
            let bytes = c.global_bytes as f64 / cycles as f64;
            let ops = (c.shared_accesses + c.alu_ops) as f64 / cycles as f64;
            let t_mem = bytes / (spec.mem_bandwidth_gbps * 1e9);
            let t_compute = ops / spec.threads_per_block as f64 / (spec.clock_ghz * 1e9);
            PartitionProfile {
                stage: p.stage,
                core: p.core,
                modeled_micros_per_cycle: t_mem.max(t_compute) * 1e6,
                share: 0.0,
                stage_critical: false,
                global_bytes_per_cycle: bytes,
                compute_ops_per_cycle: ops,
            }
        })
        .collect();
    let total_cost: f64 = partitions.iter().map(|p| p.modeled_micros_per_cycle).sum();
    for p in &mut partitions {
        p.share = if total_cost > 0.0 {
            p.modeled_micros_per_cycle / total_cost
        } else {
            0.0
        };
    }
    // Mark each stage's critical (slowest) partition.
    let max_stage = partitions.iter().map(|p| p.stage).max().unwrap_or(0);
    for si in 0..=max_stage {
        if let Some(max_core) = partitions
            .iter()
            .filter(|p| p.stage == si)
            .max_by(|a, b| {
                a.modeled_micros_per_cycle
                    .total_cmp(&b.modeled_micros_per_cycle)
            })
            .map(|p| p.core)
        {
            for p in &mut partitions {
                if p.stage == si && p.core == max_core {
                    p.stage_critical = true;
                }
            }
        }
    }
    partitions.sort_by(|a, b| {
        b.modeled_micros_per_cycle
            .total_cmp(&a.modeled_micros_per_cycle)
    });

    // Per-layer compute shares.
    let layer_total: u64 = bd
        .layers
        .iter()
        .map(|l| l.shared_accesses + l.alu_ops)
        .sum();
    let layers = bd
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let ops = l.shared_accesses + l.alu_ops;
            LayerProfile {
                layer: i as u32,
                executions: l.executions,
                compute_ops: ops,
                share: if layer_total > 0 {
                    ops as f64 / layer_total as f64
                } else {
                    0.0
                },
            }
        })
        .collect();

    // Measured barrier waits (empty in serial mode — no barriers).
    let barriers = sim
        .exec_stats()
        .per_stage
        .iter()
        .map(|s| BarrierProfile {
            stage: s.stage,
            barriers: s.barriers,
            coordinator_wait_ms: s.wait_nanos as f64 / 1e6,
            core_idle_ms: s.idle_nanos as f64 / 1e6,
            tasks: s.tasks,
        })
        .collect();

    Ok(ProfileReport {
        design: design.to_string(),
        cycles,
        threads: sim.threads(),
        backend: sim.backend().name().to_string(),
        gpu: opts.spec.name.to_string(),
        wall_seconds,
        actual_hz: if wall_seconds > 0.0 {
            cycles as f64 / wall_seconds
        } else {
            0.0
        },
        modeled_hz: model.hz_total(sim.counters()),
        partitions,
        layers,
        barriers,
    })
}

impl ProfileReport {
    /// Renders the human-readable attribution table `gem profile` prints.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile: {} — {} cycles, {} thread(s), {} backend, modeled on {}\n",
            self.design, self.cycles, self.threads, self.backend, self.gpu
        ));
        out.push_str(&format!(
            "wall {:.3} s ({:.0} cyc/s actual, {} backend)   modeled {:.0} cyc/s\n\n",
            self.wall_seconds, self.actual_hz, self.backend, self.modeled_hz
        ));
        out.push_str("partitions (modeled, most expensive first; * bounds its stage)\n");
        out.push_str("  stage core   us/cycle  share  bytes/cyc  ops/cyc\n");
        for p in &self.partitions {
            out.push_str(&format!(
                "  {:>5} {:>4}{} {:>9.4} {:>5.1}% {:>10.0} {:>8.0}\n",
                p.stage,
                p.core,
                if p.stage_critical { "*" } else { " " },
                p.modeled_micros_per_cycle,
                p.share * 100.0,
                p.global_bytes_per_cycle,
                p.compute_ops_per_cycle,
            ));
        }
        out.push_str("\nlayers (compute share by boomerang layer)\n");
        out.push_str("  layer  executions  compute_ops  share\n");
        for l in &self.layers {
            out.push_str(&format!(
                "  {:>5} {:>11} {:>12} {:>5.1}%\n",
                l.layer,
                l.executions,
                l.compute_ops,
                l.share * 100.0
            ));
        }
        out.push_str(&format!(
            "\nstage barriers (measured under the {} backend; empty when serial)\n",
            self.backend
        ));
        out.push_str("  stage  barriers  coord_wait_ms  core_idle_ms  tasks\n");
        for b in &self.barriers {
            out.push_str(&format!(
                "  {:>5} {:>9} {:>14.3} {:>13.3} {:>6}\n",
                b.stage, b.barriers, b.coordinator_wait_ms, b.core_idle_ms, b.tasks
            ));
        }
        out
    }

    /// Serializes the report (the `profile` wire op's payload).
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.set("design", self.design.as_str());
        o.set("cycles", self.cycles);
        o.set("threads", self.threads as u64);
        o.set("backend", self.backend.as_str());
        o.set("gpu", self.gpu.as_str());
        o.set("wall_seconds", self.wall_seconds);
        o.set("actual_hz", self.actual_hz);
        o.set("modeled_hz", self.modeled_hz);
        let parts: Vec<Json> = self
            .partitions
            .iter()
            .map(|p| {
                let mut j = Json::object();
                j.set("stage", u64::from(p.stage));
                j.set("core", u64::from(p.core));
                j.set("modeled_micros_per_cycle", p.modeled_micros_per_cycle);
                j.set("share", p.share);
                j.set("stage_critical", p.stage_critical);
                j.set("global_bytes_per_cycle", p.global_bytes_per_cycle);
                j.set("compute_ops_per_cycle", p.compute_ops_per_cycle);
                j
            })
            .collect();
        o.set("partitions", Json::Array(parts));
        let layers: Vec<Json> = self
            .layers
            .iter()
            .map(|l| {
                let mut j = Json::object();
                j.set("layer", u64::from(l.layer));
                j.set("executions", l.executions);
                j.set("compute_ops", l.compute_ops);
                j.set("share", l.share);
                j
            })
            .collect();
        o.set("layers", Json::Array(layers));
        let barriers: Vec<Json> = self
            .barriers
            .iter()
            .map(|b| {
                let mut j = Json::object();
                j.set("stage", u64::from(b.stage));
                j.set("barriers", b.barriers);
                j.set("coordinator_wait_ms", b.coordinator_wait_ms);
                j.set("core_idle_ms", b.core_idle_ms);
                j.set("tasks", b.tasks);
                j
            })
            .collect();
        o.set("barriers", Json::Array(barriers));
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions};
    use gem_netlist::ModuleBuilder;

    fn compiled_acc() -> Compiled {
        let mut b = ModuleBuilder::new("acc");
        let d = b.input("d", 16);
        let q = b.dff(16);
        let nxt = b.add(q, d);
        b.connect_dff(q, nxt);
        b.output("q", q);
        let m = b.finish().expect("valid");
        compile(&m, &CompileOptions::small()).expect("compiles")
    }

    #[test]
    fn profile_attributes_partitions_layers_and_barriers() {
        let c = compiled_acc();
        let rep = profile(
            &c,
            "acc",
            &ProfileOptions {
                cycles: 16,
                threads: 2,
                ..ProfileOptions::default()
            },
        )
        .expect("profiles");
        assert_eq!(rep.cycles, 16);
        assert_eq!(rep.threads, 2);
        assert!(!rep.partitions.is_empty());
        // Shares sum to ~1 and the list is sorted descending.
        let share_sum: f64 = rep.partitions.iter().map(|p| p.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "share sum {share_sum}");
        for w in rep.partitions.windows(2) {
            assert!(w[0].modeled_micros_per_cycle >= w[1].modeled_micros_per_cycle);
        }
        // Exactly one critical partition per stage.
        let stages: std::collections::BTreeSet<u32> =
            rep.partitions.iter().map(|p| p.stage).collect();
        for si in &stages {
            assert_eq!(
                rep.partitions
                    .iter()
                    .filter(|p| p.stage == *si && p.stage_critical)
                    .count(),
                1,
                "stage {si}"
            );
        }
        assert!(!rep.layers.is_empty());
        let layer_sum: f64 = rep.layers.iter().map(|l| l.share).sum();
        assert!((layer_sum - 1.0).abs() < 1e-9);
        // Parallel run with >1 core per stage crosses real barriers.
        if rep.barriers.iter().any(|b| b.barriers > 0) {
            assert!(rep.modeled_hz > 0.0);
        }
        // Table renders every section.
        let table = rep.render_table();
        assert!(table.contains("partitions"));
        assert!(table.contains("layers"));
        assert!(table.contains("stage barriers"));
        // JSON round-trips through the parser.
        let parsed = gem_telemetry::parse_json(&rep.to_json().to_string()).expect("parses");
        assert_eq!(parsed.get("design").unwrap().as_str(), Some("acc"));
        assert!(!parsed
            .get("partitions")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
    }

    /// Regression on the report shape: the hotspot tables must label
    /// which backend produced the measured numbers, in the header line,
    /// the barrier section, and the JSON payload — for each backend.
    #[test]
    fn report_labels_the_measuring_backend() {
        let c = compiled_acc();
        for (backend, name) in [
            (ExecBackend::Interpreted, "interpreted"),
            (ExecBackend::Compiled, "compiled"),
        ] {
            let rep = profile(
                &c,
                "acc",
                &ProfileOptions {
                    cycles: 8,
                    threads: 2,
                    backend: Some(backend),
                    ..ProfileOptions::default()
                },
            )
            .expect("profiles");
            assert_eq!(rep.backend, name);
            let table = rep.render_table();
            let header = table.lines().next().unwrap();
            assert!(
                header.contains(&format!("{name} backend")),
                "header must carry the backend: {header}"
            );
            assert!(
                table.contains(&format!(
                    "stage barriers (measured under the {name} backend"
                )),
                "barrier table must carry the backend"
            );
            let parsed = gem_telemetry::parse_json(&rep.to_json().to_string()).expect("parses");
            assert_eq!(parsed.get("backend").unwrap().as_str(), Some(name));
        }
        // Leaving the knob at None resolves to the process default.
        let rep = profile(
            &c,
            "acc",
            &ProfileOptions {
                cycles: 2,
                threads: 1,
                ..ProfileOptions::default()
            },
        )
        .expect("profiles");
        assert_eq!(rep.backend, ExecBackend::resolved_default().name());
    }

    #[test]
    fn serial_profile_has_no_barrier_rows() {
        let c = compiled_acc();
        let rep = profile(
            &c,
            "acc",
            &ProfileOptions {
                cycles: 4,
                threads: 1,
                ..ProfileOptions::default()
            },
        )
        .expect("profiles");
        assert!(rep.barriers.is_empty(), "serial mode crosses no barriers");
        assert!(rep.modeled_hz > 0.0);
    }
}
