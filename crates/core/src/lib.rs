//! GEM: GPU-accelerated emulator-inspired RTL simulation.
//!
//! This crate is the top of the GEM-RS workspace: it chains the complete
//! compilation flow of the paper —
//!
//! 1. **synthesis** to an extended and-inverter graph (`gem-synth`),
//! 2. **replication-aided, multi-stage partitioning** (`gem-partition`),
//! 3. **width-constrained partition merging** (Algorithm 1),
//! 4. **timing-driven bit placement** onto boomerang layers (`gem-place`),
//! 5. **bitstream generation** in the virtual VLIW ISA (`gem-isa`) —
//!
//! and runs the result on the instrumented virtual GPU (`gem-vgpu`),
//! exposing a waveform-level simulator API.
//!
//! # Example
//!
//! ```
//! use gem_core::{compile, CompileOptions, GemSimulator};
//! use gem_netlist::{Bits, ModuleBuilder};
//!
//! // An 8-bit counter with enable.
//! let mut b = ModuleBuilder::new("counter");
//! let en = b.input("en", 1);
//! let q = b.dff(8);
//! let one = b.lit(1, 8);
//! let inc = b.add(q, one);
//! let next = b.mux(en, inc, q);
//! b.connect_dff(q, next);
//! b.output("q", q);
//! let module = b.finish()?;
//!
//! let compiled = compile(&module, &CompileOptions::small()).expect("compiles");
//! let mut sim = GemSimulator::new(&compiled).expect("loads");
//! sim.set_input("en", Bits::from_u64(1, 1));
//! for expected in 0..5 {
//!     sim.step(); // outputs show the value observed during the cycle
//!     assert_eq!(sim.output("q").to_u64(), expected);
//! }
//! # Ok::<(), gem_netlist::ValidateError>(())
//! ```

pub mod compile;
pub mod package;
pub mod profile;
pub mod replay;
pub mod simulator;
pub mod verify;

pub use compile::{
    compile, compile_eaig, compile_verilog, CompileError, CompileOptions, CompileReport, Compiled,
    IoMap, PortIndices,
};
pub use gem_isa::ScheduleCert;
pub use gem_vgpu::{ExecBackend, ExecMode, ExecStats};
pub use package::{
    cert_from_json, cert_to_json, device_from_json, device_to_json, io_from_json, io_to_json,
    report_from_json, Package, ParsePackageError,
};
pub use profile::{
    profile, BarrierProfile, LayerProfile, PartitionProfile, ProfileOptions, ProfileReport,
};
pub use replay::{StimulusError, VcdStimulus};
pub use simulator::GemSimulator;
pub use verify::{verify, verify_metrics};
