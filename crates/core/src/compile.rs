//! The end-to-end GEM compiler (RTL → bitstream).

use gem_aig::{Eaig, Lit, Node, RAM_ADDR_BITS, RAM_DATA_BITS};
use gem_analyze::{AnalysisReport, Severity};
use gem_isa::{assemble_core, Bitstream, ReadEntry, ScheduleCert, WriteEntry, WriteSrc};
use gem_netlist::verilog::SourceLint;
use gem_netlist::Module;
use gem_partition::merge::{estimate_width, merge_partitions};
use gem_partition::repcut::Region;
use gem_partition::{partition, Partition, PartitionOptions, Partitioning};
use gem_place::{place_partition, CoreProgram, OutputSource, PlaceError, PlaceOptions};
use gem_synth::{synthesize, PortBits, SynthError, SynthOptions, SynthResult};
use gem_telemetry::{FlowRecorder, FlowReport, Json};
use gem_vgpu::{DeviceConfig, RamBinding};
use std::collections::HashMap;
use std::fmt;

/// Options for [`compile`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompileOptions {
    /// Synthesis options.
    pub synth: SynthOptions,
    /// Desired partition count (the paper uses ≥216 to fill an A100).
    pub target_parts: usize,
    /// Pipeline stages (1 = single-stage RepCut; 2 recommended for large
    /// designs).
    pub stages: usize,
    /// Core width in bits (8192 in the paper; smaller for fast tests).
    pub core_width: u32,
    /// Timing-driven placement (Algorithm 2) vs FIFO ablation.
    pub timing_driven: bool,
    /// Seed for all heuristics.
    pub seed: u64,
    /// Run the static bitstream verifier (`gem_isa::verify`) after
    /// encoding; a violation fails the compile with
    /// [`CompileError::Verify`].
    pub verify: bool,
    /// Nonzero: corrupt the bitstream with a seeded mutation before the
    /// verifier runs (`gem_isa::mutate::corrupt`). Exercises the verify
    /// gate end to end — a fault-injected compile must *fail*.
    pub verify_fault: u64,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            synth: SynthOptions::default(),
            target_parts: 216,
            stages: 1,
            core_width: 8192,
            timing_driven: true,
            seed: 0xC0DE,
            verify: true,
            verify_fault: 0,
        }
    }
}

impl CompileOptions {
    /// A configuration sized for unit tests and small examples: few
    /// partitions, narrow cores.
    pub fn small() -> Self {
        CompileOptions {
            target_parts: 4,
            core_width: 256,
            ..Default::default()
        }
    }
}

/// Where a port's bits live in the device-global signal array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortIndices {
    /// Port name.
    pub name: String,
    /// Global bit index per port bit, LSB first.
    pub bits: Vec<u32>,
}

/// Input/output binding of a compiled design.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IoMap {
    /// Input ports (poke these).
    pub inputs: Vec<PortIndices>,
    /// Output ports (peek these after a cycle).
    pub outputs: Vec<PortIndices>,
}

impl IoMap {
    /// Finds an input port by name.
    pub fn input(&self, name: &str) -> Option<&PortIndices> {
        self.inputs.iter().find(|p| p.name == name)
    }

    /// Finds an output port by name.
    pub fn output(&self, name: &str) -> Option<&PortIndices> {
        self.outputs.iter().find(|p| p.name == name)
    }
}

/// The Table I numbers for one compiled design.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompileReport {
    /// Live E-AIG AND gates.
    pub gates: u64,
    /// E-AIG logic depth.
    pub levels: u32,
    /// Pipeline stages.
    pub stages: u32,
    /// Maximum boomerang layers over all cores.
    pub layers: u32,
    /// Partitions (thread blocks).
    pub parts: u32,
    /// Assembled bitstream size in bytes.
    pub bitstream_bytes: u64,
    /// Replication cost of partitioning (duplicated / original gates).
    pub replication_cost: f64,
    /// Native RAM blocks.
    pub ram_blocks: u64,
    /// State bits spent polyfilling asynchronous-read memories.
    pub polyfilled_mem_bits: u64,
    /// Whether the static bitstream verifier ran and passed (false when
    /// verification was disabled).
    pub verified: bool,
    /// Whether the schedule happens-before checker ran and produced a
    /// [`ScheduleCert`] (false when verification was disabled).
    pub certified: bool,
}

impl CompileReport {
    /// Serializes the report (field names are part of the metrics-file
    /// format; see `docs/OBSERVABILITY.md`).
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.set("gates", self.gates);
        o.set("levels", self.levels);
        o.set("stages", self.stages);
        o.set("layers", self.layers);
        o.set("parts", self.parts);
        o.set("bitstream_bytes", self.bitstream_bytes);
        o.set("replication_cost", self.replication_cost);
        o.set("ram_blocks", self.ram_blocks);
        o.set("polyfilled_mem_bits", self.polyfilled_mem_bits);
        o.set("verified", self.verified);
        o.set("certified", self.certified);
        o
    }
}

/// A fully compiled design.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Assembled bitstream (load into [`gem_vgpu::GemGpu`]).
    pub bitstream: Bitstream,
    /// Device configuration (global space size, RAM bindings).
    pub device: DeviceConfig,
    /// Port ↔ global-bit binding.
    pub io: IoMap,
    /// Statistics (Table I row).
    pub report: CompileReport,
    /// Per-stage compile telemetry: wall time and size metrics for each
    /// phase that ran (`synth` only when compiling from RTL).
    pub flow: FlowReport,
    /// The synthesized E-AIG (kept for golden-model cross-checks and
    /// baseline simulators).
    pub eaig: Eaig,
    /// The partitioning that produced the bitstream.
    pub partitioning: Partitioning,
    /// Per-core placement programs (stage-major order, matching the
    /// bitstream).
    pub programs: Vec<Vec<CoreProgram>>,
    /// Input-port layout within the E-AIG's input list (bit positions for
    /// driving `eaig` directly, e.g. from baseline simulators).
    pub eaig_inputs: Vec<PortBits>,
    /// Output-port layout within the E-AIG's output list.
    pub eaig_outputs: Vec<PortBits>,
    /// Schedule happens-before certificate (present when verification
    /// ran; stored in the `.gemb` package and re-checked on load).
    pub schedule_cert: Option<ScheduleCert>,
}

impl Compiled {
    /// The combined compile-side metrics document: the Table I report
    /// plus the per-stage flow timings, as one JSON object.
    pub fn metrics_json(&self) -> Json {
        let mut o = Json::object();
        o.set("report", self.report.to_json());
        o.set("compile_flow", self.flow.to_json());
        o
    }
}

/// Errors from [`compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Synthesis failed.
    Synth(SynthError),
    /// A partition stayed unmappable even after excessive re-partitioning.
    Place(PlaceError),
    /// The static analyzer found error-severity diagnostics (e.g. a
    /// combinational cycle) or the schedule could not be certified.
    Analyze(String),
    /// The static bitstream verifier found invariant violations.
    Verify(String),
    /// Internal inconsistency (a bug).
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Synth(e) => write!(f, "synthesis failed: {e}"),
            CompileError::Place(e) => write!(f, "placement failed: {e}"),
            CompileError::Analyze(s) => write!(f, "static analysis failed: {s}"),
            CompileError::Verify(s) => write!(f, "bitstream verification failed: {s}"),
            CompileError::Internal(s) => write!(f, "internal compiler error: {s}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<SynthError> for CompileError {
    fn from(e: SynthError) -> Self {
        CompileError::Synth(e)
    }
}

/// Runs the static analyzer as a recorded flow stage and gates the
/// compile on error-severity diagnostics.
fn analyze_stage(
    m: &Module,
    lints: &[SourceLint],
    flow: &mut FlowRecorder,
) -> Result<AnalysisReport, CompileError> {
    let mut st = flow.stage("analyze");
    let report = gem_analyze::analyze_with_lints(m, lints);
    st.metric("diagnostics", report.diagnostics.len() as f64);
    st.metric("errors", report.count(Severity::Error) as f64);
    st.metric("warnings", report.count(Severity::Warning) as f64);
    for p in &report.passes {
        st.metric(&format!("{}_wall_ns", p.name), p.wall_ns as f64);
        st.metric(&format!("{}_diagnostics", p.name), p.diagnostics as f64);
    }
    drop(st);
    let errors: Vec<_> = report.errors().collect();
    if let Some(first) = errors.first() {
        return Err(CompileError::Analyze(format!(
            "{} error-severity diagnostic(s); first: {first}",
            errors.len()
        )));
    }
    Ok(report)
}

/// Compiles Verilog source through the full GEM flow, running the static
/// analyzer *before* netlist validation so structural errors surface as
/// named diagnostics — a combinational loop reports the nets on the
/// cycle ([`CompileError::Analyze`]) instead of an opaque levelization
/// failure.
///
/// # Errors
///
/// [`CompileError::Analyze`] on parse-visible design errors (loops,
/// undriven or multiply-driven nets, width mismatches), then everything
/// [`compile`] can return.
pub fn compile_verilog(source: &str, opts: &CompileOptions) -> Result<Compiled, CompileError> {
    let (m, lints) = gem_netlist::verilog::parse_with_lints(source)
        .map_err(|e| CompileError::Analyze(format!("parse failed: {e}")))?;
    let mut flow = FlowRecorder::new("compile");
    analyze_stage(&m, &lints, &mut flow)?;
    // The analyzer passed; validation catches only what the lints do not
    // model (it is the authoritative gate either way).
    gem_netlist::validate(&m).map_err(|e| CompileError::Analyze(e.to_string()))?;
    compile_with(&m, opts, flow)
}

/// Compiles an RTL module through the full GEM flow.
///
/// # Errors
///
/// Returns [`CompileError`] when synthesis fails or a partition cannot be
/// made mappable (e.g. the design's width genuinely exceeds
/// `target_parts × core_width`), and [`CompileError::Analyze`] when the
/// static analyzer finds error-severity diagnostics.
pub fn compile(m: &Module, opts: &CompileOptions) -> Result<Compiled, CompileError> {
    let mut flow = FlowRecorder::new("compile");
    analyze_stage(m, &[], &mut flow)?;
    compile_with(m, opts, flow)
}

fn compile_with(
    m: &Module,
    opts: &CompileOptions,
    mut flow: FlowRecorder,
) -> Result<Compiled, CompileError> {
    let synth = {
        let mut st = flow.stage("synth");
        let synth = synthesize(m, &opts.synth)?;
        st.metric("gates", synth.stats.gates as f64);
        st.metric("levels", f64::from(synth.stats.levels));
        st.metric("ram_blocks", synth.stats.ram_blocks as f64);
        st.metric(
            "polyfilled_mem_bits",
            synth.stats.polyfilled_mem_bits as f64,
        );
        synth
    };
    compile_eaig_with(synth, opts, flow)
}

/// Compiles a synthesized design (entry point for callers that build the
/// E-AIG directly).
pub fn compile_eaig(synth: SynthResult, opts: &CompileOptions) -> Result<Compiled, CompileError> {
    compile_eaig_with(synth, opts, FlowRecorder::new("compile"))
}

fn compile_eaig_with(
    synth: SynthResult,
    opts: &CompileOptions,
    mut flow: FlowRecorder,
) -> Result<Compiled, CompileError> {
    let g = &synth.eaig;
    let place_opts = PlaceOptions {
        core_width: opts.core_width,
        timing_driven: opts.timing_driven,
        ..Default::default()
    };

    // --- Partition, excessively if needed, until everything is mappable.
    // More partitions shrink cone *sizes*; more stages cut deep shared
    // cones whose live *width* exceeds the core regardless of count, so
    // the retry schedule grows both.
    let mut parts_goal = opts.target_parts;
    let mut stages_goal = opts.stages;
    let mut partitioning = None;
    let mut last_err = None;
    let mut attempts = 0u32;
    let mut part_stage = flow.stage("partition");
    for attempt in 0..8 {
        attempts = attempt + 1;
        let popts = PartitionOptions {
            target_parts: parts_goal,
            stages: stages_goal,
            seed: opts.seed,
            ..Default::default()
        };
        let cand = partition(g, &popts);
        match all_mappable(g, &cand, &place_opts) {
            Ok(()) => {
                partitioning = Some(cand);
                break;
            }
            Err(e) => {
                gem_telemetry::debug!(
                    "partition attempt {attempts} unmappable ({e}); retrying with \
                     {} parts / {} stages",
                    parts_goal * 2,
                    (stages_goal + usize::from(attempt % 2 == 1)).min(4),
                );
                last_err = Some(e);
                parts_goal *= 2;
                if attempt % 2 == 1 && stages_goal < 4 {
                    stages_goal += 1;
                }
            }
        }
    }
    part_stage.metric("attempts", f64::from(attempts));
    if let Some(p) = &partitioning {
        part_stage.metric("parts", p.max_parts() as f64);
        part_stage.metric("stages", p.stages.len() as f64);
        part_stage.metric("replication_cost", p.replication_cost());
    }
    drop(part_stage);
    let partitioning =
        partitioning.ok_or_else(|| CompileError::Place(last_err.expect("tried at least once")))?;

    // --- Algorithm 1: merge back under the width constraint.
    let mut merge_stage = flow.stage("merge");
    let mut merged_stages = Vec::new();
    let mut stop = vec![false; g.len()];
    for stage in &partitioning.stages {
        let region = Region {
            sinks: stage
                .partitions
                .iter()
                .flat_map(|p| p.sinks.iter().copied())
                .collect(),
            stop: stop.clone(),
        };
        let mappable = |p: &Partition| {
            estimate_width(g, p) <= opts.core_width as usize
                && place_partition(g, p, &place_opts).is_ok()
        };
        let (merged, _stats) = merge_partitions(g, &region, stage, &mappable);
        for l in &merged.cut_lits {
            stop[l.node().0 as usize] = true;
        }
        merged_stages.push(merged);
    }
    let partitioning = Partitioning {
        stages: merged_stages,
        original_gates: partitioning.original_gates,
    };
    merge_stage.metric("parts", partitioning.max_parts() as f64);
    merge_stage.metric(
        "cut_lits",
        partitioning
            .stages
            .iter()
            .map(|s| s.cut_lits.len())
            .sum::<usize>() as f64,
    );
    merge_stage.metric("replication_cost", partitioning.replication_cost());
    drop(merge_stage);

    // --- Final placement.
    let mut place_stage = flow.stage("place");
    let mut programs: Vec<Vec<CoreProgram>> = Vec::new();
    let mut max_layers = 0u32;
    for stage in &partitioning.stages {
        let mut progs = Vec::new();
        for p in &stage.partitions {
            let (prog, stats) = place_partition(g, p, &place_opts).map_err(CompileError::Place)?;
            max_layers = max_layers.max(stats.layers);
            progs.push(prog);
        }
        programs.push(progs);
    }
    place_stage.metric("max_layers", f64::from(max_layers));
    place_stage.metric("cores", programs.iter().map(Vec::len).sum::<usize>() as f64);
    drop(place_stage);

    // --- Global signal space.
    let mut encode_stage = flow.stage("encode");
    let mut global_of: HashMap<u32, u32> = HashMap::new(); // node -> slot
    let mut next_slot = 0u32;
    let slot = |global_of: &mut HashMap<u32, u32>, next: &mut u32, node: u32| -> u32 {
        *global_of.entry(node).or_insert_with(|| {
            let s = *next;
            *next += 1;
            s
        })
    };
    for (_, id) in g.inputs() {
        slot(&mut global_of, &mut next_slot, id.0);
    }
    let mut initial_ones = Vec::new();
    for f in g.ffs() {
        let sl = slot(&mut global_of, &mut next_slot, f.out.0);
        if f.init {
            initial_ones.push(sl);
        }
    }
    for r in g.rams() {
        for o in r.out {
            slot(&mut global_of, &mut next_slot, o.0);
        }
    }
    for stage in &partitioning.stages {
        for l in &stage.cut_lits {
            slot(&mut global_of, &mut next_slot, l.node().0);
        }
    }
    // Destinations: (lit, global index, deferred).
    let mut dests: Vec<(Lit, u32, bool)> = Vec::new();
    for f in g.ffs() {
        dests.push((f.next, global_of[&f.out.0], true));
    }
    let mut ram_bindings = Vec::new();
    for r in g.rams() {
        let mut bind = RamBinding {
            raddr: [0; RAM_ADDR_BITS],
            waddr: [0; RAM_ADDR_BITS],
            wdata: [0; RAM_DATA_BITS],
            we: 0,
            rdata: [0; RAM_DATA_BITS],
        };
        for (k, &l) in r.read_addr.iter().enumerate() {
            bind.raddr[k] = next_slot;
            dests.push((l, next_slot, false));
            next_slot += 1;
        }
        for (k, &l) in r.write_addr.iter().enumerate() {
            bind.waddr[k] = next_slot;
            dests.push((l, next_slot, false));
            next_slot += 1;
        }
        for (k, &l) in r.write_data.iter().enumerate() {
            bind.wdata[k] = next_slot;
            dests.push((l, next_slot, false));
            next_slot += 1;
        }
        bind.we = next_slot;
        dests.push((r.write_en, next_slot, false));
        next_slot += 1;
        for (k, o) in r.out.iter().enumerate() {
            bind.rdata[k] = global_of[&o.0];
        }
        ram_bindings.push(bind);
    }
    // Cut signals publish into their own node's slot (immediate).
    for stage in &partitioning.stages {
        for &l in &stage.cut_lits {
            dests.push((l, global_of[&l.node().0], false));
        }
    }
    // Primary outputs get dedicated slots (deferred).
    let mut po_slots = Vec::new();
    for (_, l) in g.outputs() {
        po_slots.push(next_slot);
        dests.push((*l, next_slot, true));
        next_slot += 1;
    }
    let global_bits = next_slot;

    // --- Ownership: which core publishes each sink literal.
    // lit code -> (stage, core, OutputSource)
    let mut owner: HashMap<u32, (usize, usize, OutputSource)> = HashMap::new();
    for (si, stage) in partitioning.stages.iter().enumerate() {
        for (ci, p) in stage.partitions.iter().enumerate() {
            for (k, &sink) in p.sinks.iter().enumerate() {
                owner
                    .entry(sink.code())
                    .or_insert((si, ci, programs[si][ci].outputs[k]));
            }
        }
    }
    let resolve = |l: Lit| -> Result<(usize, usize, OutputSource), CompileError> {
        if let Some(&o) = owner.get(&l.code()) {
            return Ok(o);
        }
        if let Some(&(si, ci, src)) = owner.get(&l.flip().code()) {
            let flipped = match src {
                OutputSource::State { addr, invert } => OutputSource::State {
                    addr,
                    invert: !invert,
                },
                OutputSource::Const(v) => OutputSource::Const(!v),
            };
            return Ok((si, ci, flipped));
        }
        Err(CompileError::Internal(format!(
            "sink {l} not published by any partition"
        )))
    };

    // --- Per-core global reads/writes, then assembly.
    let mut writes_per_core: Vec<Vec<Vec<WriteEntry>>> = programs
        .iter()
        .map(|s| s.iter().map(|_| Vec::new()).collect())
        .collect();
    for &(lit, global, deferred) in &dests {
        if matches!(g.node(lit.node()), Node::Const0) {
            // Constant destinations are published by stage 0, core 0 (any
            // core could; constants need no state).
            writes_per_core[0][0].push(WriteEntry {
                global,
                src: WriteSrc::Const(lit.is_inverted()),
                deferred,
            });
            continue;
        }
        let (si, ci, src) = resolve(lit)?;
        let src = match src {
            OutputSource::State { addr, invert } => WriteSrc::State {
                addr: addr as u16,
                invert,
            },
            OutputSource::Const(v) => WriteSrc::Const(v),
        };
        writes_per_core[si][ci].push(WriteEntry {
            global,
            src,
            deferred,
        });
    }
    let mut stages_bytes = Vec::new();
    for (si, progs) in programs.iter().enumerate() {
        let mut cores = Vec::new();
        for (ci, prog) in progs.iter().enumerate() {
            let reads: Vec<ReadEntry> = prog
                .inputs
                .iter()
                .map(|&(node, state)| {
                    let global = *global_of.get(&node.0).ok_or_else(|| {
                        CompileError::Internal(format!("source n{} has no global slot", node.0))
                    })?;
                    Ok(ReadEntry {
                        global,
                        state: state as u16,
                    })
                })
                .collect::<Result<_, CompileError>>()?;
            cores.push(assemble_core(prog, &reads, &writes_per_core[si][ci]));
        }
        stages_bytes.push(cores);
    }
    let bitstream = Bitstream {
        width: opts.core_width,
        global_bits,
        stages: stages_bytes,
    };

    // --- I/O map.
    let node_slot = |idx: usize| -> u32 {
        let (_, id) = &g.inputs()[idx];
        global_of[&id.0]
    };
    let mut io = IoMap::default();
    for pb in &synth.inputs {
        io.inputs.push(PortIndices {
            name: pb.name.clone(),
            bits: (0..pb.width as usize)
                .map(|i| node_slot(pb.lsb_index + i))
                .collect(),
        });
    }
    for pb in &synth.outputs {
        io.outputs.push(PortIndices {
            name: pb.name.clone(),
            bits: (0..pb.width as usize)
                .map(|i| po_slots[pb.lsb_index + i])
                .collect(),
        });
    }

    encode_stage.metric("bitstream_bytes", bitstream.total_bytes() as f64);
    encode_stage.metric("global_bits", f64::from(global_bits));
    encode_stage.metric("ram_blocks", ram_bindings.len() as f64);
    drop(encode_stage);

    let device = DeviceConfig {
        global_bits,
        rams: ram_bindings,
        initial_ones,
    };

    // --- Static verification gate.
    let bitstream = if opts.verify_fault != 0 {
        gem_telemetry::warn!(
            "injecting bitstream fault (verify_fault = {})",
            opts.verify_fault
        );
        gem_isa::mutate::corrupt(&bitstream, opts.verify_fault)
    } else {
        bitstream
    };
    let mut verified = false;
    if opts.verify {
        let mut st = flow.stage("verify");
        let vr = crate::verify::verify(&bitstream, &device, &io, Some(&programs));
        st.metric("cores", vr.cores as f64);
        st.metric("violations", vr.total_violations() as f64);
        for c in &vr.checks {
            st.metric(&format!("{}_violations", c.name), c.violations as f64);
            st.metric(&format!("{}_wall_ns", c.name), c.wall_ns as f64);
        }
        if !vr.passed() {
            return Err(CompileError::Verify(vr.summary()));
        }
        verified = true;
    }

    // --- Schedule happens-before certification.
    let mut schedule_cert = None;
    if opts.verify {
        let mut st = flow.stage("certify");
        let ctx = crate::verify::context(&device, &io, Some(&programs));
        match gem_isa::certify_schedule(&bitstream, &ctx) {
            Ok(cert) => {
                st.metric("reads", f64::from(cert.reads));
                st.metric("barrier_edges", f64::from(cert.barrier_edges));
                st.metric("boundary_edges", f64::from(cert.boundary_edges));
                schedule_cert = Some(cert);
            }
            Err(violations) => {
                st.metric("violations", violations.len() as f64);
                drop(st);
                let first = violations
                    .first()
                    .map_or_else(String::new, |v| v.message.clone());
                return Err(CompileError::Analyze(format!(
                    "schedule certification failed with {} violation(s); \
                     first: {first}",
                    violations.len()
                )));
            }
        }
    }

    let report = CompileReport {
        gates: synth.stats.gates,
        levels: synth.stats.levels,
        stages: partitioning.stages.len() as u32,
        layers: max_layers,
        parts: partitioning.max_parts() as u32,
        bitstream_bytes: bitstream.total_bytes() as u64,
        replication_cost: partitioning.replication_cost(),
        ram_blocks: synth.stats.ram_blocks,
        polyfilled_mem_bits: synth.stats.polyfilled_mem_bits,
        verified,
        certified: schedule_cert.is_some(),
    };
    gem_telemetry::info!(
        "compiled: {} gates, {} parts, {} stages, {} layers, {} B bitstream",
        report.gates,
        report.parts,
        report.stages,
        report.layers,
        report.bitstream_bytes
    );
    Ok(Compiled {
        bitstream,
        device,
        io,
        report,
        flow: flow.finish(),
        eaig: synth.eaig,
        partitioning,
        programs,
        eaig_inputs: synth.inputs,
        eaig_outputs: synth.outputs,
        schedule_cert,
    })
}

fn all_mappable(g: &Eaig, parts: &Partitioning, opts: &PlaceOptions) -> Result<(), PlaceError> {
    for stage in &parts.stages {
        for p in &stage.partitions {
            place_partition(g, p, opts)?;
        }
    }
    Ok(())
}
