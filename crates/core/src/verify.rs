//! Compiler-side adapter for the static bitstream verifier.
//!
//! [`gem_isa::verify`] works from a neutral [`VerifyContext`] so the ISA
//! crate stays below the machine layer; this module builds that context
//! from the compiler's own artifacts ([`DeviceConfig`], [`IoMap`], the
//! placed programs) and converts a [`VerifyReport`] into the
//! `gem_verify_*` metric families that flow through
//! [`gem_telemetry::MetricsSink`].

use crate::IoMap;
use gem_isa::verify::RamSlots;
use gem_isa::{verify_bitstream, Bitstream, VerifyContext, VerifyReport};
use gem_place::CoreProgram;
use gem_telemetry::{MetricFamily, MetricKind, MetricsSnapshot, Sample};
use gem_vgpu::DeviceConfig;

/// Builds the verifier's view of the device from compiler outputs.
pub fn context<'a>(
    device: &DeviceConfig,
    io: &IoMap,
    programs: Option<&'a [Vec<CoreProgram>]>,
) -> VerifyContext<'a> {
    VerifyContext {
        global_bits: device.global_bits,
        rams: device
            .rams
            .iter()
            .map(|r| RamSlots {
                raddr: r.raddr.to_vec(),
                waddr: r.waddr.to_vec(),
                wdata: r.wdata.to_vec(),
                we: r.we,
                rdata: r.rdata.to_vec(),
            })
            .collect(),
        initial_ones: device.initial_ones.clone(),
        input_slots: io.inputs.iter().flat_map(|p| p.bits.clone()).collect(),
        output_slots: io.outputs.iter().flat_map(|p| p.bits.clone()).collect(),
        programs,
        schedule_cert: None,
    }
}

/// Runs the full static check suite against a compiled design's
/// artifacts. Pass `programs: None` when verifying a packaged design
/// that no longer carries placement metadata (the `merge` check is
/// skipped).
pub fn verify(
    bitstream: &Bitstream,
    device: &DeviceConfig,
    io: &IoMap,
    programs: Option<&[Vec<CoreProgram>]>,
) -> VerifyReport {
    verify_bitstream(bitstream, &context(device, io, programs))
}

impl crate::Compiled {
    /// Verifies this compile result's bitstream against its own device,
    /// I/O, and placement metadata (all seven check families). When a
    /// schedule certificate is attached, the `schedule` check
    /// additionally cross-checks the stored cert against recomputation.
    pub fn verify(&self) -> VerifyReport {
        let mut ctx = context(&self.device, &self.io, Some(&self.programs));
        ctx.schedule_cert = self.schedule_cert.as_ref();
        verify_bitstream(&self.bitstream, &ctx)
    }
}

/// Converts a verification report into the `gem_verify_*` metric
/// families (documented in `docs/OBSERVABILITY.md`).
pub fn verify_metrics(report: &VerifyReport) -> MetricsSnapshot {
    let mut s = MetricsSnapshot::default();
    s.push_scalar(
        "gem_verify_cores",
        "Cores examined by the static bitstream verifier",
        MetricKind::Gauge,
        report.cores as f64,
    );
    s.push_scalar(
        "gem_verify_passed",
        "1 when the last verification found no violations",
        MetricKind::Gauge,
        if report.passed() { 1.0 } else { 0.0 },
    );
    s.push_scalar(
        "gem_verify_checks_total",
        "Check families executed",
        MetricKind::Counter,
        report.checks.len() as f64,
    );
    let labeled = |values: Vec<(&str, f64)>| -> Vec<Sample> {
        values
            .into_iter()
            .map(|(name, value)| Sample {
                labels: vec![("check".to_string(), name.to_string())],
                value,
            })
            .collect()
    };
    s.push(MetricFamily {
        name: "gem_verify_violations_total".to_string(),
        help: "Invariant violations found, by check family".to_string(),
        kind: MetricKind::Counter,
        samples: labeled(
            report
                .checks
                .iter()
                .map(|c| (c.name, c.violations as f64))
                .collect(),
        ),
    });
    s.push(MetricFamily {
        name: "gem_verify_check_wall_nanos".to_string(),
        help: "Wall time spent per check family".to_string(),
        kind: MetricKind::Gauge,
        samples: labeled(
            report
                .checks
                .iter()
                .map(|c| (c.name, c.wall_ns as f64))
                .collect(),
        ),
    });
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions};
    use gem_netlist::ModuleBuilder;

    fn counter() -> gem_netlist::Module {
        let mut b = ModuleBuilder::new("counter");
        let en = b.input("en", 1);
        let q = b.dff(8);
        let one = b.lit(1, 8);
        let inc = b.add(q, one);
        let next = b.mux(en, inc, q);
        b.connect_dff(q, next);
        b.output("q", q);
        b.finish().expect("valid module")
    }

    #[test]
    fn compiled_designs_verify_clean() {
        let c = compile(&counter(), &CompileOptions::small()).expect("compiles");
        assert!(c.report.verified);
        let r = c.verify();
        assert!(r.passed(), "{}", r.summary());
        assert_eq!(r.checks.len(), gem_isa::verify::CHECK_NAMES.len());
        // The flow recorded a verify stage with per-check metrics.
        let st = c.flow.stage("verify").expect("verify stage recorded");
        assert_eq!(st.metric("violations"), Some(0.0));
        assert_eq!(st.metric("roundtrip_violations"), Some(0.0));
    }

    #[test]
    fn fault_injection_fails_the_compile() {
        let opts = CompileOptions {
            verify_fault: 3,
            ..CompileOptions::small()
        };
        let err = compile(&counter(), &opts).expect_err("fault must be caught");
        assert!(
            matches!(err, crate::CompileError::Verify(_)),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn fault_injection_slips_through_when_verification_is_off() {
        let opts = CompileOptions {
            verify: false,
            verify_fault: 3,
            ..CompileOptions::small()
        };
        let c = compile(&counter(), &opts).expect("no gate, no failure");
        assert!(!c.report.verified);
        assert!(!c.verify().passed(), "the corruption is still there");
    }

    #[test]
    fn metrics_families_cover_every_check() {
        let c = compile(&counter(), &CompileOptions::small()).expect("compiles");
        let snap = verify_metrics(&c.verify());
        assert_eq!(snap.family("gem_verify_passed").unwrap().total(), 1.0);
        let v = snap.family("gem_verify_violations_total").unwrap();
        assert_eq!(v.samples.len(), gem_isa::verify::CHECK_NAMES.len());
        assert_eq!(v.total(), 0.0);
        assert!(snap.family("gem_verify_check_wall_nanos").is_some());
    }
}
