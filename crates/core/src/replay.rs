//! VCD stimulus replay.
//!
//! The paper's execution stage consumes "input stimuli, provided as
//! waveforms or recorded signal patterns (e.g., VCD or FSDB format)".
//! [`VcdStimulus`] parses a VCD dump, matches its variables against the
//! compiled design's input ports by name, and drives the simulator one
//! cycle per VCD timestamp (values persist between changes, as in a real
//! waveform).

use crate::simulator::GemSimulator;
use crate::IoMap;
use gem_netlist::vcd::{ParseVcdError, VarId, VcdDump};
use gem_netlist::Bits;
use std::collections::HashMap;
use std::fmt;

/// Errors from [`VcdStimulus::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StimulusError {
    /// The VCD text failed to parse.
    Parse(ParseVcdError),
    /// A VCD variable matches an input port but with a different width.
    WidthMismatch {
        /// Port / variable name.
        name: String,
        /// Width in the VCD.
        vcd: u32,
        /// Width of the design port.
        port: u32,
    },
    /// No VCD variable matches any input port.
    NoMatchingInputs,
}

impl fmt::Display for StimulusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StimulusError::Parse(e) => write!(f, "bad stimulus VCD: {e}"),
            StimulusError::WidthMismatch { name, vcd, port } => write!(
                f,
                "stimulus variable {name:?} is {vcd} bits but the port is {port}"
            ),
            StimulusError::NoMatchingInputs => {
                write!(
                    f,
                    "stimulus VCD shares no variable names with the design inputs"
                )
            }
        }
    }
}

impl std::error::Error for StimulusError {}

impl From<ParseVcdError> for StimulusError {
    fn from(e: ParseVcdError) -> Self {
        StimulusError::Parse(e)
    }
}

/// A parsed waveform ready to drive a simulator.
#[derive(Debug, Clone)]
pub struct VcdStimulus {
    /// (time, port name, value) changes in time order.
    changes: Vec<(u64, String, Bits)>,
    /// Distinct timestamps, ascending — one simulated cycle each.
    times: Vec<u64>,
}

impl VcdStimulus {
    /// Parses VCD text and binds its variables to the design's inputs.
    ///
    /// Variables that do not name an input port are ignored (waveform
    /// dumps usually also contain outputs and internals).
    ///
    /// # Errors
    ///
    /// Returns [`StimulusError`] on parse failures, width mismatches, or
    /// when nothing matches.
    pub fn new(vcd_text: &str, io: &IoMap) -> Result<Self, StimulusError> {
        let dump = VcdDump::parse(vcd_text)?;
        let mut bound: HashMap<VarId, String> = HashMap::new();
        for (vi, (name, width)) in dump.vars.iter().enumerate() {
            if let Some(port) = io.input(name) {
                if *width != port.bits.len() as u32 {
                    return Err(StimulusError::WidthMismatch {
                        name: name.clone(),
                        vcd: *width,
                        port: port.bits.len() as u32,
                    });
                }
                bound.insert(VarId(vi as u32), name.clone());
            }
        }
        if bound.is_empty() {
            return Err(StimulusError::NoMatchingInputs);
        }
        let mut changes = Vec::new();
        let mut times = Vec::new();
        for (t, var, value) in &dump.changes {
            if let Some(name) = bound.get(var) {
                changes.push((*t, name.clone(), value.clone()));
                if times.last() != Some(t) {
                    times.push(*t);
                }
            }
        }
        times.dedup();
        Ok(VcdStimulus { changes, times })
    }

    /// Number of simulated cycles the waveform covers (one per distinct
    /// timestamp with input activity).
    pub fn cycles(&self) -> usize {
        self.times.len()
    }

    /// Replays the waveform: for each timestamp, applies its changes and
    /// runs one cycle. Returns the outputs observed at every cycle.
    pub fn replay(&self, sim: &mut GemSimulator) -> Vec<Vec<(String, Bits)>> {
        let mut out = Vec::with_capacity(self.times.len());
        let mut ci = 0usize;
        for &t in &self.times {
            let mut applied = Vec::new();
            while ci < self.changes.len() && self.changes[ci].0 == t {
                let (_, name, v) = &self.changes[ci];
                applied.push((name.as_str(), v.clone()));
                ci += 1;
            }
            out.push(sim.cycle(&applied));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions};
    use gem_netlist::vcd::VcdWriter;
    use gem_netlist::ModuleBuilder;

    fn adder_design() -> crate::Compiled {
        let mut b = ModuleBuilder::new("adder");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let s = b.add(x, y);
        b.output("s", s);
        let m = b.finish().expect("valid");
        compile(&m, &CompileOptions::small()).expect("compiles")
    }

    fn waveform() -> String {
        let mut w = VcdWriter::new("tb");
        let vx = w.add_var("x", 4);
        let vy = w.add_var("y", 4);
        let vo = w.add_var("other", 2); // unrelated variable: ignored
        w.begin();
        for (t, (x, y)) in [(1u64, 2u64), (3, 4), (7, 8), (15, 1)].iter().enumerate() {
            w.timestamp(t as u64 * 10);
            w.change(vx, &Bits::from_u64(*x, 4));
            w.change(vy, &Bits::from_u64(*y, 4));
            w.change(vo, &Bits::from_u64(t as u64 % 4, 2));
        }
        w.finish()
    }

    #[test]
    fn replays_waveform_cycles() {
        let compiled = adder_design();
        let stim = VcdStimulus::new(&waveform(), &compiled.io).expect("binds");
        assert_eq!(stim.cycles(), 4);
        let mut sim = crate::GemSimulator::new(&compiled).expect("loads");
        let outs = stim.replay(&mut sim);
        let sums: Vec<u64> = outs.iter().map(|cycle| cycle[0].1.to_u64()).collect();
        assert_eq!(sums, vec![3, 7, 15, 0 /* 15+1 wraps */]);
    }

    #[test]
    fn values_persist_between_changes() {
        let compiled = adder_design();
        let mut w = VcdWriter::new("tb");
        let vx = w.add_var("x", 4);
        let vy = w.add_var("y", 4);
        w.begin();
        w.timestamp(0);
        w.change(vx, &Bits::from_u64(5, 4));
        w.change(vy, &Bits::from_u64(1, 4));
        w.timestamp(1);
        w.change(vy, &Bits::from_u64(2, 4)); // x holds its value
        let stim = VcdStimulus::new(&w.finish(), &compiled.io).expect("binds");
        let mut sim = crate::GemSimulator::new(&compiled).expect("loads");
        let outs = stim.replay(&mut sim);
        assert_eq!(outs[1][0].1.to_u64(), 7);
    }

    #[test]
    fn width_mismatch_rejected() {
        let compiled = adder_design();
        let mut w = VcdWriter::new("tb");
        let vx = w.add_var("x", 8); // wrong width
        w.begin();
        w.timestamp(0);
        w.change(vx, &Bits::from_u64(1, 8));
        let err = VcdStimulus::new(&w.finish(), &compiled.io).unwrap_err();
        assert!(matches!(err, StimulusError::WidthMismatch { .. }));
    }

    #[test]
    fn unrelated_waveform_rejected() {
        let compiled = adder_design();
        let mut w = VcdWriter::new("tb");
        let v = w.add_var("nothing", 1);
        w.begin();
        w.timestamp(0);
        w.change(v, &Bits::from_u64(0, 1));
        assert_eq!(
            VcdStimulus::new(&w.finish(), &compiled.io).unwrap_err(),
            StimulusError::NoMatchingInputs
        );
    }
}
