//! VCD stimulus replay.
//!
//! The paper's execution stage consumes "input stimuli, provided as
//! waveforms or recorded signal patterns (e.g., VCD or FSDB format)".
//! [`VcdStimulus`] parses a VCD dump, matches its variables against the
//! compiled design's input ports by name, and drives the simulator one
//! cycle per VCD timestamp (values persist between changes, as in a real
//! waveform).

use crate::simulator::GemSimulator;
use crate::IoMap;
use gem_netlist::vcd::{ParseVcdError, VarId, VcdDump};
use gem_netlist::Bits;
use std::collections::HashMap;
use std::fmt;

/// Errors from [`VcdStimulus::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StimulusError {
    /// The VCD text failed to parse.
    Parse(ParseVcdError),
    /// A VCD variable matches an input port but with a different width.
    WidthMismatch {
        /// Port / variable name.
        name: String,
        /// Width in the VCD.
        vcd: u32,
        /// Width of the design port.
        port: u32,
    },
    /// No VCD variable matches any input port.
    NoMatchingInputs,
}

impl fmt::Display for StimulusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StimulusError::Parse(e) => write!(f, "bad stimulus VCD: {e}"),
            StimulusError::WidthMismatch { name, vcd, port } => write!(
                f,
                "stimulus variable {name:?} is {vcd} bits but the port is {port}"
            ),
            StimulusError::NoMatchingInputs => {
                write!(
                    f,
                    "stimulus VCD shares no variable names with the design inputs"
                )
            }
        }
    }
}

impl std::error::Error for StimulusError {}

impl From<ParseVcdError> for StimulusError {
    fn from(e: ParseVcdError) -> Self {
        StimulusError::Parse(e)
    }
}

/// A parsed waveform ready to drive a simulator.
#[derive(Debug, Clone)]
pub struct VcdStimulus {
    /// (time, port name, value) changes in time order.
    changes: Vec<(u64, String, Bits)>,
    /// Distinct timestamps, ascending — one simulated cycle each.
    times: Vec<u64>,
}

impl VcdStimulus {
    /// Parses VCD text and binds its variables to the design's inputs.
    ///
    /// Variables that do not name an input port are ignored (waveform
    /// dumps usually also contain outputs and internals).
    ///
    /// # Errors
    ///
    /// Returns [`StimulusError`] on parse failures, width mismatches, or
    /// when nothing matches.
    pub fn new(vcd_text: &str, io: &IoMap) -> Result<Self, StimulusError> {
        let dump = VcdDump::parse(vcd_text)?;
        let mut bound: HashMap<VarId, String> = HashMap::new();
        for (vi, (name, width)) in dump.vars.iter().enumerate() {
            if let Some(port) = io.input(name) {
                if *width != port.bits.len() as u32 {
                    return Err(StimulusError::WidthMismatch {
                        name: name.clone(),
                        vcd: *width,
                        port: port.bits.len() as u32,
                    });
                }
                bound.insert(VarId(vi as u32), name.clone());
            }
        }
        if bound.is_empty() {
            return Err(StimulusError::NoMatchingInputs);
        }
        let mut changes = Vec::new();
        let mut times = Vec::new();
        for (t, var, value) in &dump.changes {
            if let Some(name) = bound.get(var) {
                changes.push((*t, name.clone(), value.clone()));
                if times.last() != Some(t) {
                    times.push(*t);
                }
            }
        }
        times.dedup();
        Ok(VcdStimulus { changes, times })
    }

    /// Number of simulated cycles the waveform covers (one per distinct
    /// timestamp with input activity).
    pub fn cycles(&self) -> usize {
        self.times.len()
    }

    /// The input changes belonging to cycle index `k` (the `k`-th
    /// distinct timestamp). Empty past the end of the waveform — a
    /// driver interleaving several stimuli in lockstep (lane-batched
    /// replay) just holds the last values on exhausted streams.
    pub fn changes_at(&self, k: usize) -> &[(u64, String, Bits)] {
        let Some(&t) = self.times.get(k) else {
            return &[];
        };
        let lo = self.changes.partition_point(|c| c.0 < t);
        let hi = self.changes.partition_point(|c| c.0 <= t);
        &self.changes[lo..hi]
    }

    /// Replays the waveform: for each timestamp, applies its changes and
    /// runs one cycle. Returns the outputs observed at every cycle.
    pub fn replay(&self, sim: &mut GemSimulator) -> Vec<Vec<(String, Bits)>> {
        let mut out = Vec::with_capacity(self.times.len());
        let mut ci = 0usize;
        for &t in &self.times {
            let mut applied = Vec::new();
            while ci < self.changes.len() && self.changes[ci].0 == t {
                let (_, name, v) = &self.changes[ci];
                applied.push((name.as_str(), v.clone()));
                ci += 1;
            }
            out.push(sim.cycle(&applied));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions};
    use gem_netlist::vcd::VcdWriter;
    use gem_netlist::ModuleBuilder;

    fn adder_design() -> crate::Compiled {
        let mut b = ModuleBuilder::new("adder");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let s = b.add(x, y);
        b.output("s", s);
        let m = b.finish().expect("valid");
        compile(&m, &CompileOptions::small()).expect("compiles")
    }

    fn waveform() -> String {
        let mut w = VcdWriter::new("tb");
        let vx = w.add_var("x", 4);
        let vy = w.add_var("y", 4);
        let vo = w.add_var("other", 2); // unrelated variable: ignored
        w.begin();
        for (t, (x, y)) in [(1u64, 2u64), (3, 4), (7, 8), (15, 1)].iter().enumerate() {
            w.timestamp(t as u64 * 10);
            w.change(vx, &Bits::from_u64(*x, 4));
            w.change(vy, &Bits::from_u64(*y, 4));
            w.change(vo, &Bits::from_u64(t as u64 % 4, 2));
        }
        w.finish()
    }

    #[test]
    fn replays_waveform_cycles() {
        let compiled = adder_design();
        let stim = VcdStimulus::new(&waveform(), &compiled.io).expect("binds");
        assert_eq!(stim.cycles(), 4);
        let mut sim = crate::GemSimulator::new(&compiled).expect("loads");
        let outs = stim.replay(&mut sim);
        let sums: Vec<u64> = outs.iter().map(|cycle| cycle[0].1.to_u64()).collect();
        assert_eq!(sums, vec![3, 7, 15, 0 /* 15+1 wraps */]);
    }

    #[test]
    fn changes_at_walks_cycles_in_lockstep() {
        let compiled = adder_design();
        let stim = VcdStimulus::new(&waveform(), &compiled.io).expect("binds");
        // Every cycle of this waveform changes both inputs; the ignored
        // "other" variable never appears.
        for k in 0..stim.cycles() {
            let ch = stim.changes_at(k);
            let mut names: Vec<&str> = ch.iter().map(|(_, n, _)| n.as_str()).collect();
            names.sort_unstable();
            assert_eq!(names, ["x", "y"], "cycle {k}");
        }
        assert_eq!(stim.changes_at(0)[0].2.to_u64(), 1); // x at t=0
        assert!(stim.changes_at(stim.cycles()).is_empty(), "past the end");
    }

    #[test]
    fn values_persist_between_changes() {
        let compiled = adder_design();
        let mut w = VcdWriter::new("tb");
        let vx = w.add_var("x", 4);
        let vy = w.add_var("y", 4);
        w.begin();
        w.timestamp(0);
        w.change(vx, &Bits::from_u64(5, 4));
        w.change(vy, &Bits::from_u64(1, 4));
        w.timestamp(1);
        w.change(vy, &Bits::from_u64(2, 4)); // x holds its value
        let stim = VcdStimulus::new(&w.finish(), &compiled.io).expect("binds");
        let mut sim = crate::GemSimulator::new(&compiled).expect("loads");
        let outs = stim.replay(&mut sim);
        assert_eq!(outs[1][0].1.to_u64(), 7);
    }

    #[test]
    fn empty_waveform_replays_zero_cycles() {
        // A VCD that declares matching inputs but contains no value
        // changes: binding succeeds, replay runs nothing, the simulator
        // is untouched.
        let compiled = adder_design();
        let mut w = VcdWriter::new("tb");
        w.add_var("x", 4);
        w.add_var("y", 4);
        let stim = VcdStimulus::new(&w.finish(), &compiled.io).expect("binds");
        assert_eq!(stim.cycles(), 0);
        let mut sim = crate::GemSimulator::new(&compiled).expect("loads");
        let outs = stim.replay(&mut sim);
        assert!(outs.is_empty());
        assert_eq!(sim.counters().cycles, 0);
    }

    #[test]
    fn clock_only_waveform_advances_cycles() {
        // A waveform that only toggles a clock-like 1-bit input still
        // drives one simulated cycle per timestamp (GEM's clock is
        // implicit; the toggles are just input activity).
        let mut b = ModuleBuilder::new("tick");
        let clk = b.input("clk", 1);
        let q = b.dff(4);
        let one = b.lit(1, 4);
        let inc = b.add(q, one);
        let nxt = b.mux(clk, inc, q);
        b.connect_dff(q, nxt);
        b.output("q", q);
        let m = b.finish().expect("valid");
        let compiled = compile(&m, &CompileOptions::small()).expect("compiles");
        let mut w = VcdWriter::new("tb");
        let vclk = w.add_var("clk", 1);
        w.begin();
        for t in 0..6u64 {
            w.timestamp(t);
            w.change(vclk, &gem_netlist::Bits::from_u64(t % 2, 1));
        }
        let stim = VcdStimulus::new(&w.finish(), &compiled.io).expect("binds");
        assert_eq!(stim.cycles(), 6);
        let mut sim = crate::GemSimulator::new(&compiled).expect("loads");
        let outs = stim.replay(&mut sim);
        assert_eq!(outs.len(), 6);
        assert_eq!(sim.counters().cycles, 6);
        // clk=1 on odd timestamps: the counter increments on 3 of the 6
        // cycles; the last cycle (t=5, clk=1) observes q after 2 earlier
        // enabled edges.
        assert_eq!(outs[5][0].1.to_u64(), 2);
    }

    #[test]
    fn dumpoff_block_mid_stream_is_tolerated() {
        let compiled = adder_design();
        // Hand-written VCD with a $dumpoff/$dumpon checkpoint between
        // changes (x values parse as 0).
        let text = "$timescale 1ns $end\n$scope module tb $end\n\
                    $var wire 4 ! x $end\n$var wire 4 \" y $end\n\
                    $upscope $end\n$enddefinitions $end\n\
                    #0\nb0011 !\nb0001 \"\n\
                    #1\n$dumpoff\nbxxxx !\nbxxxx \"\n$end\n\
                    #2\n$dumpon\nb0100 !\nb0010 \"\n$end\n";
        let stim = VcdStimulus::new(text, &compiled.io).expect("binds");
        assert_eq!(stim.cycles(), 3);
        let mut sim = crate::GemSimulator::new(&compiled).expect("loads");
        let outs = stim.replay(&mut sim);
        let sums: Vec<u64> = outs.iter().map(|c| c[0].1.to_u64()).collect();
        // 3+1, then the x/x checkpoint cycle (reads as 0+0), then 4+2.
        assert_eq!(sums, vec![4, 0, 6]);
    }

    #[test]
    fn poke_peek_interleaves_with_replay() {
        // Server-driven stimuli mix direct pokes with waveform replay on
        // the same session; values applied either way persist.
        let compiled = adder_design();
        let mut sim = crate::GemSimulator::new(&compiled).expect("loads");
        // Direct poke phase.
        sim.set_input("x", Bits::from_u64(9, 4));
        sim.set_input("y", Bits::from_u64(1, 4));
        sim.step();
        assert_eq!(sim.output("s").to_u64(), 10);
        // Replay phase: the waveform only drives x; y holds the poked 1.
        let mut w = VcdWriter::new("tb");
        let vx = w.add_var("x", 4);
        w.begin();
        w.timestamp(0);
        w.change(vx, &Bits::from_u64(4, 4));
        let stim = VcdStimulus::new(&w.finish(), &compiled.io).expect("binds");
        let outs = stim.replay(&mut sim);
        assert_eq!(outs[0][0].1.to_u64(), 5, "poked y persists into replay");
        // Back to pokes: x holds the replayed 4.
        sim.set_input("y", Bits::from_u64(8, 4));
        sim.step();
        assert_eq!(sim.output("s").to_u64(), 12, "replayed x persists");
        assert_eq!(sim.counters().cycles, 3);
    }

    #[test]
    fn width_mismatch_rejected() {
        let compiled = adder_design();
        let mut w = VcdWriter::new("tb");
        let vx = w.add_var("x", 8); // wrong width
        w.begin();
        w.timestamp(0);
        w.change(vx, &Bits::from_u64(1, 8));
        let err = VcdStimulus::new(&w.finish(), &compiled.io).unwrap_err();
        assert!(matches!(err, StimulusError::WidthMismatch { .. }));
    }

    #[test]
    fn unrelated_waveform_rejected() {
        let compiled = adder_design();
        let mut w = VcdWriter::new("tb");
        let v = w.add_var("nothing", 1);
        w.begin();
        w.timestamp(0);
        w.change(v, &Bits::from_u64(0, 1));
        assert_eq!(
            VcdStimulus::new(&w.finish(), &compiled.io).unwrap_err(),
            StimulusError::NoMatchingInputs
        );
    }
}
