//! On-disk format for compiled designs (`.gemb` packages).
//!
//! A package bundles the assembled bitstream with everything a runtime
//! needs to execute it: the device configuration (global space, RAM
//! bindings, power-on values), the port↔global-bit map, and the compile
//! report. The layout is a JSON metadata header followed by the raw
//! bitstream container:
//!
//! ```text
//! "GEMPKG1\n"  | u32 meta_len | meta JSON | bitstream container bytes
//! ```

use crate::compile::{CompileReport, Compiled, IoMap};
use gem_isa::Bitstream;
use gem_vgpu::DeviceConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

const MAGIC: &[u8; 8] = b"GEMPKG1\n";

/// A loadable compiled design: everything needed to run, nothing needed
/// to recompile.
#[derive(Debug, Clone, PartialEq)]
pub struct Package {
    /// Device configuration for [`gem_vgpu::GemGpu::load`].
    pub device: DeviceConfig,
    /// Port bindings.
    pub io: IoMap,
    /// Compile statistics.
    pub report: CompileReport,
    /// The assembled bitstream.
    pub bitstream: Bitstream,
}

#[derive(Serialize, Deserialize)]
struct Meta {
    device: DeviceConfig,
    io: IoMap,
    report: CompileReport,
}

/// Errors from [`Package::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePackageError {
    /// Not a GEM package (bad magic).
    BadMagic,
    /// Truncated file.
    Truncated,
    /// Metadata JSON failed to parse; the string holds the serde message.
    BadMeta(String),
    /// The embedded bitstream container failed to parse.
    BadBitstream(String),
}

impl fmt::Display for ParsePackageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePackageError::BadMagic => write!(f, "not a GEM package (bad magic)"),
            ParsePackageError::Truncated => write!(f, "truncated GEM package"),
            ParsePackageError::BadMeta(e) => write!(f, "bad package metadata: {e}"),
            ParsePackageError::BadBitstream(e) => write!(f, "bad embedded bitstream: {e}"),
        }
    }
}

impl std::error::Error for ParsePackageError {}

impl Package {
    /// Extracts the loadable parts of a compilation result.
    pub fn from_compiled(c: &Compiled) -> Self {
        Package {
            device: c.device.clone(),
            io: c.io.clone(),
            report: c.report,
            bitstream: c.bitstream.clone(),
        }
    }

    /// Serializes the package.
    pub fn to_bytes(&self) -> Vec<u8> {
        let meta = serde_json::to_vec(&Meta {
            device: self.device.clone(),
            io: self.io.clone(),
            report: self.report,
        })
        .expect("metadata serializes");
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
        out.extend_from_slice(&meta);
        out.extend_from_slice(&self.bitstream.to_bytes());
        out
    }

    /// Parses a package produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`ParsePackageError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ParsePackageError> {
        if bytes.len() < MAGIC.len() + 4 {
            return Err(ParsePackageError::Truncated);
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(ParsePackageError::BadMagic);
        }
        let len_off = MAGIC.len();
        let meta_len = u32::from_le_bytes(
            bytes[len_off..len_off + 4]
                .try_into()
                .expect("4 bytes sliced"),
        ) as usize;
        let meta_start = len_off + 4;
        if bytes.len() < meta_start + meta_len {
            return Err(ParsePackageError::Truncated);
        }
        let meta: Meta = serde_json::from_slice(&bytes[meta_start..meta_start + meta_len])
            .map_err(|e| ParsePackageError::BadMeta(e.to_string()))?;
        let bitstream = Bitstream::from_bytes(&bytes[meta_start + meta_len..])
            .map_err(ParsePackageError::BadBitstream)?;
        Ok(Package {
            device: meta.device,
            io: meta.io,
            report: meta.report,
            bitstream,
        })
    }

    /// Loads the package onto a fresh virtual GPU and wraps it in a
    /// simulator.
    ///
    /// # Errors
    ///
    /// Returns [`gem_vgpu::MachineError`] if the bitstream fails device
    /// validation.
    pub fn into_simulator(self) -> Result<crate::GemSimulator, gem_vgpu::MachineError> {
        crate::GemSimulator::from_parts(&self.bitstream, self.device, self.io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions};
    use gem_netlist::{Bits, ModuleBuilder};

    fn compiled() -> Compiled {
        let mut b = ModuleBuilder::new("pkg");
        let x = b.input("x", 4);
        let q = b.dff_init(Bits::from_u64(5, 4));
        let nx = b.xor(q, x);
        b.connect_dff(q, nx);
        b.output("q", q);
        let m = b.finish().expect("valid");
        compile(&m, &CompileOptions::small()).expect("compiles")
    }

    #[test]
    fn round_trip() {
        let c = compiled();
        let pkg = Package::from_compiled(&c);
        let bytes = pkg.to_bytes();
        let back = Package::from_bytes(&bytes).expect("parses");
        assert_eq!(back, pkg);
    }

    #[test]
    fn loaded_package_behaves_like_original() {
        let c = compiled();
        let pkg_bytes = Package::from_compiled(&c).to_bytes();
        let pkg = Package::from_bytes(&pkg_bytes).expect("parses");
        let mut from_pkg = pkg.into_simulator().expect("loads");
        let mut direct = crate::GemSimulator::new(&c).expect("loads");
        for i in 0..10u64 {
            let v = Bits::from_u64(i % 16, 4);
            from_pkg.set_input("x", v.clone());
            direct.set_input("x", v);
            from_pkg.step();
            direct.step();
            assert_eq!(from_pkg.output("q"), direct.output("q"));
        }
    }

    #[test]
    fn corrupt_packages_rejected() {
        let c = compiled();
        let bytes = Package::from_compiled(&c).to_bytes();
        assert_eq!(
            Package::from_bytes(&bytes[..4]),
            Err(ParsePackageError::Truncated)
        );
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(Package::from_bytes(&bad), Err(ParsePackageError::BadMagic));
        let mut trunc = bytes.clone();
        trunc.truncate(bytes.len() - 10);
        assert!(Package::from_bytes(&trunc).is_err());
    }
}
