//! On-disk format for compiled designs (`.gemb` packages).
//!
//! A package bundles the assembled bitstream with everything a runtime
//! needs to execute it: the device configuration (global space, RAM
//! bindings, power-on values), the port↔global-bit map, and the compile
//! report. The layout is a JSON metadata header followed by the raw
//! bitstream container:
//!
//! ```text
//! "GEMPKG1\n"  | u32 meta_len | meta JSON | bitstream container bytes
//! ```

use crate::compile::{CompileReport, Compiled, IoMap, PortIndices};
use gem_isa::{Bitstream, ScheduleCert};
use gem_telemetry::Json;
use gem_vgpu::{DeviceConfig, RamBinding};
use std::fmt;

const MAGIC: &[u8; 8] = b"GEMPKG1\n";

/// A loadable compiled design: everything needed to run, nothing needed
/// to recompile.
#[derive(Debug, Clone, PartialEq)]
pub struct Package {
    /// Device configuration for [`gem_vgpu::GemGpu::load`].
    pub device: DeviceConfig,
    /// Port bindings.
    pub io: IoMap,
    /// Compile statistics.
    pub report: CompileReport,
    /// The assembled bitstream.
    pub bitstream: Bitstream,
    /// Schedule happens-before certificate (absent in packages compiled
    /// with verification off or written before certification existed).
    pub schedule_cert: Option<ScheduleCert>,
}

/// Errors from [`Package::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePackageError {
    /// Not a GEM package (bad magic).
    BadMagic,
    /// Truncated file.
    Truncated,
    /// Metadata JSON failed to parse; the string names the violation.
    BadMeta(String),
    /// The embedded bitstream container failed to parse.
    BadBitstream(String),
}

impl fmt::Display for ParsePackageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePackageError::BadMagic => write!(f, "not a GEM package (bad magic)"),
            ParsePackageError::Truncated => write!(f, "truncated GEM package"),
            ParsePackageError::BadMeta(e) => write!(f, "bad package metadata: {e}"),
            ParsePackageError::BadBitstream(e) => write!(f, "bad embedded bitstream: {e}"),
        }
    }
}

impl std::error::Error for ParsePackageError {}

fn bad(msg: &str) -> ParsePackageError {
    ParsePackageError::BadMeta(msg.to_string())
}

fn get<'a>(j: &'a Json, key: &str) -> Result<&'a Json, ParsePackageError> {
    j.get(key).ok_or_else(|| bad(&format!("missing key {key}")))
}

fn get_u64(j: &Json, key: &str) -> Result<u64, ParsePackageError> {
    get(j, key)?
        .as_u64()
        .ok_or_else(|| bad(&format!("{key} is not an unsigned integer")))
}

fn get_f64(j: &Json, key: &str) -> Result<f64, ParsePackageError> {
    get(j, key)?
        .as_f64()
        .ok_or_else(|| bad(&format!("{key} is not a number")))
}

fn get_u32(j: &Json, key: &str) -> Result<u32, ParsePackageError> {
    u32::try_from(get_u64(j, key)?).map_err(|_| bad(&format!("{key} exceeds u32")))
}

fn get_array<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], ParsePackageError> {
    get(j, key)?
        .as_array()
        .ok_or_else(|| bad(&format!("{key} is not an array")))
}

fn u32_vec(j: &Json, key: &str) -> Result<Vec<u32>, ParsePackageError> {
    get_array(j, key)?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| bad(&format!("{key} holds a non-u32 element")))
        })
        .collect()
}

fn u32_arr<const N: usize>(j: &Json, key: &str) -> Result<[u32; N], ParsePackageError> {
    let v = u32_vec(j, key)?;
    v.try_into()
        .map_err(|_| bad(&format!("{key} must have exactly {N} elements")))
}

fn indices_json(bits: &[u32]) -> Json {
    Json::Array(bits.iter().map(|&b| Json::from(b)).collect())
}

/// Serializes a [`DeviceConfig`] (package metadata schema).
pub fn device_to_json(d: &DeviceConfig) -> Json {
    let rams: Vec<Json> = d
        .rams
        .iter()
        .map(|r| {
            let mut o = Json::object();
            o.set("raddr", indices_json(&r.raddr));
            o.set("waddr", indices_json(&r.waddr));
            o.set("wdata", indices_json(&r.wdata));
            o.set("we", r.we);
            o.set("rdata", indices_json(&r.rdata));
            o
        })
        .collect();
    let mut o = Json::object();
    o.set("global_bits", d.global_bits);
    o.set("rams", Json::Array(rams));
    o.set("initial_ones", indices_json(&d.initial_ones));
    o
}

/// Parses the [`device_to_json`] schema.
///
/// # Errors
///
/// Returns [`ParsePackageError::BadMeta`] naming the first violation.
pub fn device_from_json(j: &Json) -> Result<DeviceConfig, ParsePackageError> {
    let rams = get_array(j, "rams")?
        .iter()
        .map(|r| {
            Ok(RamBinding {
                raddr: u32_arr(r, "raddr")?,
                waddr: u32_arr(r, "waddr")?,
                wdata: u32_arr(r, "wdata")?,
                we: get_u32(r, "we")?,
                rdata: u32_arr(r, "rdata")?,
            })
        })
        .collect::<Result<_, ParsePackageError>>()?;
    Ok(DeviceConfig {
        global_bits: get_u32(j, "global_bits")?,
        rams,
        initial_ones: u32_vec(j, "initial_ones")?,
    })
}

/// Serializes an [`IoMap`] (package metadata schema).
pub fn io_to_json(io: &IoMap) -> Json {
    let ports = |ps: &[PortIndices]| -> Json {
        Json::Array(
            ps.iter()
                .map(|p| {
                    let mut o = Json::object();
                    o.set("name", p.name.as_str());
                    o.set("bits", indices_json(&p.bits));
                    o
                })
                .collect(),
        )
    };
    let mut o = Json::object();
    o.set("inputs", ports(&io.inputs));
    o.set("outputs", ports(&io.outputs));
    o
}

/// Parses the [`io_to_json`] schema.
///
/// # Errors
///
/// Returns [`ParsePackageError::BadMeta`] naming the first violation.
pub fn io_from_json(j: &Json) -> Result<IoMap, ParsePackageError> {
    let ports = |key: &str| -> Result<Vec<PortIndices>, ParsePackageError> {
        get_array(j, key)?
            .iter()
            .map(|p| {
                Ok(PortIndices {
                    name: get(p, "name")?
                        .as_str()
                        .ok_or_else(|| bad("port name is not a string"))?
                        .to_string(),
                    bits: u32_vec(p, "bits")?,
                })
            })
            .collect()
    };
    Ok(IoMap {
        inputs: ports("inputs")?,
        outputs: ports("outputs")?,
    })
}

/// Parses the [`CompileReport::to_json`] schema.
///
/// # Errors
///
/// Returns [`ParsePackageError::BadMeta`] naming the first violation.
pub fn report_from_json(j: &Json) -> Result<CompileReport, ParsePackageError> {
    Ok(CompileReport {
        gates: get_u64(j, "gates")?,
        levels: get_u32(j, "levels")?,
        stages: get_u32(j, "stages")?,
        layers: get_u32(j, "layers")?,
        parts: get_u32(j, "parts")?,
        bitstream_bytes: get_u64(j, "bitstream_bytes")?,
        replication_cost: get_f64(j, "replication_cost")?,
        ram_blocks: get_u64(j, "ram_blocks")?,
        polyfilled_mem_bits: get_u64(j, "polyfilled_mem_bits")?,
        // Absent in packages written before the verifier existed.
        verified: j.get("verified").and_then(Json::as_bool).unwrap_or(false),
        // Absent in packages written before schedule certification.
        certified: j.get("certified").and_then(Json::as_bool).unwrap_or(false),
    })
}

/// Serializes a [`ScheduleCert`] (package metadata schema). The u64
/// digests ride as JSON integers — the in-repo JSON keeps them lossless.
pub fn cert_to_json(c: &ScheduleCert) -> Json {
    let mut o = Json::object();
    o.set("version", c.version);
    o.set("stages", c.stages);
    o.set("cores", c.cores);
    o.set("global_bits", c.global_bits);
    o.set("reads", c.reads);
    o.set("barrier_edges", c.barrier_edges);
    o.set("boundary_edges", c.boundary_edges);
    o.set("immediate_writes", c.immediate_writes);
    o.set("deferred_writes", c.deferred_writes);
    o.set("table_digest", c.table_digest);
    o.set("bitstream_fnv", c.bitstream_fnv);
    o
}

/// Parses the [`cert_to_json`] schema.
///
/// # Errors
///
/// Returns [`ParsePackageError::BadMeta`] naming the first violation.
pub fn cert_from_json(j: &Json) -> Result<ScheduleCert, ParsePackageError> {
    Ok(ScheduleCert {
        version: get_u32(j, "version")?,
        stages: get_u32(j, "stages")?,
        cores: get_u32(j, "cores")?,
        global_bits: get_u32(j, "global_bits")?,
        reads: get_u32(j, "reads")?,
        barrier_edges: get_u32(j, "barrier_edges")?,
        boundary_edges: get_u32(j, "boundary_edges")?,
        immediate_writes: get_u32(j, "immediate_writes")?,
        deferred_writes: get_u32(j, "deferred_writes")?,
        table_digest: get_u64(j, "table_digest")?,
        bitstream_fnv: get_u64(j, "bitstream_fnv")?,
    })
}

impl Package {
    /// Extracts the loadable parts of a compilation result.
    pub fn from_compiled(c: &Compiled) -> Self {
        Package {
            device: c.device.clone(),
            io: c.io.clone(),
            report: c.report,
            bitstream: c.bitstream.clone(),
            schedule_cert: c.schedule_cert,
        }
    }

    /// Serializes the package.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut meta = Json::object();
        meta.set("device", device_to_json(&self.device));
        meta.set("io", io_to_json(&self.io));
        meta.set("report", self.report.to_json());
        if let Some(cert) = &self.schedule_cert {
            meta.set("schedule_cert", cert_to_json(cert));
        }
        let meta = meta.to_string().into_bytes();
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
        out.extend_from_slice(&meta);
        out.extend_from_slice(&self.bitstream.to_bytes());
        out
    }

    /// Parses a package produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`ParsePackageError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ParsePackageError> {
        if bytes.len() < MAGIC.len() + 4 {
            return Err(ParsePackageError::Truncated);
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(ParsePackageError::BadMagic);
        }
        let len_off = MAGIC.len();
        let meta_len = u32::from_le_bytes(
            bytes[len_off..len_off + 4]
                .try_into()
                .expect("4 bytes sliced"),
        ) as usize;
        let meta_start = len_off + 4;
        if bytes.len() < meta_start + meta_len {
            return Err(ParsePackageError::Truncated);
        }
        let meta_text = std::str::from_utf8(&bytes[meta_start..meta_start + meta_len])
            .map_err(|e| bad(&format!("metadata is not UTF-8: {e}")))?;
        let meta = gem_telemetry::parse_json(meta_text)
            .map_err(|e| ParsePackageError::BadMeta(e.to_string()))?;
        let bitstream = Bitstream::from_bytes(&bytes[meta_start + meta_len..])
            .map_err(ParsePackageError::BadBitstream)?;
        Ok(Package {
            device: device_from_json(get(&meta, "device")?)?,
            io: io_from_json(get(&meta, "io")?)?,
            report: report_from_json(get(&meta, "report")?)?,
            bitstream,
            schedule_cert: meta.get("schedule_cert").map(cert_from_json).transpose()?,
        })
    }

    /// Loads the package onto a fresh virtual GPU and wraps it in a
    /// simulator.
    ///
    /// # Errors
    ///
    /// Returns [`gem_vgpu::MachineError`] if the bitstream fails device
    /// validation.
    pub fn into_simulator(self) -> Result<crate::GemSimulator, gem_vgpu::MachineError> {
        crate::GemSimulator::from_parts(&self.bitstream, self.device, self.io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions};
    use gem_netlist::{Bits, ModuleBuilder};

    fn compiled() -> Compiled {
        let mut b = ModuleBuilder::new("pkg");
        let x = b.input("x", 4);
        let q = b.dff_init(Bits::from_u64(5, 4));
        let nx = b.xor(q, x);
        b.connect_dff(q, nx);
        b.output("q", q);
        let m = b.finish().expect("valid");
        compile(&m, &CompileOptions::small()).expect("compiles")
    }

    #[test]
    fn round_trip() {
        let c = compiled();
        let pkg = Package::from_compiled(&c);
        let bytes = pkg.to_bytes();
        let back = Package::from_bytes(&bytes).expect("parses");
        assert_eq!(back, pkg);
    }

    #[test]
    fn loaded_package_behaves_like_original() {
        let c = compiled();
        let pkg_bytes = Package::from_compiled(&c).to_bytes();
        let pkg = Package::from_bytes(&pkg_bytes).expect("parses");
        let mut from_pkg = pkg.into_simulator().expect("loads");
        let mut direct = crate::GemSimulator::new(&c).expect("loads");
        for i in 0..10u64 {
            let v = Bits::from_u64(i % 16, 4);
            from_pkg.set_input("x", v.clone());
            direct.set_input("x", v);
            from_pkg.step();
            direct.step();
            assert_eq!(from_pkg.output("q"), direct.output("q"));
        }
    }

    #[test]
    fn schedule_cert_rides_the_package() {
        let c = compiled();
        let cert = c.schedule_cert.expect("verified compile carries a cert");
        let pkg = Package::from_compiled(&c);
        let back = Package::from_bytes(&pkg.to_bytes()).expect("parses");
        assert_eq!(back.schedule_cert, Some(cert));
        assert!(back.report.certified);
        // A cert-less package (pre-certification writer) still loads.
        let mut old = pkg.clone();
        old.schedule_cert = None;
        let back = Package::from_bytes(&old.to_bytes()).expect("parses");
        assert_eq!(back.schedule_cert, None);
    }

    #[test]
    fn corrupt_packages_rejected() {
        let c = compiled();
        let bytes = Package::from_compiled(&c).to_bytes();
        assert_eq!(
            Package::from_bytes(&bytes[..4]),
            Err(ParsePackageError::Truncated)
        );
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(Package::from_bytes(&bad), Err(ParsePackageError::BadMagic));
        let mut trunc = bytes.clone();
        trunc.truncate(bytes.len() - 10);
        assert!(Package::from_bytes(&trunc).is_err());
    }

    #[test]
    fn device_json_round_trips_ram_bindings() {
        let mut idx = 0u32;
        let mut next = || {
            let i = idx;
            idx += 1;
            i
        };
        let d = DeviceConfig {
            global_bits: 200,
            rams: vec![RamBinding {
                raddr: std::array::from_fn(|_| next()),
                waddr: std::array::from_fn(|_| next()),
                wdata: std::array::from_fn(|_| next()),
                we: next(),
                rdata: std::array::from_fn(|_| next()),
            }],
            initial_ones: vec![1, 5, 7],
        };
        let j = device_to_json(&d);
        let text = j.to_string();
        let back = device_from_json(&gem_telemetry::parse_json(&text).unwrap()).unwrap();
        assert_eq!(back, d);
    }
}
