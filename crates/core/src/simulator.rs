//! Waveform-level simulator API over the virtual GPU.

use crate::compile::Compiled;
use gem_netlist::Bits;
use gem_vgpu::{GemGpu, KernelCounters, MachineError};

/// Runs a compiled design cycle by cycle.
///
/// GEM is an oblivious full-cycle simulator: every cycle executes the
/// whole design regardless of activity. Inputs are sampled when
/// [`step`](Self::step) is called; outputs read afterwards are the
/// combinational values observed *during* that cycle (before the clock
/// edge), matching the convention of the golden models in `gem-sim`.
///
/// # Example
///
/// ```
/// use gem_core::{compile, CompileOptions, GemSimulator};
/// use gem_netlist::{Bits, ModuleBuilder};
///
/// let mut b = ModuleBuilder::new("xorer");
/// let x = b.input("x", 4);
/// let y = b.input("y", 4);
/// let z = b.xor(x, y);
/// b.output("z", z);
/// let m = b.finish()?;
/// let compiled = compile(&m, &CompileOptions::small()).expect("compiles");
/// let mut sim = GemSimulator::new(&compiled).expect("loads");
/// sim.set_input("x", Bits::from_u64(0b1100, 4));
/// sim.set_input("y", Bits::from_u64(0b1010, 4));
/// sim.step();
/// assert_eq!(sim.output("z").to_u64(), 0b0110);
/// # Ok::<(), gem_netlist::ValidateError>(())
/// ```
#[derive(Debug)]
pub struct GemSimulator {
    gpu: GemGpu,
    io: crate::IoMap,
}

impl GemSimulator {
    /// Loads a compiled design onto the virtual GPU.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] if the bitstream fails validation (which
    /// would indicate a compiler bug).
    pub fn new(compiled: &Compiled) -> Result<Self, MachineError> {
        Self::from_parts(&compiled.bitstream, compiled.device.clone(), compiled.io.clone())
    }

    /// Builds a simulator from the loadable parts (used when running a
    /// serialized [`crate::Package`] without recompiling).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] if the bitstream fails validation.
    pub fn from_parts(
        bitstream: &gem_isa::Bitstream,
        device: gem_vgpu::DeviceConfig,
        io: crate::IoMap,
    ) -> Result<Self, MachineError> {
        Ok(GemSimulator {
            gpu: GemGpu::load(bitstream, device)?,
            io,
        })
    }

    /// Sets an input port for the upcoming cycle(s).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or the width differs.
    pub fn set_input(&mut self, name: &str, v: Bits) {
        let port = self
            .io
            .input(name)
            .unwrap_or_else(|| panic!("no input port named {name:?}"));
        assert_eq!(
            v.width() as usize,
            port.bits.len(),
            "input width mismatch on {name:?}"
        );
        for (i, &g) in port.bits.iter().enumerate() {
            self.gpu.poke(g, v.bit(i as u32));
        }
    }

    /// Executes one simulated clock cycle.
    pub fn step(&mut self) {
        self.gpu.step_cycle();
    }

    /// Enables event-based pruning: thread blocks whose inputs did not
    /// change are skipped (sound — a core's cycle function is pure). This
    /// is the paper's proposed future-work extension; baseline GEM keeps
    /// it off and has activity-independent speed.
    pub fn set_pruning(&mut self, on: bool) {
        self.gpu.set_pruning(on);
    }

    /// Reads an output port (values observed during the last
    /// [`step`](Self::step)).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn output(&self, name: &str) -> Bits {
        let port = self
            .io
            .output(name)
            .unwrap_or_else(|| panic!("no output port named {name:?}"));
        let mut v = Bits::zeros(port.bits.len() as u32);
        for (i, &g) in port.bits.iter().enumerate() {
            v.set_bit(i as u32, self.gpu.peek(g));
        }
        v
    }

    /// Convenience: apply inputs, run a cycle, collect all outputs.
    pub fn cycle(&mut self, inputs: &[(&str, Bits)]) -> Vec<(String, Bits)> {
        for (n, v) in inputs {
            self.set_input(n, v.clone());
        }
        self.step();
        self.io
            .outputs
            .iter()
            .map(|p| (p.name.clone(), self.output(&p.name)))
            .collect()
    }

    /// Architectural event counters accumulated so far (for the timing
    /// model).
    pub fn counters(&self) -> &KernelCounters {
        self.gpu.counters()
    }

    /// Direct access to a RAM block word (test setup, e.g. preloading a
    /// program image).
    pub fn set_ram_word(&mut self, ram: usize, addr: usize, value: u32) {
        self.gpu.set_ram_word(ram, addr, value);
    }

    /// Reads a RAM block word.
    pub fn ram_word(&self, ram: usize, addr: usize) -> u32 {
        self.gpu.ram_word(ram, addr)
    }
}
