//! Waveform-level simulator API over the virtual GPU.

use crate::compile::Compiled;
use gem_netlist::Bits;
use gem_place::Word;
use gem_telemetry::{MetricFamily, MetricKind, MetricsSink, MetricsSnapshot, Sample};
use gem_vgpu::{
    CounterBreakdown, ExecBackend, ExecMode, ExecStats, GemGpu, GpuSnapshot, KernelCounters,
    MachineError,
};
use std::fmt;

/// Runs a compiled design cycle by cycle.
///
/// GEM is an oblivious full-cycle simulator: every cycle executes the
/// whole design regardless of activity. Inputs are sampled when
/// [`step`](Self::step) is called; outputs read afterwards are the
/// combinational values observed *during* that cycle (before the clock
/// edge), matching the convention of the golden models in `gem-sim`.
///
/// # Example
///
/// ```
/// use gem_core::{compile, CompileOptions, GemSimulator};
/// use gem_netlist::{Bits, ModuleBuilder};
///
/// let mut b = ModuleBuilder::new("xorer");
/// let x = b.input("x", 4);
/// let y = b.input("y", 4);
/// let z = b.xor(x, y);
/// b.output("z", z);
/// let m = b.finish()?;
/// let compiled = compile(&m, &CompileOptions::small()).expect("compiles");
/// let mut sim = GemSimulator::new(&compiled).expect("loads");
/// sim.set_input("x", Bits::from_u64(0b1100, 4));
/// sim.set_input("y", Bits::from_u64(0b1010, 4));
/// sim.step();
/// assert_eq!(sim.output("z").to_u64(), 0b0110);
/// # Ok::<(), gem_netlist::ValidateError>(())
/// ```
pub struct GemSimulator {
    gpu: GemGpu,
    io: crate::IoMap,
    /// Periodic metrics export: sink plus snapshot interval in cycles.
    /// `Send` so a simulator (and its sink) can be owned by a server
    /// worker thread.
    sink: Option<(Box<dyn MetricsSink + Send>, u64)>,
    /// Cycles stepped while each lane was active (index = lane). The sum
    /// over lanes reconciles with Σ_cycles lanes_active — the invariant
    /// the metrics tests assert.
    lane_steps: [u64; GemGpu::MAX_LANES as usize],
}

impl fmt::Debug for GemSimulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GemSimulator")
            .field("gpu", &self.gpu)
            .field("io", &self.io)
            .field("sink_every_n", &self.sink.as_ref().map(|(_, n)| *n))
            .finish()
    }
}

impl GemSimulator {
    /// Loads a compiled design onto the virtual GPU.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] if the bitstream fails validation (which
    /// would indicate a compiler bug).
    pub fn new(compiled: &Compiled) -> Result<Self, MachineError> {
        Self::from_parts(
            &compiled.bitstream,
            compiled.device.clone(),
            compiled.io.clone(),
        )
    }

    /// Builds a simulator from the loadable parts (used when running a
    /// serialized [`crate::Package`] without recompiling).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] if the bitstream fails validation.
    pub fn from_parts(
        bitstream: &gem_isa::Bitstream,
        device: gem_vgpu::DeviceConfig,
        io: crate::IoMap,
    ) -> Result<Self, MachineError> {
        let mut gpu = GemGpu::load(bitstream, device)?;
        gpu.set_exec_mode(ExecMode::resolved_default());
        gpu.set_backend(ExecBackend::resolved_default());
        Ok(GemSimulator {
            gpu,
            io,
            sink: None,
            lane_steps: [0; GemGpu::MAX_LANES as usize],
        })
    }

    /// Sets the execution engine shape: `0` picks the process default
    /// (`GEM_THREADS` env var, else host parallelism), `1` forces serial,
    /// `n ≥ 2` fans the cores of each pipeline stage out over `n`
    /// persistent worker threads. Waveforms and counters are bit-identical
    /// across all settings — only wall-clock changes.
    pub fn set_threads(&mut self, threads: usize) {
        let mode = if threads == 0 {
            ExecMode::resolved_default()
        } else {
            ExecMode::from_threads(threads)
        };
        self.gpu.set_exec_mode(mode);
    }

    /// Worker threads the execution engine currently uses (1 = serial).
    pub fn threads(&self) -> usize {
        self.gpu.exec_mode().threads()
    }

    /// Selects the core evaluation backend:
    /// [`ExecBackend::Interpreted`] re-walks the decoded bitstream every
    /// cycle, [`ExecBackend::Compiled`] executes the threaded-code form
    /// specialized at load. Waveforms and counters are bit-identical
    /// across backends (`docs/COMPILED.md`); only wall clock changes.
    /// Composes freely with [`set_threads`](Self::set_threads) and
    /// [`set_lanes`](Self::set_lanes), and may be switched mid-run.
    pub fn set_backend(&mut self, backend: ExecBackend) {
        self.gpu.set_backend(backend);
    }

    /// The core evaluation backend currently in use.
    pub fn backend(&self) -> ExecBackend {
        self.gpu.backend()
    }

    /// Host-side execution statistics (barrier waits, fan-out counts).
    /// Wall-clock measurements — not part of the determinism contract.
    pub fn exec_stats(&self) -> &ExecStats {
        self.gpu.exec_stats()
    }

    /// Sets an input port for the upcoming cycle(s).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or the width differs.
    pub fn set_input(&mut self, name: &str, v: Bits) {
        let port = self
            .io
            .input(name)
            .unwrap_or_else(|| panic!("no input port named {name:?}"));
        assert_eq!(
            v.width() as usize,
            port.bits.len(),
            "input width mismatch on {name:?}"
        );
        for (i, &g) in port.bits.iter().enumerate() {
            self.gpu.poke(g, v.bit(i as u32));
        }
    }

    /// Executes one simulated clock cycle.
    pub fn step(&mut self) {
        // Parent for the engine's per-stage/per-core spans (trace export).
        let _cycle_span = if gem_telemetry::span::enabled() {
            let mut sp = gem_telemetry::span::span("cycle", "sim");
            sp.arg("cycle", self.gpu.counters().cycles);
            Some(sp)
        } else {
            None
        };
        self.gpu.step_cycle();
        for s in self.lane_steps.iter_mut().take(self.gpu.lanes() as usize) {
            *s += 1;
        }
        if let Some((_, every_n)) = &self.sink {
            if self.gpu.counters().cycles.is_multiple_of(*every_n) {
                let snap = self.metrics();
                if let Some((sink, _)) = &mut self.sink {
                    sink.record(&snap);
                }
            }
        }
    }

    /// Enables event-based pruning: thread blocks whose inputs did not
    /// change are skipped (sound — a core's cycle function is pure). This
    /// is the paper's proposed future-work extension; baseline GEM keeps
    /// it off and has activity-independent speed.
    pub fn set_pruning(&mut self, on: bool) {
        self.gpu.set_pruning(on);
    }

    /// Reads an output port (values observed during the last
    /// [`step`](Self::step)).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn output(&self, name: &str) -> Bits {
        let port = self
            .io
            .output(name)
            .unwrap_or_else(|| panic!("no output port named {name:?}"));
        let mut v = Bits::zeros(port.bits.len() as u32);
        for (i, &g) in port.bits.iter().enumerate() {
            v.set_bit(i as u32, self.gpu.peek(g));
        }
        v
    }

    // --- Lane batching (docs/BATCH.md) -------------------------------

    /// Maximum stimulus lanes one simulator can batch.
    pub const MAX_LANES: u32 = GemGpu::MAX_LANES;

    /// Sets the number of active stimulus lanes. One [`step`](Self::step)
    /// then advances that many independent simulations of the same
    /// compiled design — the bit-lanes of the underlying machine words.
    /// Newly activated lanes start as exact copies of lane 0; scalar
    /// [`set_input`](Self::set_input) broadcasts to every lane and
    /// [`output`](Self::output) reads lane 0, so single-stimulus code is
    /// unaffected.
    ///
    /// # Errors
    ///
    /// [`MachineError::BadLanes`] when `lanes` is outside
    /// `1..=`[`Self::MAX_LANES`].
    pub fn set_lanes(&mut self, lanes: u32) -> Result<(), MachineError> {
        self.gpu.set_lanes(lanes)
    }

    /// Active stimulus lanes (1 = single-stimulus).
    pub fn lanes(&self) -> u32 {
        self.gpu.lanes()
    }

    /// Cycles stepped per active lane since construction (index = lane).
    pub fn lane_steps(&self) -> &[u64] {
        &self.lane_steps[..self.gpu.lanes() as usize]
    }

    /// Sets an input port for one lane only.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist, the width differs, or `lane`
    /// is not active.
    pub fn set_input_lane(&mut self, name: &str, lane: u32, v: Bits) {
        assert!(
            lane < self.gpu.lanes(),
            "lane {lane} is not active (lanes = {})",
            self.gpu.lanes()
        );
        let port = self
            .io
            .input(name)
            .unwrap_or_else(|| panic!("no input port named {name:?}"));
        assert_eq!(
            v.width() as usize,
            port.bits.len(),
            "input width mismatch on {name:?}"
        );
        for (i, &g) in port.bits.iter().enumerate() {
            self.gpu.poke_lane(g, lane, v.bit(i as u32));
        }
    }

    /// Reads an output port as one lane observed it during the last
    /// [`step`](Self::step).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or `lane ≥ `[`Self::MAX_LANES`]
    /// (inactive lanes mirror lane 0).
    pub fn output_lane(&self, name: &str, lane: u32) -> Bits {
        assert!(lane < Self::MAX_LANES, "lane {lane} out of range");
        let port = self
            .io
            .output(name)
            .unwrap_or_else(|| panic!("no output port named {name:?}"));
        let mut v = Bits::zeros(port.bits.len() as u32);
        for (i, &g) in port.bits.iter().enumerate() {
            v.set_bit(i as u32, self.gpu.peek_lane(g, lane));
        }
        v
    }

    /// Packed injection path: sets an input port from lane words, one
    /// machine [`Word`] per port bit (bit `k` of `words[i]` is port bit
    /// `i` in lane `k`). This is how a batch driver feeds up to
    /// [`Self::MAX_LANES`] stimulus streams in one call per port; see
    /// `gem_sim::LaneBatch::pack`.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or `words` length differs from
    /// the port width.
    pub fn set_input_lanes(&mut self, name: &str, words: &[Word]) {
        let port = self
            .io
            .input(name)
            .unwrap_or_else(|| panic!("no input port named {name:?}"));
        assert_eq!(
            words.len(),
            port.bits.len(),
            "input width mismatch on {name:?}"
        );
        for (&g, &w) in port.bits.iter().zip(words) {
            self.gpu.poke_lanes(g, w);
        }
    }

    /// Packed demux path: reads an output port as lane words, one
    /// machine [`Word`] per port bit; see `gem_sim::LaneBatch::unpack`.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn output_lanes(&self, name: &str) -> Vec<Word> {
        let port = self
            .io
            .output(name)
            .unwrap_or_else(|| panic!("no output port named {name:?}"));
        port.bits.iter().map(|&g| self.gpu.peek_lanes(g)).collect()
    }

    /// Convenience: apply inputs, run a cycle, collect all outputs.
    pub fn cycle(&mut self, inputs: &[(&str, Bits)]) -> Vec<(String, Bits)> {
        for (n, v) in inputs {
            self.set_input(n, v.clone());
        }
        self.step();
        self.io
            .outputs
            .iter()
            .map(|p| (p.name.clone(), self.output(&p.name)))
            .collect()
    }

    /// Architectural event counters accumulated so far (for the timing
    /// model).
    pub fn counters(&self) -> &KernelCounters {
        self.gpu.counters()
    }

    /// Device totals refined per partition and per boomerang layer.
    pub fn breakdown(&self) -> CounterBreakdown {
        self.gpu.breakdown()
    }

    /// A structured snapshot of the current runtime counters (device
    /// scalars plus per-partition and per-layer families), including the
    /// lane families: `gem_sim_lanes_active` and the per-lane
    /// `gem_sim_lane_steps_total` whose sum reconciles with
    /// Σ_cycles lanes_active.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.gpu.metrics_snapshot();
        snap.push_scalar(
            "gem_sim_lanes_active",
            "Stimulus lanes this simulator advances per step",
            MetricKind::Gauge,
            self.gpu.lanes() as f64,
        );
        snap.push(MetricFamily {
            name: "gem_sim_lane_steps_total".to_string(),
            help: "Cycles stepped while each lane was active".to_string(),
            kind: MetricKind::Counter,
            samples: self
                .lane_steps
                .iter()
                .take(self.gpu.lanes() as usize)
                .enumerate()
                .map(|(lane, &steps)| Sample {
                    labels: vec![("lane".to_string(), lane.to_string())],
                    value: steps as f64,
                })
                .collect(),
        });
        snap
    }

    /// Installs a metrics sink that receives a [`metrics`](Self::metrics)
    /// snapshot every `every_n_cycles` simulated cycles (and replaces any
    /// previous sink). `every_n_cycles` is clamped to at least 1.
    pub fn set_metrics_sink(&mut self, sink: Box<dyn MetricsSink + Send>, every_n_cycles: u64) {
        self.sink = Some((sink, every_n_cycles.max(1)));
    }

    /// Removes the metrics sink, returning it (e.g. to flush or to read a
    /// collector back out).
    pub fn take_metrics_sink(&mut self) -> Option<Box<dyn MetricsSink + Send>> {
        self.sink.take().map(|(s, _)| s)
    }

    /// The compiled design's port bindings.
    pub fn io(&self) -> &crate::IoMap {
        &self.io
    }

    /// Captures the complete mutable machine state (signals, RAM
    /// contents, counters) for later [`restore`](Self::restore) — the
    /// substrate for session suspend/resume and checkpointing.
    pub fn snapshot(&self) -> GpuSnapshot {
        self.gpu.snapshot()
    }

    /// Restores a [`snapshot`](Self::snapshot) taken from a simulator of
    /// the same compiled design.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::SnapshotMismatch`] when the snapshot's
    /// shape does not match this design; the simulator is left untouched.
    pub fn restore(&mut self, s: &GpuSnapshot) -> Result<(), MachineError> {
        self.gpu.restore(s)
    }

    /// Direct access to a RAM block word (test setup, e.g. preloading a
    /// program image).
    pub fn set_ram_word(&mut self, ram: usize, addr: usize, value: u32) {
        self.gpu.set_ram_word(ram, addr, value);
    }

    /// Reads a RAM block word.
    pub fn ram_word(&self, ram: usize, addr: usize) -> u32 {
        self.gpu.ram_word(ram, addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions, Package};
    use gem_netlist::ModuleBuilder;

    /// Compile-time thread-safety audit: a simulation service moves these
    /// across threads (worker pools own sessions, compile jobs return
    /// `Compiled`, caches share `Package`s). A regression — e.g. an `Rc`
    /// or a non-`Send` trait object sneaking into any of them — fails
    /// this test at compile time.
    fn assert_send<T: Send>() {}
    fn assert_send_static<T: Send + 'static>() {}

    #[test]
    fn simulation_types_are_send() {
        assert_send::<GemSimulator>();
        assert_send::<Compiled>();
        assert_send::<Package>();
        assert_send::<gem_vgpu::GemGpu>();
        assert_send::<gem_vgpu::GpuSnapshot>();
        assert_send::<crate::IoMap>();
        assert_send_static::<GemSimulator>();
        assert_send_static::<Compiled>();
    }

    #[test]
    fn thread_knob_is_waveform_invisible() {
        // A real compiled design (multi-partition, registered) run serial
        // and with a 4-thread pool must agree bit-for-bit every cycle,
        // including the merged architectural counters.
        let mut b = ModuleBuilder::new("acc");
        let d = b.input("d", 16);
        let q = b.dff(16);
        let nxt = b.add(q, d);
        b.connect_dff(q, nxt);
        b.output("q", q);
        let m = b.finish().expect("valid");
        let c = compile(&m, &CompileOptions::small()).expect("compiles");
        let mut serial = GemSimulator::new(&c).expect("loads");
        let mut parallel = GemSimulator::new(&c).expect("loads");
        serial.set_threads(1);
        parallel.set_threads(4);
        assert_eq!(serial.threads(), 1);
        assert_eq!(parallel.threads(), 4);
        for i in 0..20u64 {
            let d = Bits::from_u64(i.wrapping_mul(0x1234) & 0xFFFF, 16);
            serial.set_input("d", d.clone());
            parallel.set_input("d", d);
            serial.step();
            parallel.step();
            assert_eq!(serial.output("q"), parallel.output("q"), "cycle {i}");
        }
        assert_eq!(serial.counters(), parallel.counters());
        assert_eq!(serial.breakdown(), parallel.breakdown());
        // `set_threads(0)` resolves to *some* executable default.
        serial.set_threads(0);
        assert!(serial.threads() >= 1);
    }

    #[test]
    fn backend_knob_is_waveform_invisible() {
        // A real compiled design run interpreted and compiled must agree
        // bit-for-bit every cycle, including counters and breakdowns —
        // the simulator-level face of the backend-equivalence contract.
        let mut b = ModuleBuilder::new("acc");
        let d = b.input("d", 16);
        let q = b.dff(16);
        let nxt = b.add(q, d);
        b.connect_dff(q, nxt);
        b.output("q", q);
        let m = b.finish().expect("valid");
        let c = compile(&m, &CompileOptions::small()).expect("compiles");
        let mut interp = GemSimulator::new(&c).expect("loads");
        let mut comp = GemSimulator::new(&c).expect("loads");
        interp.set_backend(ExecBackend::Interpreted);
        comp.set_backend(ExecBackend::Compiled);
        assert_eq!(comp.backend(), ExecBackend::Compiled);
        for i in 0..20u64 {
            let d = Bits::from_u64(i.wrapping_mul(0x4321) & 0xFFFF, 16);
            interp.set_input("d", d.clone());
            comp.set_input("d", d);
            interp.step();
            comp.step();
            assert_eq!(interp.output("q"), comp.output("q"), "cycle {i}");
        }
        assert_eq!(interp.counters(), comp.counters());
        assert_eq!(interp.breakdown(), comp.breakdown());
        // The backend shows up in the exported metrics.
        let fam = comp.metrics();
        let fam = fam.family("gem_vgpu_backend").unwrap();
        assert_eq!(fam.samples[0].labels[0].1, "compiled");
    }

    #[test]
    fn lane_batch_runs_independent_stimuli() {
        // One compiled design, four lanes, four different input streams:
        // each lane must track its own accumulator, and the scalar API
        // must keep reading lane 0.
        let mut b = ModuleBuilder::new("acc");
        let d = b.input("d", 16);
        let q = b.dff(16);
        let nxt = b.add(q, d);
        b.connect_dff(q, nxt);
        b.output("q", q);
        let m = b.finish().expect("valid");
        let c = compile(&m, &CompileOptions::small()).expect("compiles");
        let mut sim = GemSimulator::new(&c).expect("loads");
        sim.set_lanes(4).expect("4 lanes");
        assert_eq!(sim.lanes(), 4);
        // Outputs are read pre-edge (values observed *during* the cycle),
        // so `expect` tracks the registered value entering each cycle.
        let mut expect = [0u64; 4];
        for cyc in 0..12u64 {
            for lane in 0..4u32 {
                let d = (cyc + 1) * u64::from(lane + 1);
                sim.set_input_lane("d", lane, Bits::from_u64(d & 0xFFFF, 16));
            }
            sim.step();
            for lane in 0..4u32 {
                assert_eq!(
                    sim.output_lane("q", lane).to_u64(),
                    expect[lane as usize],
                    "cycle {cyc} lane {lane}"
                );
            }
            assert_eq!(sim.output("q").to_u64(), expect[0], "scalar view = lane 0");
            for lane in 0..4u64 {
                let d = (cyc + 1) * (lane + 1);
                expect[lane as usize] = (expect[lane as usize] + d) & 0xFFFF;
            }
        }
        assert_eq!(sim.lane_steps(), &[12, 12, 12, 12]);
    }

    #[test]
    fn packed_lane_io_round_trips() {
        let mut b = ModuleBuilder::new("xorer");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let z = b.xor(x, y);
        b.output("z", z);
        let m = b.finish().expect("valid");
        let c = compile(&m, &CompileOptions::small()).expect("compiles");
        let mut sim = GemSimulator::new(&c).expect("loads");
        sim.set_lanes(64).expect("64 lanes");
        // Port bit i in lane k: x = k's bit pattern, y = rotated.
        let x_words: Vec<Word> = (0..4)
            .map(|i| 0xDEAD_BEEF_0BAD_F00Du64.rotate_left(i))
            .collect();
        let y_words: Vec<Word> = (0..4)
            .map(|i| 0x1234_5678_9ABC_DEF0u64.rotate_right(i))
            .collect();
        sim.set_input_lanes("x", &x_words);
        sim.set_input_lanes("y", &y_words);
        sim.step();
        let z_words = sim.output_lanes("z");
        for (i, z) in z_words.iter().enumerate() {
            assert_eq!(*z, x_words[i] ^ y_words[i], "port bit {i}");
        }
        // The packed view agrees with the per-lane view.
        for lane in 0..64 {
            assert_eq!(
                sim.output_lane("z", lane).to_u64(),
                (0..4).map(|i| ((z_words[i] >> lane) & 1) << i).sum::<u64>()
            );
        }
    }

    #[test]
    fn lane_metrics_reconcile() {
        let mut b = ModuleBuilder::new("t");
        let x = b.input("x", 1);
        b.output("y", x);
        let m = b.finish().expect("valid");
        let c = compile(&m, &CompileOptions::small()).expect("compiles");
        let mut sim = GemSimulator::new(&c).expect("loads");
        for _ in 0..3 {
            sim.step(); // 3 single-lane cycles
        }
        sim.set_lanes(8).expect("8 lanes");
        for _ in 0..5 {
            sim.step(); // 5 eight-lane cycles
        }
        let snap = sim.metrics();
        assert_eq!(snap.family("gem_sim_lanes_active").unwrap().total(), 8.0);
        let fam = snap.family("gem_sim_lane_steps_total").unwrap();
        assert_eq!(fam.samples.len(), 8);
        // Sum reconciliation: Σ lane steps = Σ_cycles lanes_active
        // (3 cycles × 1 lane + 5 cycles × 8 lanes = 43 lane-steps; lane 0
        // stepped all 8 cycles, lanes 1..8 the last 5 each).
        assert_eq!(fam.total(), (3 + 5 * 8) as f64);
        assert_eq!(sim.lane_steps()[0], 8);
        assert_eq!(sim.lane_steps()[7], 5);
        assert!(snap.family("gem_vgpu_lanes").is_some());
    }

    #[test]
    fn bad_lane_count_is_typed_error() {
        let mut b = ModuleBuilder::new("t");
        let x = b.input("x", 1);
        b.output("y", x);
        let m = b.finish().expect("valid");
        let c = compile(&m, &CompileOptions::small()).expect("compiles");
        let mut sim = GemSimulator::new(&c).expect("loads");
        assert!(matches!(
            sim.set_lanes(0),
            Err(gem_vgpu::MachineError::BadLanes(0))
        ));
        assert!(matches!(
            sim.set_lanes(65),
            Err(gem_vgpu::MachineError::BadLanes(65))
        ));
        assert_eq!(sim.lanes(), 1);
    }

    #[test]
    fn snapshot_round_trips_through_simulator() {
        let mut b = ModuleBuilder::new("snap");
        let en = b.input("en", 1);
        let q = b.dff(8);
        let one = b.lit(1, 8);
        let inc = b.add(q, one);
        let nxt = b.mux(en, inc, q);
        b.connect_dff(q, nxt);
        b.output("q", q);
        let m = b.finish().expect("valid");
        let c = compile(&m, &CompileOptions::small()).expect("compiles");
        let mut sim = GemSimulator::new(&c).expect("loads");
        sim.set_input("en", Bits::from_u64(1, 1));
        for _ in 0..5 {
            sim.step();
        }
        let snap = sim.snapshot();
        let q_at_snap = sim.output("q").to_u64();
        for _ in 0..3 {
            sim.step();
        }
        assert_ne!(sim.output("q").to_u64(), q_at_snap);
        sim.restore(&snap).expect("restores");
        sim.step();
        assert_eq!(sim.output("q").to_u64(), q_at_snap + 1);
    }
}
