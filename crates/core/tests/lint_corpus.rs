//! Lint-fixture and clean-corpus gates for the static analyzer.
//!
//! Two directions, both load-bearing for `docs/ANALYZE.md`'s contract:
//!
//! * every fixture under `examples/designs/bad/` trips exactly its
//!   advertised diagnostic code, with a concrete (net-naming) witness —
//!   the analyzer's findings are stable, documented API;
//! * every shipping example design and a 25-seed slice of the fuzz
//!   corpus analyze **clean of warnings** and compile to a certified
//!   schedule — the analyzer does not cry wolf on valid designs, and
//!   the happens-before certifier covers the whole corpus.

use gem_analyze::{analyze_module, analyze_with_lints, Severity};
use gem_core::{compile, compile_verilog, CompileOptions};
use gem_netlist::verilog;
use gem_sim::{random_module, FuzzConfig};
use std::path::{Path, PathBuf};

fn repo_dir(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"))
}

fn verilog_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot list {dir:?}: {e}"))
        .filter_map(|e| Some(e.ok()?.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "v"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .v files under {dir:?}");
    files
}

/// Each bad fixture yields its advertised code at its advertised
/// severity, and the witness names at least one source-level net.
#[test]
fn bad_fixtures_trip_their_advertised_codes() {
    let expected: &[(&str, &str, Severity, &str)] = &[
        ("comb_loop.v", "GEM-L001", Severity::Error, "fb"),
        ("multi_driven.v", "GEM-L003", Severity::Error, "y"),
        ("dead_cone.v", "GEM-L006", Severity::Info, "unused"),
        ("width_mismatch.v", "GEM-L005", Severity::Warning, "y"),
    ];
    let dir = repo_dir("examples/designs/bad");
    for &(file, code, severity, witness_names) in expected {
        let path = dir.join(file);
        let (module, lints) = verilog::parse_with_lints(&read(&path))
            .unwrap_or_else(|e| panic!("{file} must parse (analysis explains it): {e}"));
        let report = analyze_with_lints(&module, &lints);
        let hit = report
            .diagnostics
            .iter()
            .find(|d| d.code == code)
            .unwrap_or_else(|| panic!("{file}: expected {code}, got {}", report.summary()));
        assert_eq!(hit.severity, severity, "{file}: {hit}");
        assert!(
            hit.witness.contains(witness_names),
            "{file}: witness must name {witness_names:?}, got {:?}",
            hit.witness
        );
    }
    // The fixture set and the expectation table stay in lockstep.
    assert_eq!(verilog_files(&dir).len(), expected.len());
}

/// The error-severity fixtures are exactly what `compile_verilog`
/// rejects — same code, same witness — so `gem run` on a bad design
/// tells the user which nets to look at.
#[test]
fn error_fixtures_fail_compile_with_named_witness() {
    let dir = repo_dir("examples/designs/bad");
    for (file, code, net) in [
        ("comb_loop.v", "GEM-L001", "fb"),
        ("multi_driven.v", "GEM-L003", "y"),
    ] {
        let err = compile_verilog(&read(&dir.join(file)), &CompileOptions::small())
            .expect_err(file)
            .to_string();
        assert!(err.contains(code), "{file}: {err}");
        assert!(err.contains(net), "{file} must name {net:?}: {err}");
    }
}

/// Every shipping example design analyzes with zero warnings and
/// compiles to a certified schedule.
#[test]
fn example_corpus_is_warning_free_and_certified() {
    for path in verilog_files(&repo_dir("examples/designs")) {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let (module, lints) =
            verilog::parse_with_lints(&read(&path)).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = analyze_with_lints(&module, &lints);
        assert!(
            report.clean(Severity::Warning),
            "{name} must be warning-free: {}",
            report.summary()
        );
        let compiled = compile_verilog(&read(&path), &CompileOptions::small())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(compiled.report.certified, "{name} must carry a cert");
        let cert = compiled.schedule_cert.expect("cert stored");
        assert_eq!(cert.reads, cert.barrier_edges + cert.boundary_edges);
    }
}

/// 25 fuzz seeds: the analyzer stays silent on generated-valid designs
/// and every one certifies.
#[test]
fn fuzz_corpus_is_warning_free_and_certified() {
    for seed in 0..25 {
        let module = random_module(seed, &FuzzConfig::for_seed(seed));
        let report = analyze_module(&module);
        assert!(
            report.clean(Severity::Warning),
            "seed {seed} must be warning-free: {}",
            report.summary()
        );
        let compiled = compile(&module, &CompileOptions::small())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(compiled.report.certified, "seed {seed} must carry a cert");
    }
}
