//! Integration tests for the telemetry layer: compile-flow reports and
//! per-partition runtime metrics (see `docs/OBSERVABILITY.md`).

use gem_core::{compile, compile_eaig, CompileOptions, GemSimulator};
use gem_netlist::{Bits, ModuleBuilder};
use gem_synth::{synthesize, SynthOptions};
use gem_telemetry::{MetricsSink, MetricsSnapshot};
use std::sync::{Arc, Mutex};

fn counter_module() -> gem_netlist::Module {
    let mut b = ModuleBuilder::new("counter");
    let en = b.input("en", 1);
    let q = b.dff(8);
    let one = b.lit(1, 8);
    let inc = b.add(q, one);
    let next = b.mux(en, inc, q);
    b.connect_dff(q, next);
    b.output("q", q);
    b.finish().expect("valid module")
}

/// The flow-report stage names are a stable, documented interface: tools
/// parse them out of `--emit-metrics` files. This test pins both the
/// names and their order.
#[test]
fn compile_flow_stage_names_are_stable() {
    let m = counter_module();
    let compiled = compile(&m, &CompileOptions::small()).expect("compiles");
    assert_eq!(
        compiled.flow.stage_names(),
        vec![
            "analyze",
            "synth",
            "partition",
            "merge",
            "place",
            "encode",
            "verify",
            "certify"
        ],
        "stage names/order are part of the metrics-file format"
    );
    // Entering after synthesis skips the analyze and synth stages.
    let synth = synthesize(&m, &SynthOptions::default()).expect("synthesizes");
    let from_eaig = compile_eaig(synth, &CompileOptions::small()).expect("compiles");
    assert_eq!(
        from_eaig.flow.stage_names(),
        vec!["partition", "merge", "place", "encode", "verify", "certify"]
    );
    // Compiling with verification off drops the verify and certify stages.
    let synth = synthesize(&m, &SynthOptions::default()).expect("synthesizes");
    let unverified = compile_eaig(
        synth,
        &CompileOptions {
            verify: false,
            ..CompileOptions::small()
        },
    )
    .expect("compiles");
    assert_eq!(
        unverified.flow.stage_names(),
        vec!["partition", "merge", "place", "encode"]
    );
    // The analyze stage records per-pass timings.
    let analyze = compiled.flow.stage("analyze").expect("analyze recorded");
    assert_eq!(analyze.metric("errors"), Some(0.0));
    assert!(analyze.metric("loops_wall_ns").is_some());
    // Key size metrics are attached where documented.
    let report = &compiled.flow;
    assert!(report.stage("synth").unwrap().metric("gates").unwrap() > 0.0);
    assert!(
        report
            .stage("partition")
            .unwrap()
            .metric("attempts")
            .unwrap()
            >= 1.0
    );
    assert!(report.stage("place").unwrap().metric("max_layers").unwrap() >= 1.0);
    assert!(
        report
            .stage("encode")
            .unwrap()
            .metric("bitstream_bytes")
            .unwrap()
            == compiled.report.bitstream_bytes as f64
    );
    // And the combined JSON document exposes both report and flow.
    let doc = compiled.metrics_json();
    assert!(doc.get("report").is_some());
    assert!(doc.get("compile_flow").is_some());
}

/// Per-partition counters must reconcile with the device-global totals
/// the timing model consumes. The design is RAM-free, so even global
/// memory traffic attributes exactly (RAM-phase traffic is the one
/// device-level component).
#[test]
fn partition_counters_sum_to_global_totals() {
    let m = counter_module();
    let compiled = compile(&m, &CompileOptions::small()).expect("compiles");
    assert!(
        compiled.device.rams.is_empty(),
        "test needs a RAM-free design"
    );
    let mut sim = GemSimulator::new(&compiled).expect("loads");
    sim.set_input("en", Bits::from_u64(1, 1));
    for _ in 0..7 {
        sim.step();
    }
    let bd = sim.breakdown();
    let sum = bd.partition_sum();
    let total = *sim.counters();
    assert_eq!(bd.total, total);
    assert_eq!(sum.alu_ops, total.alu_ops);
    assert_eq!(sum.shared_accesses, total.shared_accesses);
    assert_eq!(sum.block_syncs, total.block_syncs);
    assert_eq!(sum.blocks_run, total.blocks_run);
    assert_eq!(sum.blocks_skipped, total.blocks_skipped);
    assert_eq!(sum.global_bytes, total.global_bytes);
    assert_eq!(sum.global_transactions, total.global_transactions);
    // The exported snapshot carries the same sums.
    let snap = sim.metrics();
    assert_eq!(
        snap.family("gem_alu_ops_total").unwrap().total(),
        total.alu_ops as f64
    );
    assert_eq!(snap.family("gem_cycles_total").unwrap().total(), 7.0);
    // Layer families cover every execution of every core.
    assert_eq!(
        snap.family("gem_blocks_run_total").unwrap().total(),
        total.blocks_run as f64
    );
}

/// A sink that shares its buffer with the test body.
struct ShareSink(Arc<Mutex<Vec<MetricsSnapshot>>>);

impl MetricsSink for ShareSink {
    fn record(&mut self, snapshot: &MetricsSnapshot) {
        self.0.lock().expect("sink lock").push(snapshot.clone());
    }
}

/// A metrics sink installed with period N receives a snapshot every N
/// cycles.
#[test]
fn metrics_sink_records_periodically() {
    let m = counter_module();
    let compiled = compile(&m, &CompileOptions::small()).expect("compiles");
    let mut sim = GemSimulator::new(&compiled).expect("loads");
    sim.set_input("en", Bits::from_u64(1, 1));
    let buf = Arc::new(Mutex::new(Vec::new()));
    sim.set_metrics_sink(Box::new(ShareSink(buf.clone())), 2);
    for _ in 0..6 {
        sim.step();
    }
    let collected = buf.lock().expect("sink lock");
    assert_eq!(collected.len(), 3, "cycles 2, 4, 6");
    let cycles: Vec<f64> = collected
        .iter()
        .map(|s| s.family("gem_cycles_total").unwrap().total())
        .collect();
    assert_eq!(cycles, vec![2.0, 4.0, 6.0]);
}
