//! End-to-end trace export: compile + simulate under an installed span
//! collector, then validate the Chrome-trace document.
//!
//! Lives in its own integration-test binary (= its own process) because
//! the span collector is process-global: unit tests elsewhere must never
//! see this file's timeline.

use gem_core::{compile, CompileOptions, GemSimulator};
use gem_netlist::ModuleBuilder;
use gem_telemetry::span;
use gem_telemetry::span::Phase;

fn acc_module() -> gem_netlist::Module {
    let mut b = ModuleBuilder::new("acc");
    let d = b.input("d", 16);
    let q = b.dff(16);
    let nxt = b.add(q, d);
    b.connect_dff(q, nxt);
    b.output("q", q);
    b.finish().expect("valid")
}

#[test]
fn compile_and_run_produce_a_valid_nested_timeline() {
    let collector = span::TraceCollector::arc();
    span::install(std::sync::Arc::clone(&collector));

    let m = acc_module();
    let compiled = compile(&m, &CompileOptions::small()).expect("compiles");
    let mut sim = GemSimulator::new(&compiled).expect("loads");
    sim.set_threads(2);
    for _ in 0..4 {
        sim.step();
    }
    drop(sim);
    span::uninstall();

    let events = collector.drain();
    // Compile stages nest under the compile root span.
    let root = events
        .iter()
        .find(|e| e.name == "compile" && e.ph == Phase::Begin)
        .expect("compile root span");
    for stage in ["synth", "partition", "merge", "place", "encode", "verify"] {
        let b = events
            .iter()
            .find(|e| e.name == stage && e.ph == Phase::Begin)
            .unwrap_or_else(|| panic!("missing {stage} span"));
        assert_eq!(b.parent_id, root.span_id, "{stage} must nest under compile");
    }
    // The engine emitted cycle spans with nested stage spans, plus
    // per-core complete events and barrier waits (threads=2 → parallel).
    let cycle = events
        .iter()
        .find(|e| e.name == "cycle" && e.ph == Phase::Begin)
        .expect("cycle span");
    let stage0 = events
        .iter()
        .find(|e| e.name == "stage0" && e.ph == Phase::Begin)
        .expect("vgpu stage span");
    assert_eq!(stage0.parent_id, cycle.span_id);
    assert!(
        events
            .iter()
            .any(|e| e.ph == Phase::Complete && e.name.starts_with("core s")),
        "per-core execution events"
    );

    // The exported document passes the CI validator.
    let doc = span::events_to_chrome_trace(&events);
    let summary = span::validate_chrome_trace(&doc).expect("valid Chrome trace");
    assert!(summary.spans >= 7, "compile root + 6 stages at minimum");
    assert!(summary.events > 0 && summary.threads >= 1);

    // And it survives a serialize → parse round trip (what --trace-out
    // writes is what the validator reads back).
    let reparsed = gem_telemetry::parse_json(&doc.to_string()).expect("parses");
    span::validate_chrome_trace(&reparsed).expect("valid after round trip");
}
