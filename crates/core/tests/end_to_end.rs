//! Full-pipeline equivalence: RTL → synth → partition → merge → place →
//! assemble → virtual-GPU execution, cross-checked against the word-level
//! netlist reference simulator on random stimuli.

use gem_core::{compile, CompileOptions, GemSimulator};
use gem_netlist::{Bits, Module, ModuleBuilder, ReadKind};
use gem_sim::NetlistSim;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Random co-simulation of the compiled design against the RTL reference.
fn cosim(m: &Module, opts: &CompileOptions, cycles: usize, seed: u64) -> gem_core::Compiled {
    let compiled = compile(m, opts).expect("compiles");
    let mut gem = GemSimulator::new(&compiled).expect("loads");
    let mut rtl = NetlistSim::new(m);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for cycle in 0..cycles {
        for p in m.inputs() {
            let w = m.width(p.net);
            let mut v = Bits::zeros(w);
            for i in 0..w {
                v.set_bit(i, rng.gen_bool(0.5));
            }
            rtl.set_input(&p.name, v.clone());
            gem.set_input(&p.name, v);
        }
        rtl.eval();
        gem.step();
        for p in m.outputs() {
            assert_eq!(
                gem.output(&p.name),
                rtl.output(&p.name),
                "cycle {cycle}: output {} diverged",
                p.name
            );
        }
        rtl.step();
    }
    compiled
}

#[test]
fn combinational_design() {
    let mut b = ModuleBuilder::new("comb");
    let x = b.input("x", 8);
    let y = b.input("y", 8);
    let s = b.add(x, y);
    let lt = b.ult(x, y);
    b.output("s", s);
    b.output("lt", lt);
    let m = b.finish().unwrap();
    cosim(&m, &CompileOptions::small(), 50, 1);
}

#[test]
fn sequential_counter_and_shift() {
    let mut b = ModuleBuilder::new("seq");
    let en = b.input("en", 1);
    let din = b.input("din", 1);
    let q = b.dff(8);
    let one = b.lit(1, 8);
    let inc = b.add(q, one);
    let nq = b.mux(en, inc, q);
    b.connect_dff(q, nq);
    let sh = b.dff(4);
    let hi = b.slice(sh, 0, 3);
    let nsh = b.concat(&[din, hi]);
    b.connect_dff(sh, nsh);
    b.output("q", q);
    b.output("sh", sh);
    let m = b.finish().unwrap();
    cosim(&m, &CompileOptions::small(), 80, 2);
}

#[test]
fn design_with_native_ram() {
    let mut b = ModuleBuilder::new("ram");
    let wa = b.input("wa", 4);
    let ra = b.input("ra", 4);
    let wd = b.input("wd", 8);
    let we = b.input("we", 1);
    let mem = b.memory("m", 16, 8);
    b.write_port(mem, wa, wd, we);
    let q = b.read_port(mem, ra, ReadKind::Sync);
    b.output("q", q);
    let m = b.finish().unwrap();
    let compiled = cosim(&m, &CompileOptions::small(), 200, 3);
    assert_eq!(compiled.report.ram_blocks, 1);
    assert_eq!(compiled.device.rams.len(), 1);
}

#[test]
fn design_with_async_ram_polyfill() {
    let mut b = ModuleBuilder::new("rf");
    let wa = b.input("wa", 3);
    let ra = b.input("ra", 3);
    let wd = b.input("wd", 4);
    let we = b.input("we", 1);
    let mem = b.memory("rf", 8, 4);
    b.write_port(mem, wa, wd, we);
    let q = b.read_port(mem, ra, ReadKind::Async);
    b.output("q", q);
    let m = b.finish().unwrap();
    let compiled = cosim(&m, &CompileOptions::small(), 150, 4);
    assert_eq!(compiled.report.ram_blocks, 0);
    assert!(compiled.report.polyfilled_mem_bits > 0);
}

#[test]
fn two_stage_compile_matches() {
    // Deep shared logic so two stages are meaningful.
    let mut b = ModuleBuilder::new("deep");
    let x = b.input("x", 16);
    let y = b.input("y", 16);
    let mut acc = b.xor(x, y);
    for _ in 0..4 {
        let t = b.add(acc, x);
        acc = b.xor(t, y);
    }
    let q = b.dff(16);
    let nq = b.add(q, acc);
    b.connect_dff(q, nq);
    b.output("acc", acc);
    b.output("q", q);
    let m = b.finish().unwrap();
    let opts = CompileOptions {
        stages: 2,
        ..CompileOptions::small()
    };
    let compiled = cosim(&m, &opts, 60, 5);
    assert_eq!(compiled.report.stages, 2);
}

#[test]
fn verilog_source_to_gpu() {
    let src = r#"
        module blinky(input clk, input rst, output reg [3:0] cnt, output msb);
          assign msb = cnt[3];
          always @(posedge clk) begin
            if (rst) cnt <= 4'd0;
            else cnt <= cnt + 4'd1;
          end
        endmodule
    "#;
    let m = gem_netlist::verilog::parse(src).unwrap();
    cosim(&m, &CompileOptions::small(), 60, 6);
}

#[test]
fn report_fields_are_plausible() {
    let mut b = ModuleBuilder::new("stats");
    let x = b.input("x", 32);
    let y = b.input("y", 32);
    let p = b.mul(x, y);
    b.output("p", p);
    let m = b.finish().unwrap();
    // A 32×32 multiplier column's fan-in cone is wider than the tiny test
    // core, so compile with a wider core.
    let opts = CompileOptions {
        core_width: 2048,
        target_parts: 4,
        ..CompileOptions::default()
    };
    let compiled = compile(&m, &opts).expect("compiles");
    let r = &compiled.report;
    assert!(r.gates > 500, "multiplier should be big, got {}", r.gates);
    assert!(r.levels > 5);
    assert!(r.layers >= 1);
    assert!(r.layers < r.levels, "boomerang must compress levels");
    assert!(r.bitstream_bytes > 0);
    assert_eq!(r.bitstream_bytes, compiled.bitstream.total_bytes() as u64);
}

#[test]
fn fifo_placement_option_still_correct() {
    let mut b = ModuleBuilder::new("fifoopt");
    let x = b.input("x", 8);
    let y = b.input("y", 8);
    let s = b.add(x, y);
    let q = b.dff(8);
    let n = b.xor(q, s);
    b.connect_dff(q, n);
    b.output("q", q);
    let m = b.finish().unwrap();
    let opts = CompileOptions {
        timing_driven: false,
        ..CompileOptions::small()
    };
    cosim(&m, &opts, 50, 7);
}
