//! Converts per-cycle architectural event counts into estimated simulated
//! cycles per second on a concrete GPU.
//!
//! GEM's steady-state cycle time is dominated by three terms:
//!
//! 1. **Instruction streaming** — the bitstream is re-read from global
//!    memory every simulated cycle, so `bytes / bandwidth` is the floor
//!    (e.g. OpenPiton8's 162 MB bitstream over an A100's ≈1.3 TB/s gives
//!    ≈125 µs, i.e. ≈8 kHz, matching the paper's 7.3 kHz).
//! 2. **Compute** — shared-memory gathers and fold operations, spread
//!    across resident thread blocks; partitions beyond device capacity
//!    execute in extra waves.
//! 3. **Synchronization** — device-wide cooperative-group barriers at
//!    stage and cycle boundaries (microseconds each), plus cheap
//!    block-level barriers.
//!
//! Memory and compute overlap on a GPU, so the model takes their maximum
//! and adds the serial synchronization cost.

use crate::counters::KernelCounters;
use crate::spec::GpuSpec;

/// Timing model for one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingModel {
    /// The GPU being modeled.
    pub spec: GpuSpec,
}

impl TimingModel {
    /// Creates a model for `spec`.
    pub fn new(spec: GpuSpec) -> Self {
        TimingModel { spec }
    }

    /// Estimated wall-clock seconds per simulated cycle given *per-cycle*
    /// counters (see [`KernelCounters::per_cycle`]).
    pub fn cycle_seconds(&self, c: &KernelCounters) -> f64 {
        let s = &self.spec;
        // Term 1: global memory traffic.
        let t_mem = c.global_bytes as f64 / (s.mem_bandwidth_gbps * 1e9);
        // Term 2: compute, distributed over resident blocks in waves.
        let blocks = c.blocks_run.max(1) as f64;
        let waves = (blocks / s.resident_blocks() as f64).ceil().max(1.0);
        let per_block_thread_ops =
            (c.shared_accesses + c.alu_ops) as f64 / blocks / s.threads_per_block as f64;
        // Shared-memory ops retire roughly one per clock per thread.
        let t_compute = waves * per_block_thread_ops / (s.clock_ghz * 1e9);
        // Term 3: synchronization. Device-wide barriers are serial;
        // block barriers cost ~30 cycles each and overlap across blocks.
        let block_sync_s = (c.block_syncs as f64 / blocks) * waves * 30.0 / (s.clock_ghz * 1e9);
        let t_sync = c.device_syncs as f64 * s.device_sync_us * 1e-6 + block_sync_s;
        t_mem.max(t_compute) + t_sync
    }

    /// Estimated simulation speed in simulated cycles per second (the
    /// unit of Table II).
    pub fn hz(&self, per_cycle: &KernelCounters) -> f64 {
        1.0 / self.cycle_seconds(per_cycle)
    }

    /// Estimated speed straight from cumulative counters, with no
    /// integer truncation and no `Option`: returns `0.0` when no cycles
    /// ran. This is the guard-free entry point callers should prefer over
    /// `hz(&counters.per_cycle().unwrap())`.
    pub fn hz_total(&self, totals: &KernelCounters) -> f64 {
        if totals.cycles == 0 {
            return 0.0;
        }
        let r = totals.rates();
        let per_cycle = KernelCounters {
            global_bytes: r.global_bytes.round() as u64,
            global_transactions: r.global_transactions.round() as u64,
            shared_accesses: r.shared_accesses.round() as u64,
            alu_ops: r.alu_ops.round() as u64,
            block_syncs: r.block_syncs.round() as u64,
            device_syncs: r.device_syncs.round() as u64,
            blocks_run: r.blocks_run.round() as u64,
            blocks_skipped: r.blocks_skipped.round() as u64,
            cycles: 1,
        };
        self.hz(&per_cycle)
    }

    /// **Extension E2** (paper future work: "multi-GPU support").
    /// Estimated seconds per cycle when the partitions are sharded across
    /// `gpus` identical devices: instruction streaming and compute divide
    /// across devices, while every device-wide synchronization becomes an
    /// inter-GPU barrier (NVLink/NCCL, ≈3× the single-device latency) and
    /// stage-boundary signals cross the interconnect. Speed-up therefore
    /// saturates once the design becomes synchronization-bound — the
    /// quantitative version of why the paper lists multi-GPU as future
    /// work rather than a free win.
    pub fn multi_gpu_cycle_seconds(&self, c: &KernelCounters, gpus: u32) -> f64 {
        let gpus = gpus.max(1);
        if gpus == 1 {
            return self.cycle_seconds(c);
        }
        let s = &self.spec;
        let g = gpus as f64;
        let t_mem = c.global_bytes as f64 / g / (s.mem_bandwidth_gbps * 1e9);
        let blocks = (c.blocks_run.max(1) as f64 / g).ceil();
        let waves = (blocks / s.resident_blocks() as f64).ceil().max(1.0);
        let per_block_thread_ops = (c.shared_accesses + c.alu_ops) as f64
            / c.blocks_run.max(1) as f64
            / s.threads_per_block as f64;
        let t_compute = waves * per_block_thread_ops / (s.clock_ghz * 1e9);
        let block_sync_s = (c.block_syncs as f64 / c.blocks_run.max(1) as f64) * waves * 30.0
            / (s.clock_ghz * 1e9);
        // Inter-GPU barrier instead of a device barrier.
        let t_sync = c.device_syncs as f64 * s.device_sync_us * 3.0 * 1e-6 + block_sync_s;
        // Cross-GPU exchange of stage-boundary signals over ~300 GB/s
        // effective NVLink: each block publishes at most its core width
        // (≈256 B of packed signals) to peers.
        let t_link = c.blocks_run as f64 * 256.0 / 300e9;
        t_mem.max(t_compute) + t_sync + t_link
    }

    /// Multi-GPU speed estimate; see
    /// [`multi_gpu_cycle_seconds`](Self::multi_gpu_cycle_seconds).
    pub fn multi_gpu_hz(&self, per_cycle: &KernelCounters, gpus: u32) -> f64 {
        1.0 / self.multi_gpu_cycle_seconds(per_cycle, gpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn per_cycle(bytes: u64, blocks: u64, dev_syncs: u64) -> KernelCounters {
        KernelCounters {
            global_bytes: bytes,
            global_transactions: bytes / 128,
            shared_accesses: blocks * 8192 * 2 * 10,
            alu_ops: blocks * 8191 * 10,
            block_syncs: blocks * 14 * 10,
            device_syncs: dev_syncs,
            blocks_run: blocks,
            blocks_skipped: 0,
            cycles: 1,
        }
    }

    #[test]
    fn bandwidth_bound_designs_track_bitstream_size() {
        let m = TimingModel::new(GpuSpec::a100());
        // OpenPiton8-like: 162.4 MB bitstream per cycle.
        let hz = m.hz(&per_cycle(162_400_000, 947, 4));
        assert!(
            (3_000.0..15_000.0).contains(&hz),
            "OpenPiton8-like estimate {hz:.0} Hz (paper: 7285)"
        );
        // NVDLA-like: 11.2 MB.
        let hz = m.hz(&per_cycle(11_200_000, 52, 3));
        assert!(
            (40_000.0..120_000.0).contains(&hz),
            "NVDLA-like estimate {hz:.0} Hz (paper: 65385)"
        );
    }

    #[test]
    fn a100_beats_3090_when_bandwidth_bound() {
        let a = TimingModel::new(GpuSpec::a100());
        let r = TimingModel::new(GpuSpec::rtx3090());
        let c = per_cycle(44_400_000, 143, 3);
        assert!(a.hz(&c) > r.hz(&c));
    }

    #[test]
    fn sync_overhead_caps_tiny_designs() {
        let m = TimingModel::new(GpuSpec::a100());
        let c = per_cycle(1_000, 1, 3);
        // Even a tiny design cannot beat the device-sync floor (~7.5 µs
        // for 3 barriers).
        assert!(m.hz(&c) < 150_000.0);
    }

    #[test]
    fn multi_gpu_helps_bandwidth_bound_designs_most() {
        let m = TimingModel::new(GpuSpec::a100());
        // OpenPiton8-like, bandwidth-bound.
        let big = per_cycle(162_400_000, 947, 4);
        let one = m.hz(&big);
        let two = m.multi_gpu_hz(&big, 2);
        let four = m.multi_gpu_hz(&big, 4);
        assert!(two > one * 1.4, "2 GPUs: {one:.0} -> {two:.0}");
        assert!(four > two, "4 GPUs must not regress");
        // Tiny, sync-bound design: extra GPUs hurt (slower barriers).
        let small = per_cycle(50_000, 4, 3);
        assert!(m.multi_gpu_hz(&small, 4) < m.hz(&small));
    }

    #[test]
    fn one_gpu_multi_model_matches_base() {
        let m = TimingModel::new(GpuSpec::a100());
        let c = per_cycle(9_200_000, 39, 3);
        assert_eq!(m.multi_gpu_hz(&c, 1), m.hz(&c));
    }

    #[test]
    fn speed_is_activity_independent() {
        // Full-cycle execution: identical counters regardless of stimulus,
        // so the model trivially yields one speed per design — asserted
        // here as documentation of the paper's "consistent simulation
        // speed for any stimuli".
        let m = TimingModel::new(GpuSpec::a100());
        let c = per_cycle(9_200_000, 39, 3);
        assert_eq!(m.hz(&c), m.hz(&c.clone()));
    }
}
