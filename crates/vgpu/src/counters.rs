//! Architectural event counters accumulated during virtual execution.
//!
//! [`KernelCounters`] are the device-global totals the timing model
//! consumes. [`CounterBreakdown`] refines them along the two axes the
//! paper's performance analysis cares about: **partitions** (one VLIW
//! core / thread block each, labeled by pipeline stage and core index)
//! and **boomerang layers** (combinational depth inside a core). Both are
//! convertible to a label-oriented [`MetricsSnapshot`] for export.
//!
//! Attribution rules: everything a core does — bitstream streaming,
//! signal gathers/publishes, shared-memory folds, block barriers — is
//! charged to its partition, so partition sums reconcile exactly with the
//! core-attributable global totals. RAM-phase traffic and device-wide
//! barriers happen outside any core and stay device-level only (see
//! `docs/OBSERVABILITY.md`).

use gem_telemetry::{MetricFamily, MetricKind, MetricsSnapshot, Sample};
use std::ops::AddAssign;

/// Counts of the events that determine GPU runtime. All counts are
/// cumulative; divide by the simulated cycle count for per-cycle rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCounters {
    /// Bytes moved through global memory (instruction words + signal
    /// gathers + publishes).
    pub global_bytes: u64,
    /// 128-byte global-memory transactions.
    pub global_transactions: u64,
    /// Shared-memory accesses (permutation gathers, fold traffic).
    pub shared_accesses: u64,
    /// Boolean fold operations executed.
    pub alu_ops: u64,
    /// Block-level (`__syncthreads`) barriers.
    pub block_syncs: u64,
    /// Device-wide (cooperative-groups) barriers.
    pub device_syncs: u64,
    /// Thread blocks launched (virtual; resident blocks iterate when the
    /// partition count exceeds device capacity).
    pub blocks_run: u64,
    /// Blocks skipped by event-based pruning (their inputs were unchanged,
    /// so their bitstream was not streamed and their folds did not run).
    pub blocks_skipped: u64,
    /// Simulated design cycles executed.
    pub cycles: u64,
}

impl AddAssign for KernelCounters {
    fn add_assign(&mut self, o: Self) {
        self.global_bytes += o.global_bytes;
        self.global_transactions += o.global_transactions;
        self.shared_accesses += o.shared_accesses;
        self.alu_ops += o.alu_ops;
        self.block_syncs += o.block_syncs;
        self.device_syncs += o.device_syncs;
        self.blocks_run += o.blocks_run;
        self.blocks_skipped += o.blocks_skipped;
        self.cycles += o.cycles;
    }
}

impl KernelCounters {
    /// Per-cycle averages (None when no cycles ran).
    pub fn per_cycle(&self) -> Option<KernelCounters> {
        if self.cycles == 0 {
            return None;
        }
        let d = self.cycles;
        Some(KernelCounters {
            global_bytes: self.global_bytes / d,
            global_transactions: self.global_transactions / d,
            shared_accesses: self.shared_accesses / d,
            alu_ops: self.alu_ops / d,
            block_syncs: self.block_syncs / d,
            device_syncs: self.device_syncs / d,
            blocks_run: self.blocks_run / d,
            blocks_skipped: self.blocks_skipped / d,
            cycles: 1,
        })
    }

    /// Per-cycle averages that saturate to all-zeros (with `cycles: 1`)
    /// when no cycles ran, so callers need no `None` branch. Prefer this
    /// over `per_cycle().expect(..)` anywhere a zero-cycle run is merely
    /// uninteresting rather than a logic error.
    pub fn per_cycle_saturating(&self) -> KernelCounters {
        self.per_cycle().unwrap_or(KernelCounters {
            cycles: 1,
            ..Default::default()
        })
    }

    /// Exact per-cycle rates as floats (all zero when no cycles ran).
    /// Unlike [`per_cycle`](Self::per_cycle), nothing is truncated, so
    /// small counts over many cycles stay visible.
    pub fn rates(&self) -> KernelRates {
        if self.cycles == 0 {
            return KernelRates::default();
        }
        let d = self.cycles as f64;
        KernelRates {
            global_bytes: self.global_bytes as f64 / d,
            global_transactions: self.global_transactions as f64 / d,
            shared_accesses: self.shared_accesses as f64 / d,
            alu_ops: self.alu_ops as f64 / d,
            block_syncs: self.block_syncs as f64 / d,
            device_syncs: self.device_syncs as f64 / d,
            blocks_run: self.blocks_run as f64 / d,
            blocks_skipped: self.blocks_skipped as f64 / d,
        }
    }
}

/// Exact per-cycle event rates (see [`KernelCounters::rates`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelRates {
    /// Global-memory bytes per cycle.
    pub global_bytes: f64,
    /// 128-byte transactions per cycle.
    pub global_transactions: f64,
    /// Shared-memory accesses per cycle.
    pub shared_accesses: f64,
    /// Fold ALU operations per cycle.
    pub alu_ops: f64,
    /// Block barriers per cycle.
    pub block_syncs: f64,
    /// Device barriers per cycle.
    pub device_syncs: f64,
    /// Blocks launched per cycle.
    pub blocks_run: f64,
    /// Blocks pruned per cycle.
    pub blocks_skipped: f64,
}

/// Counters attributed to one partition (one VLIW core / thread block).
///
/// `counters.device_syncs` and `counters.cycles` are always zero here:
/// both are device-level events that no single partition owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionCounters {
    /// Pipeline stage index of the core.
    pub stage: u32,
    /// Core index within the stage.
    pub core: u32,
    /// Events charged to this core.
    pub counters: KernelCounters,
}

/// Events aggregated per boomerang-layer index across all cores, i.e.
/// layer `k` sums the cost of the `k`-th layer of every core that is at
/// least `k + 1` layers deep. The tail of this distribution shows how
/// much of the device's work the deepest partitions serialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerCounters {
    /// Boomerang-layer index within a core program.
    pub layer: u32,
    /// Fold ALU operations in this layer across all cores.
    pub alu_ops: u64,
    /// Shared-memory accesses in this layer across all cores.
    pub shared_accesses: u64,
    /// Block barriers issued by this layer across all cores.
    pub block_syncs: u64,
    /// Core executions that reached this layer (skipped cores don't).
    pub executions: u64,
}

/// Device totals plus their per-partition and per-layer refinement.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CounterBreakdown {
    /// Device-global totals (the same struct [`crate::GemGpu::counters`]
    /// returns).
    pub total: KernelCounters,
    /// Per-partition attribution, ordered by (stage, core).
    pub partitions: Vec<PartitionCounters>,
    /// Per-layer aggregation, ordered by layer index.
    pub layers: Vec<LayerCounters>,
}

impl CounterBreakdown {
    /// Sums the per-partition counters. For every core-attributable field
    /// (`alu_ops`, `shared_accesses`, `block_syncs`, `blocks_run`,
    /// `blocks_skipped`) this equals the corresponding field of
    /// [`total`](Self::total); `global_bytes`/`global_transactions` match
    /// exactly on RAM-free designs (RAM-phase traffic is device-level).
    pub fn partition_sum(&self) -> KernelCounters {
        let mut sum = KernelCounters::default();
        for p in &self.partitions {
            sum += p.counters;
        }
        sum
    }

    /// Converts the breakdown into labeled metric families
    /// (`gem_*_total{stage,core}` per partition, `gem_layer_*{layer}` per
    /// layer, plus unlabeled device scalars).
    pub fn to_metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let t = &self.total;
        for (name, help, v) in [
            (
                "gem_cycles_total",
                "Simulated design cycles executed",
                t.cycles,
            ),
            (
                "gem_device_syncs_total",
                "Device-wide barriers",
                t.device_syncs,
            ),
            (
                "gem_ram_phase_bytes_total",
                "Global-memory bytes moved outside any partition (RAM phase)",
                t.global_bytes - self.partition_sum().global_bytes,
            ),
        ] {
            snap.push_scalar(name, help, MetricKind::Counter, v as f64);
        }
        let part_metric =
            |name: &str, help: &str, get: &dyn Fn(&KernelCounters) -> u64| MetricFamily {
                name: name.to_string(),
                help: help.to_string(),
                kind: MetricKind::Counter,
                samples: self
                    .partitions
                    .iter()
                    .map(|p| Sample {
                        labels: vec![
                            ("stage".to_string(), p.stage.to_string()),
                            ("core".to_string(), p.core.to_string()),
                        ],
                        value: get(&p.counters) as f64,
                    })
                    .collect(),
            };
        snap.push(part_metric(
            "gem_global_bytes_total",
            "Global-memory bytes (bitstream + signal traffic) per partition",
            &|c| c.global_bytes,
        ));
        snap.push(part_metric(
            "gem_global_transactions_total",
            "128-byte global-memory transactions per partition",
            &|c| c.global_transactions,
        ));
        snap.push(part_metric(
            "gem_shared_accesses_total",
            "Shared-memory accesses per partition",
            &|c| c.shared_accesses,
        ));
        snap.push(part_metric(
            "gem_alu_ops_total",
            "Boolean fold operations per partition",
            &|c| c.alu_ops,
        ));
        snap.push(part_metric(
            "gem_block_syncs_total",
            "Block-level barriers per partition",
            &|c| c.block_syncs,
        ));
        snap.push(part_metric(
            "gem_blocks_run_total",
            "Executions per partition",
            &|c| c.blocks_run,
        ));
        snap.push(part_metric(
            "gem_blocks_skipped_total",
            "Pruned executions per partition",
            &|c| c.blocks_skipped,
        ));
        let layer_metric =
            |name: &str, help: &str, get: &dyn Fn(&LayerCounters) -> u64| MetricFamily {
                name: name.to_string(),
                help: help.to_string(),
                kind: MetricKind::Counter,
                samples: self
                    .layers
                    .iter()
                    .map(|l| Sample {
                        labels: vec![("layer".to_string(), l.layer.to_string())],
                        value: get(l) as f64,
                    })
                    .collect(),
            };
        snap.push(layer_metric(
            "gem_layer_alu_ops_total",
            "Fold ALU operations per boomerang-layer index",
            &|l| l.alu_ops,
        ));
        snap.push(layer_metric(
            "gem_layer_shared_accesses_total",
            "Shared-memory accesses per boomerang-layer index",
            &|l| l.shared_accesses,
        ));
        snap.push(layer_metric(
            "gem_layer_block_syncs_total",
            "Block barriers per boomerang-layer index",
            &|l| l.block_syncs,
        ));
        snap.push(layer_metric(
            "gem_layer_executions_total",
            "Core executions reaching each boomerang-layer index",
            &|l| l.executions,
        ));
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KernelCounters {
        KernelCounters {
            global_bytes: 1000,
            global_transactions: 10,
            shared_accesses: 64,
            alu_ops: 31,
            block_syncs: 5,
            device_syncs: 2,
            blocks_run: 3,
            blocks_skipped: 1,
            cycles: 4,
        }
    }

    #[test]
    fn per_cycle_saturating_handles_zero_cycles() {
        let empty = KernelCounters::default();
        assert_eq!(empty.per_cycle(), None);
        let sat = empty.per_cycle_saturating();
        assert_eq!(sat.cycles, 1);
        assert_eq!(sat.global_bytes, 0);
        // With cycles run, it matches per_cycle exactly.
        assert_eq!(
            sample().per_cycle_saturating(),
            sample().per_cycle().unwrap()
        );
    }

    #[test]
    fn rates_do_not_truncate() {
        let c = sample();
        let r = c.rates();
        assert_eq!(r.global_bytes, 250.0);
        assert_eq!(r.alu_ops, 31.0 / 4.0);
        // Integer division would have lost this: 3 blocks / 4 cycles.
        assert_eq!(r.blocks_run, 0.75);
        assert_eq!(KernelCounters::default().rates(), KernelRates::default());
    }

    #[test]
    fn breakdown_partition_sum_and_snapshot() {
        let p = |stage: u32, core: u32, alu: u64| PartitionCounters {
            stage,
            core,
            counters: KernelCounters {
                alu_ops: alu,
                blocks_run: 1,
                ..Default::default()
            },
        };
        let bd = CounterBreakdown {
            total: KernelCounters {
                alu_ops: 30,
                blocks_run: 3,
                device_syncs: 7,
                cycles: 1,
                ..Default::default()
            },
            partitions: vec![p(0, 0, 10), p(0, 1, 5), p(1, 0, 15)],
            layers: vec![LayerCounters {
                layer: 0,
                alu_ops: 30,
                shared_accesses: 0,
                block_syncs: 0,
                executions: 3,
            }],
        };
        assert_eq!(bd.partition_sum().alu_ops, bd.total.alu_ops);
        assert_eq!(bd.partition_sum().blocks_run, bd.total.blocks_run);
        let snap = bd.to_metrics_snapshot();
        let fam = snap.family("gem_alu_ops_total").expect("family");
        assert_eq!(fam.samples.len(), 3);
        assert_eq!(fam.total(), 30.0);
        assert_eq!(
            snap.family("gem_layer_executions_total").unwrap().total(),
            3.0
        );
        assert_eq!(snap.family("gem_cycles_total").unwrap().total(), 1.0);
    }
}
