//! Architectural event counters accumulated during virtual execution.

use std::ops::AddAssign;

/// Counts of the events that determine GPU runtime. All counts are
/// cumulative; divide by the simulated cycle count for per-cycle rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCounters {
    /// Bytes moved through global memory (instruction words + signal
    /// gathers + publishes).
    pub global_bytes: u64,
    /// 128-byte global-memory transactions.
    pub global_transactions: u64,
    /// Shared-memory accesses (permutation gathers, fold traffic).
    pub shared_accesses: u64,
    /// Boolean fold operations executed.
    pub alu_ops: u64,
    /// Block-level (`__syncthreads`) barriers.
    pub block_syncs: u64,
    /// Device-wide (cooperative-groups) barriers.
    pub device_syncs: u64,
    /// Thread blocks launched (virtual; resident blocks iterate when the
    /// partition count exceeds device capacity).
    pub blocks_run: u64,
    /// Blocks skipped by event-based pruning (their inputs were unchanged,
    /// so their bitstream was not streamed and their folds did not run).
    pub blocks_skipped: u64,
    /// Simulated design cycles executed.
    pub cycles: u64,
}

impl AddAssign for KernelCounters {
    fn add_assign(&mut self, o: Self) {
        self.global_bytes += o.global_bytes;
        self.global_transactions += o.global_transactions;
        self.shared_accesses += o.shared_accesses;
        self.alu_ops += o.alu_ops;
        self.block_syncs += o.block_syncs;
        self.device_syncs += o.device_syncs;
        self.blocks_run += o.blocks_run;
        self.blocks_skipped += o.blocks_skipped;
        self.cycles += o.cycles;
    }
}

impl KernelCounters {
    /// Per-cycle averages (None when no cycles ran).
    pub fn per_cycle(&self) -> Option<KernelCounters> {
        if self.cycles == 0 {
            return None;
        }
        let d = self.cycles;
        Some(KernelCounters {
            global_bytes: self.global_bytes / d,
            global_transactions: self.global_transactions / d,
            shared_accesses: self.shared_accesses / d,
            alu_ops: self.alu_ops / d,
            block_syncs: self.block_syncs / d,
            device_syncs: self.device_syncs / d,
            blocks_run: self.blocks_run / d,
            blocks_skipped: self.blocks_skipped / d,
            cycles: 1,
        })
    }
}
