//! The virtual GPU executing GEM bitstreams.
//!
//! [`GemGpu`] is the reproduction's stand-in for the paper's CUDA
//! interpreter kernel. It executes each core's decoded VLIW program with
//! the exact shared-memory fold semantics of
//! [`gem_place::BoomerangLayer::execute`], maintains the device-global
//! signal array, performs RAM block operations, and accumulates
//! [`KernelCounters`] whose per-cycle values drive the timing model.
//!
//! Intra-cycle memory discipline mirrors the real kernel: cores read
//! global signals once at cycle start; *immediate* writes (stage-boundary
//! cut signals, RAM port operands) become visible to later stages after a
//! device-wide synchronization; *deferred* writes (flip-flop next-states,
//! registered RAM read data, primary outputs) commit at the cycle
//! boundary, which is what makes full-cycle semantics race-free.
//!
//! Execution shape: the cores of a stage are mutually independent
//! (replication-aided partitioning removes intra-stage communication),
//! so each core runs as a *pure function* of the stage-start global
//! array — [`execute_core`] reads an immutable snapshot and returns a
//! [`CoreOutbox`] of buffered writes and counter deltas. The outboxes
//! are merged in core order at the stage barrier. This holds for both
//! [`ExecMode::Serial`] and [`ExecMode::Parallel`], which is what makes
//! 1-thread and N-thread runs bit-identical (waveforms *and* merged
//! counters; see `docs/PARALLEL.md`).
//!
//! **Lane batching** (`docs/BATCH.md`): every global signal is stored as
//! a machine-word ([`gem_place::Word`], a `u64`) *lane word* — bit `k`
//! is the signal's value in independent simulation `k`. The fold network is pure bitwise logic
//! ([`gem_place::BoomerangLayer::execute_words`]), so one [`step_cycle`]
//! advances up to [`GemGpu::MAX_LANES`] stimulus streams at the cost of
//! one. The scalar API ([`poke`]/[`peek`]) stays the single-stimulus
//! view: pokes broadcast to every lane, peeks read lane 0 — a machine
//! never touched by the lane API behaves exactly as before. Inactive
//! lanes (≥ [`lanes`]) always *mirror lane 0* — broadcast pokes, pure
//! lane-wise logic, and a shared RAM image keep that invariant, which is
//! what makes [`set_lanes`] upgrades mid-run coherent.
//!
//! [`step_cycle`]: GemGpu::step_cycle
//! [`poke`]: GemGpu::poke
//! [`peek`]: GemGpu::peek
//! [`lanes`]: GemGpu::lanes
//! [`set_lanes`]: GemGpu::set_lanes

use crate::compiled::{with_scratch, CompiledCore};
use crate::counters::{CounterBreakdown, KernelCounters, LayerCounters, PartitionCounters};
use crate::exec::{CorePool, ExecBackend, ExecMode, ExecStats};
use gem_isa::{disassemble_core, Bitstream, DecodeError, DecodedCore, WriteSrc};
use gem_place::{splat, Word};
use gem_telemetry::span;
use gem_telemetry::{MetricFamily, MetricKind, MetricsSnapshot, Sample};
use std::fmt;
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Global-memory binding of one RAM block (all indices are bit positions
/// in the device-global signal array).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RamBinding {
    /// Read-address bits, LSB first (immediate region).
    pub raddr: [u32; 13],
    /// Write-address bits.
    pub waddr: [u32; 13],
    /// Write-data bits.
    pub wdata: [u32; 32],
    /// Write enable.
    pub we: u32,
    /// Registered read-data bits (deferred region).
    pub rdata: [u32; 32],
}

/// Device-level configuration produced by the compiler.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeviceConfig {
    /// Size of the global signal array in bits.
    pub global_bits: u32,
    /// RAM blocks and their port bindings.
    pub rams: Vec<RamBinding>,
    /// Global bits whose power-on value is 1 (flip-flop init values).
    pub initial_ones: Vec<u32>,
}

/// Errors from [`GemGpu::load`] and [`GemGpu::restore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A core program failed to decode.
    Decode(DecodeError),
    /// A global index or state address is out of range; the string names
    /// the offender.
    BadBinding(String),
    /// A snapshot's shape does not match the loaded design; the string
    /// names the mismatch.
    SnapshotMismatch(String),
    /// A lane count outside `1..=`[`GemGpu::MAX_LANES`] was requested.
    BadLanes(u32),
    /// A snapshot was captured with a different machine lane-word width
    /// (e.g. a stale 32-wide snapshot restored onto the 64-wide
    /// machine). The payload is `(snapshot bits, machine bits)`.
    SnapshotWordWidth(u32, u32),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Decode(e) => write!(f, "core program decode failed: {e}"),
            MachineError::BadBinding(s) => write!(f, "bad binding: {s}"),
            MachineError::SnapshotMismatch(s) => write!(f, "snapshot mismatch: {s}"),
            MachineError::BadLanes(n) => write!(
                f,
                "bad lane count {n}: must be between 1 and {}",
                GemGpu::MAX_LANES
            ),
            MachineError::SnapshotWordWidth(snap, mach) => write!(
                f,
                "snapshot lane word is {snap} bits wide, machine word is {mach} bits"
            ),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<DecodeError> for MachineError {
    fn from(e: DecodeError) -> Self {
        MachineError::Decode(e)
    }
}

/// One loaded core: decoded program plus its precomputed per-cycle
/// counter contribution.
#[derive(Debug, Clone)]
struct LoadedCore {
    dec: DecodedCore,
    /// The same program lowered once to threaded-code form — what the
    /// compiled backend executes (see `docs/COMPILED.md`). Built
    /// unconditionally at load so [`GemGpu::set_backend`] is a pure
    /// engine switch with no recompilation, mirroring
    /// [`GemGpu::set_exec_mode`].
    comp: CompiledCore,
    delta: KernelCounters,
    /// Static cost of one boomerang layer of this core (all layers of a
    /// core are structurally identical in cost): shared accesses, fold
    /// ALU ops, block barriers.
    layer_cost: (u64, u64, u64),
}

/// The virtual GPU; see the module docs.
///
/// Cloning is cheap on the program side: the decoded bitstream is
/// shared read-only (`Arc`), as is the worker pool of a parallel
/// machine — only the mutable state (signals, RAMs, counters) is
/// deep-copied. Two clones stepping concurrently from different threads
/// are safe: every stage barrier collects results over a private
/// channel.
#[derive(Debug, Clone)]
pub struct GemGpu {
    cfg: DeviceConfig,
    /// Shared read-only bitstream: decoded programs plus static costs.
    stages: Arc<Vec<Vec<LoadedCore>>>,
    /// Global signal array as lane words: bit `k` of `global[i]` is
    /// signal `i` in simulation lane `k`.
    global: Vec<Word>,
    deferred: Vec<(u32, Word)>,
    /// RAM contents per block, one image per active lane
    /// (`ram_mem[ram][lane]`); inactive lanes read image 0.
    ram_mem: Vec<Vec<Box<[u32]>>>,
    /// Active stimulus lanes (1..=[`Self::MAX_LANES`]).
    lanes: u32,
    counters: KernelCounters,
    /// Per-partition attribution of `counters` (same [stage][core] shape
    /// as `stages`); device-level events (RAM phase, device barriers,
    /// cycles) are not attributed.
    part_counters: Vec<Vec<KernelCounters>>,
    /// Per-boomerang-layer aggregation across all cores, indexed by layer.
    layer_counters: Vec<LayerCounters>,
    /// Event-based pruning (the paper's proposed extension): skip a core
    /// whose read set is bit-identical to its previous execution. Sound
    /// because a core's cycle function is pure — all state lives in the
    /// global array, so unchanged inputs imply unchanged writes.
    pruning: bool,
    /// Cached read values per (stage, core) for pruning. Full lane
    /// words: a core is skipped only when *every* lane's read set is
    /// unchanged, which keeps pruning conservative (never wrong) under
    /// lane batching.
    input_cache: Vec<Vec<Option<Vec<Word>>>>,
    /// Worker pool when the mode is parallel (shared by clones).
    pool: Option<Arc<CorePool>>,
    /// Core evaluation backend (interpreted or compiled threaded code).
    /// Host configuration like the pool, not simulated state: snapshots
    /// neither capture nor reset it.
    backend: ExecBackend,
    /// Host-side fan-out statistics (not simulated state; see
    /// [`ExecStats`]).
    exec_stats: ExecStats,
}

/// A saved point-in-time copy of everything mutable in a [`GemGpu`]:
/// the global signal array, RAM contents, deferred-write queue, all
/// counters, and the pruning input caches. Restoring a snapshot onto a
/// machine loaded with the *same* bitstream resumes execution
/// bit-exactly — the substrate for session suspend/resume in
/// `gem-server` and for checkpointed long simulations.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSnapshot {
    global: Vec<Word>,
    deferred: Vec<(u32, Word)>,
    ram_mem: Vec<Vec<Box<[u32]>>>,
    lanes: u32,
    /// Lane-word width ([`Word::BITS`]) at capture time. Restoring onto
    /// a machine with a different word width is a typed error
    /// ([`MachineError::SnapshotWordWidth`]) — a 32-wide snapshot's
    /// lane packing is meaningless to the 64-wide machine.
    word_bits: u32,
    counters: KernelCounters,
    part_counters: Vec<Vec<KernelCounters>>,
    layer_counters: Vec<LayerCounters>,
    input_cache: Vec<Vec<Option<Vec<Word>>>>,
}

impl GpuSnapshot {
    /// Approximate heap footprint in bytes (capacity accounting for
    /// server-side snapshot budgets).
    pub fn approx_bytes(&self) -> usize {
        let wb = std::mem::size_of::<Word>();
        self.global.len() * wb
            + self
                .ram_mem
                .iter()
                .flatten()
                .map(|r| r.len() * 4)
                .sum::<usize>()
            + self
                .input_cache
                .iter()
                .flatten()
                .flatten()
                .map(|v| v.len() * wb)
                .sum::<usize>()
    }

    /// Active lane count captured with the state.
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Lane-word width (in bits) the snapshot was captured at.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Returns the snapshot with a forged lane-word width — a test hook
    /// for exercising the stale-snapshot rejection path (there is no
    /// other way to fabricate a legacy 32-wide snapshot in-process).
    #[doc(hidden)]
    pub fn with_word_bits(mut self, bits: u32) -> Self {
        self.word_bits = bits;
        self
    }
}

/// Mask of the active lanes: the low `lanes` bits set.
#[inline]
fn lane_mask(lanes: u32) -> Word {
    if lanes >= Word::BITS {
        Word::MAX
    } else {
        ((1 as Word) << lanes) - 1
    }
}

/// Bytes one lane word occupies — the unit of the global-traffic cost
/// model for signal gathers and publishes.
const WORD_BYTES: u64 = std::mem::size_of::<Word>() as u64;

/// Bits per 128-byte global-memory transaction.
const LINE_BITS: u64 = 128 * 8;

fn line_transactions(mut indices: Vec<u64>) -> u64 {
    indices.sort_unstable();
    indices.dedup();
    indices.len() as u64
}

/// Everything one core produces in one cycle, buffered so nothing
/// touches shared state while a stage is in flight. Outboxes are merged
/// at the stage barrier in core order ([`GemGpu::merge_stage`]).
struct CoreOutbox {
    /// Core index within its stage (restores order after a parallel
    /// stage, where completion order is nondeterministic).
    ci: usize,
    /// Immediate writes (full lane words): visible to later stages after
    /// the barrier.
    immediate: Vec<(u32, Word)>,
    /// Deferred writes (full lane words): committed at the cycle
    /// boundary.
    deferred: Vec<(u32, Word)>,
    /// Counter events charged to this core this cycle.
    delta: KernelCounters,
    /// Whether pruning skipped the fold work (layer counters then don't
    /// record an execution).
    skipped: bool,
    /// New pruning input-cache value for this core (`None` when pruning
    /// is off).
    cache: Option<Vec<Word>>,
}

/// Executes one core as a pure function of the stage-start global array.
/// Both execution engines and both backends call exactly this, which is
/// the structural reason serial/parallel and interpreted/compiled runs
/// cannot diverge: the pruning decision, counter deltas, and write
/// buffering are shared, and the backends differ only in how the fold
/// network is evaluated.
fn execute_core(
    core: &LoadedCore,
    global: &[Word],
    backend: ExecBackend,
    pruning: bool,
    prev_cache: Option<Vec<Word>>,
    ci: usize,
) -> CoreOutbox {
    let width = core.dec.width as usize;
    let mut out = CoreOutbox {
        ci,
        immediate: Vec::new(),
        deferred: Vec::new(),
        delta: KernelCounters::default(),
        skipped: false,
        cache: None,
    };
    if pruning {
        let inputs: Vec<Word> = core
            .dec
            .reads
            .iter()
            .map(|r| global[r.global as usize])
            .collect();
        if prev_cache.as_ref() == Some(&inputs) {
            // Unchanged read set: outputs are guaranteed identical and
            // already present in the global array (immediate writes) or
            // re-commit the same values (deferred). Charge only the
            // input gather, not the bitstream stream or the folds.
            out.delta = KernelCounters {
                blocks_skipped: 1,
                global_bytes: WORD_BYTES * core.dec.reads.len() as u64,
                global_transactions: 1 + core.dec.reads.len() as u64
                    / (LINE_BITS / (8 * WORD_BYTES)),
                ..Default::default()
            };
            out.skipped = true;
            // Deferred writes must still commit (FF next-states equal
            // their current values, but outputs may feed the testbench).
            for w in &core.dec.writes {
                if w.deferred {
                    let v = match w.src {
                        WriteSrc::State { .. } => {
                            // Value unchanged ⇒ current global content
                            // is already correct; re-commit it.
                            global[w.global as usize]
                        }
                        WriteSrc::Const(c) => splat(c),
                    };
                    out.deferred.push((w.global, v));
                }
            }
            out.cache = prev_cache;
            return out;
        }
        out.cache = Some(inputs);
    }
    match backend {
        ExecBackend::Interpreted => {
            let mut state = vec![Word::MIN; width];
            for r in &core.dec.reads {
                state[r.state as usize] = global[r.global as usize];
            }
            for layer in &core.dec.layers {
                layer.execute_words(&mut state);
            }
            for w in &core.dec.writes {
                let v = match w.src {
                    WriteSrc::State { addr, invert } => state[addr as usize] ^ splat(invert),
                    WriteSrc::Const(c) => splat(c),
                };
                if w.deferred {
                    out.deferred.push((w.global, v));
                } else {
                    out.immediate.push((w.global, v));
                }
            }
        }
        ExecBackend::Compiled => with_scratch(|scratch| {
            core.comp
                .execute_words_into(global, scratch, &mut out.immediate, &mut out.deferred);
        }),
    }
    out.delta = core.delta;
    out
}

impl GemGpu {
    /// Decodes and validates a bitstream against a device configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] on undecodable programs or out-of-range
    /// global indices / state addresses.
    pub fn load(bitstream: &Bitstream, cfg: DeviceConfig) -> Result<Self, MachineError> {
        let gb = cfg.global_bits;
        let mut stages = Vec::with_capacity(bitstream.stages.len());
        for (si, stage) in bitstream.stages.iter().enumerate() {
            let mut cores = Vec::with_capacity(stage.len());
            for (ci, bytes) in stage.iter().enumerate() {
                let dec = disassemble_core(bytes)?;
                let width = dec.width;
                for r in &dec.reads {
                    if r.global >= gb || u32::from(r.state) >= width {
                        return Err(MachineError::BadBinding(format!(
                            "stage {si} core {ci} read {} -> {}",
                            r.global, r.state
                        )));
                    }
                }
                for w in &dec.writes {
                    if w.global >= gb {
                        return Err(MachineError::BadBinding(format!(
                            "stage {si} core {ci} write to {}",
                            w.global
                        )));
                    }
                    if let WriteSrc::State { addr, .. } = w.src {
                        if u32::from(addr) >= width {
                            return Err(MachineError::BadBinding(format!(
                                "stage {si} core {ci} write from state {addr}"
                            )));
                        }
                    }
                }
                // Static per-cycle cost of this core.
                let folds = width.trailing_zeros() as u64;
                let mut delta = KernelCounters {
                    // The bitstream is streamed from global memory every
                    // cycle (it does not fit in shared memory).
                    global_bytes: bytes.len() as u64,
                    global_transactions: (bytes.len() as u64 * 8).div_ceil(LINE_BITS),
                    blocks_run: 1,
                    ..Default::default()
                };
                // Signal gathers/publishes: one lane word per signal,
                // coalescing determined by how many 128-byte lines they
                // touch.
                delta.global_bytes += WORD_BYTES * (dec.reads.len() + dec.writes.len()) as u64;
                delta.global_transactions += line_transactions(
                    dec.reads
                        .iter()
                        .map(|r| u64::from(r.global) / LINE_BITS)
                        .collect(),
                );
                delta.global_transactions += line_transactions(
                    dec.writes
                        .iter()
                        .map(|w| u64::from(w.global) / LINE_BITS)
                        .collect(),
                );
                let layer_cost = (
                    u64::from(width) * 2, // gather + fold reads
                    u64::from(width) - 1,
                    1 + folds,
                );
                for _layer in &dec.layers {
                    delta.shared_accesses += layer_cost.0;
                    delta.alu_ops += layer_cost.1;
                    delta.block_syncs += layer_cost.2;
                }
                let comp = CompiledCore::lower(&dec);
                cores.push(LoadedCore {
                    dec,
                    comp,
                    delta,
                    layer_cost,
                });
            }
            stages.push(cores);
        }
        // Validate RAM bindings.
        for (ri, r) in cfg.rams.iter().enumerate() {
            let all = r
                .raddr
                .iter()
                .chain(&r.waddr)
                .chain(&r.wdata)
                .chain(&r.rdata)
                .chain(std::iter::once(&r.we));
            for &idx in all {
                if idx >= gb {
                    return Err(MachineError::BadBinding(format!(
                        "ram {ri} binds global {idx}"
                    )));
                }
            }
        }
        for &idx in &cfg.initial_ones {
            if idx >= gb {
                return Err(MachineError::BadBinding(format!(
                    "initial value binds global {idx}"
                )));
            }
        }
        let ram_mem = cfg
            .rams
            .iter()
            .map(|_| vec![vec![0u32; 8192].into_boxed_slice()])
            .collect();
        let mut global = vec![Word::MIN; gb as usize];
        for &idx in &cfg.initial_ones {
            // Power-on ones hold in every lane.
            global[idx as usize] = splat(true);
        }
        let input_cache = stages
            .iter()
            .map(|st| st.iter().map(|_| None).collect())
            .collect();
        let part_counters = stages
            .iter()
            .map(|st| vec![KernelCounters::default(); st.len()])
            .collect();
        let max_layers = stages
            .iter()
            .flatten()
            .map(|c| c.dec.layers.len())
            .max()
            .unwrap_or(0);
        let layer_counters = (0..max_layers)
            .map(|li| LayerCounters {
                layer: li as u32,
                ..Default::default()
            })
            .collect();
        Ok(GemGpu {
            global,
            deferred: Vec::new(),
            ram_mem,
            lanes: 1,
            counters: KernelCounters::default(),
            part_counters,
            layer_counters,
            input_cache,
            pruning: false,
            stages: Arc::new(stages),
            cfg,
            pool: None,
            backend: ExecBackend::Interpreted,
            exec_stats: ExecStats {
                threads: 1,
                lanes: 1,
                ..ExecStats::default()
            },
        })
    }

    /// Selects the execution engine: [`ExecMode::Serial`] steps every
    /// core on the calling thread; [`ExecMode::Parallel(n)`] fans the
    /// cores of each stage out over `n` persistent worker threads with a
    /// barrier at the stage boundary. Execution results are bit-identical
    /// in either mode (see the module docs); only host wall-clock
    /// behaviour differs. Switching modes mid-simulation is allowed.
    ///
    /// [`ExecMode::Parallel(n)`]: ExecMode::Parallel
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        match mode {
            ExecMode::Serial => {
                self.pool = None;
                self.exec_stats.threads = 1;
            }
            ExecMode::Parallel(n) => {
                let n = n.max(2);
                if self.pool.as_ref().map(|p| p.threads()) != Some(n) {
                    self.pool = Some(Arc::new(CorePool::new(n)));
                }
                self.exec_stats.threads = n;
            }
        }
    }

    /// Convenience thread-count form of [`set_exec_mode`]
    /// (`0`/`1` → serial).
    ///
    /// [`set_exec_mode`]: Self::set_exec_mode
    pub fn set_threads(&mut self, threads: usize) {
        self.set_exec_mode(ExecMode::from_threads(threads));
    }

    /// The current execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        match &self.pool {
            Some(p) => ExecMode::Parallel(p.threads()),
            None => ExecMode::Serial,
        }
    }

    /// Selects the core evaluation backend.
    /// [`ExecBackend::Interpreted`] walks the decoded program;
    /// [`ExecBackend::Compiled`] runs the threaded-code form lowered at
    /// load. Results are bit-identical either way (waveforms *and*
    /// counters — see `docs/COMPILED.md`); only host wall clock
    /// differs. Switching backends mid-simulation is allowed and
    /// composes freely with [`set_exec_mode`](Self::set_exec_mode) and
    /// lane batching.
    pub fn set_backend(&mut self, backend: ExecBackend) {
        self.backend = backend;
        self.exec_stats.backend = backend;
    }

    /// The current core evaluation backend.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Host-side fan-out statistics (barrier waits, tasks dispatched).
    pub fn exec_stats(&self) -> &ExecStats {
        &self.exec_stats
    }

    /// Enables or disables event-based pruning (off by default; the
    /// baseline GEM of the paper is an oblivious full-cycle simulator).
    pub fn set_pruning(&mut self, on: bool) {
        self.pruning = on;
        if !on {
            for st in &mut self.input_cache {
                for c in st.iter_mut() {
                    *c = None;
                }
            }
        }
    }

    /// Writes a bit of the global signal array (testbench input side).
    /// Broadcasts to every lane — the single-stimulus view.
    pub fn poke(&mut self, index: u32, v: bool) {
        self.global[index as usize] = splat(v);
    }

    /// Reads a bit of the global signal array (testbench output side).
    /// Reads lane 0 — the single-stimulus view.
    pub fn peek(&self, index: u32) -> bool {
        self.global[index as usize] & 1 == 1
    }

    /// Maximum stimulus lanes one machine can batch (one per bit of
    /// the machine [`Word`]).
    pub const MAX_LANES: u32 = Word::BITS;

    /// Active stimulus lanes.
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Sets the number of active stimulus lanes.
    ///
    /// Newly activated lanes start as exact copies of lane 0 (global
    /// bits *and* RAM contents — the mirror-lane-0 invariant the module
    /// docs describe), so a batch can be opened mid-run and diverge from
    /// there via [`poke_lane`](Self::poke_lane) /
    /// [`poke_lanes`](Self::poke_lanes). Shrinking re-mirrors the
    /// deactivated lanes onto lane 0 and drops their RAM images.
    ///
    /// # Errors
    ///
    /// [`MachineError::BadLanes`] when `lanes` is outside
    /// `1..=`[`Self::MAX_LANES`]; the machine is untouched.
    pub fn set_lanes(&mut self, lanes: u32) -> Result<(), MachineError> {
        if lanes == 0 || lanes > Self::MAX_LANES {
            return Err(MachineError::BadLanes(lanes));
        }
        if lanes == self.lanes {
            return Ok(());
        }
        self.lanes = lanes;
        self.exec_stats.lanes = lanes;
        // Re-mirror lane 0 into the now-inactive lanes so the invariant
        // holds no matter what the lanes held while active.
        let amask = lane_mask(lanes);
        for g in &mut self.global {
            *g = (*g & amask) | (splat(*g & 1 == 1) & !amask);
        }
        for images in &mut self.ram_mem {
            if images.len() > lanes as usize {
                images.truncate(lanes as usize);
            } else {
                let proto = images[0].clone();
                while images.len() < lanes as usize {
                    images.push(proto.clone());
                }
            }
        }
        Ok(())
    }

    /// Writes one lane's bit of a global signal. Lane 0 also drives the
    /// inactive mirror lanes (they shadow lane 0 by invariant).
    pub fn poke_lane(&mut self, index: u32, lane: u32, v: bool) {
        debug_assert!(lane < self.lanes, "lane {lane} is not active");
        let g = &mut self.global[index as usize];
        let bit = (1 as Word) << lane;
        *g = (*g & !bit) | (splat(v) & bit);
        if lane == 0 {
            let amask = lane_mask(self.lanes);
            *g = (*g & amask) | (splat(v) & !amask);
        }
    }

    /// Reads one lane's bit of a global signal.
    pub fn peek_lane(&self, index: u32, lane: u32) -> bool {
        (self.global[index as usize] >> lane) & 1 == 1
    }

    /// Writes a full lane word of a global signal — the packed injection
    /// path. Bits above the active lane count are ignored; the inactive
    /// lanes are forced to mirror lane 0.
    pub fn poke_lanes(&mut self, index: u32, word: Word) {
        let amask = lane_mask(self.lanes);
        self.global[index as usize] = (word & amask) | (splat(word & 1 == 1) & !amask);
    }

    /// Reads a full lane word of a global signal — the packed demux
    /// path.
    pub fn peek_lanes(&self, index: u32) -> Word {
        self.global[index as usize]
    }

    /// Directly reads a word of RAM block `ram` (test setup/inspection).
    /// Reads lane 0's image — the single-stimulus view.
    pub fn ram_word(&self, ram: usize, addr: usize) -> u32 {
        self.ram_mem[ram][0][addr]
    }

    /// Reads a word of RAM block `ram` as lane `lane` sees it (inactive
    /// lanes see lane 0's image).
    pub fn ram_word_lane(&self, ram: usize, lane: u32, addr: usize) -> u32 {
        let img = if lane < self.lanes { lane as usize } else { 0 };
        self.ram_mem[ram][img][addr]
    }

    /// Directly writes a word of RAM block `ram` (e.g. program loading).
    /// Broadcasts to every lane image — the single-stimulus view.
    pub fn set_ram_word(&mut self, ram: usize, addr: usize, value: u32) {
        for image in &mut self.ram_mem[ram] {
            image[addr] = value;
        }
    }

    /// Executes one simulated design cycle: all stages, the RAM phase,
    /// then the deferred commit.
    pub fn step_cycle(&mut self) {
        let stages = Arc::clone(&self.stages);
        for (si, stage) in stages.iter().enumerate() {
            // Ends at the close of this loop body, i.e. after the merge —
            // the stage span covers fan-out, barrier, and merge.
            let _stage_span = if span::enabled() {
                let mut sp = span::span(format!("stage{si}"), "vgpu");
                sp.arg("cores", stage.len() as u64);
                Some(sp)
            } else {
                None
            };
            let outboxes = match self.pool.clone() {
                Some(pool) if stage.len() > 1 => self.run_stage_parallel(&pool, si, stage),
                _ => self.run_stage_serial(si, stage),
            };
            self.merge_stage(si, stage, outboxes);
            // Stage boundary: device-wide synchronization makes immediate
            // writes visible.
            self.counters.device_syncs += 1;
        }
        // RAM phase (read-first): capture read data, then apply writes —
        // per lane, since every lane addresses its own RAM image.
        // Inactive lanes mirror lane 0 (same port bits, shared image),
        // so only the active lanes are walked and lane 0's read data is
        // broadcast into the inactive tail of each deferred word.
        let lanes = self.lanes as usize;
        let amask = lane_mask(self.lanes);
        for ri in 0..self.cfg.rams.len() {
            let b = self.cfg.rams[ri].clone();
            let addr_of = |g: &Vec<Word>, bits: &[u32; 13], lane: usize| -> usize {
                bits.iter()
                    .enumerate()
                    .filter(|(_, &i)| (g[i as usize] >> lane) & 1 == 1)
                    .map(|(k, _)| 1usize << k)
                    .sum()
            };
            let mut words = [0u32; GemGpu::MAX_LANES as usize];
            for (l, w) in words.iter_mut().enumerate().take(lanes) {
                let raddr = addr_of(&self.global, &b.raddr, l);
                *w = self.ram_mem[ri][l][raddr];
            }
            for (k, &g) in b.rdata.iter().enumerate() {
                let mut v: Word = 0;
                for (l, w) in words.iter().enumerate().take(lanes) {
                    v |= (Word::from((w >> k) & 1)) << l;
                }
                v |= splat(v & 1 == 1) & !amask;
                self.deferred.push((g, v));
            }
            for l in 0..lanes {
                if (self.global[b.we as usize] >> l) & 1 == 1 {
                    let waddr = addr_of(&self.global, &b.waddr, l);
                    let mut w = 0u32;
                    for (k, &g) in b.wdata.iter().enumerate() {
                        if (self.global[g as usize] >> l) & 1 == 1 {
                            w |= 1 << k;
                        }
                    }
                    self.ram_mem[ri][l][waddr] = w;
                }
            }
            // One word read + potential write, plus the port-bit
            // gathers, per active lane.
            self.counters.global_bytes += (8 + 59 / 8) * lanes as u64;
            self.counters.global_transactions += 2 * lanes as u64;
        }
        if !self.cfg.rams.is_empty() {
            self.counters.device_syncs += 1;
        }
        // Cycle boundary: commit deferred writes (flip-flops update, read
        // data registers latch, outputs publish).
        for (g, v) in self.deferred.drain(..) {
            self.global[g as usize] = v;
        }
        self.counters.device_syncs += 1;
        self.counters.cycles += 1;
    }

    /// Runs every core of a stage on the calling thread, in core order.
    fn run_stage_serial(&mut self, si: usize, stage: &[LoadedCore]) -> Vec<CoreOutbox> {
        let traced = span::enabled();
        let mut outboxes = Vec::with_capacity(stage.len());
        for (ci, core) in stage.iter().enumerate() {
            let cache = std::mem::take(&mut self.input_cache[si][ci]);
            let started = Instant::now();
            outboxes.push(execute_core(
                core,
                &self.global,
                self.backend,
                self.pruning,
                cache,
                ci,
            ));
            if traced {
                span::complete(
                    format!("core s{si}c{ci}"),
                    "vgpu",
                    started,
                    started.elapsed(),
                    Vec::new(),
                );
            }
        }
        outboxes
    }

    /// Fans the cores of a stage out over the worker pool and waits at
    /// the barrier. The global array moves into an `Arc` snapshot for the
    /// duration of the stage (no copy — workers drop their handles before
    /// reporting, so it moves back out without cloning) and all writes
    /// are buffered in the outboxes, so there is no shared mutable state
    /// inside the stage.
    fn run_stage_parallel(
        &mut self,
        pool: &CorePool,
        si: usize,
        stage: &[LoadedCore],
    ) -> Vec<CoreOutbox> {
        let global = Arc::new(std::mem::take(&mut self.global));
        let stages = Arc::clone(&self.stages);
        let traced = span::enabled();
        // Workers report (outbox, completion time): the coordinator turns
        // the completion spread into per-core idle time at the barrier.
        let (tx, rx) = mpsc::channel::<(CoreOutbox, Instant)>();
        for ci in 0..stage.len() {
            let stages = Arc::clone(&stages);
            let global = Arc::clone(&global);
            let cache = std::mem::take(&mut self.input_cache[si][ci]);
            let pruning = self.pruning;
            let backend = self.backend;
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                let started = Instant::now();
                let out = execute_core(&stages[si][ci], &global, backend, pruning, cache, ci);
                // Release the snapshot handle *before* reporting so the
                // coordinator can take the array back without a copy.
                drop(global);
                let done = Instant::now();
                if traced {
                    span::complete(
                        format!("core s{si}c{ci}"),
                        "vgpu",
                        started,
                        done - started,
                        Vec::new(),
                    );
                }
                let _ = tx.send((out, done));
            }));
        }
        drop(tx);
        let barrier_from = Instant::now();
        let results: Vec<(CoreOutbox, Instant)> = rx.iter().collect();
        let barrier_wait = barrier_from.elapsed();
        // Idle time is each core's wait for the stage's slowest peer
        // (duration_since saturates to zero for the slowest core itself).
        let last_done = results
            .iter()
            .map(|(_, done)| *done)
            .max()
            .unwrap_or(barrier_from);
        let idle_nanos: u64 = results
            .iter()
            .map(|(_, done)| last_done.duration_since(*done).as_nanos() as u64)
            .sum();
        self.exec_stats.record_stage(
            si,
            stage.len() as u64,
            barrier_wait.as_nanos() as u64,
            idle_nanos,
        );
        if traced {
            span::complete(
                format!("barrier s{si}"),
                "vgpu",
                barrier_from,
                barrier_wait,
                vec![
                    ("tasks".to_string(), (stage.len() as u64).into()),
                    ("idle_nanos".to_string(), idle_nanos.into()),
                ],
            );
        }
        let mut outboxes: Vec<CoreOutbox> = results.into_iter().map(|(out, _)| out).collect();
        debug_assert_eq!(outboxes.len(), stage.len());
        // Deterministic merge order regardless of completion order.
        outboxes.sort_unstable_by_key(|o| o.ci);
        self.global = Arc::try_unwrap(global).unwrap_or_else(|a| (*a).clone());
        outboxes
    }

    /// Applies a stage's outboxes in core order: immediate writes land in
    /// the global array (this *is* the stage-boundary visibility point),
    /// deferred writes queue for the cycle boundary, and counters merge
    /// into the device totals and their refinements. Core outputs are
    /// disjoint (each global bit has a single writer), and counter
    /// addition is commutative, so the result is independent of the order
    /// cores finished in.
    fn merge_stage(&mut self, si: usize, stage: &[LoadedCore], outboxes: Vec<CoreOutbox>) {
        for out in outboxes {
            let ci = out.ci;
            for (g, v) in out.immediate {
                self.global[g as usize] = v;
            }
            self.deferred.extend(out.deferred);
            self.counters += out.delta;
            self.part_counters[si][ci] += out.delta;
            if !out.skipped {
                let core = &stage[ci];
                let (shared, alu, syncs) = core.layer_cost;
                for lc in self.layer_counters[..core.dec.layers.len()].iter_mut() {
                    lc.shared_accesses += shared;
                    lc.alu_ops += alu;
                    lc.block_syncs += syncs;
                    lc.executions += 1;
                }
            }
            self.input_cache[si][ci] = out.cache;
        }
    }

    /// Accumulated counters.
    pub fn counters(&self) -> &KernelCounters {
        &self.counters
    }

    /// Device totals refined per partition and per boomerang layer.
    pub fn breakdown(&self) -> CounterBreakdown {
        let partitions = self
            .part_counters
            .iter()
            .enumerate()
            .flat_map(|(si, st)| {
                st.iter().enumerate().map(move |(ci, c)| PartitionCounters {
                    stage: si as u32,
                    core: ci as u32,
                    counters: *c,
                })
            })
            .collect();
        CounterBreakdown {
            total: self.counters,
            partitions,
            layers: self.layer_counters.clone(),
        }
    }

    /// The current [`breakdown`](Self::breakdown) as exportable labeled
    /// metric families, plus the execution-engine families
    /// (`gem_vgpu_threads`, stage-barrier counts and waits). The
    /// breakdown families are deterministic; the barrier-wait families
    /// are measured wall clock and are *not* covered by the 1-vs-N
    /// determinism contract.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.breakdown().to_metrics_snapshot();
        let es = &self.exec_stats;
        snap.push_scalar(
            "gem_vgpu_threads",
            "Configured execution engine worker threads (1 = serial)",
            MetricKind::Gauge,
            es.threads as f64,
        );
        snap.push_scalar(
            "gem_vgpu_lanes",
            "Active stimulus bit-lanes advanced per step (1 = single-stimulus)",
            MetricKind::Gauge,
            self.lanes as f64,
        );
        snap.push(MetricFamily {
            name: "gem_vgpu_backend".to_string(),
            help: "Configured core evaluation backend (1 on the active label)".to_string(),
            kind: MetricKind::Gauge,
            samples: vec![Sample {
                labels: vec![("backend".to_string(), self.backend.name().to_string())],
                value: 1.0,
            }],
        });
        snap.push_scalar(
            "gem_vgpu_parallel_tasks_total",
            "Core executions dispatched to the worker pool",
            MetricKind::Counter,
            es.parallel_tasks as f64,
        );
        let stage_metric =
            |name: &str, help: &str, get: &dyn Fn(&crate::exec::StageWait) -> u64| MetricFamily {
                name: name.to_string(),
                help: help.to_string(),
                kind: MetricKind::Counter,
                samples: es
                    .per_stage
                    .iter()
                    .map(|s| Sample {
                        labels: vec![("stage".to_string(), s.stage.to_string())],
                        value: get(s) as f64,
                    })
                    .collect(),
            };
        snap.push(stage_metric(
            "gem_vgpu_stage_barriers_total",
            "Stage barriers the coordinator waited on, per pipeline stage",
            &|s| s.barriers,
        ));
        snap.push(stage_metric(
            "gem_vgpu_barrier_wait_nanos_total",
            "Nanoseconds the coordinator waited at each stage barrier",
            &|s| s.wait_nanos,
        ));
        snap.push(stage_metric(
            "gem_vgpu_core_idle_nanos_total",
            "Nanoseconds cores spent waiting for their stage's slowest peer",
            &|s| s.idle_nanos,
        ));
        snap.push(stage_metric(
            "gem_vgpu_stage_tasks_total",
            "Core executions fanned out, per pipeline stage",
            &|s| s.tasks,
        ));
        snap
    }

    /// Captures the complete mutable state of the machine.
    pub fn snapshot(&self) -> GpuSnapshot {
        GpuSnapshot {
            global: self.global.clone(),
            deferred: self.deferred.clone(),
            ram_mem: self.ram_mem.clone(),
            lanes: self.lanes,
            word_bits: Word::BITS,
            counters: self.counters,
            part_counters: self.part_counters.clone(),
            layer_counters: self.layer_counters.clone(),
            input_cache: self.input_cache.clone(),
        }
    }

    /// Restores a [`snapshot`](Self::snapshot), resuming execution
    /// bit-exactly. The snapshot must come from a machine loaded with a
    /// structurally identical bitstream and device configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::SnapshotMismatch`] (leaving the machine
    /// untouched) when any state dimension differs from the loaded
    /// design.
    pub fn restore(&mut self, s: &GpuSnapshot) -> Result<(), MachineError> {
        if s.word_bits != Word::BITS {
            return Err(MachineError::SnapshotWordWidth(s.word_bits, Word::BITS));
        }
        if s.global.len() != self.global.len() {
            return Err(MachineError::SnapshotMismatch(format!(
                "global array is {} bits, design has {}",
                s.global.len(),
                self.global.len()
            )));
        }
        if s.ram_mem.len() != self.ram_mem.len() {
            return Err(MachineError::SnapshotMismatch(format!(
                "{} RAM blocks, design has {}",
                s.ram_mem.len(),
                self.ram_mem.len()
            )));
        }
        if s.lanes == 0 || s.lanes > Self::MAX_LANES {
            return Err(MachineError::SnapshotMismatch(format!(
                "snapshot claims {} lanes",
                s.lanes
            )));
        }
        let part_shape =
            |pc: &Vec<Vec<KernelCounters>>| -> Vec<usize> { pc.iter().map(Vec::len).collect() };
        if part_shape(&s.part_counters) != part_shape(&self.part_counters) {
            return Err(MachineError::SnapshotMismatch(
                "partition shape differs".to_string(),
            ));
        }
        if s.layer_counters.len() != self.layer_counters.len() {
            return Err(MachineError::SnapshotMismatch(format!(
                "{} layers, design has {}",
                s.layer_counters.len(),
                self.layer_counters.len()
            )));
        }
        let cache_shape =
            |ic: &Vec<Vec<Option<Vec<Word>>>>| -> Vec<usize> { ic.iter().map(Vec::len).collect() };
        if cache_shape(&s.input_cache) != cache_shape(&self.input_cache) {
            return Err(MachineError::SnapshotMismatch(
                "pruning cache shape differs".to_string(),
            ));
        }
        self.global.clone_from(&s.global);
        self.deferred.clone_from(&s.deferred);
        self.ram_mem.clone_from(&s.ram_mem);
        self.lanes = s.lanes;
        self.exec_stats.lanes = s.lanes;
        self.counters = s.counters;
        self.part_counters.clone_from(&s.part_counters);
        self.layer_counters.clone_from(&s.layer_counters);
        self.input_cache.clone_from(&s.input_cache);
        Ok(())
    }

    /// Number of pipeline stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total cores (thread blocks) across stages.
    pub fn num_cores(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_isa::{assemble_core, ReadEntry, WriteEntry};
    use gem_place::{BoomerangLayer, CoreProgram, OutputSource, PermSource};

    /// A one-core bitstream computing g2 = g0 AND g1 into global 2.
    fn and_bitstream() -> (Bitstream, DeviceConfig) {
        let width = 16u32;
        let mut layer = BoomerangLayer::new(width);
        layer.perm[0] = PermSource::State(0);
        layer.perm[1] = PermSource::State(1);
        layer.writeback[0][0] = Some(2);
        let prog = CoreProgram {
            width,
            state_size: 3,
            inputs: vec![],
            layers: vec![layer],
            outputs: vec![OutputSource::State {
                addr: 2,
                invert: false,
            }],
        };
        let reads = vec![
            ReadEntry {
                global: 0,
                state: 0,
            },
            ReadEntry {
                global: 1,
                state: 1,
            },
        ];
        let writes = vec![WriteEntry {
            global: 2,
            src: gem_isa::WriteSrc::State {
                addr: 2,
                invert: false,
            },
            deferred: false,
        }];
        let bytes = assemble_core(&prog, &reads, &writes);
        (
            Bitstream {
                width,
                global_bits: 3,
                stages: vec![vec![bytes]],
            },
            DeviceConfig {
                global_bits: 3,
                rams: vec![],
                initial_ones: vec![],
            },
        )
    }

    #[test]
    fn executes_simple_and() {
        let (bs, cfg) = and_bitstream();
        let mut gpu = GemGpu::load(&bs, cfg).expect("loads");
        for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
            gpu.poke(0, a);
            gpu.poke(1, b);
            gpu.step_cycle();
            assert_eq!(gpu.peek(2), a && b);
        }
        let c = gpu.counters();
        assert_eq!(c.cycles, 4);
        assert!(c.global_bytes > 0);
        assert!(c.device_syncs >= 8); // stage + cycle boundary per cycle
    }

    #[test]
    fn counters_scale_linearly_with_cycles() {
        let (bs, cfg) = and_bitstream();
        let mut gpu = GemGpu::load(&bs, cfg).expect("loads");
        gpu.poke(0, true);
        gpu.poke(1, true);
        gpu.step_cycle();
        let one = *gpu.counters();
        for _ in 0..9 {
            gpu.step_cycle();
        }
        let ten = *gpu.counters();
        assert_eq!(ten.global_bytes, one.global_bytes * 10);
        assert_eq!(ten.blocks_run, 10);
    }

    #[test]
    fn breakdown_reconciles_with_totals() {
        let (bs, cfg) = and_bitstream();
        let mut gpu = GemGpu::load(&bs, cfg).expect("loads");
        gpu.poke(0, true);
        gpu.poke(1, true);
        for _ in 0..5 {
            gpu.step_cycle();
        }
        let bd = gpu.breakdown();
        let sum = bd.partition_sum();
        let t = bd.total;
        assert_eq!(sum.alu_ops, t.alu_ops);
        assert_eq!(sum.shared_accesses, t.shared_accesses);
        assert_eq!(sum.block_syncs, t.block_syncs);
        assert_eq!(sum.blocks_run, t.blocks_run);
        // RAM-free design: even global traffic reconciles exactly.
        assert_eq!(sum.global_bytes, t.global_bytes);
        assert_eq!(sum.global_transactions, t.global_transactions);
        // Device-level events are never attributed to a partition.
        assert_eq!(sum.device_syncs, 0);
        assert_eq!(sum.cycles, 0);
        assert_eq!(bd.partitions.len(), 1);
        assert_eq!(bd.layers.len(), 1);
        assert_eq!(bd.layers[0].executions, 5);
        let snap = gpu.metrics_snapshot();
        assert_eq!(
            snap.family("gem_alu_ops_total").unwrap().total(),
            t.alu_ops as f64
        );
    }

    #[test]
    fn snapshot_restore_resumes_bit_exactly() {
        let (bs, cfg) = and_bitstream();
        let mut gpu = GemGpu::load(&bs, cfg.clone()).expect("loads");
        gpu.poke(0, true);
        gpu.poke(1, true);
        gpu.step_cycle();
        let snap = gpu.snapshot();
        // Diverge, then restore and replay: the continuations must match.
        gpu.poke(0, false);
        gpu.step_cycle();
        gpu.restore(&snap).expect("restores");
        gpu.poke(0, true);
        gpu.step_cycle();
        assert!(gpu.peek(2));
        assert_eq!(gpu.counters().cycles, 2, "counters restored with state");

        // A second machine restored from the same snapshot tracks the
        // first exactly.
        let mut other = GemGpu::load(&bs, cfg).expect("loads");
        other.restore(&snap).expect("restores");
        other.poke(0, true);
        other.poke(1, true);
        other.step_cycle();
        assert_eq!(other.peek(2), gpu.peek(2));
        assert_eq!(other.counters(), gpu.counters());
        assert!(snap.approx_bytes() > 0);
    }

    #[test]
    fn mismatched_snapshot_rejected() {
        let (bs, cfg) = and_bitstream();
        let gpu = GemGpu::load(&bs, cfg).expect("loads");
        let snap = gpu.snapshot();
        // A differently shaped machine must refuse the snapshot.
        let bs2 = Bitstream {
            width: 16,
            global_bits: 64 + 59,
            stages: vec![],
        };
        let mut idx = 0u32;
        let mut next = || {
            let i = idx;
            idx += 1;
            i
        };
        let cfg2 = DeviceConfig {
            global_bits: 123,
            rams: vec![RamBinding {
                raddr: std::array::from_fn(|_| next()),
                waddr: std::array::from_fn(|_| next()),
                wdata: std::array::from_fn(|_| next()),
                we: next(),
                rdata: std::array::from_fn(|_| next()),
            }],
            initial_ones: vec![],
        };
        let mut other = GemGpu::load(&bs2, cfg2).expect("loads");
        let before = other.snapshot();
        assert!(matches!(
            other.restore(&snap),
            Err(MachineError::SnapshotMismatch(_))
        ));
        assert_eq!(other.snapshot(), before, "failed restore must not mutate");
    }

    #[test]
    fn bad_global_index_rejected() {
        let (mut bs, cfg) = and_bitstream();
        // Corrupt: claim a smaller global space than the programs use.
        bs.global_bits = 1;
        let cfg = DeviceConfig {
            global_bits: 1,
            ..cfg
        };
        assert!(matches!(
            GemGpu::load(&bs, cfg),
            Err(MachineError::BadBinding(_))
        ));
    }

    #[test]
    fn ram_phase_read_first() {
        // No cores: drive RAM ports directly through pokes.
        let bs = Bitstream {
            width: 16,
            global_bits: 64 + 59,
            stages: vec![],
        };
        let mut idx = 0u32;
        let mut next = || {
            let i = idx;
            idx += 1;
            i
        };
        let binding = RamBinding {
            raddr: std::array::from_fn(|_| next()),
            waddr: std::array::from_fn(|_| next()),
            wdata: std::array::from_fn(|_| next()),
            we: next(),
            rdata: std::array::from_fn(|_| next()),
        };
        let cfg = DeviceConfig {
            global_bits: 123,
            rams: vec![binding.clone()],
            initial_ones: vec![],
        };
        let mut gpu = GemGpu::load(&bs, cfg).expect("loads");
        // Write 0b101 to address 0 while reading address 0.
        gpu.poke(binding.we, true);
        gpu.poke(binding.wdata[0], true);
        gpu.poke(binding.wdata[2], true);
        gpu.step_cycle();
        assert!(!gpu.peek(binding.rdata[0]), "read-first returns old zero");
        gpu.poke(binding.we, false);
        gpu.step_cycle();
        assert!(gpu.peek(binding.rdata[0]));
        assert!(gpu.peek(binding.rdata[2]));
        assert!(!gpu.peek(binding.rdata[1]));
        assert_eq!(gpu.ram_word(0, 0), 0b101);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::exec::ExecMode;
    use gem_isa::{assemble_core, ReadEntry, WriteEntry};
    use gem_place::{BoomerangLayer, CoreProgram, OutputSource, PermSource};

    /// One stage of `n` AND cores: core `i` computes
    /// `g[2n+i] = g[2i] & g[2i+1]`, alternating immediate and deferred
    /// writes so the merge path sees both write classes.
    pub(super) fn wide_machine(n: u32) -> GemGpu {
        let width = 16u32;
        let mut cores = Vec::new();
        for i in 0..n {
            let mut layer = BoomerangLayer::new(width);
            layer.perm[0] = PermSource::State(0);
            layer.perm[1] = PermSource::State(1);
            layer.writeback[0][0] = Some(2);
            let prog = CoreProgram {
                width,
                state_size: 3,
                inputs: vec![],
                layers: vec![layer],
                outputs: vec![OutputSource::State {
                    addr: 2,
                    invert: false,
                }],
            };
            let reads = vec![
                ReadEntry {
                    global: 2 * i,
                    state: 0,
                },
                ReadEntry {
                    global: 2 * i + 1,
                    state: 1,
                },
            ];
            let writes = vec![WriteEntry {
                global: 2 * n + i,
                src: gem_isa::WriteSrc::State {
                    addr: 2,
                    invert: false,
                },
                deferred: i % 2 == 1,
            }];
            cores.push(assemble_core(&prog, &reads, &writes));
        }
        let bs = Bitstream {
            width,
            global_bits: 3 * n,
            stages: vec![cores],
        };
        GemGpu::load(
            &bs,
            DeviceConfig {
                global_bits: 3 * n,
                rams: vec![],
                initial_ones: vec![],
            },
        )
        .expect("loads")
    }

    /// Drives `serial` and `parallel` with an identical input pattern and
    /// asserts bit-identical observable state and counters every cycle.
    pub(super) fn assert_lockstep(serial: &mut GemGpu, parallel: &mut GemGpu, n: u32, cycles: u64) {
        for c in 0..cycles {
            for i in 0..2 * n {
                let v = (c.wrapping_mul(0x9E37) >> i) & 1 == 1;
                serial.poke(i, v);
                parallel.poke(i, v);
            }
            serial.step_cycle();
            parallel.step_cycle();
            for g in 0..3 * n {
                assert_eq!(
                    serial.peek(g),
                    parallel.peek(g),
                    "cycle {c}: global bit {g} diverged"
                );
            }
            assert_eq!(serial.counters(), parallel.counters(), "cycle {c} counters");
        }
        assert_eq!(
            serial.breakdown(),
            parallel.breakdown(),
            "per-partition and per-layer refinements must match exactly"
        );
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_serial() {
        let n = 6;
        let mut serial = wide_machine(n);
        let mut parallel = wide_machine(n);
        parallel.set_exec_mode(ExecMode::Parallel(3));
        assert_eq!(parallel.exec_mode(), ExecMode::Parallel(3));
        assert_eq!(serial.exec_mode(), ExecMode::Serial);
        assert_lockstep(&mut serial, &mut parallel, n, 32);
        let es = parallel.exec_stats();
        assert_eq!(es.threads, 3);
        assert_eq!(es.stage_barriers, 32, "one barrier per stage per cycle");
        assert_eq!(es.parallel_tasks, 32 * u64::from(n));
        // The per-stage refinement partitions the machine-wide totals
        // exactly — no wait time may vanish into an unattributed sum.
        assert_eq!(
            es.per_stage.iter().map(|s| s.tasks).sum::<u64>(),
            es.parallel_tasks
        );
        assert_eq!(
            es.per_stage.iter().map(|s| s.wait_nanos).sum::<u64>(),
            es.barrier_wait_nanos
        );
        assert_eq!(
            es.per_stage.iter().map(|s| s.idle_nanos).sum::<u64>(),
            es.core_idle_nanos
        );
        assert_eq!(serial.exec_stats().stage_barriers, 0);
    }

    #[test]
    fn parallel_engine_is_bit_identical_with_pruning() {
        let n = 4;
        let mut serial = wide_machine(n);
        let mut parallel = wide_machine(n);
        serial.set_pruning(true);
        parallel.set_pruning(true);
        parallel.set_exec_mode(ExecMode::Parallel(4));
        assert_lockstep(&mut serial, &mut parallel, n, 24);
        assert!(
            parallel.counters().blocks_skipped > 0,
            "the pattern repeats, so pruning must fire under the pool too"
        );
    }

    #[test]
    fn mode_switch_mid_simulation_keeps_the_trajectory() {
        let n = 5;
        let mut reference = wide_machine(n);
        let mut switching = wide_machine(n);
        assert_lockstep(&mut reference, &mut switching, n, 8);
        switching.set_exec_mode(ExecMode::Parallel(2));
        assert_lockstep(&mut reference, &mut switching, n, 8);
        switching.set_exec_mode(ExecMode::Serial);
        assert_lockstep(&mut reference, &mut switching, n, 8);
    }

    #[test]
    fn clones_share_the_pool_and_step_independently() {
        let n = 4;
        let mut a = wide_machine(n);
        a.set_exec_mode(ExecMode::Parallel(2));
        let mut b = a.clone();
        let mut serial = wide_machine(n);
        // Step the clones concurrently from two threads against one pool.
        let ja = std::thread::spawn(move || {
            for _ in 0..16 {
                a.step_cycle();
            }
            a
        });
        let jb = std::thread::spawn(move || {
            for _ in 0..16 {
                b.step_cycle();
            }
            b
        });
        let a = ja.join().unwrap();
        let b = jb.join().unwrap();
        for _ in 0..16 {
            serial.step_cycle();
        }
        assert_eq!(a.counters(), serial.counters());
        assert_eq!(b.counters(), serial.counters());
        for g in 0..3 * n {
            assert_eq!(a.peek(g), serial.peek(g));
            assert_eq!(b.peek(g), serial.peek(g));
        }
    }

    #[test]
    fn counter_merge_is_order_independent() {
        // Run a real multi-core machine, then re-merge its per-core
        // counters in shuffled orders: every order must reproduce the
        // same aggregate (this is the invariant the parallel barrier
        // merge leans on, since core completion order is arbitrary).
        let n = 6;
        let mut gpu = wide_machine(n);
        gpu.set_exec_mode(ExecMode::Parallel(3));
        for c in 0..12 {
            for i in 0..2 * n {
                gpu.poke(i, ((c * 7) >> i) & 1 == 1);
            }
            gpu.step_cycle();
        }
        let bd = gpu.breakdown();
        let deltas: Vec<KernelCounters> = bd.partitions.iter().map(|p| p.counters).collect();
        let reference = {
            let mut sum = KernelCounters::default();
            for d in &deltas {
                sum += *d;
            }
            sum
        };
        // Deterministic shuffles: rotate and a fixed LCG permutation.
        let mut orders: Vec<Vec<usize>> = (0..deltas.len())
            .map(|rot| {
                (0..deltas.len())
                    .map(|i| (i + rot) % deltas.len())
                    .collect()
            })
            .collect();
        let mut lcg = 0x2545F4914F6CDD1Du64;
        let mut perm: Vec<usize> = (0..deltas.len()).collect();
        for i in (1..perm.len()).rev() {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            perm.swap(i, (lcg >> 33) as usize % (i + 1));
        }
        orders.push(perm);
        for order in orders {
            let mut sum = KernelCounters::default();
            for &i in &order {
                sum += deltas[i];
            }
            assert_eq!(
                sum, reference,
                "merge order {order:?} changed the aggregate"
            );
        }
        assert_eq!(reference.alu_ops, bd.total.alu_ops);
        assert_eq!(reference.blocks_run, bd.total.blocks_run);
    }

    #[test]
    fn exec_metrics_exported() {
        let n = 4;
        let mut gpu = wide_machine(n);
        gpu.set_exec_mode(ExecMode::Parallel(2));
        for _ in 0..4 {
            gpu.step_cycle();
        }
        let snap = gpu.metrics_snapshot();
        assert_eq!(snap.family("gem_vgpu_threads").unwrap().total(), 2.0);
        assert_eq!(
            snap.family("gem_vgpu_parallel_tasks_total")
                .unwrap()
                .total(),
            (4 * n) as f64
        );
        let barriers = snap.family("gem_vgpu_stage_barriers_total").unwrap();
        assert_eq!(barriers.total(), 4.0);
        assert_eq!(barriers.samples[0].labels[0].0, "stage");
        assert!(snap.family("gem_vgpu_barrier_wait_nanos_total").is_some());
        assert!(snap.family("gem_vgpu_core_idle_nanos_total").is_some());
        assert_eq!(
            snap.family("gem_vgpu_stage_tasks_total").unwrap().total(),
            (4 * n) as f64
        );
    }

    #[test]
    fn snapshot_restore_is_engine_agnostic() {
        let n = 4;
        let mut par = wide_machine(n);
        par.set_exec_mode(ExecMode::Parallel(2));
        for i in 0..2 * n {
            par.poke(i, i % 3 == 0);
        }
        for _ in 0..5 {
            par.step_cycle();
        }
        let snap = par.snapshot();
        // A serial machine restored from a parallel machine's snapshot
        // continues the identical trajectory (exec shape is not state).
        let mut ser = wide_machine(n);
        ser.restore(&snap).expect("restores");
        for i in 0..2 * n {
            ser.poke(i, i % 3 == 0);
            par.poke(i, i % 3 == 0);
        }
        ser.step_cycle();
        par.step_cycle();
        for g in 0..3 * n {
            assert_eq!(ser.peek(g), par.peek(g));
        }
        assert_eq!(ser.counters(), par.counters());
    }
}

#[cfg(test)]
mod backend_tests {
    use super::parallel_tests::{assert_lockstep, wide_machine};
    use super::*;
    use crate::exec::{ExecBackend, ExecMode};

    #[test]
    fn compiled_backend_is_bit_identical_to_interpreted() {
        let n = 6;
        for threads in [1usize, 4] {
            let mut interp = wide_machine(n);
            let mut comp = wide_machine(n);
            comp.set_backend(ExecBackend::Compiled);
            comp.set_threads(threads);
            assert_eq!(comp.backend(), ExecBackend::Compiled);
            assert_eq!(comp.exec_stats().backend, ExecBackend::Compiled);
            assert_eq!(interp.backend(), ExecBackend::Interpreted);
            assert_lockstep(&mut interp, &mut comp, n, 32);
        }
    }

    #[test]
    fn compiled_backend_is_bit_identical_with_pruning() {
        let n = 4;
        let mut interp = wide_machine(n);
        let mut comp = wide_machine(n);
        interp.set_pruning(true);
        comp.set_pruning(true);
        comp.set_backend(ExecBackend::Compiled);
        assert_lockstep(&mut interp, &mut comp, n, 24);
        assert!(
            comp.counters().blocks_skipped > 0,
            "the pattern repeats, so pruning must fire under the compiled backend too"
        );
    }

    #[test]
    fn backend_switch_mid_simulation_keeps_the_trajectory() {
        let n = 5;
        let mut reference = wide_machine(n);
        let mut switching = wide_machine(n);
        assert_lockstep(&mut reference, &mut switching, n, 8);
        switching.set_backend(ExecBackend::Compiled);
        assert_lockstep(&mut reference, &mut switching, n, 8);
        switching.set_exec_mode(ExecMode::Parallel(2));
        assert_lockstep(&mut reference, &mut switching, n, 8);
        switching.set_backend(ExecBackend::Interpreted);
        assert_lockstep(&mut reference, &mut switching, n, 8);
    }

    /// Backends × lanes: a full-width (64-lane) compiled batch tracks
    /// the interpreted batch on every lane under divergent stimulus.
    #[test]
    fn compiled_lane_batch_matches_interpreted_per_lane() {
        let n = 4;
        let mut interp = wide_machine(n);
        let mut comp = wide_machine(n);
        comp.set_backend(ExecBackend::Compiled);
        interp.set_lanes(GemGpu::MAX_LANES).expect("max lanes");
        comp.set_lanes(GemGpu::MAX_LANES).expect("max lanes");
        for c in 0u64..16 {
            for i in 0..2 * n {
                for lane in 0..GemGpu::MAX_LANES {
                    let v = c.wrapping_mul(0x9E37).wrapping_shr(i + lane) & 1 == 1;
                    interp.poke_lane(i, lane, v);
                    comp.poke_lane(i, lane, v);
                }
            }
            interp.step_cycle();
            comp.step_cycle();
            for g in 0..3 * n {
                assert_eq!(
                    interp.peek_lanes(g),
                    comp.peek_lanes(g),
                    "cycle {c}: lane word of global {g} diverged"
                );
            }
            assert_eq!(interp.counters(), comp.counters(), "cycle {c} counters");
        }
    }

    /// A snapshot is backend-agnostic in both directions: state taken
    /// under one backend restores under the other and continues the
    /// identical trajectory, and restore never resets the configured
    /// backend (it is host configuration, like the thread count).
    #[test]
    fn snapshot_restore_is_backend_agnostic() {
        let n = 4;
        let mut comp = wide_machine(n);
        comp.set_backend(ExecBackend::Compiled);
        for i in 0..2 * n {
            comp.poke(i, i % 3 == 0);
        }
        for _ in 0..5 {
            comp.step_cycle();
        }
        let snap = comp.snapshot();
        let mut interp = wide_machine(n);
        interp.restore(&snap).expect("restores");
        assert_eq!(
            interp.backend(),
            ExecBackend::Interpreted,
            "restore must not change the configured backend"
        );
        assert_eq!(comp.backend(), ExecBackend::Compiled);
        for i in 0..2 * n {
            interp.poke(i, i % 3 == 0);
            comp.poke(i, i % 3 == 0);
        }
        interp.step_cycle();
        comp.step_cycle();
        for g in 0..3 * n {
            assert_eq!(interp.peek(g), comp.peek(g));
        }
        assert_eq!(interp.counters(), comp.counters());
    }

    #[test]
    fn backend_metric_exported() {
        let mut gpu = wide_machine(2);
        let snap = gpu.metrics_snapshot();
        let fam = snap.family("gem_vgpu_backend").unwrap();
        assert_eq!(
            fam.samples[0].labels,
            vec![("backend".to_string(), "interpreted".to_string())]
        );
        gpu.set_backend(ExecBackend::Compiled);
        let snap = gpu.metrics_snapshot();
        let fam = snap.family("gem_vgpu_backend").unwrap();
        assert_eq!(
            fam.samples[0].labels,
            vec![("backend".to_string(), "compiled".to_string())]
        );
        assert_eq!(fam.total(), 1.0);
    }
}

#[cfg(test)]
mod pruning_tests {
    use super::*;
    use gem_isa::{assemble_core, ReadEntry, WriteEntry};
    use gem_place::{BoomerangLayer, CoreProgram, OutputSource, PermSource};

    /// Two cores: core A computes g2 = g0 & g1 (immediate), core B computes
    /// g3 = !g2 (deferred), with a deliberately bursty input pattern so
    /// pruning has skippable cycles.
    fn two_core_machine() -> GemGpu {
        let width = 16u32;
        let mk_core = |perm0: u32, perm1: Option<u32>, invert: bool, out_g: u32, deferred: bool| {
            let mut layer = BoomerangLayer::new(width);
            layer.perm[0] = PermSource::State(0);
            layer.perm[1] = match perm1 {
                Some(_) => PermSource::State(1),
                None => PermSource::ConstFalse,
            };
            if perm1.is_none() {
                layer.folds[0].ob[0] = true; // bypass: out = A
            }
            layer.writeback[0][0] = Some(2);
            let prog = CoreProgram {
                width,
                state_size: 3,
                inputs: vec![],
                layers: vec![layer],
                outputs: vec![OutputSource::State {
                    addr: 2,
                    invert: false,
                }],
            };
            let mut reads = vec![ReadEntry {
                global: perm0,
                state: 0,
            }];
            if let Some(g1) = perm1 {
                reads.push(ReadEntry {
                    global: g1,
                    state: 1,
                });
            }
            let writes = vec![WriteEntry {
                global: out_g,
                src: gem_isa::WriteSrc::State { addr: 2, invert },
                deferred,
            }];
            assemble_core(&prog, &reads, &writes)
        };
        let bs = Bitstream {
            width,
            global_bits: 4,
            stages: vec![
                vec![mk_core(0, Some(1), false, 2, false)],
                vec![mk_core(2, None, true, 3, true)],
            ],
        };
        GemGpu::load(
            &bs,
            DeviceConfig {
                global_bits: 4,
                rams: vec![],
                initial_ones: vec![],
            },
        )
        .expect("loads")
    }

    #[test]
    fn pruning_preserves_outputs_exactly() {
        let mut base = two_core_machine();
        let mut pruned = two_core_machine();
        pruned.set_pruning(true);
        let pattern = [
            (false, false),
            (true, true),
            (true, true), // repeat: core A skippable
            (true, true),
            (false, true),
            (false, true),
            (true, false),
            (true, false),
        ];
        for (a, b) in pattern {
            base.poke(0, a);
            base.poke(1, b);
            pruned.poke(0, a);
            pruned.poke(1, b);
            base.step_cycle();
            pruned.step_cycle();
            assert_eq!(base.peek(2), pruned.peek(2));
            assert_eq!(base.peek(3), pruned.peek(3));
            assert_eq!(base.peek(2), a && b);
            assert_eq!(base.peek(3), !(a && b));
        }
        let c = pruned.counters();
        assert!(c.blocks_skipped > 0, "repeats must be skipped");
        assert!(
            c.global_bytes < base.counters().global_bytes,
            "pruning must save instruction traffic"
        );
    }

    #[test]
    fn pruning_is_conservative_across_lanes() {
        // With two lanes, changing only lane 1's input must not let the
        // full-word cache compare skip the core.
        let mut gpu = two_core_machine();
        gpu.set_lanes(2).expect("2 lanes");
        gpu.set_pruning(true);
        gpu.poke(0, true);
        gpu.poke(1, true);
        gpu.step_cycle();
        let skipped_before = gpu.counters().blocks_skipped;
        // Lane 0 unchanged, lane 1 flips: core A must re-execute.
        gpu.poke_lane(1, 1, false);
        gpu.step_cycle();
        assert_eq!(gpu.counters().blocks_skipped, skipped_before);
        assert!(gpu.peek_lane(2, 0), "lane 0: 1&1");
        assert!(!gpu.peek_lane(2, 1), "lane 1: 1&0");
    }

    #[test]
    fn pruning_off_by_default_and_resettable() {
        let mut gpu = two_core_machine();
        for _ in 0..4 {
            gpu.step_cycle();
        }
        assert_eq!(gpu.counters().blocks_skipped, 0);
        gpu.set_pruning(true);
        for _ in 0..4 {
            gpu.step_cycle();
        }
        assert!(gpu.counters().blocks_skipped > 0);
        gpu.set_pruning(false);
        let skipped = gpu.counters().blocks_skipped;
        for _ in 0..4 {
            gpu.step_cycle();
        }
        assert_eq!(gpu.counters().blocks_skipped, skipped);
    }
}

#[cfg(test)]
mod lane_tests {
    use super::*;
    use gem_isa::{assemble_core, ReadEntry, WriteEntry};
    use gem_place::{BoomerangLayer, CoreProgram, OutputSource, PermSource};

    /// Same one-core AND machine the scalar tests use.
    fn and_machine() -> GemGpu {
        let width = 16u32;
        let mut layer = BoomerangLayer::new(width);
        layer.perm[0] = PermSource::State(0);
        layer.perm[1] = PermSource::State(1);
        layer.writeback[0][0] = Some(2);
        let prog = CoreProgram {
            width,
            state_size: 3,
            inputs: vec![],
            layers: vec![layer],
            outputs: vec![OutputSource::State {
                addr: 2,
                invert: false,
            }],
        };
        let reads = vec![
            ReadEntry {
                global: 0,
                state: 0,
            },
            ReadEntry {
                global: 1,
                state: 1,
            },
        ];
        let writes = vec![WriteEntry {
            global: 2,
            src: gem_isa::WriteSrc::State {
                addr: 2,
                invert: false,
            },
            deferred: false,
        }];
        let bytes = assemble_core(&prog, &reads, &writes);
        GemGpu::load(
            &Bitstream {
                width,
                global_bits: 3,
                stages: vec![vec![bytes]],
            },
            DeviceConfig {
                global_bits: 3,
                rams: vec![],
                initial_ones: vec![],
            },
        )
        .expect("loads")
    }

    #[test]
    fn lane_count_validation() {
        let mut gpu = and_machine();
        assert_eq!(gpu.lanes(), 1);
        assert!(matches!(gpu.set_lanes(0), Err(MachineError::BadLanes(0))));
        assert!(matches!(gpu.set_lanes(65), Err(MachineError::BadLanes(65))));
        assert_eq!(gpu.lanes(), 1, "failed set_lanes must not change state");
        gpu.set_lanes(32).expect("32 lanes");
        assert_eq!(gpu.lanes(), 32);
        gpu.set_lanes(64).expect("64 lanes");
        assert_eq!(gpu.lanes(), 64);
        assert_eq!(gpu.exec_stats().lanes, 64);
    }

    #[test]
    fn scalar_pokes_broadcast_and_peek_reads_lane_zero() {
        let mut gpu = and_machine();
        gpu.set_lanes(8).expect("8 lanes");
        gpu.poke(0, true);
        gpu.poke(1, true);
        assert_eq!(gpu.peek_lanes(0), Word::MAX, "broadcast fills every lane");
        gpu.step_cycle();
        assert!(gpu.peek(2));
        assert_eq!(gpu.peek_lanes(2), Word::MAX);
    }

    #[test]
    fn lanes_compute_independently() {
        let mut gpu = and_machine();
        gpu.set_lanes(64).expect("64 lanes");
        // Lane k: a = bit0 of k, b = bit1 of k.
        for lane in 0..64 {
            gpu.poke_lane(0, lane, lane & 1 == 1);
            gpu.poke_lane(1, lane, lane & 2 == 2);
        }
        gpu.step_cycle();
        for lane in 0..64 {
            assert_eq!(
                gpu.peek_lane(2, lane),
                (lane & 1 == 1) && (lane & 2 == 2),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn inactive_lanes_mirror_lane_zero() {
        let mut gpu = and_machine();
        gpu.set_lanes(4).expect("4 lanes");
        gpu.poke_lane(0, 0, true);
        gpu.poke_lane(1, 0, true);
        gpu.poke_lane(0, 1, true);
        gpu.poke_lane(1, 1, false);
        gpu.step_cycle();
        // Lanes 4..64 shadow lane 0 exactly.
        let word = gpu.peek_lanes(2);
        assert_eq!(word & 0b1, 1, "lane 0: 1&1");
        assert_eq!(word & 0b10, 0, "lane 1: 1&0");
        assert_eq!(word >> 4, (Word::MAX << 4) >> 4, "inactive lanes mirror");
        // Packed injection also masks the inactive tail.
        gpu.poke_lanes(0, 0x0000_0001); // lane0=1, lanes 1..3 = 0
        assert_eq!(gpu.peek_lanes(0) >> 4, (Word::MAX << 4) >> 4);
    }

    #[test]
    fn shrinking_remirrors_dropped_lanes() {
        let mut gpu = and_machine();
        gpu.set_lanes(4).expect("4 lanes");
        gpu.poke_lane(0, 0, true);
        gpu.poke_lane(0, 3, false);
        gpu.set_lanes(2).expect("back to 2");
        // Lane 3 is inactive again: it must read as lane 0.
        assert!(gpu.peek_lane(0, 3));
    }

    #[test]
    fn per_lane_ram_images_are_independent() {
        // RAM-only machine (no cores), ports driven via pokes.
        let bs = Bitstream {
            width: 16,
            global_bits: 64 + 59,
            stages: vec![],
        };
        let mut idx = 0u32;
        let mut next = || {
            let i = idx;
            idx += 1;
            i
        };
        let binding = RamBinding {
            raddr: std::array::from_fn(|_| next()),
            waddr: std::array::from_fn(|_| next()),
            wdata: std::array::from_fn(|_| next()),
            we: next(),
            rdata: std::array::from_fn(|_| next()),
        };
        let cfg = DeviceConfig {
            global_bits: 123,
            rams: vec![binding.clone()],
            initial_ones: vec![],
        };
        let mut gpu = GemGpu::load(&bs, cfg).expect("loads");
        gpu.set_lanes(2).expect("2 lanes");
        // Lane 0 writes 1 to address 0; lane 1 writes 2 to address 1.
        gpu.poke(binding.we, true);
        gpu.poke_lane(binding.wdata[0], 0, true);
        gpu.poke_lane(binding.wdata[0], 1, false);
        gpu.poke_lane(binding.wdata[1], 1, true);
        gpu.poke_lane(binding.waddr[0], 1, true); // lane 1 → address 1
        gpu.step_cycle();
        assert_eq!(gpu.ram_word_lane(0, 0, 0), 0b01);
        assert_eq!(gpu.ram_word_lane(0, 0, 1), 0);
        assert_eq!(gpu.ram_word_lane(0, 1, 0), 0);
        assert_eq!(gpu.ram_word_lane(0, 1, 1), 0b10);
        // Per-lane read-back: lane 0 reads address 0, lane 1 address 1.
        gpu.poke(binding.we, false);
        gpu.poke_lane(binding.raddr[0], 1, true);
        gpu.step_cycle();
        assert!(gpu.peek_lane(binding.rdata[0], 0));
        assert!(!gpu.peek_lane(binding.rdata[1], 0));
        assert!(!gpu.peek_lane(binding.rdata[0], 1));
        assert!(gpu.peek_lane(binding.rdata[1], 1));
        // set_ram_word broadcasts; ram_word reads lane 0.
        gpu.set_ram_word(0, 5, 0xAB);
        assert_eq!(gpu.ram_word(0, 5), 0xAB);
        assert_eq!(gpu.ram_word_lane(0, 1, 5), 0xAB);
        // Growing clones lane 0's image for the new lane.
        gpu.set_lanes(3).expect("3 lanes");
        assert_eq!(gpu.ram_word_lane(0, 2, 0), 0b01);
    }

    #[test]
    fn snapshot_carries_lanes() {
        let mut gpu = and_machine();
        gpu.set_lanes(5).expect("5 lanes");
        gpu.poke_lane(0, 3, true);
        gpu.poke_lane(1, 3, true);
        let snap = gpu.snapshot();
        assert_eq!(snap.lanes(), 5);
        let mut other = and_machine();
        other.restore(&snap).expect("restores");
        assert_eq!(other.lanes(), 5);
        other.step_cycle();
        gpu.step_cycle();
        for lane in 0..5 {
            assert_eq!(other.peek_lane(2, lane), gpu.peek_lane(2, lane));
        }
    }

    #[test]
    fn stale_word_width_snapshot_rejected() {
        let mut gpu = and_machine();
        gpu.set_lanes(3).expect("3 lanes");
        let before = gpu.snapshot();
        assert_eq!(before.word_bits(), Word::BITS);
        // Forge a legacy 32-wide snapshot: restore must fail with the
        // typed width error and leave the machine untouched.
        let stale = gpu.snapshot().with_word_bits(32);
        assert!(matches!(
            gpu.restore(&stale),
            Err(MachineError::SnapshotWordWidth(32, 64))
        ));
        assert_eq!(gpu.snapshot(), before, "failed restore must not mutate");
        let msg = MachineError::SnapshotWordWidth(32, 64).to_string();
        assert!(msg.contains("32") && msg.contains("64"), "{msg}");
    }

    #[test]
    fn lanes_metric_exported() {
        let mut gpu = and_machine();
        gpu.set_lanes(7).expect("7 lanes");
        let snap = gpu.metrics_snapshot();
        assert_eq!(snap.family("gem_vgpu_lanes").unwrap().total(), 7.0);
    }

    /// The heart of the batch contract at machine level: a 64-lane run
    /// equals 64 scalar runs, under both engines.
    #[test]
    fn batch_equals_independent_scalar_runs() {
        for threads in [1usize, 4] {
            let mut batch = and_machine();
            batch.set_threads(threads);
            batch.set_lanes(64).expect("64 lanes");
            let mut singles: Vec<GemGpu> = (0..64).map(|_| and_machine()).collect();
            for c in 0u64..16 {
                for lane in 0..64u32 {
                    let a = (c ^ u64::from(lane)) & 1 == 1;
                    let b = (c.wrapping_mul(0x9E37) >> lane) & 1 == 1;
                    batch.poke_lane(0, lane, a);
                    batch.poke_lane(1, lane, b);
                    singles[lane as usize].poke(0, a);
                    singles[lane as usize].poke(1, b);
                }
                batch.step_cycle();
                for (lane, single) in singles.iter_mut().enumerate() {
                    single.step_cycle();
                    assert_eq!(
                        batch.peek_lane(2, lane as u32),
                        single.peek(2),
                        "threads {threads} cycle {c} lane {lane}"
                    );
                }
            }
        }
    }
}
